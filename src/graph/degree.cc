#include "graph/degree.h"

#include <algorithm>

namespace tpiin {

DegreeStats ComputeDegreeStats(const Digraph& graph,
                               const ArcFilter& filter) {
  const NodeId n = graph.NumNodes();
  std::vector<uint32_t> in(n, 0);
  std::vector<uint32_t> out(n, 0);
  ArcId arcs = 0;
  for (const Arc& arc : graph.arcs()) {
    if (filter && !filter(arc)) continue;
    ++out[arc.src];
    ++in[arc.dst];
    ++arcs;
  }
  DegreeStats stats;
  stats.num_nodes = n;
  stats.num_arcs = arcs;
  stats.average_degree = n == 0 ? 0.0 : static_cast<double>(arcs) / n;
  for (NodeId v = 0; v < n; ++v) {
    stats.max_in_degree = std::max(stats.max_in_degree, in[v]);
    stats.max_out_degree = std::max(stats.max_out_degree, out[v]);
    if (in[v] == 0) ++stats.num_indegree_zero;
    if (out[v] == 0) ++stats.num_outdegree_zero;
    if (in[v] == 0 && out[v] == 0) ++stats.num_isolated;
  }
  return stats;
}

DegreeStats ComputeDegreeStats(const FrozenGraph& graph,
                               FrozenArcClass arc_class) {
  const NodeId n = graph.NumNodes();
  DegreeStats stats;
  stats.num_nodes = n;
  std::vector<uint32_t> in(n, 0);
  ArcId arcs = 0;
  for (NodeId v = 0; v < n; ++v) {
    const AdjSpan out = graph.OutClass(v, arc_class);
    arcs += out.size();
    stats.max_out_degree =
        std::max(stats.max_out_degree, static_cast<uint32_t>(out.size()));
    for (NodeId dst : out.nodes) ++in[dst];
  }
  stats.num_arcs = arcs;
  stats.average_degree = n == 0 ? 0.0 : static_cast<double>(arcs) / n;
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t out_degree =
        static_cast<uint32_t>(graph.OutClass(v, arc_class).size());
    stats.max_in_degree = std::max(stats.max_in_degree, in[v]);
    if (in[v] == 0) ++stats.num_indegree_zero;
    if (out_degree == 0) ++stats.num_outdegree_zero;
    if (in[v] == 0 && out_degree == 0) ++stats.num_isolated;
  }
  return stats;
}

}  // namespace tpiin

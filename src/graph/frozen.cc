#include "graph/frozen.h"

#include <array>
#include <functional>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace tpiin {

FrozenGraph::FrozenGraph(const Digraph& graph, ArcColor influence_color,
                         uint32_t num_threads)
    : num_nodes_(graph.NumNodes()),
      num_arcs_(graph.NumArcs()),
      influence_color_(influence_color) {
  TPIIN_SPAN("freeze");
  const std::array<std::function<void()>, 2> halves = {
      [&] { BuildOut(graph); },
      [&] { BuildIn(graph); },
  };
  ThreadPool::Global().RunTasks(halves, num_threads);
}

void FrozenGraph::BuildOut(const Digraph& graph) {
  const NodeId n = num_nodes_;
  const ArcId m = num_arcs_;
  out_offsets_.assign(n + 1, 0);
  out_influence_end_.assign(n, 0);
  out_targets_.resize(m);
  out_arc_ids_.resize(m);

  // Counting pass: total degree into offsets[v + 1], influence degree
  // into influence_end (both turned into absolute positions below).
  ArcId influence_arcs = 0;
  for (const Arc& arc : graph.arcs()) {
    ++out_offsets_[arc.src + 1];
    if (arc.color == influence_color_) {
      ++out_influence_end_[arc.src];
      ++influence_arcs;
    }
  }
  num_influence_arcs_ = influence_arcs;
  for (NodeId v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    out_influence_end_[v] += out_offsets_[v];
  }

  // Placement pass. Two cursors per node: influence arcs fill
  // [offset, influence_end), the rest fills [influence_end, next offset).
  // Out arcs are walked per node through the Digraph's own out lists so
  // the per-node relative order (insertion order) is preserved exactly.
  std::vector<ArcId> out_cursor(n), out_trading_cursor(n);
  for (NodeId v = 0; v < n; ++v) {
    out_cursor[v] = out_offsets_[v];
    out_trading_cursor[v] = out_influence_end_[v];
  }
  for (NodeId v = 0; v < n; ++v) {
    for (ArcId id : graph.OutArcs(v)) {
      const Arc& arc = graph.arc(id);
      ArcId& cursor = arc.color == influence_color_ ? out_cursor[v]
                                                    : out_trading_cursor[v];
      out_targets_[cursor] = arc.dst;
      out_arc_ids_[cursor] = id;
      ++cursor;
    }
  }
}

void FrozenGraph::BuildIn(const Digraph& graph) {
  const NodeId n = num_nodes_;
  const ArcId m = num_arcs_;
  in_offsets_.assign(n + 1, 0);
  in_influence_end_.assign(n, 0);
  in_sources_.resize(m);
  in_arc_ids_.resize(m);

  for (const Arc& arc : graph.arcs()) {
    ++in_offsets_[arc.dst + 1];
    if (arc.color == influence_color_) ++in_influence_end_[arc.dst];
  }
  for (NodeId v = 0; v < n; ++v) {
    in_offsets_[v + 1] += in_offsets_[v];
    in_influence_end_[v] += in_offsets_[v];
  }

  // In arcs are walked in arc-id order, which is ascending per class.
  std::vector<ArcId> in_cursor(n), in_trading_cursor(n);
  for (NodeId v = 0; v < n; ++v) {
    in_cursor[v] = in_offsets_[v];
    in_trading_cursor[v] = in_influence_end_[v];
  }
  for (ArcId id = 0; id < m; ++id) {
    const Arc& arc = graph.arc(id);
    ArcId& cursor = arc.color == influence_color_
                        ? in_cursor[arc.dst]
                        : in_trading_cursor[arc.dst];
    in_sources_[cursor] = arc.src;
    in_arc_ids_[cursor] = id;
    ++cursor;
  }
}

std::vector<Arc> FrozenGraph::ArcsInIdOrder(ArcColor other_color) const {
  std::vector<Arc> arcs(num_arcs_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const AdjSpan influence = InfluenceOut(v);
    for (size_t i = 0; i < influence.size(); ++i) {
      arcs[influence.arcs[i]] =
          Arc{v, influence.nodes[i], influence_color_};
    }
    const AdjSpan trading = TradingOut(v);
    for (size_t i = 0; i < trading.size(); ++i) {
      arcs[trading.arcs[i]] = Arc{v, trading.nodes[i], other_color};
    }
  }
  return arcs;
}

}  // namespace tpiin

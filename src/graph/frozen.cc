#include "graph/frozen.h"

namespace tpiin {

FrozenGraph::FrozenGraph(const Digraph& graph, ArcColor influence_color)
    : num_nodes_(graph.NumNodes()),
      num_arcs_(graph.NumArcs()),
      influence_color_(influence_color) {
  const NodeId n = num_nodes_;
  const ArcId m = num_arcs_;

  out_offsets_.assign(n + 1, 0);
  out_influence_end_.assign(n, 0);
  in_offsets_.assign(n + 1, 0);
  in_influence_end_.assign(n, 0);
  out_targets_.resize(m);
  out_arc_ids_.resize(m);
  in_sources_.resize(m);
  in_arc_ids_.resize(m);

  // Counting pass: total degree into offsets[v + 1], influence degree
  // into influence_end (both turned into absolute positions below).
  for (const Arc& arc : graph.arcs()) {
    ++out_offsets_[arc.src + 1];
    ++in_offsets_[arc.dst + 1];
    if (arc.color == influence_color_) {
      ++out_influence_end_[arc.src];
      ++in_influence_end_[arc.dst];
      ++num_influence_arcs_;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
    out_influence_end_[v] += out_offsets_[v];
    in_influence_end_[v] += in_offsets_[v];
  }

  // Placement pass. Two cursors per node: influence arcs fill
  // [offset, influence_end), the rest fills [influence_end, next offset).
  // Out arcs are walked per node through the Digraph's own out lists so
  // the per-node relative order (insertion order) is preserved exactly;
  // in arcs are walked in arc-id order, which is ascending per class.
  std::vector<ArcId> out_cursor(n), out_trading_cursor(n);
  std::vector<ArcId> in_cursor(n), in_trading_cursor(n);
  for (NodeId v = 0; v < n; ++v) {
    out_cursor[v] = out_offsets_[v];
    out_trading_cursor[v] = out_influence_end_[v];
    in_cursor[v] = in_offsets_[v];
    in_trading_cursor[v] = in_influence_end_[v];
  }
  for (NodeId v = 0; v < n; ++v) {
    for (ArcId id : graph.OutArcs(v)) {
      const Arc& arc = graph.arc(id);
      ArcId& cursor = arc.color == influence_color_ ? out_cursor[v]
                                                    : out_trading_cursor[v];
      out_targets_[cursor] = arc.dst;
      out_arc_ids_[cursor] = id;
      ++cursor;
    }
  }
  for (ArcId id = 0; id < m; ++id) {
    const Arc& arc = graph.arc(id);
    ArcId& cursor = arc.color == influence_color_
                        ? in_cursor[arc.dst]
                        : in_trading_cursor[arc.dst];
    in_sources_[cursor] = arc.src;
    in_arc_ids_[cursor] = id;
    ++cursor;
  }
}

}  // namespace tpiin

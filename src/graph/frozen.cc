#include "graph/frozen.h"

#include <array>
#include <functional>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace tpiin {

FrozenGraph::FrozenGraph(const Digraph& graph, ArcColor influence_color,
                         uint32_t num_threads)
    : num_nodes_(graph.NumNodes()),
      num_arcs_(graph.NumArcs()),
      influence_color_(influence_color) {
  TPIIN_SPAN("freeze");
  const std::array<std::function<void()>, 2> halves = {
      [&] { BuildOut(graph); },
      [&] { BuildIn(graph); },
  };
  ThreadPool::Global().RunTasks(halves, num_threads);
}

void FrozenGraph::BuildOut(const Digraph& graph) {
  const NodeId n = num_nodes_;
  const ArcId m = num_arcs_;
  std::vector<ArcId>& out_offsets = out_offsets_.vec();
  std::vector<ArcId>& out_influence_end = out_influence_end_.vec();
  std::vector<NodeId>& out_targets = out_targets_.vec();
  std::vector<ArcId>& out_arc_ids = out_arc_ids_.vec();
  out_offsets.assign(n + 1, 0);
  out_influence_end.assign(n, 0);
  out_targets.resize(m);
  out_arc_ids.resize(m);

  // Counting pass: total degree into offsets[v + 1], influence degree
  // into influence_end (both turned into absolute positions below).
  ArcId influence_arcs = 0;
  for (const Arc& arc : graph.arcs()) {
    ++out_offsets[arc.src + 1];
    if (arc.color == influence_color_) {
      ++out_influence_end[arc.src];
      ++influence_arcs;
    }
  }
  num_influence_arcs_ = influence_arcs;
  for (NodeId v = 0; v < n; ++v) {
    out_offsets[v + 1] += out_offsets[v];
    out_influence_end[v] += out_offsets[v];
  }

  // Placement pass. Two cursors per node: influence arcs fill
  // [offset, influence_end), the rest fills [influence_end, next offset).
  // Out arcs are walked per node through the Digraph's own out lists so
  // the per-node relative order (insertion order) is preserved exactly.
  std::vector<ArcId> out_cursor(n), out_trading_cursor(n);
  for (NodeId v = 0; v < n; ++v) {
    out_cursor[v] = out_offsets[v];
    out_trading_cursor[v] = out_influence_end[v];
  }
  for (NodeId v = 0; v < n; ++v) {
    for (ArcId id : graph.OutArcs(v)) {
      const Arc& arc = graph.arc(id);
      ArcId& cursor = arc.color == influence_color_ ? out_cursor[v]
                                                    : out_trading_cursor[v];
      out_targets[cursor] = arc.dst;
      out_arc_ids[cursor] = id;
      ++cursor;
    }
  }
  out_offsets_.Seal();
  out_influence_end_.Seal();
  out_targets_.Seal();
  out_arc_ids_.Seal();
}

void FrozenGraph::BuildIn(const Digraph& graph) {
  const NodeId n = num_nodes_;
  const ArcId m = num_arcs_;
  std::vector<ArcId>& in_offsets = in_offsets_.vec();
  std::vector<ArcId>& in_influence_end = in_influence_end_.vec();
  std::vector<NodeId>& in_sources = in_sources_.vec();
  std::vector<ArcId>& in_arc_ids = in_arc_ids_.vec();
  in_offsets.assign(n + 1, 0);
  in_influence_end.assign(n, 0);
  in_sources.resize(m);
  in_arc_ids.resize(m);

  for (const Arc& arc : graph.arcs()) {
    ++in_offsets[arc.dst + 1];
    if (arc.color == influence_color_) ++in_influence_end[arc.dst];
  }
  for (NodeId v = 0; v < n; ++v) {
    in_offsets[v + 1] += in_offsets[v];
    in_influence_end[v] += in_offsets[v];
  }

  // In arcs are walked in arc-id order, which is ascending per class.
  std::vector<ArcId> in_cursor(n), in_trading_cursor(n);
  for (NodeId v = 0; v < n; ++v) {
    in_cursor[v] = in_offsets[v];
    in_trading_cursor[v] = in_influence_end[v];
  }
  for (ArcId id = 0; id < m; ++id) {
    const Arc& arc = graph.arc(id);
    ArcId& cursor = arc.color == influence_color_
                        ? in_cursor[arc.dst]
                        : in_trading_cursor[arc.dst];
    in_sources[cursor] = arc.src;
    in_arc_ids[cursor] = id;
    ++cursor;
  }
  in_offsets_.Seal();
  in_influence_end_.Seal();
  in_sources_.Seal();
  in_arc_ids_.Seal();
}

FrozenGraph::Parts FrozenGraph::parts() const {
  return Parts{
      out_offsets_.span(),  out_influence_end_.span(), out_targets_.span(),
      out_arc_ids_.span(),  in_offsets_.span(),        in_influence_end_.span(),
      in_sources_.span(),   in_arc_ids_.span(),
  };
}

FrozenGraph FrozenGraph::FromParts(NodeId num_nodes, ArcId num_arcs,
                                   ArcId num_influence_arcs,
                                   ArcColor influence_color,
                                   const Parts& parts) {
  FrozenGraph graph;
  graph.num_nodes_ = num_nodes;
  graph.num_arcs_ = num_arcs;
  graph.num_influence_arcs_ = num_influence_arcs;
  graph.influence_color_ = influence_color;
  graph.out_offsets_.BindView(parts.out_offsets.data(),
                              parts.out_offsets.size());
  graph.out_influence_end_.BindView(parts.out_influence_end.data(),
                                    parts.out_influence_end.size());
  graph.out_targets_.BindView(parts.out_targets.data(),
                              parts.out_targets.size());
  graph.out_arc_ids_.BindView(parts.out_arc_ids.data(),
                              parts.out_arc_ids.size());
  graph.in_offsets_.BindView(parts.in_offsets.data(),
                             parts.in_offsets.size());
  graph.in_influence_end_.BindView(parts.in_influence_end.data(),
                                   parts.in_influence_end.size());
  graph.in_sources_.BindView(parts.in_sources.data(),
                             parts.in_sources.size());
  graph.in_arc_ids_.BindView(parts.in_arc_ids.data(),
                             parts.in_arc_ids.size());
  return graph;
}

std::vector<Arc> FrozenGraph::ArcsInIdOrder(ArcColor other_color) const {
  std::vector<Arc> arcs(num_arcs_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const AdjSpan influence = InfluenceOut(v);
    for (size_t i = 0; i < influence.size(); ++i) {
      arcs[influence.arcs[i]] =
          Arc{v, influence.nodes[i], influence_color_};
    }
    const AdjSpan trading = TradingOut(v);
    for (size_t i = 0; i < trading.size(); ++i) {
      arcs[trading.arcs[i]] = Arc{v, trading.nodes[i], other_color};
    }
  }
  return arcs;
}

}  // namespace tpiin

#ifndef TPIIN_GRAPH_FROZEN_H_
#define TPIIN_GRAPH_FROZEN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/column.h"
#include "graph/digraph.h"
#include "graph/types.h"

namespace tpiin {

/// A pair of parallel spans over one node's adjacency run: `nodes[i]` is
/// the neighbor (target for out-adjacency, source for in-adjacency) and
/// `arcs[i]` the original Digraph arc id of that edge.
struct AdjSpan {
  std::span<const NodeId> nodes;
  std::span<const ArcId> arcs;

  size_t size() const { return nodes.size(); }
  bool empty() const { return nodes.empty(); }
};

/// Which arcs a FrozenGraph-based algorithm walks. Replaces the
/// std::function ArcFilter on the hot paths: the only filters the miner
/// ever needs are "everything", "the partition color" and "the rest",
/// and all three resolve to precomputed span boundaries.
enum class FrozenArcClass : uint8_t { kAll, kInfluence, kTrading };

/// An immutable CSR (compressed sparse row) view of a Digraph with each
/// node's adjacency partitioned by color.
///
/// Layout: one contiguous offsets/targets/arc-ids triple per direction.
/// Within a node's out (and in) run, arcs whose color equals the
/// partition color come first, so the two color classes are addressable
/// as branch-free subspans — hot loops take `InfluenceOut(v)` /
/// `TradingOut(v)` and never load an Arc struct or test ArcColor per
/// edge. Arc ids are the original Digraph ids, so results map back
/// without translation.
///
/// The graph layer treats the partition color as opaque; the canonical
/// TPIIN palette (fusion/tpiin.h) puts influence arcs at color 1 and
/// trading arcs at color 0, hence the method names and the default.
///
/// Relative arc order is preserved within each color class of each
/// node's out run (matching Digraph insertion order). TPIINs and
/// subTPIINs add all influence arcs before any trading arc, so for them
/// the full out run is in exactly the Digraph's order — traversals over
/// the frozen view visit arcs in the same order as the adjacency-list
/// path, which keeps detection output bit-identical (asserted by
/// tests/core/frozen_equivalence_test.cc).
class FrozenGraph {
 public:
  FrozenGraph() = default;

  /// Builds the CSR view; `influence_color` selects the partition color.
  /// With num_threads > 1 the out and in halves — which touch disjoint
  /// arrays and only read the Digraph — are built as two concurrent
  /// tasks on the shared ThreadPool; the resulting CSR is identical at
  /// any thread count.
  explicit FrozenGraph(const Digraph& graph, ArcColor influence_color = 1,
                       uint32_t num_threads = 1);

  /// The eight CSR arrays as raw spans, in a fixed order shared with
  /// FromParts. The snapshot writer serializes these verbatim; no other
  /// caller should need them.
  struct Parts {
    std::span<const ArcId> out_offsets;        // num_nodes + 1
    std::span<const ArcId> out_influence_end;  // num_nodes
    std::span<const NodeId> out_targets;       // num_arcs
    std::span<const ArcId> out_arc_ids;        // num_arcs
    std::span<const ArcId> in_offsets;         // num_nodes + 1
    std::span<const ArcId> in_influence_end;   // num_nodes
    std::span<const NodeId> in_sources;        // num_arcs
    std::span<const ArcId> in_arc_ids;         // num_arcs
  };
  Parts parts() const;

  /// Rebuilds a FrozenGraph as a zero-copy *view* over externally owned
  /// arrays (the mmap-ed snapshot sections). The arrays must outlive the
  /// returned graph and must satisfy the CSR invariants the building
  /// constructor establishes; the snapshot loader guarantees both via
  /// its checksum and shape validation.
  static FrozenGraph FromParts(NodeId num_nodes, ArcId num_arcs,
                               ArcId num_influence_arcs,
                               ArcColor influence_color, const Parts& parts);

  NodeId NumNodes() const { return num_nodes_; }
  ArcId NumArcs() const { return num_arcs_; }
  ArcColor influence_color() const { return influence_color_; }

  /// Arcs of the partition color, summed over all nodes.
  ArcId NumInfluenceArcs() const { return num_influence_arcs_; }

  // --- Out-adjacency -------------------------------------------------
  AdjSpan Out(NodeId v) const {
    return Slice(out_targets_, out_arc_ids_, out_offsets_[v],
                 out_offsets_[v + 1]);
  }
  AdjSpan InfluenceOut(NodeId v) const {
    return Slice(out_targets_, out_arc_ids_, out_offsets_[v],
                 out_influence_end_[v]);
  }
  AdjSpan TradingOut(NodeId v) const {
    return Slice(out_targets_, out_arc_ids_, out_influence_end_[v],
                 out_offsets_[v + 1]);
  }
  uint32_t OutDegree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  uint32_t InfluenceOutDegree(NodeId v) const {
    return out_influence_end_[v] - out_offsets_[v];
  }
  uint32_t TradingOutDegree(NodeId v) const {
    return out_offsets_[v + 1] - out_influence_end_[v];
  }

  // --- In-adjacency --------------------------------------------------
  AdjSpan In(NodeId v) const {
    return Slice(in_sources_, in_arc_ids_, in_offsets_[v],
                 in_offsets_[v + 1]);
  }
  AdjSpan InfluenceIn(NodeId v) const {
    return Slice(in_sources_, in_arc_ids_, in_offsets_[v],
                 in_influence_end_[v]);
  }
  AdjSpan TradingIn(NodeId v) const {
    return Slice(in_sources_, in_arc_ids_, in_influence_end_[v],
                 in_offsets_[v + 1]);
  }
  uint32_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }
  uint32_t InfluenceInDegree(NodeId v) const {
    return in_influence_end_[v] - in_offsets_[v];
  }
  uint32_t TradingInDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_influence_end_[v];
  }

  /// Class-selected spans for generic algorithms (WCC/SCC/traversal).
  AdjSpan OutClass(NodeId v, FrozenArcClass c) const {
    switch (c) {
      case FrozenArcClass::kInfluence: return InfluenceOut(v);
      case FrozenArcClass::kTrading: return TradingOut(v);
      default: return Out(v);
    }
  }
  AdjSpan InClass(NodeId v, FrozenArcClass c) const {
    switch (c) {
      case FrozenArcClass::kInfluence: return InfluenceIn(v);
      case FrozenArcClass::kTrading: return TradingIn(v);
      default: return In(v);
    }
  }

  /// Reconstructs the arc table in arc-id order from the CSR out spans:
  /// row `id` is {src, dst, color}, where partition-color arcs get
  /// `influence_color()` and the rest `other_color`. Exporters that must
  /// emit arcs in id order (edge lists, DOT/GEXF) use this instead of
  /// keeping the Digraph alive; for two-color graphs such as TPIINs the
  /// result equals the original Digraph arc table byte for byte.
  std::vector<Arc> ArcsInIdOrder(ArcColor other_color) const;

 private:
  void BuildOut(const Digraph& graph);
  void BuildIn(const Digraph& graph);

  static AdjSpan Slice(const Col<NodeId>& nodes, const Col<ArcId>& arcs,
                       ArcId begin, ArcId end) {
    return AdjSpan{{nodes.data() + begin, nodes.data() + end},
                   {arcs.data() + begin, arcs.data() + end}};
  }

  NodeId num_nodes_ = 0;
  ArcId num_arcs_ = 0;
  ArcId num_influence_arcs_ = 0;
  ArcColor influence_color_ = 1;

  // Out CSR: node v's arcs live at [out_offsets_[v], out_offsets_[v+1]),
  // with the influence run ending at out_influence_end_[v]. Columns are
  // owned when built from a Digraph, borrowed when bound to a snapshot.
  Col<ArcId> out_offsets_;       // num_nodes_ + 1
  Col<ArcId> out_influence_end_; // num_nodes_
  Col<NodeId> out_targets_;      // num_arcs_
  Col<ArcId> out_arc_ids_;       // num_arcs_

  // In CSR, same shape; sources instead of targets.
  Col<ArcId> in_offsets_;
  Col<ArcId> in_influence_end_;
  Col<NodeId> in_sources_;
  Col<ArcId> in_arc_ids_;
};

}  // namespace tpiin

#endif  // TPIIN_GRAPH_FROZEN_H_

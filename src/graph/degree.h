#ifndef TPIIN_GRAPH_DEGREE_H_
#define TPIIN_GRAPH_DEGREE_H_

#include <cstdint>

#include "graph/digraph.h"
#include "graph/frozen.h"
#include "graph/scc.h"

namespace tpiin {

/// Summary statistics over a (possibly arc-filtered) digraph, matching
/// the quantities reported in the paper's network figures and Table 1
/// ("average node degree" is Gephi's |E|/|V| for directed graphs).
struct DegreeStats {
  NodeId num_nodes = 0;
  ArcId num_arcs = 0;
  double average_degree = 0;  // num_arcs / num_nodes (Gephi convention).
  uint32_t max_in_degree = 0;
  uint32_t max_out_degree = 0;
  NodeId num_indegree_zero = 0;
  NodeId num_outdegree_zero = 0;
  NodeId num_isolated = 0;  // Zero degree under the filter.
};

DegreeStats ComputeDegreeStats(const Digraph& graph,
                               const ArcFilter& filter = nullptr);

/// Same statistics over one arc class of a frozen CSR view. Output is
/// identical to the Digraph overload with the corresponding color
/// filter; this is the only overload usable on snapshot-backed networks
/// (which carry no Digraph).
DegreeStats ComputeDegreeStats(const FrozenGraph& graph,
                               FrozenArcClass arc_class);

}  // namespace tpiin

#endif  // TPIIN_GRAPH_DEGREE_H_

#ifndef TPIIN_GRAPH_TRAVERSAL_H_
#define TPIIN_GRAPH_TRAVERSAL_H_

#include <vector>

#include "graph/connected.h"
#include "graph/digraph.h"
#include "graph/scc.h"
#include "graph/types.h"

namespace tpiin {

/// Nodes reachable from `start` by directed arcs accepted by `filter`
/// (start itself included).
std::vector<bool> ReachableFrom(const Digraph& graph, NodeId start,
                                const ArcFilter& filter = nullptr);

/// CSR fast path of ReachableFrom over one arc class.
std::vector<bool> ReachableFrom(const FrozenGraph& graph, NodeId start,
                                FrozenArcClass arc_class = FrozenArcClass::kAll);

/// The paper's `findsubgraph()` (Appendix B): weakly connected components
/// by depth-first search over the undirected view of the filtered arcs.
/// Produces the same decomposition as WeaklyConnectedComponents; kept as
/// a faithful alternative implementation and for the ablation bench.
WccResult FindSubgraphsDfs(const Digraph& graph,
                           const ArcFilter& filter = nullptr);

/// CSR fast path of FindSubgraphsDfs: walks the frozen out- and
/// in-adjacency directly instead of materializing an undirected copy.
WccResult FindSubgraphsDfs(const FrozenGraph& graph,
                           FrozenArcClass arc_class = FrozenArcClass::kAll);

}  // namespace tpiin

#endif  // TPIIN_GRAPH_TRAVERSAL_H_

#ifndef TPIIN_GRAPH_TRAVERSAL_H_
#define TPIIN_GRAPH_TRAVERSAL_H_

#include <vector>

#include "graph/connected.h"
#include "graph/digraph.h"
#include "graph/scc.h"
#include "graph/types.h"

namespace tpiin {

/// Nodes reachable from `start` by directed arcs accepted by `filter`
/// (start itself included).
std::vector<bool> ReachableFrom(const Digraph& graph, NodeId start,
                                const ArcFilter& filter = nullptr);

/// The paper's `findsubgraph()` (Appendix B): weakly connected components
/// by depth-first search over the undirected view of the filtered arcs.
/// Produces the same decomposition as WeaklyConnectedComponents; kept as
/// a faithful alternative implementation and for the ablation bench.
WccResult FindSubgraphsDfs(const Digraph& graph,
                           const ArcFilter& filter = nullptr);

}  // namespace tpiin

#endif  // TPIIN_GRAPH_TRAVERSAL_H_

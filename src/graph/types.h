#ifndef TPIIN_GRAPH_TYPES_H_
#define TPIIN_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace tpiin {

/// Dense node index within one graph. 32 bits comfortably covers the
/// paper's "big data" scale for a single provincial TPIIN (millions of
/// taxpayers) while halving adjacency memory versus 64-bit ids.
using NodeId = uint32_t;

/// Dense arc index within one graph.
using ArcId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr ArcId kInvalidArc = std::numeric_limits<ArcId>::max();

/// Arc color label. The graph layer treats colors as opaque small
/// integers; model/fusion layers define the concrete palettes
/// (Influence/Trading, Kinship/Interlocking, ...).
using ArcColor = int32_t;

/// A directed edge with a color. Plain aggregate; graphs store arcs in
/// insertion order so arc ids are stable handles.
struct Arc {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  ArcColor color = 0;

  friend bool operator==(const Arc&, const Arc&) = default;
};

}  // namespace tpiin

#endif  // TPIIN_GRAPH_TYPES_H_

#include "graph/scc.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "graph/connected.h"
#include "graph/frozen.h"

namespace tpiin {

namespace {

constexpr NodeId kUnvisited = kInvalidNode;

// One frame of the explicit DFS stack. `arc_pos` is the next position in
// the node's out-arc list to examine.
struct Frame {
  NodeId node;
  uint32_t arc_pos;
};

// Tarjan over any indexed adjacency view:
//   view.Degree(v)  — number of out slots of v;
//   view.Dst(v, i)  — target of slot i, or kInvalidNode for a slot the
//                     arc filter rejects (skipped).
// Both the Digraph and the FrozenGraph overloads funnel here so the two
// stay behaviorally identical by construction. When `completion_root` is
// non-null it receives, per emitted component, the DFS tree root the
// component completed under — the partition-parallel driver uses these
// tags to restore the serial numbering.
template <typename View>
SccResult TarjanImpl(NodeId n, const View& view,
                     std::vector<NodeId>* completion_root = nullptr) {
  SccResult result;
  result.component_of.assign(n, kUnvisited);

  std::vector<NodeId> index(n, kUnvisited);   // Discovery order.
  std::vector<NodeId> lowlink(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;        // Tarjan's component stack.
  std::vector<Frame> dfs;           // Explicit recursion stack.
  std::vector<bool> has_self_loop(n, false);
  NodeId next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      NodeId u = frame.node;
      const uint32_t degree = view.Degree(u);
      bool descended = false;
      while (frame.arc_pos < degree) {
        NodeId v = view.Dst(u, frame.arc_pos);
        ++frame.arc_pos;
        if (v == kInvalidNode) continue;  // Filtered arc.
        if (v == u) has_self_loop[u] = true;
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back(Frame{v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      }
      if (descended) continue;

      // u is finished: pop a component if u is its root, then propagate
      // the lowlink to the parent.
      if (lowlink[u] == index[u]) {
        std::vector<NodeId> comp;
        while (true) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component_of[w] = result.num_components;
          comp.push_back(w);
          if (w == u) break;
        }
        bool nontrivial =
            comp.size() > 1 || (comp.size() == 1 && has_self_loop[comp[0]]);
        if (nontrivial) {
          result.nontrivial_components.push_back(result.num_components);
        }
        if (completion_root != nullptr) completion_root->push_back(root);
        result.members.push_back(std::move(comp));
        ++result.num_components;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        NodeId parent = dfs.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }

  TPIIN_CHECK_EQ(result.members.size(), result.num_components);
  return result;
}

struct DigraphView {
  const Digraph& graph;
  const ArcFilter& filter;

  uint32_t Degree(NodeId v) const { return graph.OutDegree(v); }
  NodeId Dst(NodeId v, uint32_t i) const {
    const Arc& arc = graph.arc(graph.OutArcs(v)[i]);
    if (filter && !filter(arc)) return kInvalidNode;
    return arc.dst;
  }
};

struct FrozenView {
  const FrozenGraph& graph;
  FrozenArcClass arc_class;

  uint32_t Degree(NodeId v) const {
    return static_cast<uint32_t>(graph.OutClass(v, arc_class).size());
  }
  NodeId Dst(NodeId v, uint32_t i) const {
    return graph.OutClass(v, arc_class).nodes[i];
  }
};

// Adjacency restricted to one weak partition, in local ids: local node i
// is members[i] (members sorted ascending, so local id order == global
// id order within the partition, and the per-node neighbor order is the
// untouched CSR span order — both facts the bit-identical renumbering
// argument rests on).
struct PartitionView {
  const FrozenGraph& graph;
  FrozenArcClass arc_class;
  const std::vector<NodeId>& members;
  const std::vector<NodeId>& local_of_global;

  uint32_t Degree(NodeId v) const {
    return static_cast<uint32_t>(
        graph.OutClass(members[v], arc_class).size());
  }
  NodeId Dst(NodeId v, uint32_t i) const {
    return local_of_global[graph.OutClass(members[v], arc_class).nodes[i]];
  }
};

// Below this many nodes the WCC pass plus merge bookkeeping costs more
// than the serial Tarjan it parallelizes.
constexpr NodeId kParallelSccMinNodes = 1u << 13;

}  // namespace

SccResult StronglyConnectedComponents(const Digraph& graph,
                                      const ArcFilter& filter) {
  TPIIN_SPAN("scc");
  return TarjanImpl(graph.NumNodes(), DigraphView{graph, filter});
}

SccResult StronglyConnectedComponents(const FrozenGraph& graph,
                                      FrozenArcClass arc_class) {
  TPIIN_SPAN("scc");
  return TarjanImpl(graph.NumNodes(), FrozenView{graph, arc_class});
}

SccResult StronglyConnectedComponents(const FrozenGraph& graph,
                                      FrozenArcClass arc_class,
                                      uint32_t num_threads) {
  const NodeId n = graph.NumNodes();
  if (num_threads <= 1 || n < kParallelSccMinNodes) {
    return StronglyConnectedComponents(graph, arc_class);
  }
  TPIIN_SPAN("scc_parallel");
  WccResult wcc = WeaklyConnectedComponents(graph, arc_class, num_threads);
  if (wcc.num_components <= 1) {
    return StronglyConnectedComponents(graph, arc_class);
  }

  std::vector<NodeId> local_of_global(n);
  ThreadPool::Global().ParallelFor(
      wcc.num_components, num_threads, [&](size_t p) {
        const std::vector<NodeId>& part = wcc.members[p];
        for (size_t i = 0; i < part.size(); ++i) {
          local_of_global[part[i]] = static_cast<NodeId>(i);
        }
      });

  struct PartResult {
    SccResult scc;
    std::vector<NodeId> completion_roots;  // Local ids.
    std::vector<uint8_t> nontrivial;       // Per local component.
  };
  std::vector<PartResult> parts(wcc.num_components);
  ThreadPool::Global().ParallelFor(
      wcc.num_components, num_threads, [&](size_t p) {
        const std::vector<NodeId>& members = wcc.members[p];
        PartResult& pr = parts[p];
        pr.scc = TarjanImpl(
            static_cast<NodeId>(members.size()),
            PartitionView{graph, arc_class, members, local_of_global},
            &pr.completion_roots);
        pr.nontrivial.assign(pr.scc.num_components, 0);
        for (NodeId c : pr.scc.nontrivial_components) pr.nontrivial[c] = 1;
      });

  // A component's serial number is its rank under (global id of the DFS
  // root it completed under, per-partition completion index): the serial
  // driver walks roots in ascending global id, and everything a root
  // emits — and the order it emits it in — is confined to the root's
  // partition.
  struct Tag {
    NodeId root_gid;
    uint32_t part;
    NodeId local;
    bool nontrivial;
  };
  std::vector<Tag> tags;
  NodeId total = 0;
  for (uint32_t p = 0; p < wcc.num_components; ++p) {
    total += parts[p].scc.num_components;
  }
  tags.reserve(total);
  for (uint32_t p = 0; p < wcc.num_components; ++p) {
    const PartResult& pr = parts[p];
    for (NodeId c = 0; c < pr.scc.num_components; ++c) {
      tags.push_back(Tag{wcc.members[p][pr.completion_roots[c]], p, c,
                         pr.nontrivial[c] != 0});
    }
  }
  std::sort(tags.begin(), tags.end(), [](const Tag& a, const Tag& b) {
    if (a.root_gid != b.root_gid) return a.root_gid < b.root_gid;
    return a.local < b.local;
  });

  SccResult result;
  result.num_components = total;
  result.component_of.resize(n);
  result.members.resize(total);
  ThreadPool::Global().ParallelFor(total, num_threads, [&](size_t k) {
    const Tag& tag = tags[k];
    const std::vector<NodeId>& part_nodes = wcc.members[tag.part];
    const std::vector<NodeId>& locals =
        parts[tag.part].scc.members[tag.local];
    std::vector<NodeId> globals;
    globals.reserve(locals.size());
    for (NodeId lv : locals) globals.push_back(part_nodes[lv]);
    for (NodeId g : globals) result.component_of[g] = static_cast<NodeId>(k);
    result.members[k] = std::move(globals);
  });
  for (NodeId k = 0; k < total; ++k) {
    if (tags[k].nontrivial) result.nontrivial_components.push_back(k);
  }
  TPIIN_CHECK_EQ(result.members.size(), result.num_components);
  return result;
}

}  // namespace tpiin

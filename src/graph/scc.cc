#include "graph/scc.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/frozen.h"

namespace tpiin {

namespace {

constexpr NodeId kUnvisited = kInvalidNode;

// One frame of the explicit DFS stack. `arc_pos` is the next position in
// the node's out-arc list to examine.
struct Frame {
  NodeId node;
  uint32_t arc_pos;
};

// Tarjan over any indexed adjacency view:
//   view.Degree(v)  — number of out slots of v;
//   view.Dst(v, i)  — target of slot i, or kInvalidNode for a slot the
//                     arc filter rejects (skipped).
// Both the Digraph and the FrozenGraph overloads funnel here so the two
// stay behaviorally identical by construction.
template <typename View>
SccResult TarjanImpl(NodeId n, const View& view) {
  SccResult result;
  result.component_of.assign(n, kUnvisited);

  std::vector<NodeId> index(n, kUnvisited);   // Discovery order.
  std::vector<NodeId> lowlink(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;        // Tarjan's component stack.
  std::vector<Frame> dfs;           // Explicit recursion stack.
  std::vector<bool> has_self_loop(n, false);
  NodeId next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back(Frame{root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      NodeId u = frame.node;
      const uint32_t degree = view.Degree(u);
      bool descended = false;
      while (frame.arc_pos < degree) {
        NodeId v = view.Dst(u, frame.arc_pos);
        ++frame.arc_pos;
        if (v == kInvalidNode) continue;  // Filtered arc.
        if (v == u) has_self_loop[u] = true;
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back(Frame{v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      }
      if (descended) continue;

      // u is finished: pop a component if u is its root, then propagate
      // the lowlink to the parent.
      if (lowlink[u] == index[u]) {
        std::vector<NodeId> comp;
        while (true) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component_of[w] = result.num_components;
          comp.push_back(w);
          if (w == u) break;
        }
        bool nontrivial =
            comp.size() > 1 || (comp.size() == 1 && has_self_loop[comp[0]]);
        if (nontrivial) {
          result.nontrivial_components.push_back(result.num_components);
        }
        result.members.push_back(std::move(comp));
        ++result.num_components;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        NodeId parent = dfs.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }

  TPIIN_CHECK_EQ(result.members.size(), result.num_components);
  return result;
}

struct DigraphView {
  const Digraph& graph;
  const ArcFilter& filter;

  uint32_t Degree(NodeId v) const { return graph.OutDegree(v); }
  NodeId Dst(NodeId v, uint32_t i) const {
    const Arc& arc = graph.arc(graph.OutArcs(v)[i]);
    if (filter && !filter(arc)) return kInvalidNode;
    return arc.dst;
  }
};

struct FrozenView {
  const FrozenGraph& graph;
  FrozenArcClass arc_class;

  uint32_t Degree(NodeId v) const {
    return static_cast<uint32_t>(graph.OutClass(v, arc_class).size());
  }
  NodeId Dst(NodeId v, uint32_t i) const {
    return graph.OutClass(v, arc_class).nodes[i];
  }
};

}  // namespace

SccResult StronglyConnectedComponents(const Digraph& graph,
                                      const ArcFilter& filter) {
  return TarjanImpl(graph.NumNodes(), DigraphView{graph, filter});
}

SccResult StronglyConnectedComponents(const FrozenGraph& graph,
                                      FrozenArcClass arc_class) {
  return TarjanImpl(graph.NumNodes(), FrozenView{graph, arc_class});
}

}  // namespace tpiin

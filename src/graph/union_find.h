#ifndef TPIIN_GRAPH_UNION_FIND_H_
#define TPIIN_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace tpiin {

/// Disjoint-set forest with union by size and path halving. Backs the
/// person-syndicate contraction (every connected component of the
/// interdependence graph collapses into one syndicate) and weak
/// connectivity.
class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n), size_(n, 1) {
    for (NodeId i = 0; i < n; ++i) parent_[i] = i;
  }

  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // Path halving.
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(NodeId a, NodeId b) {
    NodeId ra = Find(a);
    NodeId rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_delta_;
    return true;
  }

  bool Connected(NodeId a, NodeId b) { return Find(a) == Find(b); }

  NodeId SizeOf(NodeId x) { return size_[Find(x)]; }

  NodeId num_elements() const {
    return static_cast<NodeId>(parent_.size());
  }

  /// Number of disjoint sets remaining.
  NodeId NumSets() const {
    return static_cast<NodeId>(parent_.size()) + num_sets_delta_;
  }

  /// Folds another forest over the same element universe into this one:
  /// afterwards this partition is the join of the two (every pair
  /// connected in either input is connected here). The parallel union
  /// drivers use this to combine per-worker forests; the result depends
  /// only on the combined arc set, not on how it was chunked.
  void MergeFrom(UnionFind& other) {
    for (NodeId v = 0; v < parent_.size(); ++v) Union(v, other.Find(v));
  }

  /// Assigns dense component ids [0, NumSets()) in order of first
  /// appearance; returns component id per element.
  std::vector<NodeId> DenseComponentIds();

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> size_;
  int64_t num_sets_delta_ = 0;
};

/// Builds the union-find partition of [0, num_nodes) induced by an arc
/// list, unioning src with dst for every arc. With num_threads > 1 the
/// arc range is split into per-worker chunks, each worker unions its
/// chunk into a private forest, and the forests are merged serially —
/// union-find partitions are union-order independent, so the partition
/// (and hence DenseComponentIds) is identical to a serial scan at any
/// thread count. Backs the person-syndicate edge contraction.
UnionFind UnionArcs(NodeId num_nodes, std::span<const Arc> arcs,
                    uint32_t num_threads = 1);

}  // namespace tpiin

#endif  // TPIIN_GRAPH_UNION_FIND_H_

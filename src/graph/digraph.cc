#include "graph/digraph.h"

#include "common/logging.h"

namespace tpiin {

NodeId Digraph::AddNode() {
  out_arcs_.emplace_back();
  in_arcs_.emplace_back();
  in_degree_.push_back(0);
  return static_cast<NodeId>(out_arcs_.size() - 1);
}

void Digraph::AddNodes(NodeId count) {
  out_arcs_.resize(out_arcs_.size() + count);
  in_arcs_.resize(in_arcs_.size() + count);
  in_degree_.resize(in_degree_.size() + count, 0);
}

ArcId Digraph::AddArc(NodeId src, NodeId dst, ArcColor color) {
  TPIIN_CHECK(HasNode(src)) << "AddArc: bad src " << src;
  TPIIN_CHECK(HasNode(dst)) << "AddArc: bad dst " << dst;
  ArcId id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back(Arc{src, dst, color});
  out_arcs_[src].push_back(id);
  ++in_degree_[dst];
  in_adjacency_fresh_ = false;
  return id;
}

void Digraph::BuildInAdjacency() {
  if (in_adjacency_fresh_) return;
  for (auto& list : in_arcs_) list.clear();
  for (ArcId id = 0; id < NumArcs(); ++id) {
    in_arcs_[arcs_[id].dst].push_back(id);
  }
  in_adjacency_fresh_ = true;
}

}  // namespace tpiin

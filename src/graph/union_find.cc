#include "graph/union_find.h"

#include <algorithm>
#include <memory>

#include "common/thread_pool.h"

namespace tpiin {

std::vector<NodeId> UnionFind::DenseComponentIds() {
  std::vector<NodeId> ids(parent_.size(), kInvalidNode);
  std::vector<NodeId> root_to_dense(parent_.size(), kInvalidNode);
  NodeId next = 0;
  for (NodeId i = 0; i < parent_.size(); ++i) {
    NodeId r = Find(i);
    if (root_to_dense[r] == kInvalidNode) root_to_dense[r] = next++;
    ids[i] = root_to_dense[r];
  }
  return ids;
}

namespace {

// Below this many arcs the serial scan wins: each private forest costs
// O(num_nodes) to construct and O(num_nodes) to merge.
constexpr size_t kParallelUnionMinArcs = 1u << 14;

}  // namespace

UnionFind UnionArcs(NodeId num_nodes, std::span<const Arc> arcs,
                    uint32_t num_threads) {
  if (num_threads <= 1 || arcs.size() < kParallelUnionMinArcs) {
    UnionFind uf(num_nodes);
    for (const Arc& arc : arcs) uf.Union(arc.src, arc.dst);
    return uf;
  }

  const size_t chunks =
      std::min<size_t>(num_threads, (arcs.size() + kParallelUnionMinArcs - 1) /
                                        kParallelUnionMinArcs);
  std::vector<std::unique_ptr<UnionFind>> forests(chunks);
  ThreadPool::Global().ParallelFor(chunks, num_threads, [&](size_t c) {
    auto uf = std::make_unique<UnionFind>(num_nodes);
    const size_t lo = arcs.size() * c / chunks;
    const size_t hi = arcs.size() * (c + 1) / chunks;
    for (size_t i = lo; i < hi; ++i) uf->Union(arcs[i].src, arcs[i].dst);
    forests[c] = std::move(uf);
  });

  UnionFind merged = std::move(*forests[0]);
  for (size_t c = 1; c < chunks; ++c) merged.MergeFrom(*forests[c]);
  return merged;
}

}  // namespace tpiin

#include "graph/union_find.h"

namespace tpiin {

std::vector<NodeId> UnionFind::DenseComponentIds() {
  std::vector<NodeId> ids(parent_.size(), kInvalidNode);
  std::vector<NodeId> root_to_dense(parent_.size(), kInvalidNode);
  NodeId next = 0;
  for (NodeId i = 0; i < parent_.size(); ++i) {
    NodeId r = Find(i);
    if (root_to_dense[r] == kInvalidNode) root_to_dense[r] = next++;
    ids[i] = root_to_dense[r];
  }
  return ids;
}

}  // namespace tpiin

#ifndef TPIIN_GRAPH_SCC_H_
#define TPIIN_GRAPH_SCC_H_

#include <functional>
#include <vector>

#include "graph/digraph.h"
#include "graph/frozen.h"
#include "graph/types.h"

namespace tpiin {

/// Result of a strongly-connected-component decomposition.
struct SccResult {
  /// Component id per node, in [0, num_components). Component ids are
  /// emitted in reverse topological order of the condensation (Tarjan's
  /// property): if u's component has an arc to v's component then
  /// component_of[u] > component_of[v].
  std::vector<NodeId> component_of;
  NodeId num_components = 0;

  /// Node lists per component (members[c] holds the nodes of component c).
  std::vector<std::vector<NodeId>> members;

  /// Ids of components with more than one node, or with a self-loop arc
  /// that passed the filter. These are the "strongly connected subgraphs"
  /// (SCS) the paper contracts into Company syndicates.
  std::vector<NodeId> nontrivial_components;
};

/// Predicate deciding which arcs participate in the decomposition; the
/// fusion layer uses this to run Tarjan over Investment arcs only
/// (influence arcs from Person nodes can never close a cycle, but the
/// intermediate G_B carries both).
using ArcFilter = std::function<bool(const Arc&)>;

/// Iterative Tarjan SCC over the arcs accepted by `filter` (all arcs when
/// filter is null). O(V + E); recursion-free so million-node provinces
/// cannot overflow the stack.
SccResult StronglyConnectedComponents(const Digraph& graph,
                                      const ArcFilter& filter = nullptr);

/// CSR fast path: identical decomposition (and, when the frozen view
/// preserves the Digraph's arc order, identical component numbering)
/// without per-arc struct loads or std::function filter calls.
SccResult StronglyConnectedComponents(
    const FrozenGraph& graph,
    FrozenArcClass arc_class = FrozenArcClass::kAll);

/// Partition-parallel driver: decomposes the graph into weakly connected
/// partitions, runs an independent Tarjan over each partition on the
/// shared ThreadPool, and renumbers the per-partition components to
/// reproduce the serial driver's numbering exactly.
///
/// Why this is bit-identical: a serial Tarjan restricted to one weak
/// partition behaves exactly like an isolated run on that partition (DFS
/// can never cross a partition boundary, and roots are attempted in
/// ascending node id within it). The serial global numbering is the
/// per-partition completion sequences merged by (global id of the DFS
/// root a component completed under, completion index) — which is the
/// order this driver restores after the parallel phase. The fusion layer
/// depends on this: SCC ids become TPIIN company-syndicate node ids.
SccResult StronglyConnectedComponents(const FrozenGraph& graph,
                                      FrozenArcClass arc_class,
                                      uint32_t num_threads);

}  // namespace tpiin

#endif  // TPIIN_GRAPH_SCC_H_

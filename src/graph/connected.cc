#include "graph/connected.h"

#include "graph/union_find.h"

namespace tpiin {

namespace {

WccResult FromUnionFind(UnionFind& uf, NodeId num_nodes) {
  WccResult result;
  result.component_of = uf.DenseComponentIds();
  result.num_components = uf.NumSets();
  result.members.resize(result.num_components);
  for (NodeId v = 0; v < num_nodes; ++v) {
    result.members[result.component_of[v]].push_back(v);
  }
  return result;
}

}  // namespace

WccResult WeaklyConnectedComponents(const Digraph& graph,
                                    const ArcFilter& filter) {
  UnionFind uf(graph.NumNodes());
  for (const Arc& arc : graph.arcs()) {
    if (filter && !filter(arc)) continue;
    uf.Union(arc.src, arc.dst);
  }
  return FromUnionFind(uf, graph.NumNodes());
}

WccResult WeaklyConnectedComponents(const FrozenGraph& graph,
                                    FrozenArcClass arc_class) {
  UnionFind uf(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId target : graph.OutClass(v, arc_class).nodes) {
      uf.Union(v, target);
    }
  }
  return FromUnionFind(uf, graph.NumNodes());
}

}  // namespace tpiin

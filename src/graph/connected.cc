#include "graph/connected.h"

#include <algorithm>
#include <memory>

#include "common/thread_pool.h"
#include "graph/union_find.h"
#include "obs/trace.h"

namespace tpiin {

namespace {

WccResult FromUnionFind(UnionFind& uf, NodeId num_nodes) {
  WccResult result;
  result.component_of = uf.DenseComponentIds();
  result.num_components = uf.NumSets();
  result.members.resize(result.num_components);
  for (NodeId v = 0; v < num_nodes; ++v) {
    result.members[result.component_of[v]].push_back(v);
  }
  return result;
}

// Below this many nodes the O(num_nodes) per-forest construct + merge
// overhead of the parallel driver exceeds the serial scan.
constexpr NodeId kParallelWccMinNodes = 1u << 13;

}  // namespace

WccResult WeaklyConnectedComponents(const Digraph& graph,
                                    const ArcFilter& filter) {
  TPIIN_SPAN("wcc");
  UnionFind uf(graph.NumNodes());
  for (const Arc& arc : graph.arcs()) {
    if (filter && !filter(arc)) continue;
    uf.Union(arc.src, arc.dst);
  }
  return FromUnionFind(uf, graph.NumNodes());
}

WccResult WeaklyConnectedComponents(const FrozenGraph& graph,
                                    FrozenArcClass arc_class) {
  TPIIN_SPAN("wcc");
  UnionFind uf(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    for (NodeId target : graph.OutClass(v, arc_class).nodes) {
      uf.Union(v, target);
    }
  }
  return FromUnionFind(uf, graph.NumNodes());
}

WccResult WeaklyConnectedComponents(const FrozenGraph& graph,
                                    FrozenArcClass arc_class,
                                    uint32_t num_threads) {
  const NodeId n = graph.NumNodes();
  if (num_threads <= 1 || n < kParallelWccMinNodes) {
    return WeaklyConnectedComponents(graph, arc_class);
  }
  TPIIN_SPAN("wcc_parallel");

  const uint32_t chunks = num_threads;
  std::vector<std::unique_ptr<UnionFind>> forests(chunks);
  ThreadPool::Global().ParallelFor(chunks, num_threads, [&](size_t c) {
    auto uf = std::make_unique<UnionFind>(n);
    const NodeId lo = static_cast<NodeId>(uint64_t{n} * c / chunks);
    const NodeId hi = static_cast<NodeId>(uint64_t{n} * (c + 1) / chunks);
    for (NodeId v = lo; v < hi; ++v) {
      for (NodeId target : graph.OutClass(v, arc_class).nodes) {
        uf->Union(v, target);
      }
    }
    forests[c] = std::move(uf);
  });

  UnionFind merged = std::move(*forests[0]);
  for (uint32_t c = 1; c < chunks; ++c) merged.MergeFrom(*forests[c]);
  return FromUnionFind(merged, n);
}

}  // namespace tpiin

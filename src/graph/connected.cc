#include "graph/connected.h"

#include "graph/union_find.h"

namespace tpiin {

WccResult WeaklyConnectedComponents(const Digraph& graph,
                                    const ArcFilter& filter) {
  UnionFind uf(graph.NumNodes());
  for (const Arc& arc : graph.arcs()) {
    if (filter && !filter(arc)) continue;
    uf.Union(arc.src, arc.dst);
  }
  WccResult result;
  result.component_of = uf.DenseComponentIds();
  result.num_components = uf.NumSets();
  result.members.resize(result.num_components);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    result.members[result.component_of[v]].push_back(v);
  }
  return result;
}

}  // namespace tpiin

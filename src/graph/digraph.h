#ifndef TPIIN_GRAPH_DIGRAPH_H_
#define TPIIN_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace tpiin {

/// A mutable directed multigraph with colored arcs.
///
/// Nodes are dense indices [0, NumNodes()); arcs are appended and keep
/// stable ids. Out-adjacency is maintained incrementally; in-adjacency is
/// built lazily on first use (BuildInAdjacency) because most algorithms
/// here only walk forward.
///
/// The class deliberately has no node/arc payloads beyond the color —
/// higher layers keep parallel arrays keyed by NodeId/ArcId, which keeps
/// the hot traversal structures compact.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(NodeId num_nodes) { AddNodes(num_nodes); }

  /// Appends one node, returning its id.
  NodeId AddNode();

  /// Appends `count` nodes.
  void AddNodes(NodeId count);

  /// Appends an arc src->dst; both endpoints must already exist.
  /// Parallel arcs and self-loops are allowed (fusion dedups where the
  /// model requires it).
  ArcId AddArc(NodeId src, NodeId dst, ArcColor color);

  NodeId NumNodes() const { return static_cast<NodeId>(out_arcs_.size()); }
  ArcId NumArcs() const { return static_cast<ArcId>(arcs_.size()); }

  const Arc& arc(ArcId id) const { return arcs_[id]; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Arc ids leaving `node`, in insertion order.
  std::span<const ArcId> OutArcs(NodeId node) const {
    return out_arcs_[node];
  }

  /// Arc ids entering `node`. Requires BuildInAdjacency() after the last
  /// mutation.
  std::span<const ArcId> InArcs(NodeId node) const { return in_arcs_[node]; }

  uint32_t OutDegree(NodeId node) const {
    return static_cast<uint32_t>(out_arcs_[node].size());
  }
  uint32_t InDegree(NodeId node) const { return in_degree_[node]; }

  /// (Re)builds the reverse adjacency lists. Idempotent; cheap to call
  /// after a batch of AddArc calls.
  void BuildInAdjacency();

  bool HasNode(NodeId node) const { return node < NumNodes(); }

 private:
  std::vector<Arc> arcs_;
  std::vector<std::vector<ArcId>> out_arcs_;
  std::vector<std::vector<ArcId>> in_arcs_;
  std::vector<uint32_t> in_degree_;
  bool in_adjacency_fresh_ = true;
};

}  // namespace tpiin

#endif  // TPIIN_GRAPH_DIGRAPH_H_

#include "graph/topo.h"

#include <deque>

namespace tpiin {

Result<std::vector<NodeId>> TopologicalSort(const Digraph& graph,
                                            const ArcFilter& filter) {
  const NodeId n = graph.NumNodes();
  std::vector<uint32_t> in_degree(n, 0);
  for (const Arc& arc : graph.arcs()) {
    if (filter && !filter(arc)) continue;
    ++in_degree[arc.dst];
  }
  std::deque<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (in_degree[v] == 0) frontier.push_back(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    order.push_back(u);
    for (ArcId id : graph.OutArcs(u)) {
      const Arc& arc = graph.arc(id);
      if (filter && !filter(arc)) continue;
      if (--in_degree[arc.dst] == 0) frontier.push_back(arc.dst);
    }
  }
  if (order.size() != n) {
    return Status::FailedPrecondition("graph has a directed cycle");
  }
  return order;
}

Result<std::vector<NodeId>> TopologicalSort(const FrozenGraph& graph,
                                            FrozenArcClass arc_class) {
  const NodeId n = graph.NumNodes();
  std::vector<uint32_t> in_degree(n, 0);
  std::deque<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    in_degree[v] =
        static_cast<uint32_t>(graph.InClass(v, arc_class).size());
    if (in_degree[v] == 0) frontier.push_back(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    order.push_back(u);
    for (NodeId dst : graph.OutClass(u, arc_class).nodes) {
      if (--in_degree[dst] == 0) frontier.push_back(dst);
    }
  }
  if (order.size() != n) {
    return Status::FailedPrecondition("graph has a directed cycle");
  }
  return order;
}

bool IsDag(const Digraph& graph, const ArcFilter& filter) {
  return TopologicalSort(graph, filter).ok();
}

bool IsDag(const FrozenGraph& graph, FrozenArcClass arc_class) {
  return TopologicalSort(graph, arc_class).ok();
}

}  // namespace tpiin

#include "graph/traversal.h"

#include <algorithm>

#include "common/logging.h"

namespace tpiin {

std::vector<bool> ReachableFrom(const Digraph& graph, NodeId start,
                                const ArcFilter& filter) {
  TPIIN_CHECK(graph.HasNode(start));
  std::vector<bool> seen(graph.NumNodes(), false);
  std::vector<NodeId> stack = {start};
  seen[start] = true;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    for (ArcId id : graph.OutArcs(u)) {
      const Arc& arc = graph.arc(id);
      if (filter && !filter(arc)) continue;
      if (!seen[arc.dst]) {
        seen[arc.dst] = true;
        stack.push_back(arc.dst);
      }
    }
  }
  return seen;
}

std::vector<bool> ReachableFrom(const FrozenGraph& graph, NodeId start,
                                FrozenArcClass arc_class) {
  TPIIN_CHECK(start < graph.NumNodes());
  std::vector<bool> seen(graph.NumNodes(), false);
  std::vector<NodeId> stack = {start};
  seen[start] = true;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : graph.OutClass(u, arc_class).nodes) {
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return seen;
}

WccResult FindSubgraphsDfs(const Digraph& graph, const ArcFilter& filter) {
  const NodeId n = graph.NumNodes();
  // Build the undirected view once: forward plus reverse adjacency
  // restricted to accepted arcs.
  std::vector<std::vector<NodeId>> adj(n);
  for (const Arc& arc : graph.arcs()) {
    if (filter && !filter(arc)) continue;
    adj[arc.src].push_back(arc.dst);
    adj[arc.dst].push_back(arc.src);
  }

  WccResult result;
  result.component_of.assign(n, kInvalidNode);
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (result.component_of[root] != kInvalidNode) continue;
    NodeId comp = result.num_components++;
    result.members.emplace_back();
    stack.push_back(root);
    result.component_of[root] = comp;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      result.members[comp].push_back(u);
      for (NodeId v : adj[u]) {
        if (result.component_of[v] == kInvalidNode) {
          result.component_of[v] = comp;
          stack.push_back(v);
        }
      }
    }
    std::sort(result.members[comp].begin(), result.members[comp].end());
  }
  return result;
}

WccResult FindSubgraphsDfs(const FrozenGraph& graph,
                           FrozenArcClass arc_class) {
  const NodeId n = graph.NumNodes();
  WccResult result;
  result.component_of.assign(n, kInvalidNode);
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (result.component_of[root] != kInvalidNode) continue;
    NodeId comp = result.num_components++;
    result.members.emplace_back();
    stack.push_back(root);
    result.component_of[root] = comp;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      result.members[comp].push_back(u);
      for (NodeId v : graph.OutClass(u, arc_class).nodes) {
        if (result.component_of[v] == kInvalidNode) {
          result.component_of[v] = comp;
          stack.push_back(v);
        }
      }
      for (NodeId v : graph.InClass(u, arc_class).nodes) {
        if (result.component_of[v] == kInvalidNode) {
          result.component_of[v] = comp;
          stack.push_back(v);
        }
      }
    }
    std::sort(result.members[comp].begin(), result.members[comp].end());
  }
  return result;
}

}  // namespace tpiin

#ifndef TPIIN_GRAPH_CONNECTED_H_
#define TPIIN_GRAPH_CONNECTED_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/frozen.h"
#include "graph/scc.h"
#include "graph/types.h"

namespace tpiin {

/// Result of a weakly-connected-component decomposition.
struct WccResult {
  /// Dense component id per node.
  std::vector<NodeId> component_of;
  NodeId num_components = 0;
  /// Node lists per component, each sorted ascending.
  std::vector<std::vector<NodeId>> members;
};

/// Weakly connected components over the arcs accepted by `filter` (all
/// arcs when null); nodes touched by no accepted arc form singleton
/// components. This implements the MWCS segmentation of Algorithm 1
/// step 3 (union-find rather than the paper's improved DFS — identical
/// output, simpler to reason about; the DFS variant is benchmarked in
/// bench_ablation).
WccResult WeaklyConnectedComponents(const Digraph& graph,
                                    const ArcFilter& filter = nullptr);

/// CSR fast path: same decomposition over the arc class `arc_class` of a
/// frozen graph. Component numbering and member ordering are identical
/// to the Digraph overload with the corresponding filter — union-find
/// component ids depend only on the partition, not on union order.
WccResult WeaklyConnectedComponents(
    const FrozenGraph& graph,
    FrozenArcClass arc_class = FrozenArcClass::kAll);

/// Parallel driver: splits the node range into per-worker chunks, unions
/// each chunk's out-arcs into a private forest on the shared ThreadPool,
/// and merges the forests serially. Output (numbering and member order
/// included) is bit-identical to the serial overloads at any thread
/// count, because the union-find partition — and the first-appearance
/// numbering derived from it — depends only on the arc set.
WccResult WeaklyConnectedComponents(const FrozenGraph& graph,
                                    FrozenArcClass arc_class,
                                    uint32_t num_threads);

}  // namespace tpiin

#endif  // TPIIN_GRAPH_CONNECTED_H_

#ifndef TPIIN_GRAPH_TOPO_H_
#define TPIIN_GRAPH_TOPO_H_

#include <vector>

#include "common/result.h"
#include "graph/digraph.h"
#include "graph/frozen.h"
#include "graph/scc.h"
#include "graph/types.h"

namespace tpiin {

/// Kahn topological order over the arcs accepted by `filter` (all arcs
/// when null). Returns FailedPrecondition if the filtered graph has a
/// cycle.
Result<std::vector<NodeId>> TopologicalSort(const Digraph& graph,
                                            const ArcFilter& filter = nullptr);

/// CSR fast path: Kahn order over one arc class of a frozen graph, with
/// no per-arc struct loads or std::function filter calls. For the
/// kInfluence class the emitted order is identical to the Digraph
/// overload with an influence filter (per-node span order matches
/// insertion order).
Result<std::vector<NodeId>> TopologicalSort(
    const FrozenGraph& graph,
    FrozenArcClass arc_class = FrozenArcClass::kAll);

/// True iff the filtered graph is acyclic. Used to verify the antecedent
/// network after SCC contraction (the paper's DAG guarantee).
bool IsDag(const Digraph& graph, const ArcFilter& filter = nullptr);

bool IsDag(const FrozenGraph& graph,
           FrozenArcClass arc_class = FrozenArcClass::kAll);

}  // namespace tpiin

#endif  // TPIIN_GRAPH_TOPO_H_

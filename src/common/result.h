#ifndef TPIIN_COMMON_RESULT_H_
#define TPIIN_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tpiin {

/// Result<T> holds either a value of type T or a non-OK Status, in the
/// spirit of absl::StatusOr / arrow::Result. Accessing the value of an
/// errored Result aborts the process, so callers must check ok() (or use
/// TPIIN_ASSIGN_OR_RETURN) first.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value, mirroring StatusOr: allows
  /// `return value;` from functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status: allows
  /// `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // An OK status carries no value; treat as a caller bug.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const {
    if (!ok()) {
      // Say why before dying — a bare abort() hides the status that
      // caused it, and this path is by definition a caller bug.
      std::fprintf(stderr, "Result::value() called on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace tpiin

#define TPIIN_RESULT_CONCAT_INNER_(a, b) a##b
#define TPIIN_RESULT_CONCAT_(a, b) TPIIN_RESULT_CONCAT_INNER_(a, b)

/// TPIIN_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>
/// expression); on error returns its Status from the calling function,
/// otherwise assigns the value to `lhs` (which may be a declaration).
#define TPIIN_ASSIGN_OR_RETURN(lhs, expr)                             \
  TPIIN_ASSIGN_OR_RETURN_IMPL_(                                       \
      TPIIN_RESULT_CONCAT_(_tpiin_result_, __LINE__), lhs, expr)

#define TPIIN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // TPIIN_COMMON_RESULT_H_

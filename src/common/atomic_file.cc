#include "common/atomic_file.h"

#include <cstdio>

#include <unistd.h>

#include "common/failpoint.h"

namespace tpiin {

AtomicFile::AtomicFile(std::string path, std::ios::openmode mode)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp." + std::to_string(::getpid())),
      out_(temp_path_, std::ios::out | std::ios::trunc | mode) {}

AtomicFile::~AtomicFile() {
  if (!committed_) Discard();
}

void AtomicFile::Discard() {
  if (out_.is_open()) out_.close();
  std::remove(temp_path_.c_str());
}

Status AtomicFile::Commit() {
  if (committed_) return commit_status_;
  committed_ = true;
  commit_status_ = [&]() -> Status {
    TPIIN_FAILPOINT("io.atomic.commit");
    if (!out_.is_open()) {
      return Status::IOError("cannot open " + temp_path_);
    }
    out_.flush();
    if (!out_.good()) {
      return Status::IOError("failed writing " + temp_path_);
    }
    out_.close();
    if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
      return Status::IOError("cannot rename " + temp_path_ + " to " +
                             path_);
    }
    return Status::OK();
  }();
  if (!commit_status_.ok()) Discard();
  return commit_status_;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  AtomicFile file(path);
  file.stream() << contents;
  return file.Commit();
}

}  // namespace tpiin

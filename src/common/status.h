#ifndef TPIIN_COMMON_STATUS_H_
#define TPIIN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace tpiin {

/// Canonical error codes used across the library. The set mirrors the
/// subset of codes a storage/graph library actually needs (RocksDB-style):
/// every fallible public API returns a Status (or a Result<T>, see
/// result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kIOError,
  kUnimplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// Status is copyable and movable; the OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace tpiin

/// Evaluates `expr` (a Status expression) and returns it from the calling
/// function if it is not OK.
#define TPIIN_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::tpiin::Status _tpiin_status_ = (expr);       \
    if (!_tpiin_status_.ok()) return _tpiin_status_; \
  } while (false)

#endif  // TPIIN_COMMON_STATUS_H_

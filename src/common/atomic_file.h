#ifndef TPIIN_COMMON_ATOMIC_FILE_H_
#define TPIIN_COMMON_ATOMIC_FILE_H_

#include <fstream>
#include <string>
#include <string_view>

#include "common/status.h"

namespace tpiin {

/// Crash-safe file writer: streams into `<path>.tmp.<pid>` and renames
/// over `path` on Commit(), so readers never observe a torn file — an
/// injected IO failure, a thrown exception or a process kill leaves
/// either the previous file or nothing. Destruction without Commit()
/// discards the temporary.
///
/// rename(2) is atomic within a filesystem; the temporary lives next to
/// the target so the pair never crosses a mount boundary.
class AtomicFile {
 public:
  /// `mode` is OR-ed with out|trunc; pass std::ios::binary for binary
  /// formats (the receipt store).
  explicit AtomicFile(std::string path,
                      std::ios::openmode mode = std::ios::openmode{});
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// False when the temporary could not be opened or a write failed.
  bool ok() const { return out_.good(); }

  std::ostream& stream() { return out_; }

  /// Flushes, closes and renames the temporary over the target.
  /// On any failure the temporary is removed and the target is left
  /// untouched. Safe to call once; later calls return the first result.
  Status Commit();

 private:
  void Discard();

  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool committed_ = false;
  Status commit_status_;
};

/// One-shot convenience: writes `contents` to `path` through an
/// AtomicFile.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace tpiin

#endif  // TPIIN_COMMON_ATOMIC_FILE_H_

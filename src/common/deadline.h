#ifndef TPIIN_COMMON_DEADLINE_H_
#define TPIIN_COMMON_DEADLINE_H_

#include <chrono>
#include <limits>

namespace tpiin {

/// A wall-clock deadline on the steady clock. Default-constructed
/// deadlines are unlimited; Deadline::After(seconds) expires `seconds`
/// from now. Cheap to copy and to query — budget-aware loops poll
/// Expired() every few hundred iterations.
class Deadline {
 public:
  Deadline() = default;

  /// Unlimited when `seconds` <= 0 (the "no budget" CLI default).
  static Deadline After(double seconds) {
    Deadline d;
    if (seconds > 0) {
      d.limited_ = true;
      d.when_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
    }
    return d;
  }

  bool unlimited() const { return !limited_; }

  bool Expired() const {
    return limited_ && std::chrono::steady_clock::now() >= when_;
  }

  /// Seconds until expiry; +infinity when unlimited, clamped at 0 after
  /// expiry.
  double RemainingSeconds() const {
    if (!limited_) return std::numeric_limits<double>::infinity();
    const auto left = when_ - std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(left).count();
    return seconds > 0 ? seconds : 0;
  }

  /// The earlier of the two deadlines (unlimited is the identity).
  static Deadline Sooner(const Deadline& a, const Deadline& b) {
    if (a.unlimited()) return b;
    if (b.unlimited()) return a;
    return a.when_ <= b.when_ ? a : b;
  }

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point when_{};
};

}  // namespace tpiin

#endif  // TPIIN_COMMON_DEADLINE_H_

#ifndef TPIIN_COMMON_FAILPOINT_H_
#define TPIIN_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tpiin {

/// Deterministic fault injection for robustness tests (TiKV/etcd-style
/// failpoints). Library code marks named sites with TPIIN_FAILPOINT(name);
/// a site does nothing until a policy is installed for it — via
/// Failpoints::Configure (tests), the `--failpoints=` CLI flag, or the
/// TPIIN_FAILPOINTS environment variable — after which the site returns
/// an injected Status from the enclosing function.
///
/// Spec grammar (comma-separated terms):
///   <site>:<policy>
/// where <site> is a failpoint name (e.g. io.csv.open), a prefix
/// wildcard like `serve.*` (matches every site under that prefix; the
/// longest matching prefix rule wins), or `*` (matches every site
/// without a more specific rule), and <policy> is one of
///   off               disable the site (useful to exempt one site from *)
///   error             Status::Internal on every hit
///   ioerror           Status::IOError on every hit
///   corruption        Status::Corruption on every hit
///   <kind>@<N>        fire only on the N-th hit of the site (1-based)
///   p<f>              fire with probability f in [0,1] per hit
///   p<f>@<seed>       same, seeded: the schedule is a pure function of
///                     (seed, site name, hit index) — rerunning with the
///                     same seed injects the exact same faults
///
/// Example: --failpoints='io.csv.open:ioerror,core.sub_mine:error@2'
///
/// Sites are compiled in by default; configure with -DTPIIN_FAILPOINTS=OFF
/// to compile every site out to nothing (production builds). When compiled
/// in but unconfigured, a site costs one relaxed atomic load.
class Failpoints {
 public:
  /// Parses `spec` and replaces the active configuration. An empty spec
  /// clears all rules. Returns InvalidArgument on grammar errors (the
  /// previous configuration is kept in that case).
  static Status Configure(std::string_view spec);

  /// Removes every rule and resets hit counters.
  static void Clear();

  /// Applies the TPIIN_FAILPOINTS environment variable, if set.
  static Status ConfigureFromEnv();

  /// True when at least one rule is installed. The TPIIN_FAILPOINT macro
  /// gates on this so unconfigured sites stay off the lock.
  static bool AnyActive() {
    return active_.load(std::memory_order_relaxed);
  }

  /// Evaluates the site against the active rules; called by the macro
  /// only when AnyActive(). Counts the hit either way.
  static Status Check(std::string_view site);

  /// Number of times `site` was evaluated while any rule was active
  /// (test introspection).
  static uint64_t HitCount(std::string_view site);

  /// Names of sites hit so far while active, sorted (test introspection).
  static std::vector<std::string> HitSites();

 private:
  static std::atomic<bool> active_;
};

}  // namespace tpiin

#if defined(TPIIN_FAILPOINTS_COMPILED)
/// Marks a fault-injection site. When a configured policy fires, returns
/// the injected non-OK Status from the enclosing function (which must
/// return Status or Result<T>). Costs one relaxed atomic load when no
/// policy is installed; compiled to nothing under -DTPIIN_FAILPOINTS=OFF.
#define TPIIN_FAILPOINT(name)                                      \
  do {                                                             \
    if (::tpiin::Failpoints::AnyActive()) {                        \
      ::tpiin::Status _tpiin_fp = ::tpiin::Failpoints::Check(name); \
      if (!_tpiin_fp.ok()) return _tpiin_fp;                       \
    }                                                              \
  } while (false)
#else
#define TPIIN_FAILPOINT(name) \
  do {                        \
  } while (false)
#endif

#endif  // TPIIN_COMMON_FAILPOINT_H_

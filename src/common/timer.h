#ifndef TPIIN_COMMON_TIMER_H_
#define TPIIN_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tpiin {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
/// detector's per-stage timing report.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed seconds into a caller-owned double on destruction;
/// lets a driver attribute time to pipeline stages without littering
/// timing code.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace tpiin

#endif  // TPIIN_COMMON_TIMER_H_

#ifndef TPIIN_COMMON_STRING_UTIL_H_
#define TPIIN_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tpiin {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a base-10 signed integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// Renders an integer with thousands separators: 1234567 -> "1,234,567".
std::string FormatWithCommas(int64_t value);

/// Renders `value` with fixed `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// True iff `s` is well-formed UTF-8 (rejects overlong encodings,
/// surrogate code points, and code points above U+10FFFF). ASCII is a
/// subset, so pure-ASCII inputs always pass. Ingest uses this to keep
/// mojibake out of label fields.
bool IsValidUtf8(std::string_view s);

}  // namespace tpiin

#endif  // TPIIN_COMMON_STRING_UTIL_H_

#include "common/flags.h"

#include <sstream>

#include "common/logging.h"
#include "common/result.h"
#include "common/string_util.h"

namespace tpiin {

void FlagParser::DefineInt64(const std::string& name, int64_t default_value,
                             const std::string& help) {
  Flag f;
  f.kind = Kind::kInt64;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineDouble(const std::string& name, double default_value,
                              const std::string& help) {
  Flag f;
  f.kind = Kind::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineString(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  Flag f;
  f.kind = Kind::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::DefineBool(const std::string& name, bool default_value,
                            const std::string& help) {
  Flag f;
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagParser::SetFromString(Flag& flag, const std::string& name,
                                 const std::string& value) {
  switch (flag.kind) {
    case Kind::kInt64: {
      Result<int64_t> v = ParseInt64(value);
      if (!v.ok()) {
        return Status::InvalidArgument("--" + name + ": " +
                                       v.status().message());
      }
      flag.int_value = *v;
      return Status::OK();
    }
    case Kind::kDouble: {
      Result<double> v = ParseDouble(value);
      if (!v.ok()) {
        return Status::InvalidArgument("--" + name + ": " +
                                       v.status().message());
      }
      flag.double_value = *v;
      return Status::OK();
    }
    case Kind::kString:
      flag.string_value = value;
      return Status::OK();
    case Kind::kBool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("--" + name +
                                       ": expected true/false, got " + value);
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.kind == Kind::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value = argv[++i];
    }
    TPIIN_RETURN_IF_ERROR(SetFromString(flag, name, value));
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::GetOrDie(const std::string& name,
                                             Kind kind) const {
  auto it = flags_.find(name);
  TPIIN_CHECK(it != flags_.end()) << "undefined flag --" << name;
  TPIIN_CHECK(it->second.kind == kind) << "flag --" << name << " type";
  return it->second;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return GetOrDie(name, Kind::kInt64).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetOrDie(name, Kind::kDouble).double_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetOrDie(name, Kind::kString).string_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetOrDie(name, Kind::kBool).bool_value;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream out;
  out << "Usage: " << program << " [flags]\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    switch (flag.kind) {
      case Kind::kInt64:
        out << "=<int> (default " << flag.int_value << ")";
        break;
      case Kind::kDouble:
        out << "=<double> (default " << flag.double_value << ")";
        break;
      case Kind::kString:
        out << "=<string> (default \"" << flag.string_value << "\")";
        break;
      case Kind::kBool:
        out << " (default " << (flag.bool_value ? "true" : "false") << ")";
        break;
    }
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace tpiin

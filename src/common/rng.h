#ifndef TPIIN_COMMON_RNG_H_
#define TPIIN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tpiin {

/// Deterministic, seedable pseudo-random number generator used by every
/// stochastic component (data generation, property-test sweeps). It wraps
/// xoshiro256** so that a given seed reproduces byte-identical networks on
/// any platform — std::mt19937 distributions are not portable across
/// standard libraries, which would make EXPERIMENTS.md numbers
/// irreproducible.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds diverge.
  explicit Rng(uint64_t seed);

  /// Raw 64 random bits.
  uint64_t Next();

  /// Uniform in [0, bound) using Lemire's unbiased multiply-shift
  /// rejection. bound must be > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (no cached spare; stateless per call
  /// pair not needed for our workloads).
  double Normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)). Used for group-size and price
  /// distributions, which are heavy-tailed in real taxpayer data.
  double LogNormal(double mu, double sigma);

  /// Samples `k` distinct values from [0, n). Requires k <= n.
  /// O(k) expected when k << n (hash-set rejection), O(n) otherwise.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

}  // namespace tpiin

#endif  // TPIIN_COMMON_RNG_H_

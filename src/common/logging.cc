#include "common/logging.h"

#include <atomic>

namespace tpiin {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogBackend*> g_backend{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

const char* LogLevelToken(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

void SetLogBackend(LogBackend* backend) {
  g_backend.store(backend, std::memory_order_release);
}

LogBackend* GetLogBackend() {
  return g_backend.load(std::memory_order_acquire);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  if (LogBackend* backend = g_backend.load(std::memory_order_acquire)) {
    backend->Write(level_, file_, line_, stream_.str());
    return;
  }
  // One insertion, so concurrent lines do not interleave mid-line.
  std::ostringstream line;
  line << "[" << LevelName(level_) << " " << file_ << ":" << line_ << "] "
       << stream_.str() << "\n";
  std::cerr << line.str();
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << file << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal_logging
}  // namespace tpiin

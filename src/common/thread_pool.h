#ifndef TPIIN_COMMON_THREAD_POOL_H_
#define TPIIN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace tpiin {

/// A persistent worker pool with a chunk-stealing parallel-for.
///
/// Workers are created once and reused across ParallelFor calls, so
/// batch workloads (a server answering many DetectSuspiciousGroups
/// requests, the bench sweeps) stop paying thread create/join per call.
/// Work distribution is dynamic: every participant — the calling thread
/// included — repeatedly claims the next unprocessed index from a shared
/// atomic cursor, so uneven per-item cost (subTPIINs vary wildly in
/// size) balances automatically.
///
/// The calling thread always participates and always drains the loop to
/// completion by itself if no worker picks the job up, so ParallelFor
/// makes progress even from inside a pool worker (no nesting deadlock)
/// and even on a pool with zero workers.
class ThreadPool {
 public:
  /// Creates `num_workers` persistent worker threads (0 is allowed; all
  /// ParallelFor calls then run inline on the caller).
  explicit ThreadPool(uint32_t num_workers);

  /// Drains queued work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Runs body(i) for every i in [0, count), on up to `parallelism`
  /// threads (the caller plus at most parallelism - 1 pool workers).
  /// Blocks until every index has been processed. `body` must be safe to
  /// call concurrently from different threads for different indices and
  /// must not throw.
  void ParallelFor(size_t count, uint32_t parallelism,
                   const std::function<void(size_t)>& body);

  /// Chunked variant for fine-grained loops: splits [0, count) into
  /// contiguous ranges (a few per participating thread) and runs
  /// body(lo, hi) once per range, so tiny per-index bodies don't pay one
  /// shared-cursor fetch per index. With parallelism <= 1 the whole
  /// range runs inline as body(0, count).
  void ParallelForRanges(size_t count, uint32_t parallelism,
                         const std::function<void(size_t, size_t)>& body);

  /// Runs a small set of heterogeneous stage tasks concurrently (the
  /// fusion pipeline's independent layer builds, a FrozenGraph's out/in
  /// CSR halves, ...). The caller participates and the call blocks until
  /// every task has run. With parallelism <= 1 the tasks run inline on
  /// the caller in list order, so a serial configuration executes the
  /// exact same code path deterministically.
  void RunTasks(std::span<const std::function<void()>> tasks,
                uint32_t parallelism);

  /// Shared process-wide pool, sized to the hardware concurrency and
  /// created on first use; never destroyed (workers park on the queue's
  /// condition variable between jobs, so an idle pool costs nothing).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// Maps a user-facing thread-count knob to an effective count: 0 means
/// auto-detect (std::thread::hardware_concurrency, at least 1), any
/// other value is taken as-is.
uint32_t ResolveThreadCount(uint32_t requested);

}  // namespace tpiin

#endif  // TPIIN_COMMON_THREAD_POOL_H_

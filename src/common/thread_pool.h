#ifndef TPIIN_COMMON_THREAD_POOL_H_
#define TPIIN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tpiin {

/// Cooperative cancellation shared by the tasks of one parallel section.
/// The checked ParallelFor/RunTasks variants cancel it on the first task
/// failure so sibling tasks not yet started are skipped; callers can also
/// cancel it from outside (a pipeline-level stop). Cancellation is a
/// relaxed flag: tasks already running finish normally.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A persistent worker pool with a chunk-stealing parallel-for.
///
/// Workers are created once and reused across ParallelFor calls, so
/// batch workloads (a server answering many DetectSuspiciousGroups
/// requests, the bench sweeps) stop paying thread create/join per call.
/// Work distribution is dynamic: every participant — the calling thread
/// included — repeatedly claims the next unprocessed index from a shared
/// atomic cursor, so uneven per-item cost (subTPIINs vary wildly in
/// size) balances automatically.
///
/// The calling thread always participates and always drains the loop to
/// completion by itself if no worker picks the job up, so ParallelFor
/// makes progress even from inside a pool worker (no nesting deadlock)
/// and even on a pool with zero workers.
class ThreadPool {
 public:
  /// Creates `num_workers` persistent worker threads (0 is allowed; all
  /// ParallelFor calls then run inline on the caller).
  explicit ThreadPool(uint32_t num_workers);

  /// Drains queued work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Runs body(i) for every i in [0, count), on up to `parallelism`
  /// threads (the caller plus at most parallelism - 1 pool workers).
  /// Blocks until every index has been processed. `body` must be safe to
  /// call concurrently from different threads for different indices.
  ///
  /// Error containment: a body that throws no longer takes down the
  /// process (the old contract terminated on a worker thread). The first
  /// exception is captured, remaining indices are skipped, and the
  /// exception is rethrown on the calling thread once the loop has
  /// drained — so a failing task can never deadlock or crash siblings.
  void ParallelFor(size_t count, uint32_t parallelism,
                   const std::function<void(size_t)>& body);

  /// Fallible parallel-for: body returns Status. The first non-OK status
  /// (or thrown exception, captured as StatusCode::kInternal) cancels
  /// `cancel` — indices not yet started are then skipped — and the
  /// captured error with the LOWEST index is returned, so the reported
  /// error does not depend on worker scheduling among the indices that
  /// ran. Passing an already-cancelled token skips every body and
  /// returns Cancelled; `cancel` may be nullptr (an internal token is
  /// used).
  Status ParallelForChecked(size_t count, uint32_t parallelism,
                            const std::function<Status(size_t)>& body,
                            CancelToken* cancel = nullptr);

  /// Fallible heterogeneous-stage variant of RunTasks: all tasks are
  /// attempted (unless one fails first and cancellation skips the rest),
  /// the lowest-indexed captured error is returned.
  Status RunTasksChecked(std::span<const std::function<Status()>> tasks,
                         uint32_t parallelism,
                         CancelToken* cancel = nullptr);

  /// Chunked variant for fine-grained loops: splits [0, count) into
  /// contiguous ranges (a few per participating thread) and runs
  /// body(lo, hi) once per range, so tiny per-index bodies don't pay one
  /// shared-cursor fetch per index. With parallelism <= 1 the whole
  /// range runs inline as body(0, count).
  void ParallelForRanges(size_t count, uint32_t parallelism,
                         const std::function<void(size_t, size_t)>& body);

  /// Runs a small set of heterogeneous stage tasks concurrently (the
  /// fusion pipeline's independent layer builds, a FrozenGraph's out/in
  /// CSR halves, ...). The caller participates and the call blocks until
  /// every task has run. With parallelism <= 1 the tasks run inline on
  /// the caller in list order, so a serial configuration executes the
  /// exact same code path deterministically.
  void RunTasks(std::span<const std::function<void()>> tasks,
                uint32_t parallelism);

  /// Shared process-wide pool, sized to the hardware concurrency and
  /// created on first use; never destroyed (workers park on the queue's
  /// condition variable between jobs, so an idle pool costs nothing).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// Maps a user-facing thread-count knob to an effective count: 0 means
/// auto-detect (std::thread::hardware_concurrency, at least 1), any
/// other value is taken as-is.
uint32_t ResolveThreadCount(uint32_t requested);

}  // namespace tpiin

#endif  // TPIIN_COMMON_THREAD_POOL_H_

#include "common/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/string_util.h"

namespace tpiin {

namespace {

enum class FireKind { kOff, kError, kIOError, kCorruption };

struct Rule {
  FireKind kind = FireKind::kOff;
  /// Fire only on this 1-based hit (0 = every hit). Exclusive with
  /// probability-mode seeding.
  uint64_t only_hit = 0;
  /// Probability mode: fire with `probability` per hit, decided by a
  /// pure hash of (seed, site, hit) so schedules replay exactly.
  bool probabilistic = false;
  double probability = 0;
  uint64_t seed = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Rule> rules;  // May contain "*".
  std::unordered_map<std::string, uint64_t> hits;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: process-lifetime.
  return *registry;
}

// SplitMix64: enough mixing to decorrelate (seed, site, hit) triples.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a.
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

Result<Rule> ParseRule(std::string_view site, std::string_view policy) {
  Rule rule;
  std::string spec(policy);
  // Optional "@<N>" suffix: hit number for fixed kinds, seed for p<f>.
  uint64_t at_value = 0;
  bool has_at = false;
  if (size_t at = spec.rfind('@'); at != std::string::npos) {
    TPIIN_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(spec.substr(at + 1)));
    if (parsed < 0) {
      return Status::InvalidArgument("failpoint " + std::string(site) +
                                     ": negative @ value");
    }
    at_value = static_cast<uint64_t>(parsed);
    has_at = true;
    spec.resize(at);
  }
  if (spec == "off") {
    rule.kind = FireKind::kOff;
  } else if (spec == "error") {
    rule.kind = FireKind::kError;
  } else if (spec == "ioerror") {
    rule.kind = FireKind::kIOError;
  } else if (spec == "corruption") {
    rule.kind = FireKind::kCorruption;
  } else if (!spec.empty() && spec[0] == 'p') {
    TPIIN_ASSIGN_OR_RETURN(double p, ParseDouble(spec.substr(1)));
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("failpoint " + std::string(site) +
                                     ": probability must lie in [0, 1]");
    }
    rule.kind = FireKind::kError;
    rule.probabilistic = true;
    rule.probability = p;
    rule.seed = at_value;
    return rule;
  } else {
    return Status::InvalidArgument(
        "failpoint " + std::string(site) + ": unknown policy '" +
        std::string(policy) +
        "' (expected off|error|ioerror|corruption|p<f>)");
  }
  rule.only_hit = has_at ? at_value : 0;
  if (has_at && at_value == 0) {
    return Status::InvalidArgument("failpoint " + std::string(site) +
                                   ": hit numbers are 1-based");
  }
  return rule;
}

Status FireStatus(const Rule& rule, std::string_view site) {
  const std::string msg = "injected failpoint '" + std::string(site) + "'";
  switch (rule.kind) {
    case FireKind::kIOError:
      return Status::IOError(msg);
    case FireKind::kCorruption:
      return Status::Corruption(msg);
    case FireKind::kError:
    case FireKind::kOff:
      break;
  }
  return Status::Internal(msg);
}

}  // namespace

std::atomic<bool> Failpoints::active_{false};

Status Failpoints::Configure(std::string_view spec) {
  std::unordered_map<std::string, Rule> rules;
  for (const std::string& term : Split(spec, ',')) {
    std::string_view t = Trim(term);
    if (t.empty()) continue;
    size_t colon = t.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument(
          "failpoint term '" + std::string(t) +
          "' is not of the form <site>:<policy>");
    }
    std::string site(Trim(t.substr(0, colon)));
    TPIIN_ASSIGN_OR_RETURN(Rule rule,
                           ParseRule(site, Trim(t.substr(colon + 1))));
    rules[site] = rule;
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.rules = std::move(rules);
  registry.hits.clear();
  active_.store(!registry.rules.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void Failpoints::Clear() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.rules.clear();
  registry.hits.clear();
  active_.store(false, std::memory_order_relaxed);
}

Status Failpoints::ConfigureFromEnv() {
  const char* spec = std::getenv("TPIIN_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return Configure(spec);
}

Status Failpoints::Check(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.rules.empty()) return Status::OK();
  const uint64_t hit = ++registry.hits[std::string(site)];
  auto it = registry.rules.find(std::string(site));
  if (it == registry.rules.end()) {
    // No exact rule: the longest matching "<prefix>.*" rule wins
    // (so `serve.*` can cover a subsystem while `serve.read:off`
    // still exempts one site), then the global "*".
    size_t best = 0;
    for (auto candidate = registry.rules.begin();
         candidate != registry.rules.end(); ++candidate) {
      const std::string& key = candidate->first;
      if (key.size() < 2 || key.compare(key.size() - 2, 2, ".*") != 0) {
        continue;
      }
      const std::string_view prefix(key.data(), key.size() - 1);
      if (site.size() >= prefix.size() &&
          site.substr(0, prefix.size()) == prefix && key.size() > best) {
        it = candidate;
        best = key.size();
      }
    }
    if (it == registry.rules.end()) it = registry.rules.find("*");
  }
  if (it == registry.rules.end()) return Status::OK();
  const Rule& rule = it->second;
  if (rule.kind == FireKind::kOff) return Status::OK();
  if (rule.probabilistic) {
    if (rule.probability <= 0.0) return Status::OK();
    const uint64_t h = Mix64(rule.seed ^ Mix64(HashSite(site) ^ hit));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u >= rule.probability) return Status::OK();
  } else if (rule.only_hit != 0 && hit != rule.only_hit) {
    return Status::OK();
  }
  return FireStatus(rule, site);
}

uint64_t Failpoints::HitCount(std::string_view site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.hits.find(std::string(site));
  return it == registry.hits.end() ? 0 : it->second;
}

std::vector<std::string> Failpoints::HitSites() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> sites;
  sites.reserve(registry.hits.size());
  for (const auto& [site, count] : registry.hits) sites.push_back(site);
  std::sort(sites.begin(), sites.end());
  return sites;
}

}  // namespace tpiin

#include "common/crc32c.h"

#include <array>
#include <cstring>

namespace tpiin {

namespace {

constexpr uint32_t kPolynomial = 0x82F63B78u;  // Reflected Castagnoli.

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

// Portable table-driven path; also the tail handler for the hardware
// path. Operates on the raw (already inverted) crc state.
uint32_t ExtendSoftRaw(uint32_t crc, const unsigned char* bytes,
                       size_t length) {
  for (size_t i = 0; i < length; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TPIIN_CRC32C_HW 1

// SSE4.2 CRC32 instruction path (same polynomial), selected at runtime
// so the binary still runs on pre-Nehalem hardware. The snapshot loader
// checksums every section at open, so this is the one place where CRC
// throughput shows up in a user-visible latency (snapshot_open_ms).
__attribute__((target("sse4.2"))) uint32_t ExtendHwRaw(
    uint32_t crc, const unsigned char* bytes, size_t length) {
  // Align to 8 bytes, then consume 8 bytes per crc32q.
  while (length > 0 && (reinterpret_cast<uintptr_t>(bytes) & 7u) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *bytes++);
    --length;
  }
  uint64_t crc64 = crc;
  while (length >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes, 8);
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    bytes += 8;
    length -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (length > 0) {
    crc = __builtin_ia32_crc32qi(crc, *bytes++);
    --length;
  }
  return crc;
}

bool DetectHwCrc() { return __builtin_cpu_supports("sse4.2"); }
const bool kHaveHwCrc = DetectHwCrc();
#endif  // __x86_64__

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t length) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
#ifdef TPIIN_CRC32C_HW
  if (kHaveHwCrc) return ~ExtendHwRaw(crc, bytes, length);
#endif
  return ~ExtendSoftRaw(crc, bytes, length);
}

uint32_t Crc32c(const void* data, size_t length) {
  return Crc32cExtend(0, data, length);
}

}  // namespace tpiin

#include "common/csv.h"

#include <cctype>

#include "common/string_util.h"

namespace tpiin {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        cur += c;
        ++i;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) {
          return Status::Corruption("quote inside unquoted CSV field");
        }
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        fields.push_back(std::move(cur));
        cur.clear();
        ++i;
      } else {
        cur += c;
        ++i;
      }
    }
  }
  if (in_quotes) return Status::Corruption("unterminated CSV quote");
  fields.push_back(std::move(cur));
  return fields;
}

std::string EscapeCsvField(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!field.empty() &&
      (std::isspace(static_cast<unsigned char>(field.front())) ||
       std::isspace(static_cast<unsigned char>(field.back())))) {
    needs_quotes = true;
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path)
    : out_(path, std::ios::out | std::ios::trunc), path_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << EscapeCsvField(fields[i]);
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  if (!closed_) {
    out_.flush();
    closed_ = true;
  }
  if (!out_.good()) {
    return Status::IOError("failed writing " + path_);
  }
  out_.close();
  return Status::OK();
}

CsvWriter::~CsvWriter() {
  if (!closed_) Close();  // Best effort; errors surfaced via explicit Close.
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, const std::vector<std::string>& expect_header) {
  std::ifstream in(path);
  if (!in.good()) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool saw_header = expect_header.empty();
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    TPIIN_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                           ParseCsvLine(line));
    if (!saw_header) {
      if (fields != expect_header) {
        return Status::Corruption("unexpected CSV header in " + path);
      }
      saw_header = true;
      continue;
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace tpiin

#include "common/csv.h"

#include <cctype>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace tpiin {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        cur += c;
        ++i;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) {
          return Status::Corruption("quote inside unquoted CSV field");
        }
        in_quotes = true;
        ++i;
      } else if (c == ',') {
        fields.push_back(std::move(cur));
        cur.clear();
        ++i;
      } else {
        cur += c;
        ++i;
      }
    }
  }
  if (in_quotes) return Status::Corruption("unterminated CSV quote");
  fields.push_back(std::move(cur));
  return fields;
}

std::string EscapeCsvField(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!field.empty() &&
      (std::isspace(static_cast<unsigned char>(field.front())) ||
       std::isspace(static_cast<unsigned char>(field.back())))) {
    needs_quotes = true;
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : file_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  std::ostream& out = file_.stream();
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ',';
    out << EscapeCsvField(fields[i]);
  }
  out << '\n';
}

Status CsvWriter::Close() { return file_.Commit(); }

CsvWriter::~CsvWriter() {
  Close();  // Best effort; errors surfaced via explicit Close.
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, const std::vector<std::string>& expect_header) {
  TPIIN_FAILPOINT("io.csv.open");
  std::ifstream in(path);
  if (!in.good()) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool saw_header = expect_header.empty();
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    TPIIN_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                           ParseCsvLine(line));
    if (!saw_header) {
      if (fields != expect_header) {
        return Status::Corruption("unexpected CSV header in " + path);
      }
      saw_header = true;
      continue;
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

CsvFileReader::CsvFileReader(const std::string& path)
    : in_(path), path_(path) {
#if defined(TPIIN_FAILPOINTS_COMPILED)
  if (Failpoints::AnyActive()) {
    Status injected = Failpoints::Check("io.csv.open");
    if (!injected.ok()) {
      status_ = std::move(injected);
      return;
    }
  }
#endif
  if (!in_.good()) status_ = Status::IOError("cannot open " + path_);
}

Status CsvFileReader::ExpectHeader(const std::vector<std::string>& header) {
  TPIIN_RETURN_IF_ERROR(status_);
  CsvRow row;
  if (!Next(&row)) {
    return Status::Corruption(path_ + ": missing header");
  }
  TPIIN_RETURN_IF_ERROR(row.parse);
  if (row.fields != header) {
    return Status::Corruption("unexpected CSV header in " + path_);
  }
  return Status::OK();
}

bool CsvFileReader::Next(CsvRow* row) {
  if (!status_.ok()) return false;
  std::string line;
  while (std::getline(in_, line)) {
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    row->line_number = line_number_;
    row->raw = line;
    Result<std::vector<std::string>> fields = ParseCsvLine(line);
    if (fields.ok()) {
      row->fields = std::move(*fields);
      row->parse = Status::OK();
    } else {
      row->fields.clear();
      row->parse = fields.status();
    }
    return true;
  }
  return false;
}

}  // namespace tpiin

#include "common/rng.h"

#include <cmath>
#include <numbers>
#include <unordered_set>

#include "common/logging.h"

namespace tpiin {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  // xoshiro's all-zero state is a fixed point; SplitMix64 cannot emit four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  TPIIN_CHECK_GT(bound, 0u) << "UniformU64 bound must be positive";
  // Lemire's method: multiply into 128 bits; reject the biased low range.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TPIIN_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  uint64_t draw = (span == 0) ? Next() : UniformU64(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::UniformDouble() {
  // 53 high bits give a uniform dyadic rational in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  TPIIN_CHECK_LE(k, n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an explicit index array.
    std::vector<uint64_t> idx(n);
    for (uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + UniformU64(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
  } else {
    std::unordered_set<uint64_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      uint64_t v = UniformU64(n);
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  TPIIN_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    TPIIN_CHECK_GE(w, 0.0);
    total += w;
  }
  TPIIN_CHECK_GT(total, 0.0);
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace tpiin

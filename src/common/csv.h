#ifndef TPIIN_COMMON_CSV_H_
#define TPIIN_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tpiin {

/// Parses one CSV line into fields, honoring RFC 4180 double-quote
/// escaping ("a","b""c" -> {a, b"c}). Embedded newlines inside quotes are
/// not supported (our formats never emit them).
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Quotes a field if it contains a comma, quote, or leading/trailing
/// whitespace.
std::string EscapeCsvField(std::string_view field);

/// Streaming CSV writer. All write paths funnel through WriteRow so
/// quoting stays consistent.
class CsvWriter {
 public:
  /// Opens `path` for truncating write. Check ok() before use.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }

  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes; returns IOError if the stream failed at any
  /// point. Safe to call more than once.
  Status Close();

  ~CsvWriter();

 private:
  std::ofstream out_;
  std::string path_;
  bool closed_ = false;
};

/// Whole-file CSV reader: returns rows of fields. Skips blank lines.
/// If `expect_header` is non-empty the first row must equal it exactly
/// (and is not returned).
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, const std::vector<std::string>& expect_header);

}  // namespace tpiin

#endif  // TPIIN_COMMON_CSV_H_

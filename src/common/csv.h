#ifndef TPIIN_COMMON_CSV_H_
#define TPIIN_COMMON_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/atomic_file.h"
#include "common/result.h"
#include "common/status.h"

namespace tpiin {

/// Parses one CSV line into fields, honoring RFC 4180 double-quote
/// escaping ("a","b""c" -> {a, b"c}). Embedded newlines inside quotes are
/// not supported (our formats never emit them).
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Quotes a field if it contains a comma, quote, or leading/trailing
/// whitespace.
std::string EscapeCsvField(std::string_view field);

/// Streaming CSV writer. All write paths funnel through WriteRow so
/// quoting stays consistent. Writes are crash-safe: rows stream into a
/// temporary that replaces `path` only when Close() succeeds, so a
/// killed process or failed write never leaves a half-written table.
class CsvWriter {
 public:
  /// Opens the temporary for `path`. Check ok() before use.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return file_.ok(); }

  void WriteRow(const std::vector<std::string>& fields);

  /// Flushes and publishes the file; returns IOError if any write
  /// failed. Safe to call more than once.
  Status Close();

  ~CsvWriter();

 private:
  AtomicFile file_;
};

/// Whole-file CSV reader: returns rows of fields. Skips blank lines.
/// If `expect_header` is non-empty the first row must equal it exactly
/// (and is not returned).
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path, const std::vector<std::string>& expect_header);

/// One physical line of a CSV file, parsed. A row whose `parse` status is
/// non-OK still carries line_number and raw text, so hardened loaders can
/// count, skip, or quarantine it instead of aborting the whole file.
struct CsvRow {
  size_t line_number = 0;  ///< 1-based physical line.
  std::string raw;         ///< The line as read (CR stripped).
  std::vector<std::string> fields;  ///< Valid iff parse.ok().
  Status parse;
};

/// Streaming per-line CSV reader — the resilient counterpart of
/// ReadCsvFile, which fails the whole file on the first malformed line.
/// Blank lines are skipped; a malformed line is *returned* (with
/// row.parse non-OK) rather than ending the stream.
class CsvFileReader {
 public:
  /// Opens `path`. Check status() before iterating.
  explicit CsvFileReader(const std::string& path);

  const Status& status() const { return status_; }

  /// If a header is expected, call immediately after construction.
  /// Consumes the first non-blank line and checks it.
  Status ExpectHeader(const std::vector<std::string>& header);

  /// Reads the next non-blank line into `*row`. Returns false at EOF
  /// (or when the reader failed to open).
  bool Next(CsvRow* row);

 private:
  std::ifstream in_;
  std::string path_;
  size_t line_number_ = 0;
  Status status_;
};

}  // namespace tpiin

#endif  // TPIIN_COMMON_CSV_H_

#ifndef TPIIN_COMMON_CRC32C_H_
#define TPIIN_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace tpiin {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78):
/// the checksum the snapshot format uses for its header and sections.
/// Uses the SSE4.2 crc32 instruction when the CPU has it (detected at
/// runtime) and falls back to a table-driven implementation; the
/// snapshot loader checksums every mapped section at open, so this is
/// directly on the snapshot_open_ms path.
///
/// `Extend` continues a running checksum, so a section can be checked
/// in chunks: crc = Crc32c(a, n) == Extend(Extend(0-init...) ...).
uint32_t Crc32c(const void* data, size_t length);
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t length);

}  // namespace tpiin

#endif  // TPIIN_COMMON_CRC32C_H_

#ifndef TPIIN_COMMON_LOGGING_H_
#define TPIIN_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace tpiin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted by TPIIN_LOG; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Lower-case level token ("debug", "info", "warn", "error"); the
/// structured log schema's `level` value.
const char* LogLevelToken(LogLevel level);

/// Pluggable structured sink behind TPIIN_LOG. While a backend is
/// installed, every log line that passes the level gate is delivered to
/// it (message body only — no prefix) instead of being formatted onto
/// stderr, so all subsystems upgrade to structured output at once.
///
/// Deliberately an abstract interface with no out-of-line members: the
/// canonical implementation (obs/log.h's JsonLogSink) lives *below*
/// tpiin_common in the link graph and may only depend on this header,
/// never on symbols from logging.cc.
class LogBackend {
 public:
  virtual ~LogBackend() = default;

  /// Called once per emitted log line; must be thread-safe.
  virtual void Write(LogLevel level, const char* file, int line,
                     std::string_view message) = 0;
};

/// Installs `backend` as the process-wide log sink (nullptr restores
/// the default stderr formatting). The backend must outlive every log
/// statement emitted while installed; callers uninstall before
/// destroying it.
void SetLogBackend(LogBackend* backend);
LogBackend* GetLogBackend();

namespace internal_logging {

/// Stream-style log sink that emits a single line on destruction.
/// Not for direct use; see the TPIIN_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by
/// TPIIN_CHECK failures.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tpiin

#define TPIIN_LOG(level)                                             \
  ::tpiin::internal_logging::LogMessage(::tpiin::LogLevel::k##level, \
                                        __FILE__, __LINE__)          \
      .stream()

/// Internal invariant check: always on (including release builds), as the
/// miner's correctness argument leans on graph invariants. Failure aborts
/// with a file:line message.
#define TPIIN_CHECK(cond)                                                  \
  if (cond) {                                                              \
  } else /* NOLINT */                                                      \
    ::tpiin::internal_logging::FatalLogMessage(__FILE__, __LINE__).stream() \
        << "Check failed: " #cond " "

#define TPIIN_CHECK_EQ(a, b) \
  TPIIN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPIIN_CHECK_NE(a, b) \
  TPIIN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPIIN_CHECK_LT(a, b) \
  TPIIN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPIIN_CHECK_LE(a, b) \
  TPIIN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPIIN_CHECK_GT(a, b) \
  TPIIN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TPIIN_CHECK_GE(a, b) \
  TPIIN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // TPIIN_COMMON_LOGGING_H_

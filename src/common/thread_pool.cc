#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "obs/metrics.h"

namespace tpiin {

ThreadPool::ThreadPool(uint32_t num_workers) {
  workers_.reserve(num_workers);
  for (uint32_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  TPIIN_COUNTER_ADD("pool.tasks_submitted", 1);
  TPIIN_GAUGE_MAX("pool.queue_depth_max",
                  static_cast<int64_t>(depth));
  (void)depth;  // Only read by the (compile-time optional) gauge.
}

void ThreadPool::ParallelFor(size_t count, uint32_t parallelism,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;

  const uint32_t max_helpers =
      std::min<uint32_t>(num_workers(),
                         parallelism > 0 ? parallelism - 1 : 0);
  const uint32_t helpers = static_cast<uint32_t>(
      std::min<size_t>(max_helpers, count - 1));
  if (helpers == 0) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Shared chunk-stealing state, kept alive by the helper closures. The
  // caller waits for *completed indices*, never for helper arrivals: a
  // queued helper may never be scheduled at all (every worker blocked in
  // a nested ParallelFor), and the caller's own drain can always satisfy
  // completed == count by itself — which is what makes nesting
  // deadlock-free. A helper scheduled after the range is exhausted finds
  // next >= count and exits without touching the body.
  struct JobState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    size_t count;
    std::function<void(size_t)> body;  // Owned: outlives the caller.
    std::mutex mu;
    std::condition_variable done;
    // Containment: the first exception thrown by any body, rethrown on
    // the caller once the loop has drained. `failed` makes the remaining
    // indices no-ops (they still count as completed, so the caller's
    // wait predicate is unaffected).
    std::atomic<bool> failed{false};
    std::exception_ptr first_exception;  // Guarded by mu.
  };
  auto state = std::make_shared<JobState>();
  state->count = count;
  state->body = body;
  TPIIN_COUNTER_ADD("pool.parallel_for_calls", 1);
  TPIIN_COUNTER_ADD("pool.parallel_for_indices", count);

  // `stolen` distinguishes helper-drained indices from the caller's own
  // (counted in bulk after the drain, so the loop stays tight).
  auto drain = [](JobState& job, bool stolen) {
    size_t i;
    size_t processed = 0;
    while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) <
           job.count) {
      if (!job.failed.load(std::memory_order_relaxed)) {
        try {
          job.body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(job.mu);
          if (!job.first_exception) {
            job.first_exception = std::current_exception();
          }
          job.failed.store(true, std::memory_order_relaxed);
        }
      }
      job.completed.fetch_add(1, std::memory_order_release);
      ++processed;
    }
    if (stolen && processed > 0) {
      TPIIN_COUNTER_ADD("pool.indices_stolen", processed);
    }
  };

  for (uint32_t h = 0; h < helpers; ++h) {
    Submit([state, drain] {
      drain(*state, /*stolen=*/true);
      // Lock before notifying so the caller cannot miss the wakeup
      // between its predicate check and its block.
      { std::lock_guard<std::mutex> lock(state->mu); }
      state->done.notify_all();
    });
  }

  drain(*state, /*stolen=*/false);
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] {
    return state->completed.load(std::memory_order_acquire) ==
           state->count;
  });
  if (state->first_exception) {
    std::rethrow_exception(state->first_exception);
  }
}

Status ThreadPool::ParallelForChecked(
    size_t count, uint32_t parallelism,
    const std::function<Status(size_t)>& body, CancelToken* cancel) {
  CancelToken local;
  CancelToken* token = cancel != nullptr ? cancel : &local;
  if (count == 0) return Status::OK();
  if (token->cancelled()) {
    return Status::Cancelled("parallel section cancelled before start");
  }

  // Lowest-index error wins so the aggregate does not depend on which
  // worker hit its error first (with cancellation, later indices may be
  // skipped entirely — but among the bodies that ran, the report is
  // deterministic).
  struct ErrorState {
    std::mutex mu;
    size_t first_index = SIZE_MAX;
    Status first_status;
  };
  ErrorState error;

  ParallelFor(count, parallelism, [&](size_t i) {
    if (token->cancelled()) return;
    Status s;
    try {
      s = body(i);
    } catch (const std::exception& e) {
      s = Status::Internal(std::string("uncaught exception in task: ") +
                           e.what());
    } catch (...) {
      s = Status::Internal("uncaught non-std::exception in task");
    }
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(error.mu);
      if (i < error.first_index) {
        error.first_index = i;
        error.first_status = std::move(s);
      }
      token->Cancel();
    }
  });

  if (error.first_index != SIZE_MAX) return error.first_status;
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("parallel section cancelled");
  }
  return Status::OK();
}

Status ThreadPool::RunTasksChecked(
    std::span<const std::function<Status()>> tasks, uint32_t parallelism,
    CancelToken* cancel) {
  return ParallelForChecked(
      tasks.size(), parallelism, [&](size_t i) { return tasks[i](); },
      cancel);
}

void ThreadPool::ParallelForRanges(
    size_t count, uint32_t parallelism,
    const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  if (parallelism <= 1) {
    body(0, count);
    return;
  }
  // 8 chunks per thread keeps chunk-stealing balance without paying a
  // cursor fetch per index.
  const size_t chunks = std::min(count, size_t{parallelism} * 8);
  ParallelFor(chunks, parallelism, [&](size_t c) {
    body(count * c / chunks, count * (c + 1) / chunks);
  });
}

void ThreadPool::RunTasks(std::span<const std::function<void()>> tasks,
                          uint32_t parallelism) {
  ParallelFor(tasks.size(), parallelism, [&](size_t i) { tasks[i](); });
}

ThreadPool& ThreadPool::Global() {
  // Intentionally leaked: workers park between jobs, and skipping the
  // destructor avoids static-destruction-order races with client code
  // that might run during shutdown.
  static ThreadPool* pool = new ThreadPool(ResolveThreadCount(0));
  return *pool;
}

uint32_t ResolveThreadCount(uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace tpiin

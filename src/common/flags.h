#ifndef TPIIN_COMMON_FLAGS_H_
#define TPIIN_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace tpiin {

/// Minimal command-line flag parser for the example and bench binaries.
/// Accepts --name=value and --name value forms plus bare --bool flags.
/// Positional arguments are collected in order.
///
/// Usage:
///   FlagParser flags;
///   flags.DefineInt64("seed", 42, "RNG seed");
///   flags.DefineDouble("p", 0.002, "trading probability");
///   Status s = flags.Parse(argc, argv);
class FlagParser {
 public:
  void DefineInt64(const std::string& name, int64_t default_value,
                   const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineString(const std::string& name,
                    const std::string& default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv; unknown flags are an error. `--help` sets help_requested.
  Status Parse(int argc, const char* const* argv);

  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_requested_; }

  /// Renders the flag table for --help output.
  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt64, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetFromString(Flag& flag, const std::string& name,
                       const std::string& value);
  const Flag& GetOrDie(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace tpiin

#endif  // TPIIN_COMMON_FLAGS_H_

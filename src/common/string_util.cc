#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tpiin {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty double literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return v;
}

std::string FormatWithCommas(int64_t value) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%lld",
                static_cast<long long>(value < 0 ? -value : value));
  std::string body(digits);
  std::string out;
  if (value < 0) out += '-';
  size_t lead = body.size() % 3;
  if (lead == 0) lead = 3;
  out += body.substr(0, lead);
  for (size_t i = lead; i < body.size(); i += 3) {
    out += ',';
    out += body.substr(i, 3);
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // vsnprintf writes the NUL one past `needed`; std::string guarantees
    // data()[size()] is writable as '\0' since C++11.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, format,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

bool IsValidUtf8(std::string_view s) {
  size_t i = 0;
  while (i < s.size()) {
    const unsigned char b0 = static_cast<unsigned char>(s[i]);
    size_t len;
    uint32_t cp;
    if (b0 < 0x80) {
      ++i;
      continue;
    } else if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1F;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0F;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07;
    } else {
      return false;  // Continuation byte or 0xFE/0xFF lead.
    }
    if (i + len > s.size()) return false;
    for (size_t k = 1; k < len; ++k) {
      const unsigned char b = static_cast<unsigned char>(s[i + k]);
      if ((b & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (b & 0x3F);
    }
    // Overlong encodings, UTF-16 surrogates, and out-of-range points.
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || (cp >= 0xD800 && cp <= 0xDFFF) ||
        cp > 0x10FFFF) {
      return false;
    }
    i += len;
  }
  return true;
}

}  // namespace tpiin

#ifndef TPIIN_COMMON_COLUMN_H_
#define TPIIN_COMMON_COLUMN_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace tpiin {

/// A read-mostly typed column that either owns its storage (the build
/// path: fusion fills a std::vector, then seals it) or views memory
/// owned by someone else (the snapshot path: the array lives inside an
/// mmap-ed file and is used in place, zero-copy).
///
/// Readers always go through data()/size()/operator[] — a plain pointer
/// + length, no per-access branch on the storage mode — so the CSR hot
/// loops cost exactly what they did when these were raw std::vectors.
///
/// Protocol for owners:
///   Col<T> c;
///   c.vec().push_back(...);   // or assign/resize; mutate freely
///   c.Seal();                 // publish: data()/size() now valid
/// Mutating vec() after Seal() requires a re-Seal (vector growth may
/// reallocate). Assign() is the one-shot form.
///
/// Protocol for views:
///   c.BindView(ptr, n);       // storage must outlive the Col
///
/// Copying an owned column deep-copies and re-seals; copying a view
/// copies the pointer (the mapping outlives both, by the same contract).
/// Moving an owned column keeps the published pointer valid because
/// std::vector moves preserve the heap buffer.
template <typename T>
class Col {
 public:
  Col() = default;

  Col(const Col& other) { CopyFrom(other); }
  Col& operator=(const Col& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Col(Col&& other) noexcept
      : owned_(std::move(other.owned_)),
        data_(other.data_),
        size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  Col& operator=(Col&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  /// Owned storage for the build path; call Seal() when done mutating.
  std::vector<T>& vec() { return owned_; }

  void Seal() {
    data_ = owned_.data();
    size_ = owned_.size();
  }

  /// Takes ownership of `values` and seals.
  void Assign(std::vector<T> values) {
    owned_ = std::move(values);
    Seal();
  }

  /// Non-owning view over external memory (an mmap-ed section).
  void BindView(const T* data, size_t size) {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = data;
    size_ = size;
  }

  bool owns() const { return data_ == owned_.data() && data_ != nullptr; }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  std::span<const T> span() const { return {data_, size_}; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void CopyFrom(const Col& other) {
    if (other.owns()) {
      owned_ = other.owned_;
      Seal();
    } else {
      owned_.clear();
      owned_.shrink_to_fit();
      data_ = other.data_;
      size_ = other.size_;
    }
  }

  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace tpiin

#endif  // TPIIN_COMMON_COLUMN_H_

#ifndef TPIIN_CORE_EXPLAIN_H_
#define TPIIN_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/detector.h"
#include "core/scoring.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// Per-company investigation dossier — the library counterpart of the
/// production system's "preliminary analysis on a company and its IATs"
/// view (§6, Fig. 19): which trading relationships of one taxpayer are
/// suspicious, through whom, and how strongly.
struct CompanyDossier {
  NodeId company = kInvalidNode;

  /// Trading relationships of this company flagged suspicious, with the
  /// direction seen from the company.
  struct FlaggedTrade {
    NodeId counterparty = kInvalidNode;
    bool company_is_seller = false;
    double score = 0;        // Noisy-or suspicion (scoring module).
    size_t group_count = 0;  // Proof chains behind the relationship.
  };
  std::vector<FlaggedTrade> trades;

  /// Every group this company appears in.
  std::vector<const SuspiciousGroup*> groups;

  /// Distinct antecedent nodes (persons, syndicates, holding companies)
  /// implicated with this company, sorted by node id.
  std::vector<NodeId> antecedents;
};

/// Builds the dossier of `company` (a TPIIN Company node) from a
/// detection run with collected groups and its scoring.
CompanyDossier BuildCompanyDossier(const Tpiin& net,
                                   const DetectionResult& detection,
                                   const ScoringResult& scoring,
                                   NodeId company);

/// Renders the dossier as the Fig. 19-style text report.
std::string FormatCompanyDossier(const Tpiin& net,
                                 const CompanyDossier& dossier);

/// Renders one suspicious group as a narrated proof chain:
///   "Antecedent X influences A via ... and B via ...; A sells to B."
std::string ExplainGroup(const Tpiin& net, const SuspiciousGroup& group);

}  // namespace tpiin

#endif  // TPIIN_CORE_EXPLAIN_H_

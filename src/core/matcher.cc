#include "core/matcher.h"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "core/pattern_tree.h"

namespace tpiin {

namespace {

// FNV-1a style hash over a node sequence, used to bucket prefix vectors;
// equality is exact (vector ==), so collisions only cost time.
struct NodeVecHash {
  size_t operator()(const std::vector<NodeId>& v) const {
    uint64_t h = 1469598103934665603ULL;
    for (NodeId x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

std::vector<NodeId> ToGlobalVec(const SubTpiin& sub,
                                std::span<const NodeId> local) {
  std::vector<NodeId> out;
  out.reserve(local.size());
  for (NodeId v : local) out.push_back(sub.ToGlobal(v));
  return out;
}

// Assembles a pairwise group record from local trails. `trade_nodes` is
// the influence part A1..Am of the trade-carrying trail; `partner` ends
// at cj.
SuspiciousGroup BuildPairGroup(const SubTpiin& sub,
                               std::span<const NodeId> trade_nodes,
                               NodeId cj,
                               std::span<const NodeId> partner,
                               bool is_simple) {
  SuspiciousGroup group;
  group.antecedent = sub.ToGlobal(trade_nodes[0]);
  group.trade_trail = ToGlobalVec(sub, trade_nodes);
  group.trade_seller = sub.ToGlobal(trade_nodes.back());
  group.trade_buyer = sub.ToGlobal(cj);
  group.partner_trail = ToGlobalVec(sub, partner);
  group.is_simple = is_simple;
  group.members = group.trade_trail;
  group.members.insert(group.members.end(), group.partner_trail.begin(),
                       group.partner_trail.end());
  group.members.push_back(group.trade_buyer);
  std::sort(group.members.begin(), group.members.end());
  group.members.erase(
      std::unique(group.members.begin(), group.members.end()),
      group.members.end());
  return group;
}

// Assembles the in-trail circle group anchored at cj; `suffix` runs from
// the cj occurrence to the seller.
SuspiciousGroup BuildCycleGroup(const SubTpiin& sub,
                                std::span<const NodeId> suffix,
                                NodeId cj) {
  SuspiciousGroup group;
  group.antecedent = sub.ToGlobal(cj);
  group.trade_trail = ToGlobalVec(sub, suffix);
  group.trade_seller = sub.ToGlobal(suffix.back());
  group.trade_buyer = sub.ToGlobal(cj);
  group.partner_trail = {sub.ToGlobal(cj)};
  group.is_simple = true;
  group.from_cycle = true;
  group.members = group.trade_trail;
  std::sort(group.members.begin(), group.members.end());
  return group;
}

}  // namespace

std::string SuspiciousGroup::Format(const Tpiin& net) const {
  std::string out(net.Label(antecedent));
  out += ": {";
  for (size_t i = 0; i < trade_trail.size(); ++i) {
    if (i > 0) out += ", ";
    out += net.Label(trade_trail[i]);
  }
  out += " -> ";
  out += net.Label(trade_buyer);
  out += "} | {";
  for (size_t i = 0; i < partner_trail.size(); ++i) {
    if (i > 0) out += ", ";
    out += net.Label(partner_trail[i]);
  }
  out += "}";
  if (from_cycle) out += " [circle]";
  out += is_simple ? " [simple]" : " [complex]";
  return out;
}

MatchResult MatchPatterns(const SubTpiin& sub, const PatternBase& base,
                          const MatchOptions& options) {
  MatchResult result;
  const NodeId n = sub.graph.NumNodes();

  // Trails grouped by antecedent root. Trails are emitted root by root,
  // so the groups are contiguous runs, but we do not rely on that.
  std::unordered_map<NodeId, std::vector<size_t>> family_of_root;
  for (size_t i = 0; i < base.size(); ++i) {
    TPIIN_CHECK(!base[i].nodes.empty());
    family_of_root[base[i].nodes[0]].push_back(i);
  }

  std::unordered_set<ArcId> suspicious_local_arcs;
  std::unordered_set<std::vector<NodeId>, NodeVecHash> seen_cycles;
  std::vector<uint8_t> in_trade_trail(n, 0);

  auto over_budget = [&]() {
    return options.max_groups != 0 &&
           result.num_simple + result.num_complex + result.num_cycle_groups >=
               options.max_groups;
  };

  for (const auto& [root, family] : family_of_root) {
    if (over_budget()) break;
    // Occurrence index of this family: element node -> (trail, position).
    std::unordered_map<NodeId, std::vector<std::pair<size_t, uint32_t>>>
        occurrences;
    for (size_t idx : family) {
      std::span<const NodeId> nodes = base[idx].nodes;
      for (uint32_t pos = 0; pos < nodes.size(); ++pos) {
        occurrences[nodes[pos]].emplace_back(idx, pos);
      }
    }

    for (size_t t_idx : family) {
      const PatternBase::TrailView t = base[t_idx];
      if (!t.has_trade()) continue;
      if (over_budget()) break;
      const NodeId cj = t.trade_dst;

      // Mark π1's interior nodes once for the simple/complex test.
      for (size_t i = 1; i < t.nodes.size(); ++i) in_trade_trail[t.nodes[i]] = 1;

      auto occ_it = occurrences.find(cj);
      if (occ_it != occurrences.end()) {
        // Deduplicate partner prefixes: distinct trails often share the
        // same path to Cj.
        std::unordered_set<std::vector<NodeId>, NodeVecHash> seen_prefixes;
        for (const auto& [t2_idx, pos] : occ_it->second) {
          if (over_budget()) break;
          const PatternBase::TrailView t2 = base[t2_idx];
          std::vector<NodeId> prefix(t2.nodes.begin(),
                                     t2.nodes.begin() + pos + 1);
          if (!seen_prefixes.insert(prefix).second) continue;

          // Definition 3 test: any interior node of the partner trail
          // (excluding antecedent and end) shared with π1 => complex.
          bool is_simple = true;
          for (size_t i = 1; i + 1 < prefix.size(); ++i) {
            if (in_trade_trail[prefix[i]]) {
              is_simple = false;
              break;
            }
          }
          if (is_simple) {
            ++result.num_simple;
          } else {
            ++result.num_complex;
          }
          suspicious_local_arcs.insert(t.trade_arc);

          if (options.collect_groups) {
            result.groups.push_back(
                BuildPairGroup(sub, t.nodes, cj, prefix, is_simple));
          }
        }
      }

      for (size_t i = 1; i < t.nodes.size(); ++i) in_trade_trail[t.nodes[i]] = 0;

      // In-trail circle special case (§4.3): the trade target re-enters
      // the walk's own element list, e.g. {A1, C4, C5, -> C4}. The circle
      // {C4, C5 -> C4} is itself a simple suspicious group anchored at
      // C4. Deduplicated globally by its node cycle.
      if (options.detect_cycles) {
        for (uint32_t pos = 0; pos < t.nodes.size(); ++pos) {
          if (t.nodes[pos] != cj) continue;
          std::vector<NodeId> suffix(t.nodes.begin() + pos, t.nodes.end());
          std::vector<NodeId> key = suffix;
          key.push_back(cj);
          if (seen_cycles.insert(key).second && !over_budget()) {
            ++result.num_cycle_groups;
            suspicious_local_arcs.insert(t.trade_arc);
            if (options.collect_groups) {
              result.groups.push_back(BuildCycleGroup(sub, suffix, cj));
            }
          }
          break;  // A DAG path contains cj at most once.
        }
      }
    }
  }

  result.truncated = over_budget();
  result.suspicious_trading_arcs.reserve(suspicious_local_arcs.size());
  for (ArcId local : suspicious_local_arcs) {
    result.suspicious_trading_arcs.push_back(sub.ToGlobalArc(local));
  }
  std::sort(result.suspicious_trading_arcs.begin(),
            result.suspicious_trading_arcs.end());
  return result;
}

MatchResult MatchPatternsTree(const SubTpiin& sub, const PatternsTree& tree,
                              const MatchOptions& options) {
  MatchResult result;
  const NodeId n = sub.graph.NumNodes();
  std::vector<uint8_t> in_trade_trail(n, 0);
  std::unordered_set<ArcId> suspicious_local_arcs;
  std::unordered_set<std::vector<NodeId>, NodeVecHash> seen_cycles;

  auto over_budget = [&]() {
    return options.max_groups != 0 &&
           result.num_simple + result.num_complex + result.num_cycle_groups >=
               options.max_groups;
  };

  std::unordered_map<NodeId, std::vector<int32_t>> occurrences;
  std::vector<int32_t> trade_leaves;
  std::vector<NodeId> trade_path;  // Reused across leaves (no per-leaf alloc).
  std::vector<NodeId> partner;     // Reused across partners.
  for (size_t r = 0; r < tree.roots.size() && !over_budget(); ++r) {
    int32_t begin = tree.roots[r];
    int32_t end = r + 1 < tree.roots.size()
                      ? tree.roots[r + 1]
                      : static_cast<int32_t>(tree.nodes.size());
    occurrences.clear();
    trade_leaves.clear();
    // A tree node IS one distinct trail from this root, so indexing tree
    // nodes by graph node enumerates every partner component pattern
    // exactly once — the efficiency the patterns tree buys.
    for (int32_t i = begin; i < end; ++i) {
      if (tree.nodes[i].via_trading_arc) {
        trade_leaves.push_back(i);
      } else {
        occurrences[tree.nodes[i].graph_node].push_back(i);
      }
    }

    for (int32_t leaf : trade_leaves) {
      if (over_budget()) break;
      const NodeId cj = tree.nodes[leaf].graph_node;
      const ArcId trade_arc = tree.nodes[leaf].via_arc;
      tree.PathTo(tree.nodes[leaf].parent, &trade_path);
      for (size_t i = 1; i < trade_path.size(); ++i) {
        in_trade_trail[trade_path[i]] = 1;
      }

      auto occ_it = occurrences.find(cj);
      if (occ_it != occurrences.end()) {
        for (int32_t partner_index : occ_it->second) {
          if (over_budget()) break;
          tree.PathTo(partner_index, &partner);
          bool is_simple = true;
          for (size_t i = 1; i + 1 < partner.size(); ++i) {
            if (in_trade_trail[partner[i]]) {
              is_simple = false;
              break;
            }
          }
          if (is_simple) {
            ++result.num_simple;
          } else {
            ++result.num_complex;
          }
          suspicious_local_arcs.insert(trade_arc);
          if (options.collect_groups) {
            result.groups.push_back(
                BuildPairGroup(sub, trade_path, cj, partner, is_simple));
          }
        }
      }

      for (size_t i = 1; i < trade_path.size(); ++i) {
        in_trade_trail[trade_path[i]] = 0;
      }

      if (options.detect_cycles) {
        for (uint32_t pos = 0; pos < trade_path.size(); ++pos) {
          if (trade_path[pos] != cj) continue;
          std::vector<NodeId> suffix(trade_path.begin() + pos,
                                     trade_path.end());
          std::vector<NodeId> key = suffix;
          key.push_back(cj);
          if (seen_cycles.insert(key).second && !over_budget()) {
            ++result.num_cycle_groups;
            suspicious_local_arcs.insert(trade_arc);
            if (options.collect_groups) {
              result.groups.push_back(BuildCycleGroup(sub, suffix, cj));
            }
          }
          break;  // A DAG path contains cj at most once.
        }
      }
    }
  }

  result.truncated = over_budget();
  result.suspicious_trading_arcs.reserve(suspicious_local_arcs.size());
  for (ArcId local : suspicious_local_arcs) {
    result.suspicious_trading_arcs.push_back(sub.ToGlobalArc(local));
  }
  std::sort(result.suspicious_trading_arcs.begin(),
            result.suspicious_trading_arcs.end());
  return result;
}

}  // namespace tpiin

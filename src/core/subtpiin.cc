#include "core/subtpiin.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/connected.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tpiin {

std::vector<SubTpiin> SegmentTpiin(const Tpiin& net,
                                   const SegmentOptions& options,
                                   SegmentStats* stats) {
  TPIIN_SPAN("segment_tpiin");
  const FrozenGraph& fg = net.frozen();

  // A snapshot-backed network carries the antecedent WCC decomposition
  // precomputed by the snapshot writer (which ran exactly the function
  // called in the else-branch); reusing it skips the union-find pass.
  // Member lists rebuild by bucketing ascending node ids, which matches
  // the sorted-ascending invariant of WccResult::members.
  WccResult wcc;
  if (net.has_wcc_index()) {
    std::span<const NodeId> component_of = net.WccComponentOf();
    wcc.component_of.assign(component_of.begin(), component_of.end());
    wcc.num_components = net.NumWccComponents();
    wcc.members.resize(wcc.num_components);
    for (NodeId v = 0; v < net.NumNodes(); ++v) {
      wcc.members[wcc.component_of[v]].push_back(v);
    }
  } else {
    wcc = WeaklyConnectedComponents(fg, FrozenArcClass::kInfluence);
  }

  // Bucket trading arcs by component; cross-component arcs are dropped.
  std::vector<std::vector<ArcId>> trading_of_component(wcc.num_components);
  size_t internal = 0;
  size_t cross = 0;
  for (ArcId id = net.num_influence_arcs(); id < net.NumArcs(); ++id) {
    const Arc arc = net.arc(id);
    NodeId cs = wcc.component_of[arc.src];
    NodeId cd = wcc.component_of[arc.dst];
    if (cs == cd) {
      trading_of_component[cs].push_back(id);
      ++internal;
    } else {
      ++cross;
    }
  }

  if (stats != nullptr) {
    stats->num_components = wcc.num_components;
    stats->trading_arcs_internal = internal;
    stats->trading_arcs_cross = cross;
  }

  std::vector<NodeId> local_of_global(net.NumNodes(), kInvalidNode);
  std::vector<SubTpiin> out;
  for (NodeId comp = 0; comp < wcc.num_components; ++comp) {
    const std::vector<NodeId>& members = wcc.members[comp];
    if (options.skip_singletons && members.size() <= 1) continue;
    if (options.skip_tradeless && trading_of_component[comp].empty()) {
      continue;
    }

    SubTpiin sub;
    sub.parent = &net;
    sub.global_of_local = members;  // Already sorted ascending.
    sub.graph.AddNodes(static_cast<NodeId>(members.size()));
    for (NodeId local = 0; local < members.size(); ++local) {
      local_of_global[members[local]] = local;
    }

    // Influence arcs internal to the component (all arcs touching a
    // member are internal by construction of the WCC). The frozen view's
    // influence span preserves the adjacency-list order, so local arc
    // ids come out identical to the legacy filtered scan.
    for (NodeId local = 0; local < members.size(); ++local) {
      NodeId global = members[local];
      AdjSpan influence_out = fg.InfluenceOut(global);
      for (size_t i = 0; i < influence_out.size(); ++i) {
        NodeId dst = influence_out.nodes[i];
        TPIIN_CHECK_EQ(wcc.component_of[dst], comp);
        sub.graph.AddArc(local, local_of_global[dst], kArcInfluence);
        sub.global_arc_of_local.push_back(influence_out.arcs[i]);
      }
    }
    sub.num_influence_arcs = sub.graph.NumArcs();

    for (ArcId id : trading_of_component[comp]) {
      const Arc arc = net.arc(id);
      sub.graph.AddArc(local_of_global[arc.src], local_of_global[arc.dst],
                       kArcTrading);
      sub.global_arc_of_local.push_back(id);
    }

    sub.Freeze();
    out.push_back(std::move(sub));
  }

  if (stats != nullptr) stats->num_emitted = out.size();
  TPIIN_COUNTER_ADD("segment.components_emitted", out.size());
  TPIIN_COUNTER_ADD("segment.trading_arcs_cross", cross);
  return out;
}

}  // namespace tpiin

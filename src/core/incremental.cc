#include "core/incremental.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/topo.h"

namespace tpiin {

Result<IncrementalScreener> IncrementalScreener::Create(const Tpiin& net) {
  const FrozenGraph& fg = net.frozen();
  const NodeId n = fg.NumNodes();

  // Topological order of the antecedent DAG; ancestors propagate along
  // the influence spans of the CSR view. Sets are kept as sorted unique
  // vectors — they stay small in taxpayer networks (a company has a
  // handful of antecedents), and sorted merge keeps both the build and
  // the queries cache-friendly.
  Result<std::vector<NodeId>> order =
      TopologicalSort(fg, FrozenArcClass::kInfluence);
  if (!order.ok()) {
    return Status::FailedPrecondition(
        "TPIIN antecedent layer must be a DAG: " +
        order.status().ToString());
  }

  IncrementalScreener screener;
  screener.ancestors_.resize(n);
  for (NodeId v : *order) {
    std::vector<std::vector<NodeId>>& anc = screener.ancestors_;
    anc[v].push_back(v);  // "Or self": covers A == u and A == v.
    std::sort(anc[v].begin(), anc[v].end());
    anc[v].erase(std::unique(anc[v].begin(), anc[v].end()), anc[v].end());
    screener.total_entries_ += anc[v].size();
    for (NodeId dst : fg.InfluenceOut(v).nodes) {
      // Append; the child sorts/dedups once when its turn comes.
      anc[dst].insert(anc[dst].end(), anc[v].begin(), anc[v].end());
    }
  }
  return screener;
}

IncrementalScreener::IncrementalScreener(const Tpiin& net) {
  Result<IncrementalScreener> made = Create(net);
  TPIIN_CHECK(made.ok()) << made.status().ToString();
  *this = std::move(made).value();
}

std::optional<NodeId> IncrementalScreener::CommonAntecedent(
    NodeId seller, NodeId buyer) const {
  TPIIN_CHECK_LT(seller, ancestors_.size());
  TPIIN_CHECK_LT(buyer, ancestors_.size());
  const std::vector<NodeId>& a = ancestors_[seller];
  const std::vector<NodeId>& b = ancestors_[buyer];
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return a[i];
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return std::nullopt;
}

bool IncrementalScreener::IsSuspicious(NodeId seller, NodeId buyer) const {
  if (seller == buyer) return true;  // Intra-syndicate by construction.
  return CommonAntecedent(seller, buyer).has_value();
}

}  // namespace tpiin

#ifndef TPIIN_CORE_SCORING_H_
#define TPIIN_CORE_SCORING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// Suspicion scoring over detected groups — the edge-weight extension the
/// paper names as future work (§7: "the weight computation methods of
/// edges during a build-in phase of TPIIN in order to help identify the
/// tax evaders"). Arc weights quantify influence strength (legal-person
/// 1.0, share fractions, role-dependent director strengths; see
/// TpiinBuilder::AddInfluenceArc); a group's score is the strength of
/// its proof chain, and a trading relationship accumulates evidence from
/// every group behind it.
struct ScoringOptions {
  enum class TrailAggregation {
    /// Chain strength = product of arc weights (long weak chains fade).
    kProduct,
    /// Chain strength = weakest link.
    kMinimum,
  };
  TrailAggregation aggregation = TrailAggregation::kProduct;
};

/// One trading relationship with its accumulated suspicion.
struct ScoredTrade {
  NodeId seller = kInvalidNode;
  NodeId buyer = kInvalidNode;
  /// Noisy-or accumulation over its groups' scores, in (0, 1].
  double score = 0;
  size_t group_count = 0;
};

struct ScoringResult {
  /// Score per group, parallel to DetectionResult::groups, in (0, 1].
  std::vector<double> group_scores;
  /// Trading relationships ranked by descending score (ties by node
  /// pair); intra-syndicate findings score 1.0 — a shareholding circle
  /// is maximal evidence.
  std::vector<ScoredTrade> ranked_trades;
};

/// Scores `detection` (which must have been run with
/// options.match.collect_groups = true) against the TPIIN's arc weights.
ScoringResult ScoreDetection(const Tpiin& net,
                             const DetectionResult& detection,
                             const ScoringOptions& options = {});

}  // namespace tpiin

#endif  // TPIIN_CORE_SCORING_H_

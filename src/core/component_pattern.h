#ifndef TPIIN_CORE_COMPONENT_PATTERN_H_
#define TPIIN_CORE_COMPONENT_PATTERN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/subtpiin.h"
#include "graph/types.h"

namespace tpiin {

/// The potential component patterns base of one subTPIIN (Fig. 10): the
/// list of suspicious relationship trails Algorithm 2 emits:
///  - InOT-OutOSP walk (Definition 5): {A1, ..., Am}, all influence arcs,
///    from an indegree-zero node to an outdegree-zero node; or
///  - InOT-FTAOP walk (Definition 6): {A1, ..., Am, -> Cj}, an influence
///    trail joined with its first trading arc (Lemma 1).
///
/// Storage is a shared node arena: every trail is an (offset, length)
/// slice of one contiguous NodeId array, so appending a trail is a
/// bounds check plus a memcpy — no per-trail vector allocation, and
/// iteration touches one linear buffer. Trails are exposed as
/// `TrailView`s carrying a span over the arena; views are cheap values,
/// valid as long as the owning PatternBase is alive and unmodified.
class PatternBase {
 public:
  /// One trail of the base. `nodes` holds A1..Am (local SubTpiin ids); a
  /// trade-terminated trail additionally carries the trading arc and its
  /// target Cj.
  struct TrailView {
    std::span<const NodeId> nodes;
    NodeId trade_dst = kInvalidNode;
    ArcId trade_arc = kInvalidArc;  // Local arc id of the trading arc.

    bool has_trade() const { return trade_dst != kInvalidNode; }

    /// Seller of the trailing trading arc (the last influence-reached
    /// node). Only meaningful when has_trade().
    NodeId seller() const { return nodes.back(); }

    /// Renders the paper's notation, e.g. "L1, C2, C5 -> C6" or "L1, C4".
    std::string Format(const SubTpiin& sub) const;
  };

  size_t size() const { return trails_.size(); }
  bool empty() const { return trails_.empty(); }

  TrailView operator[](size_t i) const {
    const Record& r = trails_[i];
    return TrailView{{arena_.data() + r.offset, r.length}, r.trade_dst,
                     r.trade_arc};
  }

  /// Appends one trail (a copy of `nodes` into the arena).
  void Append(std::span<const NodeId> nodes,
              NodeId trade_dst = kInvalidNode,
              ArcId trade_arc = kInvalidArc) {
    trails_.push_back(Record{static_cast<uint32_t>(arena_.size()),
                             static_cast<uint32_t>(nodes.size()), trade_dst,
                             trade_arc});
    arena_.insert(arena_.end(), nodes.begin(), nodes.end());
  }

  void Reserve(size_t num_trails, size_t num_nodes) {
    trails_.reserve(num_trails);
    arena_.reserve(num_nodes);
  }

  /// Removes every trail but keeps the arena and trail-record capacity —
  /// what makes a base recyclable across GeneratePatternBase calls (see
  /// core/arena_pool.h). A cleared base compares equal to a
  /// default-constructed one.
  void Clear() {
    arena_.clear();
    trails_.clear();
  }

  /// Total node slots across all trails (arena length).
  size_t TotalNodes() const { return arena_.size(); }

  /// Forward/random-access iteration yielding TrailViews by value, so
  /// `for (const auto& trail : base)` works as with the old
  /// vector-of-Trail representation.
  class Iterator {
   public:
    Iterator(const PatternBase* base, size_t index)
        : base_(base), index_(index) {}
    TrailView operator*() const { return (*base_)[index_]; }
    Iterator& operator++() {
      ++index_;
      return *this;
    }
    friend bool operator==(const Iterator&, const Iterator&) = default;

   private:
    const PatternBase* base_;
    size_t index_;
  };

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, trails_.size()); }

  friend bool operator==(const PatternBase&, const PatternBase&) = default;

 private:
  struct Record {
    uint32_t offset = 0;
    uint32_t length = 0;
    NodeId trade_dst = kInvalidNode;
    ArcId trade_arc = kInvalidArc;

    friend bool operator==(const Record&, const Record&) = default;
  };

  std::vector<NodeId> arena_;
  std::vector<Record> trails_;
};

/// Renders the whole base, one numbered trail per line (Fig. 10 layout).
std::string FormatPatternBase(const SubTpiin& sub, const PatternBase& base);

}  // namespace tpiin

#endif  // TPIIN_CORE_COMPONENT_PATTERN_H_

#ifndef TPIIN_CORE_COMPONENT_PATTERN_H_
#define TPIIN_CORE_COMPONENT_PATTERN_H_

#include <string>
#include <vector>

#include "core/subtpiin.h"
#include "graph/types.h"

namespace tpiin {

/// One suspicious relationship trail from the potential component
/// patterns base (Fig. 10):
///  - InOT-OutOSP walk (Definition 5): {A1, ..., Am}, all influence arcs,
///    from an indegree-zero node to an outdegree-zero node; or
///  - InOT-FTAOP walk (Definition 6): {A1, ..., Am, -> Cj}, an influence
///    trail joined with its first trading arc (Lemma 1).
///
/// `nodes` holds A1..Am (local SubTpiin ids); a trade-terminated trail
/// additionally carries the trading arc and its target Cj.
struct Trail {
  std::vector<NodeId> nodes;
  NodeId trade_dst = kInvalidNode;
  ArcId trade_arc = kInvalidArc;  // Local arc id of the trading arc.

  bool has_trade() const { return trade_dst != kInvalidNode; }

  /// Seller of the trailing trading arc (the last influence-reached
  /// node). Only meaningful when has_trade().
  NodeId seller() const { return nodes.back(); }

  /// Renders the paper's notation, e.g. "L1, C2, C5 -> C6" or "L1, C4".
  std::string Format(const SubTpiin& sub) const;

  friend bool operator==(const Trail&, const Trail&) = default;
};

/// The potential component patterns base of one subTPIIN.
using PatternBase = std::vector<Trail>;

/// Renders the whole base, one numbered trail per line (Fig. 10 layout).
std::string FormatPatternBase(const SubTpiin& sub, const PatternBase& base);

}  // namespace tpiin

#endif  // TPIIN_CORE_COMPONENT_PATTERN_H_

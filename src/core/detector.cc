#include "core/detector.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/arena_pool.h"
#include "core/pattern_tree.h"

namespace tpiin {

namespace {

// BFS over a syndicate's internal investment arcs; strong connectivity
// of the contracted SCS guarantees a chain exists.
std::vector<CompanyId> InternalChain(const TpiinNode& syndicate,
                                     CompanyId from, CompanyId to) {
  std::unordered_map<CompanyId, std::vector<CompanyId>> adj;
  adj.reserve(syndicate.internal_investments.size());
  for (const auto& [src, dst] : syndicate.internal_investments) {
    adj[src].push_back(dst);
  }
  std::unordered_map<CompanyId, CompanyId> parent;
  parent.reserve(adj.size() + 1);
  std::deque<CompanyId> frontier = {from};
  parent[from] = from;
  while (!frontier.empty()) {
    CompanyId u = frontier.front();
    frontier.pop_front();
    if (u == to) break;
    // find() rather than operator[]: a sink company has no outgoing
    // internal investments, and operator[] would insert an empty list
    // for it on every visit, rehashing the map mid-BFS.
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (CompanyId v : it->second) {
      if (parent.emplace(v, u).second) frontier.push_back(v);
    }
  }
  std::vector<CompanyId> chain;
  if (!parent.count(to)) return chain;  // Malformed syndicate; empty chain.
  for (CompanyId v = to; v != from; v = parent[v]) chain.push_back(v);
  chain.push_back(from);
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

double DetectionResult::SuspiciousTradePercent() const {
  size_t total = total_trading_arcs + intra_syndicate.size();
  if (total == 0) return 0;
  return 100.0 * (suspicious_trades.size() + intra_syndicate.size()) /
         static_cast<double>(total);
}

std::string DetectionResult::Summary() const {
  return StringPrintf(
      "subTPIINs=%zu trails=%zu groups: complex=%zu simple=%zu circle=%zu "
      "intra-SCC=%zu; suspicious trades=%zu of %zu (%.4f%%)%s",
      num_subtpiins, num_trails, num_complex, num_simple, num_cycle_groups,
      intra_syndicate.size(), suspicious_trades.size() + intra_syndicate.size(),
      total_trading_arcs + intra_syndicate.size(), SuspiciousTradePercent(),
      truncated ? " [TRUNCATED]" : "");
}

Result<DetectionResult> DetectSuspiciousGroups(const Tpiin& net,
                                               const DetectorOptions& options) {
  DetectionResult result;
  result.total_trading_arcs = net.num_trading_arcs();
  WallTimer total_timer;

  std::vector<SubTpiin> subs;
  {
    ScopedTimer timer(&result.timings.segment_seconds);
    subs = SegmentTpiin(net);
  }
  result.num_subtpiins = subs.size();

  // Per-subTPIIN outcomes, index-addressed so the merge below is
  // deterministic regardless of worker scheduling.
  struct SubOutcome {
    Status status;
    size_t num_trails = 0;
    bool truncated = false;
    MatchResult match;
    double pattern_seconds = 0;
    double match_seconds = 0;
  };
  std::vector<SubOutcome> outcomes(subs.size());

  auto process_one = [&](size_t index) {
    SubOutcome& outcome = outcomes[index];
    const SubTpiin& sub = subs[index];
    PatternGenOptions gen_options;
    // Mining runs off the patterns tree; the flat trail base is only
    // materialized when the caller wants the Fig. 10 artifacts.
    gen_options.emit_trails = options.emit_pattern_bases;
    gen_options.max_trails = options.max_trails_per_subtpiin;
    gen_options.use_frozen_graph = options.use_frozen_graph;
    PatternScratch scratch;
    if (options.arena_pool != nullptr) {
      scratch = options.arena_pool->Acquire();
      gen_options.scratch = &scratch;
    }
    Result<PatternGenResult> gen = [&] {
      ScopedTimer timer(&outcome.pattern_seconds);
      return GeneratePatternBase(sub, gen_options);
    }();
    if (!gen.ok()) {
      outcome.status = gen.status();
      return;
    }
    outcome.num_trails = gen->num_trails;
    outcome.truncated = gen->truncated;
    {
      ScopedTimer timer(&outcome.match_seconds);
      outcome.match = MatchPatternsTree(sub, gen->tree, options.match);
    }
    if (options.arena_pool != nullptr) {
      // Matching consumed the tree and nothing retains the base, so the
      // grown buffers go straight back to the pool for the next
      // subTPIIN (or the next detection run).
      scratch.base = std::move(gen->base);
      scratch.tree = std::move(gen->tree);
      options.arena_pool->Release(std::move(scratch));
    }
  };

  // The persistent pool's threads are reused across DetectSuspiciousGroups
  // calls; a single-threaded request never touches the pool's queue.
  ThreadPool::Global().ParallelFor(
      subs.size(), ResolveThreadCount(options.num_threads), process_one);

  std::vector<ArcId> suspicious_arcs;
  for (SubOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) return outcome.status;
    result.timings.pattern_seconds += outcome.pattern_seconds;
    result.timings.match_seconds += outcome.match_seconds;
    result.num_trails += outcome.num_trails;
    result.truncated =
        result.truncated || outcome.truncated || outcome.match.truncated;
    result.num_simple += outcome.match.num_simple;
    result.num_complex += outcome.match.num_complex;
    result.num_cycle_groups += outcome.match.num_cycle_groups;
    if (options.match.collect_groups) {
      result.groups.insert(
          result.groups.end(),
          std::make_move_iterator(outcome.match.groups.begin()),
          std::make_move_iterator(outcome.match.groups.end()));
    }
    suspicious_arcs.insert(suspicious_arcs.end(),
                           outcome.match.suspicious_trading_arcs.begin(),
                           outcome.match.suspicious_trading_arcs.end());
  }

  // Arc ids -> (seller, buyer) node pairs. Arc ids are unique across
  // subTPIINs (each trading arc lands in at most one component).
  std::sort(suspicious_arcs.begin(), suspicious_arcs.end());
  suspicious_arcs.erase(
      std::unique(suspicious_arcs.begin(), suspicious_arcs.end()),
      suspicious_arcs.end());
  result.suspicious_trades.reserve(suspicious_arcs.size());
  for (ArcId id : suspicious_arcs) {
    const Arc& arc = net.graph().arc(id);
    result.suspicious_trades.emplace_back(arc.src, arc.dst);
  }
  std::sort(result.suspicious_trades.begin(),
            result.suspicious_trades.end());

  if (options.include_intra_syndicate) {
    for (const IntraSyndicateTrade& trade : net.intra_syndicate_trades()) {
      IntraSyndicateFinding finding;
      finding.syndicate_node = trade.syndicate_node;
      finding.seller = trade.seller;
      finding.buyer = trade.buyer;
      finding.chain = InternalChain(net.node(trade.syndicate_node),
                                    trade.seller, trade.buyer);
      result.intra_syndicate.push_back(std::move(finding));
    }
  }

  result.timings.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace tpiin

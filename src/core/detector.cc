#include "core/detector.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/arena_pool.h"
#include "core/pattern_tree.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace tpiin {

namespace {

// BFS over a syndicate's internal investment arcs; strong connectivity
// of the contracted SCS guarantees a chain exists.
std::vector<CompanyId> InternalChain(const TpiinNode& syndicate,
                                     CompanyId from, CompanyId to) {
  std::unordered_map<CompanyId, std::vector<CompanyId>> adj;
  adj.reserve(syndicate.internal_investments.size());
  for (const auto& [src, dst] : syndicate.internal_investments) {
    adj[src].push_back(dst);
  }
  std::unordered_map<CompanyId, CompanyId> parent;
  parent.reserve(adj.size() + 1);
  std::deque<CompanyId> frontier = {from};
  parent[from] = from;
  while (!frontier.empty()) {
    CompanyId u = frontier.front();
    frontier.pop_front();
    if (u == to) break;
    // find() rather than operator[]: a sink company has no outgoing
    // internal investments, and operator[] would insert an empty list
    // for it on every visit, rehashing the map mid-BFS.
    auto it = adj.find(u);
    if (it == adj.end()) continue;
    for (CompanyId v : it->second) {
      if (parent.emplace(v, u).second) frontier.push_back(v);
    }
  }
  std::vector<CompanyId> chain;
  if (!parent.count(to)) return chain;  // Malformed syndicate; empty chain.
  for (CompanyId v = to; v != from; v = parent[v]) chain.push_back(v);
  chain.push_back(from);
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

const char* SubSkipName(SubSkip skip) {
  switch (skip) {
    case SubSkip::kNone: return "none";
    case SubSkip::kNodeCap: return "node_cap";
    case SubSkip::kArcCap: return "arc_cap";
    case SubSkip::kDeadline: return "deadline";
    case SubSkip::kSliceTruncated: return "slice_truncated";
  }
  return "unknown";
}

double DetectionResult::SuspiciousTradePercent() const {
  size_t total = total_trading_arcs + intra_syndicate.size();
  if (total == 0) return 0;
  return 100.0 * (suspicious_trades.size() + intra_syndicate.size()) /
         static_cast<double>(total);
}

std::string DetectionResult::Summary() const {
  return StringPrintf(
      "subTPIINs=%zu trails=%zu groups: complex=%zu simple=%zu circle=%zu "
      "intra-SCC=%zu; suspicious trades=%zu of %zu (%.4f%%)%s",
      num_subtpiins, num_trails, num_complex, num_simple, num_cycle_groups,
      intra_syndicate.size(), suspicious_trades.size() + intra_syndicate.size(),
      total_trading_arcs + intra_syndicate.size(), SuspiciousTradePercent(),
      degraded ? " [DEGRADED]" : (truncated ? " [TRUNCATED]" : ""));
}

Result<DetectionResult> DetectSuspiciousGroups(const Tpiin& net,
                                               const DetectorOptions& options) {
  TPIIN_SPAN("detect");
  DetectionResult result;
  result.total_trading_arcs = net.num_trading_arcs();
  WallTimer total_timer;
  WallTimer stage_timer;
  double stage_cpu = ProcessCpuSeconds();
  const auto close_stage = [&](double* wall_sink, double* cpu_sink) {
    *wall_sink = stage_timer.ElapsedSeconds();
    const double cpu_now = ProcessCpuSeconds();
    *cpu_sink = cpu_now - stage_cpu;
    stage_timer.Restart();
    stage_cpu = cpu_now;
  };

  std::vector<SubTpiin> subs;
  {
    TPIIN_SPAN("segment");
    subs = SegmentTpiin(net, SegmentOptions{}, &result.segment_stats);
  }
  close_stage(&result.timings.segment_seconds,
              &result.timings.segment_cpu_seconds);
  result.num_subtpiins = subs.size();
  TPIIN_COUNTER_ADD("detect.subtpiins", subs.size());

  // Per-subTPIIN outcomes, index-addressed so the merge below is
  // deterministic regardless of worker scheduling.
  struct SubOutcome {
    size_t num_trails = 0;
    bool truncated = false;
    SubSkip skip = SubSkip::kNone;
    MatchResult match;
    double pattern_seconds = 0;
    double match_seconds = 0;
  };
  std::vector<SubOutcome> outcomes(subs.size());

  // The run deadline covers the whole call, segmentation included.
  const Deadline run_deadline =
      Deadline::After(options.budget.deadline_seconds);

  // Structural cap decisions happen serially, in emission-index order,
  // before any mining — so which subTPIINs are skipped never depends on
  // thread count or machine speed. Deadline-based skips (below) are
  // inherently time-dependent; caps are the deterministic knob.
  for (size_t index = 0; index < subs.size(); ++index) {
    if (options.budget.max_sub_nodes != 0 &&
        subs[index].graph.NumNodes() > options.budget.max_sub_nodes) {
      outcomes[index].skip = SubSkip::kNodeCap;
    } else if (options.budget.max_sub_arcs != 0 &&
               subs[index].graph.NumArcs() > options.budget.max_sub_arcs) {
      outcomes[index].skip = SubSkip::kArcCap;
    }
  }

  auto process_one = [&](size_t index) -> Status {
    TPIIN_SPAN("sub_mine");
    TPIIN_FAILPOINT("core.sub_mine");
    SubOutcome& outcome = outcomes[index];
    if (outcome.skip != SubSkip::kNone) return Status::OK();
    if (run_deadline.Expired()) {
      outcome.skip = SubSkip::kDeadline;
      return Status::OK();
    }
    const SubTpiin& sub = subs[index];
    PatternGenOptions gen_options;
    // Mining runs off the patterns tree; the flat trail base is only
    // materialized when the caller wants the Fig. 10 artifacts.
    gen_options.emit_trails = options.emit_pattern_bases;
    gen_options.max_trails = options.max_trails_per_subtpiin;
    gen_options.use_frozen_graph = options.use_frozen_graph;
    gen_options.deadline = Deadline::Sooner(
        run_deadline, Deadline::After(options.budget.sub_slice_seconds));
    PatternScratch scratch;
    if (options.arena_pool != nullptr) {
      scratch = options.arena_pool->Acquire();
      gen_options.scratch = &scratch;
    }
    Result<PatternGenResult> gen = [&] {
      TPIIN_SPAN("pattern_base");
      ScopedTimer timer(&outcome.pattern_seconds);
      return GeneratePatternBase(sub, gen_options);
    }();
    TPIIN_RETURN_IF_ERROR(gen.status());
    outcome.num_trails = gen->num_trails;
    outcome.truncated = gen->truncated;
    if (gen->deadline_expired) outcome.skip = SubSkip::kSliceTruncated;
    {
      TPIIN_SPAN("match");
      ScopedTimer timer(&outcome.match_seconds);
      outcome.match = MatchPatternsTree(sub, gen->tree, options.match);
    }
    if (options.arena_pool != nullptr) {
      // Matching consumed the tree and nothing retains the base, so the
      // grown buffers go straight back to the pool for the next
      // subTPIIN (or the next detection run).
      scratch.base = std::move(gen->base);
      scratch.tree = std::move(gen->tree);
      options.arena_pool->Release(std::move(scratch));
    }
    return Status::OK();
  };

  // The persistent pool's threads are reused across DetectSuspiciousGroups
  // calls; a single-threaded request never touches the pool's queue. A
  // failing subTPIIN (bad precondition, injected fault) cancels siblings
  // not yet started and surfaces the lowest-index error; completed
  // siblings' outcomes are simply dropped with the whole result.
  {
    TPIIN_SPAN("mine");
    CancelToken cancel;
    TPIIN_RETURN_IF_ERROR(ThreadPool::Global().ParallelForChecked(
        subs.size(), ResolveThreadCount(options.num_threads), process_one,
        &cancel));
  }
  close_stage(&result.timings.mine_seconds,
              &result.timings.mine_cpu_seconds);

  TraceSpan finalize_span("finalize");
  result.sub_profiles.reserve(subs.size());
  std::vector<ArcId> suspicious_arcs;
  for (size_t index = 0; index < outcomes.size(); ++index) {
    SubOutcome& outcome = outcomes[index];
    SubTpiinProfile profile;
    profile.index = index;
    profile.num_nodes = subs[index].graph.NumNodes();
    profile.num_arcs = subs[index].graph.NumArcs();
    profile.num_trails = outcome.num_trails;
    profile.skip = outcome.skip;
    if (outcome.skip != SubSkip::kNone) {
      result.degraded = true;
      if (outcome.skip != SubSkip::kSliceTruncated) {
        ++result.num_skipped_subs;
      }
    }
    profile.num_groups = outcome.match.num_simple +
                         outcome.match.num_complex +
                         outcome.match.num_cycle_groups;
    profile.pattern_seconds = outcome.pattern_seconds;
    profile.match_seconds = outcome.match_seconds;
    result.sub_profiles.push_back(profile);
    result.timings.pattern_seconds += outcome.pattern_seconds;
    result.timings.match_seconds += outcome.match_seconds;
    result.num_trails += outcome.num_trails;
    result.truncated =
        result.truncated || outcome.truncated || outcome.match.truncated;
    result.num_simple += outcome.match.num_simple;
    result.num_complex += outcome.match.num_complex;
    result.num_cycle_groups += outcome.match.num_cycle_groups;
    if (options.match.collect_groups) {
      result.groups.insert(
          result.groups.end(),
          std::make_move_iterator(outcome.match.groups.begin()),
          std::make_move_iterator(outcome.match.groups.end()));
    }
    suspicious_arcs.insert(suspicious_arcs.end(),
                           outcome.match.suspicious_trading_arcs.begin(),
                           outcome.match.suspicious_trading_arcs.end());
  }

  // Arc ids -> (seller, buyer) node pairs. Arc ids are unique across
  // subTPIINs (each trading arc lands in at most one component).
  std::sort(suspicious_arcs.begin(), suspicious_arcs.end());
  suspicious_arcs.erase(
      std::unique(suspicious_arcs.begin(), suspicious_arcs.end()),
      suspicious_arcs.end());
  result.suspicious_trades.reserve(suspicious_arcs.size());
  for (ArcId id : suspicious_arcs) {
    const Arc arc = net.arc(id);
    result.suspicious_trades.emplace_back(arc.src, arc.dst);
  }
  std::sort(result.suspicious_trades.begin(),
            result.suspicious_trades.end());

  if (options.include_intra_syndicate) {
    for (const IntraSyndicateTrade& trade : net.intra_syndicate_trades()) {
      IntraSyndicateFinding finding;
      finding.syndicate_node = trade.syndicate_node;
      finding.seller = trade.seller;
      finding.buyer = trade.buyer;
      finding.chain = InternalChain(net.node(trade.syndicate_node),
                                    trade.seller, trade.buyer);
      result.intra_syndicate.push_back(std::move(finding));
    }
  }

  close_stage(&result.timings.finalize_seconds,
              &result.timings.finalize_cpu_seconds);
  result.timings.total_seconds = total_timer.ElapsedSeconds();
  TPIIN_COUNTER_ADD("detect.trails", result.num_trails);
  TPIIN_COUNTER_ADD("detect.groups", result.TotalGroups());
  TPIIN_COUNTER_ADD("detect.suspicious_trades",
                    result.suspicious_trades.size());
  return result;
}

void AddDetectionToReport(const DetectionResult& result, size_t top_k,
                          RunReport* report) {
  const DetectionTimings& t = result.timings;
  report->AddStage("segment", t.segment_seconds, t.segment_cpu_seconds);
  report->AddStage("mine", t.mine_seconds, t.mine_cpu_seconds);
  report->AddStage("finalize", t.finalize_seconds, t.finalize_cpu_seconds);
  report->set_total_seconds(t.total_seconds);

  ReportSection& section = report->Section("detection");
  section.Set("num_subtpiins", result.num_subtpiins);
  section.Set("num_trails", result.num_trails);
  section.Set("num_simple", result.num_simple);
  section.Set("num_complex", result.num_complex);
  section.Set("num_cycle_groups", result.num_cycle_groups);
  section.Set("num_intra_syndicate", result.intra_syndicate.size());
  section.Set("total_groups", result.TotalGroups());
  section.Set("suspicious_trades", result.suspicious_trades.size());
  section.Set("total_trading_arcs", result.total_trading_arcs);
  section.Set("suspicious_trade_percent", result.SuspiciousTradePercent());
  section.Set("truncated", result.truncated);
  section.Set("degraded", result.degraded);
  section.Set("num_skipped_subtpiins", result.num_skipped_subs);
  section.Set("pattern_worker_seconds", t.pattern_seconds);
  section.Set("match_worker_seconds", t.match_seconds);

  ReportSection& seg = report->Section("segmentation");
  seg.Set("num_components", result.segment_stats.num_components);
  seg.Set("num_emitted", result.segment_stats.num_emitted);
  seg.Set("trading_arcs_internal",
          result.segment_stats.trading_arcs_internal);
  seg.Set("trading_arcs_cross", result.segment_stats.trading_arcs_cross);

  // Degradation table: one row per subTPIIN that was skipped or
  // truncated by the RunBudget, in emission order, so a degraded run
  // documents exactly which components its answer is missing.
  if (result.degraded) {
    ReportTable& skipped = report->AddTable(
        "degraded_subtpiins", {"index", "nodes", "arcs", "reason"});
    for (const SubTpiinProfile& p : result.sub_profiles) {
      if (p.skip == SubSkip::kNone) continue;
      skipped.AddRow()
          .Append(p.index)
          .Append(p.num_nodes)
          .Append(p.num_arcs)
          .Append(SubSkipName(p.skip));
    }
  }

  // Top-K slowest subTPIINs by worker seconds; ties break toward the
  // lower emission index so the table is deterministic.
  std::vector<const SubTpiinProfile*> ranked;
  ranked.reserve(result.sub_profiles.size());
  for (const SubTpiinProfile& profile : result.sub_profiles) {
    ranked.push_back(&profile);
  }
  const size_t k = std::min(top_k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    [](const SubTpiinProfile* a, const SubTpiinProfile* b) {
                      if (a->Seconds() != b->Seconds()) {
                        return a->Seconds() > b->Seconds();
                      }
                      return a->index < b->index;
                    });
  ReportTable& table = report->AddTable(
      "slowest_subtpiins",
      {"index", "nodes", "arcs", "trails", "groups", "pattern_seconds",
       "match_seconds"});
  for (size_t i = 0; i < k; ++i) {
    const SubTpiinProfile& p = *ranked[i];
    table.AddRow()
        .Append(p.index)
        .Append(p.num_nodes)
        .Append(p.num_arcs)
        .Append(p.num_trails)
        .Append(p.num_groups)
        .Append(p.pattern_seconds)
        .Append(p.match_seconds);
  }
}

}  // namespace tpiin

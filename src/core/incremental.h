#ifndef TPIIN_CORE_INCREMENTAL_H_
#define TPIIN_CORE_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// Online screening of new trading relationships against a fixed
/// antecedent network.
///
/// The paper's production setting (§1: a billion tax records a year,
/// ten-million daily peaks) does not re-mine the whole TPIIN per
/// receipt. The relationship (antecedent) layer changes slowly; the
/// trading layer streams. IncrementalScreener preprocesses the
/// antecedent DAG once — the set of antecedent-or-self nodes reaching
/// every company — after which each new seller -> buyer relationship is
/// classified in O(|anc(seller)| + |anc(buyer)|) by sorted-set
/// intersection, with a witness antecedent for the investigator.
///
/// Arc-level agreement with Algorithm 1 is exact (property-tested):
/// a trading relationship participates in a suspicious group iff the
/// parties share a common antecedent-or-self, which is precisely the
/// intersection test.
class IncrementalScreener {
 public:
  /// Preprocesses the antecedent layer of `net` (trading arcs in `net`
  /// are ignored — they are what gets screened). O(V + E + output).
  /// Returns FailedPrecondition when the antecedent layer is cyclic —
  /// possible for networks read from untrusted edge-list files, which
  /// only validate per-arc fields, not global acyclicity.
  static Result<IncrementalScreener> Create(const Tpiin& net);

  /// Convenience for networks whose antecedent layer is known to be a
  /// DAG (anything built by the fusion pipeline, which fuses influence
  /// from validated datasets). CHECK-fails on a cyclic layer; callers
  /// holding externally supplied networks must use Create() instead.
  explicit IncrementalScreener(const Tpiin& net);

  /// True iff a (new) trading relationship seller -> buyer would be
  /// suspicious. Both must be Company nodes of the preprocessed network.
  bool IsSuspicious(NodeId seller, NodeId buyer) const;

  /// A shared antecedent-or-self node proving suspicion (the smallest
  /// node id among them, deterministic), or nullopt when unsuspicious.
  std::optional<NodeId> CommonAntecedent(NodeId seller, NodeId buyer) const;

  /// Sorted antecedent-or-self set of a node.
  const std::vector<NodeId>& AncestorsOrSelf(NodeId node) const {
    return ancestors_[node];
  }

  /// Total preprocessed set elements (memory gauge).
  size_t TotalAncestorEntries() const { return total_entries_; }

 private:
  IncrementalScreener() = default;

  std::vector<std::vector<NodeId>> ancestors_;
  size_t total_entries_ = 0;
};

}  // namespace tpiin

#endif  // TPIIN_CORE_INCREMENTAL_H_

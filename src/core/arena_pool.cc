#include "core/arena_pool.h"

#include <functional>
#include <thread>

namespace tpiin {

ArenaPool::Shard& ArenaPool::LocalShard() {
  const size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kNumShards];
}

PatternScratch ArenaPool::Acquire() {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = LocalShard();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.free_list.empty()) {
      PatternScratch scratch = std::move(shard.free_list.back());
      shard.free_list.pop_back();
      hits_.fetch_add(1, std::memory_order_relaxed);
      return scratch;
    }
  }
  return PatternScratch{};
}

void ArenaPool::Release(PatternScratch scratch) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.free_list.push_back(std::move(scratch));
}

}  // namespace tpiin

#include "core/arena_pool.h"

#include <functional>
#include <thread>

#include "obs/metrics.h"

namespace tpiin {

ArenaPool::Shard& ArenaPool::LocalShard() {
  const size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kNumShards];
}

PatternScratch ArenaPool::Acquire() {
  acquires_.fetch_add(1, std::memory_order_relaxed);
  TPIIN_COUNTER_ADD("arena.acquires", 1);
  Shard& shard = LocalShard();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.free_list.empty()) {
      PatternScratch scratch = std::move(shard.free_list.back());
      shard.free_list.pop_back();
      hits_.fetch_add(1, std::memory_order_relaxed);
      TPIIN_COUNTER_ADD("arena.hits", 1);
      return scratch;
    }
  }
  TPIIN_COUNTER_ADD("arena.misses", 1);
  return PatternScratch{};
}

void ArenaPool::Release(PatternScratch scratch) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.free_list.push_back(std::move(scratch));
}

}  // namespace tpiin

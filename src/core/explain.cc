#include "core/explain.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace tpiin {

namespace {

// "A -> B -> C" over node labels.
std::string TrailNarrative(const Tpiin& net,
                           const std::vector<NodeId>& nodes) {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += " -> ";
    out += net.Label(nodes[i]);
  }
  return out;
}

}  // namespace

CompanyDossier BuildCompanyDossier(const Tpiin& /*net*/,
                                   const DetectionResult& detection,
                                   const ScoringResult& scoring,
                                   NodeId company) {
  CompanyDossier dossier;
  dossier.company = company;

  std::map<NodeId, CompanyDossier::FlaggedTrade> trades;
  for (const ScoredTrade& trade : scoring.ranked_trades) {
    bool selling = trade.seller == company;
    bool buying = trade.buyer == company;
    if (!selling && !buying) continue;
    CompanyDossier::FlaggedTrade flagged;
    flagged.counterparty = selling ? trade.buyer : trade.seller;
    flagged.company_is_seller = selling;
    flagged.score = trade.score;
    flagged.group_count = trade.group_count;
    trades.emplace(flagged.counterparty, flagged);
  }
  dossier.trades.reserve(trades.size());
  for (const auto& [counterparty, flagged] : trades) {
    dossier.trades.push_back(flagged);
  }
  std::sort(dossier.trades.begin(), dossier.trades.end(),
            [](const CompanyDossier::FlaggedTrade& a,
               const CompanyDossier::FlaggedTrade& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.counterparty < b.counterparty;
            });

  std::set<NodeId> antecedents;
  for (const SuspiciousGroup& group : detection.groups) {
    if (std::find(group.members.begin(), group.members.end(), company) ==
        group.members.end()) {
      continue;
    }
    dossier.groups.push_back(&group);
    antecedents.insert(group.antecedent);
  }
  dossier.antecedents.assign(antecedents.begin(), antecedents.end());
  return dossier;
}

std::string ExplainGroup(const Tpiin& net, const SuspiciousGroup& group) {
  std::string out;
  if (group.from_cycle) {
    out += StringPrintf(
        "Circle: %s controls a chain %s whose end (%s) sells back to it.",
        std::string(net.Label(group.antecedent)).c_str(),
        TrailNarrative(net, group.trade_trail).c_str(),
        std::string(net.Label(group.trade_seller)).c_str());
    return out;
  }
  out += "Antecedent ";
  out += net.Label(group.antecedent);
  out += " reaches the seller via [";
  out += TrailNarrative(net, group.trade_trail);
  out += "] and the buyer via [";
  out += TrailNarrative(net, group.partner_trail);
  out += "]; the IAT is ";
  out += net.Label(group.trade_seller);
  out += " -> ";
  out += net.Label(group.trade_buyer);
  out += group.is_simple ? " (simple group)." : " (complex group).";
  return out;
}

std::string FormatCompanyDossier(const Tpiin& net,
                                 const CompanyDossier& dossier) {
  std::string out = "Preliminary analysis: ";
  out += net.Label(dossier.company);
  const TpiinNode& node = net.node(dossier.company);
  if (node.IsSyndicate()) {
    out += StringPrintf(" (syndicate of %zu companies)",
                        node.company_members.size());
  }
  out += "\n";

  if (dossier.trades.empty()) {
    out += "  No suspicious trading relationships.\n";
    return out;
  }

  out += StringPrintf("  %zu suspicious trading relationship(s):\n",
                      dossier.trades.size());
  for (const CompanyDossier::FlaggedTrade& trade : dossier.trades) {
    out += StringPrintf(
        "    %s %s  (suspicion %.4f, %zu proof chain(s))\n",
        trade.company_is_seller ? "sells to" : "buys from",
        std::string(net.Label(trade.counterparty)).c_str(), trade.score,
        trade.group_count);
  }

  out += "  Implicated antecedents: ";
  for (size_t i = 0; i < dossier.antecedents.size(); ++i) {
    if (i > 0) out += ", ";
    out += net.Label(dossier.antecedents[i]);
  }
  out += "\n  Proof chains:\n";
  for (const SuspiciousGroup* group : dossier.groups) {
    out += "    ";
    out += ExplainGroup(net, *group);
    out += "\n";
  }
  return out;
}

}  // namespace tpiin

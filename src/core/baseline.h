#ifndef TPIIN_CORE_BASELINE_H_
#define TPIIN_CORE_BASELINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/matcher.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// Where the global traversal starts its trail enumeration.
enum class BaselineAnchor {
  /// Anchor only at influence-indegree-zero nodes. With this setting the
  /// baseline's group set is provably identical to the proposed method's
  /// pairwise matches — the completeness oracle used by the property
  /// tests ("accuracy 100%" columns of Table 1).
  kIndegreeZeroOnly,
  /// Anchor at every node ("find all trails between any two different
  /// nodes", §5.1). Finds additional groups anchored mid-DAG; the set of
  /// suspicious trading arcs is nevertheless identical to the proposed
  /// method's, which the property tests also verify.
  kAllNodes,
};

struct BaselineOptions {
  BaselineAnchor anchor = BaselineAnchor::kIndegreeZeroOnly;
  bool collect_groups = true;

  /// Check every pair of enumerated trails against Definition 2, as the
  /// paper's description reads ("check whether any two of these trails
  /// form a suspicious group") — O(trails^2) per anchor instead of
  /// hash-indexed pairing. Same output, much slower; bench_scaling uses
  /// it to quantify the gap Algorithm 1 closes.
  bool naive_pairing = false;

  /// Safety valve; 0 = unlimited.
  size_t max_groups = 0;
};

struct BaselineResult {
  std::vector<SuspiciousGroup> groups;  // Iff collect_groups.
  size_t num_simple = 0;
  size_t num_complex = 0;
  /// Seller/buyer node pairs, sorted and deduplicated.
  std::vector<std::pair<NodeId, NodeId>> suspicious_trades;
  size_t num_trails_enumerated = 0;
  bool truncated = false;
};

/// The paper's comparison baseline (§5.1): a global traversing algorithm
/// that enumerates every directed trail in the whole TPIIN — no
/// segmentation, no pattern tree — and tests every trail pair against
/// Definition 2. Exponentially many trails exist in principle; the
/// antecedent DAG keeps it finite but much slower than Algorithm 1,
/// which bench_scaling quantifies.
BaselineResult DetectBaseline(const Tpiin& net,
                              const BaselineOptions& options = {});

}  // namespace tpiin

#endif  // TPIIN_CORE_BASELINE_H_

#ifndef TPIIN_CORE_ARENA_POOL_H_
#define TPIIN_CORE_ARENA_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/pattern_tree.h"

namespace tpiin {

/// A recycling pool of PatternScratch buffers (PatternBase arena +
/// PatternsTree storage) for serving-style workloads that call
/// DetectSuspiciousGroups repeatedly: after a warm-up run the pool holds
/// one grown buffer per worker, so subsequent runs generate every
/// pattern base into retained capacity instead of reallocating.
///
/// The pool is sharded by calling thread: each shard is a mutex-guarded
/// free list selected by a hash of the thread id, so a pool worker's
/// Release/Acquire pair is one uncontended lock and tends to hand back
/// the very buffer that worker warmed (thread-local reuse without
/// thread_local lifetime hazards). Buffers returned to a different
/// shard than they came from are still found by that shard's next
/// Acquire — the sharding is a fast path, not a correctness condition.
///
/// Pooling never changes results: a cleared buffer is content-equal to
/// a fresh one (asserted by tests/core/arena_pool_test.cc).
class ArenaPool {
 public:
  ArenaPool() = default;
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// Pops a recycled buffer from the calling thread's shard, or
  /// default-constructs one on a pool miss.
  PatternScratch Acquire();

  /// Returns a buffer to the calling thread's shard for reuse. The
  /// buffer need not be cleared; the next generation run clears it
  /// (keeping capacity).
  void Release(PatternScratch scratch);

  /// Total Acquire calls, and how many of them were served from a free
  /// list. A warmed-up serving loop converges to hits == acquires.
  uint64_t num_acquires() const {
    return acquires_.load(std::memory_order_relaxed);
  }
  uint64_t num_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<PatternScratch> free_list;
  };

  Shard& LocalShard();

  static constexpr size_t kNumShards = 16;
  std::array<Shard, kNumShards> shards_;
  std::atomic<uint64_t> acquires_{0};
  std::atomic<uint64_t> hits_{0};
};

}  // namespace tpiin

#endif  // TPIIN_CORE_ARENA_POOL_H_

#ifndef TPIIN_CORE_MATCHER_H_
#define TPIIN_CORE_MATCHER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/component_pattern.h"
#include "core/subtpiin.h"

namespace tpiin {

/// A detected suspicious tax evasion group (Definition 2): two component
/// patterns with the same antecedent node joined by exactly one
/// interest-affiliated trading arc into the shared end node.
///
/// All node ids are TPIIN (global) ids.
struct SuspiciousGroup {
  /// A1, the shared antecedent behind the IAT.
  NodeId antecedent = kInvalidNode;

  /// Component pattern 1, the trade-carrying trail: influence nodes
  /// A1..Am followed by the trading arc seller -> buyer
  /// (seller == trade_trail.back()).
  std::vector<NodeId> trade_trail;
  NodeId trade_seller = kInvalidNode;
  NodeId trade_buyer = kInvalidNode;

  /// Component pattern 2: influence trail A1..buyer (last element equals
  /// trade_buyer).
  std::vector<NodeId> partner_trail;

  /// Definition 3: true when the two trails share no node besides the
  /// start (antecedent) and end (buyer).
  bool is_simple = false;

  /// True for groups produced by the paper's in-trail circle special
  /// case (a cycle inside one InOT-FTAOP walk); these are reported in
  /// addition to the pairwise matches and counted separately.
  bool from_cycle = false;

  /// Sorted union of the nodes of both trails plus the buyer.
  std::vector<NodeId> members;

  /// Renders "antecedent: trail1 | trail2" with node labels.
  std::string Format(const Tpiin& net) const;
};

struct MatchOptions {
  /// Materialize SuspiciousGroup records. Counting-only runs (large
  /// Table 1 sweeps) can disable this and keep just the counters.
  bool collect_groups = true;

  /// Also emit the paper's in-trail circle groups.
  bool detect_cycles = true;

  /// Safety valve; 0 = unlimited.
  size_t max_groups = 0;
};

struct MatchResult {
  std::vector<SuspiciousGroup> groups;  // Iff collect_groups.

  // Counters are always maintained (pairwise matches only).
  size_t num_simple = 0;
  size_t num_complex = 0;
  size_t num_cycle_groups = 0;

  /// Global arc ids of the trading arcs participating in at least one
  /// group (pairwise or cycle), deduplicated and sorted.
  std::vector<ArcId> suspicious_trading_arcs;

  bool truncated = false;
};

/// The component-pattern matching step (Algorithm 1 step 8 / Appendix B,
/// reconstructed): within each antecedent root's trail family, every
/// trade-terminated trail {A1..Am -> Cj} is matched with every influence
/// prefix {A1..Cj} found in the family (in another trail or in the
/// trail's own element list), and each deduplicated pair becomes one
/// suspicious group. A trail whose trade target re-enters its own
/// element list additionally yields an in-trail circle group anchored at
/// the re-entered node.
///
/// This flat-base formulation mirrors the paper's Fig. 10 presentation
/// and is kept as the readable reference; production mining uses
/// MatchPatternsTree, which produces the identical result without
/// re-deduplicating shared prefixes (tests assert the equivalence).
MatchResult MatchPatterns(const SubTpiin& sub, const PatternBase& base,
                          const MatchOptions& options = {});

struct PatternsTree;  // pattern_tree.h

/// Tree-driven matching: a patterns-tree node uniquely identifies one
/// trail from its root, so the partner component patterns of a trading
/// leaf ending at Cj are exactly the tree nodes labeled Cj in the same
/// root subtree — no prefix extraction or deduplication. Output is
/// identical to MatchPatterns on the corresponding base.
MatchResult MatchPatternsTree(const SubTpiin& sub, const PatternsTree& tree,
                              const MatchOptions& options = {});

}  // namespace tpiin

#endif  // TPIIN_CORE_MATCHER_H_

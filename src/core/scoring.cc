#include "core/scoring.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace tpiin {

namespace {

uint64_t PairKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Influence-arc weight lookup keyed by (src, dst). The TPIIN builder
// deduplicates arcs, so the key is unique.
std::unordered_map<uint64_t, double> BuildWeightIndex(const Tpiin& net) {
  std::unordered_map<uint64_t, double> index;
  index.reserve(net.num_influence_arcs() * 2);
  for (ArcId id = 0; id < net.num_influence_arcs(); ++id) {
    const Arc arc = net.arc(id);
    index.emplace(PairKey(arc.src, arc.dst), net.ArcWeight(id));
  }
  return index;
}

double TrailStrength(const std::vector<NodeId>& nodes,
                     const std::unordered_map<uint64_t, double>& weights,
                     ScoringOptions::TrailAggregation aggregation) {
  double strength = 1.0;
  for (size_t i = 1; i < nodes.size(); ++i) {
    auto it = weights.find(PairKey(nodes[i - 1], nodes[i]));
    // Trails come from the same TPIIN, so every hop must be present.
    TPIIN_CHECK(it != weights.end()) << "missing influence arc in trail";
    if (aggregation == ScoringOptions::TrailAggregation::kProduct) {
      strength *= it->second;
    } else {
      strength = std::min(strength, it->second);
    }
  }
  return strength;
}

}  // namespace

ScoringResult ScoreDetection(const Tpiin& net,
                             const DetectionResult& detection,
                             const ScoringOptions& options) {
  ScoringResult result;
  std::unordered_map<uint64_t, double> weights = BuildWeightIndex(net);

  // Noisy-or accumulator per trading relationship: the probability-like
  // reading "at least one proof chain is real" grows with every
  // independent group. Stored as the complement product.
  std::unordered_map<uint64_t, std::pair<double, size_t>> accumulator;

  result.group_scores.reserve(detection.groups.size());
  for (const SuspiciousGroup& group : detection.groups) {
    double s1 = TrailStrength(group.trade_trail, weights,
                              options.aggregation);
    double s2 = TrailStrength(group.partner_trail, weights,
                              options.aggregation);
    double score =
        options.aggregation == ScoringOptions::TrailAggregation::kProduct
            ? s1 * s2
            : std::min(s1, s2);
    result.group_scores.push_back(score);

    auto& [complement, count] =
        accumulator[PairKey(group.trade_seller, group.trade_buyer)];
    if (count == 0) complement = 1.0;
    complement *= (1.0 - score);
    ++count;
  }

  for (const IntraSyndicateFinding& finding : detection.intra_syndicate) {
    // A strongly connected shareholding circle is maximal evidence.
    auto& [complement, count] = accumulator[PairKey(
        finding.syndicate_node, finding.syndicate_node)];
    complement = 0.0;
    ++count;
  }

  result.ranked_trades.reserve(accumulator.size());
  for (const auto& [key, entry] : accumulator) {
    ScoredTrade trade;
    trade.seller = static_cast<NodeId>(key >> 32);
    trade.buyer = static_cast<NodeId>(key & 0xffffffffu);
    trade.score = 1.0 - entry.first;
    trade.group_count = entry.second;
    result.ranked_trades.push_back(trade);
  }
  std::sort(result.ranked_trades.begin(), result.ranked_trades.end(),
            [](const ScoredTrade& a, const ScoredTrade& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.seller != b.seller) return a.seller < b.seller;
              return a.buyer < b.buyer;
            });
  return result;
}

}  // namespace tpiin

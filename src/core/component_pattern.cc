#include "core/component_pattern.h"

#include "common/string_util.h"

namespace tpiin {

std::string PatternBase::TrailView::Format(const SubTpiin& sub) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ", ";
    out += sub.Label(nodes[i]);
  }
  if (has_trade()) {
    out += " -> ";
    out += sub.Label(trade_dst);
  }
  return out;
}

std::string FormatPatternBase(const SubTpiin& sub, const PatternBase& base) {
  std::string out;
  for (size_t i = 0; i < base.size(); ++i) {
    out += StringPrintf("%zu. ", i + 1);
    out += base[i].Format(sub);
    out += '\n';
  }
  return out;
}

}  // namespace tpiin

#ifndef TPIIN_CORE_PATTERN_TREE_H_
#define TPIIN_CORE_PATTERN_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "core/component_pattern.h"
#include "core/subtpiin.h"

namespace tpiin {

/// Row of the paper's `listD` node ordering (Fig. 9(a)): nodes sorted by
/// increasing indegree, then decreasing outdegree, then node id. Degrees
/// are computed over the whole subTPIIN (influence and trading arcs).
struct ListDEntry {
  NodeId node = kInvalidNode;
  uint32_t in_degree = 0;
  uint32_t out_degree = 0;
};

std::vector<ListDEntry> ComputeListD(const SubTpiin& sub);

/// The patterns tree (Fig. 9(b)): every DFS visit becomes a tree node, so
/// a tree node uniquely identifies one directed trail from an
/// indegree-zero root (the path root -> ... -> node). Shared prefixes are
/// stored once — the reason the paper builds a tree rather than a flat
/// trail list, and what makes component-pattern matching linear in the
/// number of matched pairs (see MatchPatternsTree).
struct PatternsTree {
  struct TreeNode {
    NodeId graph_node = kInvalidNode;
    int32_t parent = -1;            // Index into `nodes`; -1 for roots.
    bool via_trading_arc = false;   // Arc from the parent was trading.
    ArcId via_arc = kInvalidArc;    // Local arc id from the parent.
  };

  /// Nodes in DFS order; each root's subtree occupies a contiguous
  /// range, delimited by `roots` (plus nodes.size() as the last bound).
  std::vector<TreeNode> nodes;
  std::vector<int32_t> roots;

  /// Graph nodes along the path from the tree root to `index`,
  /// inclusive.
  std::vector<NodeId> PathTo(int32_t index) const;

  /// Allocation-free variant: clears and fills `*out`. Matching calls
  /// this once per emitted group; reusing the buffer keeps the hot loop
  /// free of per-pattern allocations.
  void PathTo(int32_t index, std::vector<NodeId>* out) const;

  /// Removes every tree node but keeps vector capacity, for recycling
  /// across GeneratePatternBase calls (see core/arena_pool.h).
  void Clear() {
    nodes.clear();
    roots.clear();
  }

  /// Indented textual rendering (Fig. 9(b) style).
  std::string ToString(const SubTpiin& sub) const;
};

/// Reusable generation buffers: a PatternBase arena plus a PatternsTree.
/// When handed to GeneratePatternBase via PatternGenOptions::scratch,
/// the generator moves the buffers into its result (cleared, capacity
/// kept) instead of default-constructing them, so a caller that recycles
/// the buffers — typically through an ArenaPool (core/arena_pool.h) —
/// stops paying per-subTPIIN reallocation on repeated detection runs.
struct PatternScratch {
  PatternBase base;
  PatternsTree tree;
};

struct PatternGenOptions {
  /// Materialize the trail list (the potential component patterns base,
  /// Fig. 10). Mining itself only needs the tree; the detector turns
  /// this off.
  bool emit_trails = true;

  /// Build the patterns tree. On by default — matching consumes it.
  bool build_tree = true;

  /// Emit roots in listD order (paper fidelity). When false, roots come
  /// in node-id order; the resulting base is a permutation.
  bool order_roots_by_list_d = true;

  /// Safety valves for adversarial inputs; 0 = unlimited.
  size_t max_trails = 0;
  size_t max_trail_length = 0;

  /// Time budget for this generation (graceful degradation). When it
  /// expires mid-walk the DFS unwinds cleanly and returns whatever was
  /// emitted so far with truncated and deadline_expired set — a partial
  /// base is still a valid base (every emitted trail is complete), it
  /// just under-approximates the pattern set. Unlimited by default.
  Deadline deadline;

  /// Traverse the CSR FrozenGraph view (color-partitioned spans, no
  /// per-arc branch) when `sub.frozen_in_sync()`. The adjacency-list
  /// driver remains as the fallback for un-frozen SubTpiins and as the
  /// reference implementation for the equivalence tests; both emit
  /// bit-identical results.
  bool use_frozen_graph = true;

  /// Optional recycled buffers: when set, generation takes over
  /// scratch->base/tree storage (cleared, capacity kept) for the
  /// returned result instead of growing fresh vectors. The emitted
  /// content is identical with or without scratch.
  PatternScratch* scratch = nullptr;
};

struct PatternGenResult {
  PatternBase base;   // Populated iff options.emit_trails.
  PatternsTree tree;  // Populated iff options.build_tree.
  size_t num_trails = 0;  // Always counted (Rule 1 + Rule 2 stops).
  bool truncated = false;
  /// Truncation was (at least in part) caused by the deadline rather
  /// than the max_trails/max_trail_length valves.
  bool deadline_expired = false;
};

/// Algorithm 2: builds the patterns tree of `sub` by depth-first search
/// from every indegree-zero node, ending each walk at an outdegree-zero
/// node (Rule 1) or right after the first trading arc (Rule 2), and
/// emits each root-to-stop trail into the potential component patterns
/// base.
///
/// Returns FailedPrecondition if the influence (antecedent) subgraph of
/// `sub` contains a directed cycle — Property 1 requires a DAG, and
/// TPIINs built through fusion or TpiinBuilder guarantee it.
Result<PatternGenResult> GeneratePatternBase(
    const SubTpiin& sub, const PatternGenOptions& options = {});

}  // namespace tpiin

#endif  // TPIIN_CORE_PATTERN_TREE_H_

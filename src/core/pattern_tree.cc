#include "core/pattern_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace tpiin {

std::vector<ListDEntry> ComputeListD(const SubTpiin& sub) {
  const NodeId n = sub.graph.NumNodes();
  std::vector<ListDEntry> list(n);
  if (sub.frozen_in_sync()) {
    // CSR fast path: both degrees are O(1) offset subtractions.
    const FrozenGraph& fg = sub.frozen;
    for (NodeId v = 0; v < n; ++v) {
      list[v].node = v;
      list[v].out_degree = fg.OutDegree(v);
      list[v].in_degree = fg.InDegree(v);
    }
  } else {
    const Digraph& g = sub.graph;
    for (NodeId v = 0; v < n; ++v) {
      list[v].node = v;
      list[v].out_degree = g.OutDegree(v);
    }
    for (const Arc& arc : g.arcs()) ++list[arc.dst].in_degree;
  }
  std::sort(list.begin(), list.end(),
            [](const ListDEntry& a, const ListDEntry& b) {
              if (a.in_degree != b.in_degree) {
                return a.in_degree < b.in_degree;
              }
              if (a.out_degree != b.out_degree) {
                return a.out_degree > b.out_degree;
              }
              return a.node < b.node;
            });
  return list;
}

std::vector<NodeId> PatternsTree::PathTo(int32_t index) const {
  std::vector<NodeId> path;
  PathTo(index, &path);
  return path;
}

void PatternsTree::PathTo(int32_t index, std::vector<NodeId>* out) const {
  out->clear();
  for (int32_t i = index; i >= 0; i = nodes[i].parent) {
    out->push_back(nodes[i].graph_node);
  }
  std::reverse(out->begin(), out->end());
}

std::string PatternsTree::ToString(const SubTpiin& sub) const {
  // Children lists are not stored; rebuild them for display.
  std::vector<std::vector<int32_t>> children(nodes.size());
  for (int32_t i = 0; i < static_cast<int32_t>(nodes.size()); ++i) {
    if (nodes[i].parent >= 0) children[nodes[i].parent].push_back(i);
  }
  std::string out;
  struct Item {
    int32_t index;
    int depth;
  };
  std::vector<Item> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const TreeNode& tn = nodes[item.index];
    out.append(static_cast<size_t>(item.depth) * 2, ' ');
    if (tn.via_trading_arc) out += "-> ";
    out += sub.Label(tn.graph_node);
    out += '\n';
    const std::vector<int32_t>& kids = children[item.index];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, item.depth + 1});
    }
  }
  return out;
}

namespace {

// Emission state shared by the two DFS drivers: the trail budget, the
// arena-backed trail base and the patterns tree all behave identically
// whichever adjacency representation feeds the walk.
struct TrailSink {
  const PatternGenOptions& options;
  PatternGenResult& result;
  std::vector<NodeId>& path;
  uint64_t budget_polls = 0;

  bool OverBudget() {
    if (options.max_trails != 0 &&
        result.num_trails >= options.max_trails) {
      return true;
    }
    if (result.deadline_expired) return true;
    // Poll the clock on a stride — OverBudget runs once per DFS step,
    // and a steady_clock read per step would dominate small subTPIINs.
    // The very first call polls too, so an already-expired deadline
    // truncates before any work happens.
    if (!options.deadline.unlimited() &&
        (++budget_polls & 0x3F) == 1 && options.deadline.Expired()) {
      result.deadline_expired = true;
      return true;
    }
    return false;
  }

  void EmitPlain() {
    ++result.num_trails;
    if (options.emit_trails) result.base.Append(path);
  }

  void EmitTrade(ArcId arc_id, NodeId dst) {
    ++result.num_trails;
    if (options.emit_trails) result.base.Append(path, dst, arc_id);
  }

  int32_t AddTreeNode(NodeId graph_node, int32_t parent, bool via_trade,
                      ArcId via_arc) {
    if (!options.build_tree) return -1;
    int32_t index = static_cast<int32_t>(result.tree.nodes.size());
    result.tree.nodes.push_back(
        PatternsTree::TreeNode{graph_node, parent, via_trade, via_arc});
    if (parent < 0) result.tree.roots.push_back(index);
    return index;
  }
};

struct Frame {
  NodeId node;
  uint32_t arc_pos;
  int32_t tree_index;
};

// Root selection shared by both drivers: nodes with zero *influence*
// indegree. On well-formed TPIINs (every company linked to a legal
// person) this equals the paper's "indegree-zero over the whole
// subTPIIN" rule, because Person nodes never receive arcs and Company
// nodes always have an incoming influence arc; on arbitrary hand-built
// networks the influence-based rule additionally guarantees completeness
// when a company heading an investment chain receives only trading arcs.
template <typename InfluenceInDegreeFn>
std::vector<NodeId> SelectRoots(const SubTpiin& sub,
                                const PatternGenOptions& options,
                                NodeId n,
                                const InfluenceInDegreeFn& influence_in) {
  std::vector<NodeId> roots;
  if (options.order_roots_by_list_d) {
    for (const ListDEntry& entry : ComputeListD(sub)) {
      if (influence_in(entry.node) == 0) roots.push_back(entry.node);
    }
  } else {
    for (NodeId v = 0; v < n; ++v) {
      if (influence_in(v) == 0) roots.push_back(v);
    }
  }
  return roots;
}

// Algorithm 2 over the CSR view: each frame walks its influence span
// (descents) and then sweeps its trading span (Rule 2 emissions) — no
// Arc struct load and no per-edge color branch anywhere. Because every
// subTPIIN stores each node's influence arcs before its trading arcs,
// the visit order — and therefore the emitted base, the patterns tree
// and every downstream match — is bit-identical to the adjacency-list
// driver below (asserted by tests/core/frozen_equivalence_test.cc).
Result<PatternGenResult> GenerateFrozen(const SubTpiin& sub,
                                        const PatternGenOptions& options,
                                        PatternGenResult result) {
  const FrozenGraph& fg = sub.frozen;
  const NodeId n = fg.NumNodes();

  // Property 1 requires the antecedent subgraph to be a DAG; verify
  // upfront (a cycle could otherwise hide in a rootless region the DFS
  // never enters). Kahn's algorithm over the influence spans.
  {
    std::vector<uint32_t> degree(n);
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v) {
      degree[v] = fg.InfluenceInDegree(v);
      if (degree[v] == 0) frontier.push_back(v);
    }
    NodeId processed = 0;
    while (!frontier.empty()) {
      NodeId u = frontier.back();
      frontier.pop_back();
      ++processed;
      for (NodeId dst : fg.InfluenceOut(u).nodes) {
        if (--degree[dst] == 0) frontier.push_back(dst);
      }
    }
    if (processed != n) {
      return Status::FailedPrecondition(
          "influence subgraph contains a directed cycle");
    }
  }

  std::vector<NodeId> roots = SelectRoots(
      sub, options, n, [&](NodeId v) { return fg.InfluenceInDegree(v); });

  std::vector<Frame> frames;
  std::vector<NodeId> path;
  std::vector<uint8_t> on_path(n, 0);
  TrailSink sink{options, result, path};

  for (NodeId root : roots) {
    if (sink.OverBudget()) {
      result.truncated = true;
      break;
    }
    int32_t root_tree = sink.AddTreeNode(root, -1, false, kInvalidArc);
    frames.push_back(Frame{root, 0, root_tree});
    path.push_back(root);
    on_path[root] = 1;
    if (fg.OutDegree(root) == 0) sink.EmitPlain();  // Rule 1 at the root.

    while (!frames.empty()) {
      if (sink.OverBudget()) {
        result.truncated = true;
        // Unwind cleanly so on_path/path stay consistent.
        for (const Frame& f : frames) on_path[f.node] = 0;
        frames.clear();
        path.clear();
        break;
      }
      Frame& frame = frames.back();
      AdjSpan influence = fg.InfluenceOut(frame.node);
      bool descended = false;
      bool length_capped = options.max_trail_length != 0 &&
                           path.size() >= options.max_trail_length;
      while (frame.arc_pos < influence.size()) {
        NodeId dst = influence.nodes[frame.arc_pos];
        ArcId arc_id = influence.arcs[frame.arc_pos];
        ++frame.arc_pos;
        if (on_path[dst]) {
          return Status::FailedPrecondition(
              "influence subgraph contains a directed cycle through " +
              std::string(sub.Label(dst)));
        }
        if (length_capped) {
          result.truncated = true;
          continue;
        }
        int32_t child_tree =
            sink.AddTreeNode(dst, frame.tree_index, false, arc_id);
        frames.push_back(Frame{dst, 0, child_tree});
        path.push_back(dst);
        on_path[dst] = 1;
        if (fg.OutDegree(dst) == 0) sink.EmitPlain();  // Rule 1.
        descended = true;
        break;
      }
      if (descended) continue;

      // Influence arcs exhausted: Rule 2 — every trading arc ends one
      // walk (Lemma 1 keeps it a trail even when the target already
      // lies on the path). Then backtrack.
      AdjSpan trades = fg.TradingOut(frame.node);
      for (size_t i = 0; i < trades.size(); ++i) {
        sink.EmitTrade(trades.arcs[i], trades.nodes[i]);
        sink.AddTreeNode(trades.nodes[i], frame.tree_index, true,
                         trades.arcs[i]);
      }
      on_path[frame.node] = 0;
      path.pop_back();
      frames.pop_back();
    }
  }

  return result;
}

// Algorithm 2 over the mutable adjacency lists — the seed
// implementation, kept as the reference path for hand-built SubTpiins
// that were never frozen and for the frozen-vs-legacy equivalence tests
// and benchmarks.
Result<PatternGenResult> GenerateLegacy(const SubTpiin& sub,
                                        const PatternGenOptions& options,
                                        PatternGenResult result) {
  const Digraph& g = sub.graph;
  const NodeId n = g.NumNodes();

  std::vector<uint32_t> influence_in(n, 0);
  for (ArcId id = 0; id < sub.num_influence_arcs; ++id) {
    ++influence_in[g.arc(id).dst];
  }

  // Property 1 DAG check (see GenerateFrozen).
  {
    std::vector<uint32_t> degree = influence_in;
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v) {
      if (degree[v] == 0) frontier.push_back(v);
    }
    NodeId processed = 0;
    while (!frontier.empty()) {
      NodeId u = frontier.back();
      frontier.pop_back();
      ++processed;
      for (ArcId id : g.OutArcs(u)) {
        const Arc& arc = g.arc(id);
        if (!IsInfluenceArc(arc)) continue;
        if (--degree[arc.dst] == 0) frontier.push_back(arc.dst);
      }
    }
    if (processed != n) {
      return Status::FailedPrecondition(
          "influence subgraph contains a directed cycle");
    }
  }

  std::vector<NodeId> roots = SelectRoots(
      sub, options, n, [&](NodeId v) { return influence_in[v]; });

  std::vector<Frame> frames;
  std::vector<NodeId> path;
  std::vector<uint8_t> on_path(n, 0);
  TrailSink sink{options, result, path};

  for (NodeId root : roots) {
    if (sink.OverBudget()) {
      result.truncated = true;
      break;
    }
    int32_t root_tree = sink.AddTreeNode(root, -1, false, kInvalidArc);
    frames.push_back(Frame{root, 0, root_tree});
    path.push_back(root);
    on_path[root] = 1;
    if (g.OutDegree(root) == 0) sink.EmitPlain();  // Rule 1 at the root.

    while (!frames.empty()) {
      if (sink.OverBudget()) {
        result.truncated = true;
        // Unwind cleanly so on_path/path stay consistent.
        for (const Frame& f : frames) on_path[f.node] = 0;
        frames.clear();
        path.clear();
        break;
      }
      Frame& frame = frames.back();
      std::span<const ArcId> out = g.OutArcs(frame.node);
      bool descended = false;
      bool length_capped = options.max_trail_length != 0 &&
                           path.size() >= options.max_trail_length;
      while (frame.arc_pos < out.size()) {
        ArcId arc_id = out[frame.arc_pos];
        ++frame.arc_pos;
        const Arc& arc = g.arc(arc_id);
        if (IsTradingArc(arc)) {
          // Rule 2: the first trading arc ends the walk (Lemma 1 keeps
          // it a trail even when arc.dst already lies on the path).
          sink.EmitTrade(arc_id, arc.dst);
          sink.AddTreeNode(arc.dst, frame.tree_index, true, arc_id);
          continue;
        }
        if (on_path[arc.dst]) {
          return Status::FailedPrecondition(
              "influence subgraph contains a directed cycle through " +
              std::string(sub.Label(arc.dst)));
        }
        if (length_capped) {
          result.truncated = true;
          continue;
        }
        int32_t child_tree =
            sink.AddTreeNode(arc.dst, frame.tree_index, false, arc_id);
        frames.push_back(Frame{arc.dst, 0, child_tree});
        path.push_back(arc.dst);
        on_path[arc.dst] = 1;
        if (g.OutDegree(arc.dst) == 0) sink.EmitPlain();  // Rule 1.
        descended = true;
        break;
      }
      if (!descended && !frames.empty() &&
          frames.back().arc_pos >= g.OutArcs(frames.back().node).size()) {
        on_path[frames.back().node] = 0;
        path.pop_back();
        frames.pop_back();
      }
    }
  }

  return result;
}

}  // namespace

Result<PatternGenResult> GeneratePatternBase(
    const SubTpiin& sub, const PatternGenOptions& options) {
  // Seed the result with recycled buffers when the caller provided
  // scratch: content-wise a cleared buffer equals a fresh one, so the
  // drivers are oblivious to where their storage came from.
  PatternGenResult seed;
  if (options.scratch != nullptr) {
    seed.base = std::move(options.scratch->base);
    seed.base.Clear();
    seed.tree = std::move(options.scratch->tree);
    seed.tree.Clear();
  }
  if (options.use_frozen_graph && sub.frozen_in_sync()) {
    return GenerateFrozen(sub, options, std::move(seed));
  }
  return GenerateLegacy(sub, options, std::move(seed));
}

}  // namespace tpiin

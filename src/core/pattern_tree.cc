#include "core/pattern_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace tpiin {

std::vector<ListDEntry> ComputeListD(const SubTpiin& sub) {
  const Digraph& g = sub.graph;
  const NodeId n = g.NumNodes();
  std::vector<ListDEntry> list(n);
  for (NodeId v = 0; v < n; ++v) {
    list[v].node = v;
    list[v].out_degree = g.OutDegree(v);
  }
  for (const Arc& arc : g.arcs()) ++list[arc.dst].in_degree;
  std::sort(list.begin(), list.end(),
            [](const ListDEntry& a, const ListDEntry& b) {
              if (a.in_degree != b.in_degree) {
                return a.in_degree < b.in_degree;
              }
              if (a.out_degree != b.out_degree) {
                return a.out_degree > b.out_degree;
              }
              return a.node < b.node;
            });
  return list;
}

std::vector<NodeId> PatternsTree::PathTo(int32_t index) const {
  std::vector<NodeId> path;
  for (int32_t i = index; i >= 0; i = nodes[i].parent) {
    path.push_back(nodes[i].graph_node);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string PatternsTree::ToString(const SubTpiin& sub) const {
  // Children lists are not stored; rebuild them for display.
  std::vector<std::vector<int32_t>> children(nodes.size());
  for (int32_t i = 0; i < static_cast<int32_t>(nodes.size()); ++i) {
    if (nodes[i].parent >= 0) children[nodes[i].parent].push_back(i);
  }
  std::string out;
  struct Item {
    int32_t index;
    int depth;
  };
  std::vector<Item> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const TreeNode& tn = nodes[item.index];
    out.append(static_cast<size_t>(item.depth) * 2, ' ');
    if (tn.via_trading_arc) out += "-> ";
    out += sub.Label(tn.graph_node);
    out += '\n';
    const std::vector<int32_t>& kids = children[item.index];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, item.depth + 1});
    }
  }
  return out;
}

Result<PatternGenResult> GeneratePatternBase(
    const SubTpiin& sub, const PatternGenOptions& options) {
  const Digraph& g = sub.graph;
  const NodeId n = g.NumNodes();
  PatternGenResult result;

  // Root selection: nodes with zero *influence* indegree. On well-formed
  // TPIINs (every company linked to a legal person) this equals the
  // paper's "indegree-zero over the whole subTPIIN" rule, because Person
  // nodes never receive arcs and Company nodes always have an incoming
  // influence arc; on arbitrary hand-built networks the influence-based
  // rule additionally guarantees completeness when a company heading an
  // investment chain receives only trading arcs.
  std::vector<uint32_t> influence_in(n, 0);
  for (ArcId id = 0; id < sub.num_influence_arcs; ++id) {
    ++influence_in[g.arc(id).dst];
  }

  // Property 1 requires the antecedent subgraph to be a DAG; verify
  // upfront (a cycle could otherwise hide in a rootless region the DFS
  // never enters).
  {
    std::vector<uint32_t> degree = influence_in;
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v) {
      if (degree[v] == 0) frontier.push_back(v);
    }
    NodeId processed = 0;
    while (!frontier.empty()) {
      NodeId u = frontier.back();
      frontier.pop_back();
      ++processed;
      for (ArcId id : g.OutArcs(u)) {
        const Arc& arc = g.arc(id);
        if (!IsInfluenceArc(arc)) continue;
        if (--degree[arc.dst] == 0) frontier.push_back(arc.dst);
      }
    }
    if (processed != n) {
      return Status::FailedPrecondition(
          "influence subgraph contains a directed cycle");
    }
  }

  std::vector<NodeId> roots;
  if (options.order_roots_by_list_d) {
    for (const ListDEntry& entry : ComputeListD(sub)) {
      if (influence_in[entry.node] == 0) roots.push_back(entry.node);
    }
  } else {
    for (NodeId v = 0; v < n; ++v) {
      if (influence_in[v] == 0) roots.push_back(v);
    }
  }

  struct Frame {
    NodeId node;
    uint32_t arc_pos;
    int32_t tree_index;
  };
  std::vector<Frame> frames;
  std::vector<NodeId> path;
  std::vector<uint8_t> on_path(n, 0);

  auto over_trail_budget = [&]() {
    return options.max_trails != 0 &&
           result.num_trails >= options.max_trails;
  };

  auto emit_plain = [&]() {
    ++result.num_trails;
    if (!options.emit_trails) return;
    Trail trail;
    trail.nodes = path;
    result.base.push_back(std::move(trail));
  };
  auto emit_trade = [&](ArcId arc_id, NodeId dst) {
    ++result.num_trails;
    if (!options.emit_trails) return;
    Trail trail;
    trail.nodes = path;
    trail.trade_dst = dst;
    trail.trade_arc = arc_id;
    result.base.push_back(std::move(trail));
  };

  auto add_tree_node = [&](NodeId graph_node, int32_t parent,
                           bool via_trade, ArcId via_arc) -> int32_t {
    if (!options.build_tree) return -1;
    int32_t index = static_cast<int32_t>(result.tree.nodes.size());
    result.tree.nodes.push_back(
        PatternsTree::TreeNode{graph_node, parent, via_trade, via_arc});
    if (parent < 0) result.tree.roots.push_back(index);
    return index;
  };

  for (NodeId root : roots) {
    if (over_trail_budget()) {
      result.truncated = true;
      break;
    }
    int32_t root_tree = add_tree_node(root, -1, false, kInvalidArc);
    frames.push_back(Frame{root, 0, root_tree});
    path.push_back(root);
    on_path[root] = 1;
    if (g.OutDegree(root) == 0) emit_plain();  // Rule 1 at the root.

    while (!frames.empty()) {
      if (over_trail_budget()) {
        result.truncated = true;
        // Unwind cleanly so on_path/path stay consistent.
        for (const Frame& f : frames) on_path[f.node] = 0;
        frames.clear();
        path.clear();
        break;
      }
      Frame& frame = frames.back();
      std::span<const ArcId> out = g.OutArcs(frame.node);
      bool descended = false;
      bool length_capped = options.max_trail_length != 0 &&
                           path.size() >= options.max_trail_length;
      while (frame.arc_pos < out.size()) {
        ArcId arc_id = out[frame.arc_pos];
        ++frame.arc_pos;
        const Arc& arc = g.arc(arc_id);
        if (IsTradingArc(arc)) {
          // Rule 2: the first trading arc ends the walk (Lemma 1 keeps
          // it a trail even when arc.dst already lies on the path).
          emit_trade(arc_id, arc.dst);
          add_tree_node(arc.dst, frame.tree_index, true, arc_id);
          continue;
        }
        if (on_path[arc.dst]) {
          return Status::FailedPrecondition(
              "influence subgraph contains a directed cycle through " +
              sub.Label(arc.dst));
        }
        if (length_capped) {
          result.truncated = true;
          continue;
        }
        int32_t child_tree =
            add_tree_node(arc.dst, frame.tree_index, false, arc_id);
        frames.push_back(Frame{arc.dst, 0, child_tree});
        path.push_back(arc.dst);
        on_path[arc.dst] = 1;
        if (g.OutDegree(arc.dst) == 0) emit_plain();  // Rule 1.
        descended = true;
        break;
      }
      if (!descended && !frames.empty() &&
          frames.back().arc_pos >= g.OutArcs(frames.back().node).size()) {
        on_path[frames.back().node] = 0;
        path.pop_back();
        frames.pop_back();
      }
    }
  }

  return result;
}

}  // namespace tpiin

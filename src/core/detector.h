#ifndef TPIIN_CORE_DETECTOR_H_
#define TPIIN_CORE_DETECTOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "core/matcher.h"
#include "core/subtpiin.h"
#include "fusion/tpiin.h"

namespace tpiin {

class ArenaPool;

/// A suspicious trade internal to a contracted investment SCC (§4.3
/// closing remark): seller and buyer sit in one strongly connected
/// shareholding circle, so a proof chain (the `chain` of original
/// companies from seller to buyer along internal investment arcs) always
/// exists and the trade is suspicious unconditionally.
struct IntraSyndicateFinding {
  NodeId syndicate_node = kInvalidNode;
  CompanyId seller = 0;
  CompanyId buyer = 0;
  /// seller, ..., buyer along internal investment arcs.
  std::vector<CompanyId> chain;
};

/// Resource envelope for one detection run (graceful degradation, §7's
/// "big data" operating point). All limits default to 0 = unlimited, in
/// which case detection behaves exactly as before — bit-identical at any
/// thread count. When a limit binds, the run *completes* with partial
/// results instead of failing: over-cap subTPIINs are skipped with a
/// recorded reason, over-deadline pattern walks truncate cleanly, and
/// the result carries `degraded = true` so callers (and the CLI, via
/// exit code 2) can tell a full answer from a best-effort one.
struct RunBudget {
  /// Wall-clock budget for the whole DetectSuspiciousGroups call,
  /// measured from its entry. Once expired, subTPIINs not yet started
  /// are skipped (reason kDeadline) and in-flight pattern walks
  /// truncate at their next poll.
  double deadline_seconds = 0;

  /// Per-subTPIIN slice: each subTPIIN's pattern generation gets at
  /// most this much wall time (the sooner of slice and global deadline
  /// applies), so one pathological component cannot starve the rest.
  double sub_slice_seconds = 0;

  /// Structural caps decided *before* mining in emission-index order —
  /// deterministic regardless of thread count or machine speed.
  /// SubTPIINs whose node/arc count exceeds a cap are skipped whole
  /// (reasons kNodeCap / kArcCap).
  size_t max_sub_nodes = 0;
  size_t max_sub_arcs = 0;

  bool Unlimited() const {
    return deadline_seconds <= 0 && sub_slice_seconds <= 0 &&
           max_sub_nodes == 0 && max_sub_arcs == 0;
  }
};

/// Why a subTPIIN produced no (or partial) mining output.
enum class SubSkip : uint8_t {
  kNone = 0,          ///< Mined normally.
  kNodeCap,           ///< Skipped: nodes > budget.max_sub_nodes.
  kArcCap,            ///< Skipped: arcs > budget.max_sub_arcs.
  kDeadline,          ///< Skipped: global deadline expired before start.
  kSliceTruncated,    ///< Mined, but the pattern walk hit its time slice
                      ///< (or the global deadline) and truncated.
};

/// Stable lowercase token for reports ("none", "node_cap", ...).
const char* SubSkipName(SubSkip skip);

struct DetectorOptions {
  MatchOptions match;
  /// Also materialize the flat trail bases (Fig. 10 artifacts); mining
  /// itself consumes only the patterns trees.
  bool emit_pattern_bases = false;
  /// Detect intra-syndicate trades.
  bool include_intra_syndicate = true;
  /// Trail-generation safety valves (0 = unlimited).
  size_t max_trails_per_subtpiin = 0;

  /// Traverse the CSR FrozenGraph views carried by the subTPIINs (see
  /// PatternGenOptions::use_frozen_graph). Off = force the legacy
  /// adjacency-list walk; results are bit-identical either way.
  bool use_frozen_graph = true;

  /// Worker threads for the per-subTPIIN stage (§7's parallel-processing
  /// direction; subTPIINs are independent by construction). 0 auto-detects
  /// hardware_concurrency(); 1 runs single-threaded. Work is executed on
  /// the shared persistent ThreadPool (no per-call thread spawn). Results
  /// are identical for any thread count; only the per-stage timing
  /// attribution differs (worker time is summed).
  uint32_t num_threads = 1;

  /// Optional caller-owned buffer pool (core/arena_pool.h), sized by the
  /// previous run: each worker acquires a recycled PatternBase/tree
  /// buffer per subTPIIN and releases it after matching, so repeated
  /// DetectSuspiciousGroups calls — the serving-style workload — stop
  /// reallocating generation storage. Must outlive the call; safe to
  /// share across concurrent calls. Results are identical with or
  /// without a pool.
  ArenaPool* arena_pool = nullptr;

  /// Resource envelope; all-zero (the default) means unlimited and
  /// changes nothing. See RunBudget.
  RunBudget budget;
};

/// Wall-clock attribution across Algorithm 1's stages. The wall stages
/// (segment + mine + finalize) partition the run, so their sum tracks
/// total_seconds; pattern/match_seconds are *worker* time summed across
/// threads inside the mine stage and can exceed mine_seconds.
struct DetectionTimings {
  double segment_seconds = 0;
  double mine_seconds = 0;      ///< Parallel per-subTPIIN stage (wall).
  double finalize_seconds = 0;  ///< Merge + dedup + intra-syndicate.
  double pattern_seconds = 0;   ///< Summed worker pattern-gen time.
  double match_seconds = 0;     ///< Summed worker matching time.
  double total_seconds = 0;
  double segment_cpu_seconds = 0;
  double mine_cpu_seconds = 0;
  double finalize_cpu_seconds = 0;
};

/// Per-subTPIIN work profile, kept for report breakdowns (the top-K
/// slowest table). Index-addressed, so identical at any thread count.
struct SubTpiinProfile {
  size_t index = 0;       ///< SegmentTpiin emission order.
  size_t num_nodes = 0;
  size_t num_arcs = 0;
  size_t num_trails = 0;
  size_t num_groups = 0;  ///< Matched groups (all kinds).
  double pattern_seconds = 0;
  double match_seconds = 0;
  /// Degradation record: anything but kNone means this subTPIIN's
  /// contribution is missing or partial (see RunBudget).
  SubSkip skip = SubSkip::kNone;
  double Seconds() const { return pattern_seconds + match_seconds; }
};

/// Aggregated output of Algorithm 1 over a whole TPIIN.
struct DetectionResult {
  std::vector<SuspiciousGroup> groups;  // Iff options.match.collect_groups.
  std::vector<IntraSyndicateFinding> intra_syndicate;

  size_t num_simple = 0;        // Pairwise simple groups.
  size_t num_complex = 0;       // Pairwise complex groups.
  size_t num_cycle_groups = 0;  // In-trail circle groups.

  /// Seller/buyer TPIIN node pairs of suspicious trading arcs, sorted and
  /// deduplicated (excludes intra-syndicate trades, reported above).
  std::vector<std::pair<NodeId, NodeId>> suspicious_trades;

  size_t total_trading_arcs = 0;  // Trading arcs in the TPIIN.
  size_t num_subtpiins = 0;
  size_t num_trails = 0;          // Component patterns generated.
  bool truncated = false;

  /// True when the run completed under a binding RunBudget limit:
  /// groups/trades are a sound but possibly incomplete answer. The CLI
  /// maps this to exit code 2. num_skipped_subs counts whole-subTPIIN
  /// skips (kNodeCap/kArcCap/kDeadline); slice truncations are visible
  /// per profile.
  bool degraded = false;
  size_t num_skipped_subs = 0;

  DetectionTimings timings;
  SegmentStats segment_stats;
  /// One profile per subTPIIN, in emission order.
  std::vector<SubTpiinProfile> sub_profiles;

  size_t TotalGroups() const {
    return num_simple + num_complex + num_cycle_groups +
           intra_syndicate.size();
  }

  /// Fraction of trading arcs flagged suspicious (Table 1 last column),
  /// in percent.
  double SuspiciousTradePercent() const;

  std::string Summary() const;
};

/// Algorithm 1: segments `net` into subTPIINs, generates each potential
/// component patterns base (Algorithm 2), matches component patterns
/// into suspicious groups, and handles intra-syndicate trades.
Result<DetectionResult> DetectSuspiciousGroups(
    const Tpiin& net, const DetectorOptions& options = {});

class RunReport;

/// Folds a detection run into `report`: the wall stages (segment, mine,
/// finalize), a "detection" section of scalar counts, a "segmentation"
/// section mirroring SegmentStats, and a "slowest_subtpiins" table of
/// the top-`top_k` subTPIINs by worker seconds.
void AddDetectionToReport(const DetectionResult& result, size_t top_k,
                          RunReport* report);

}  // namespace tpiin

#endif  // TPIIN_CORE_DETECTOR_H_

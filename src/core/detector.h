#ifndef TPIIN_CORE_DETECTOR_H_
#define TPIIN_CORE_DETECTOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/matcher.h"
#include "core/subtpiin.h"
#include "fusion/tpiin.h"

namespace tpiin {

class ArenaPool;

/// A suspicious trade internal to a contracted investment SCC (§4.3
/// closing remark): seller and buyer sit in one strongly connected
/// shareholding circle, so a proof chain (the `chain` of original
/// companies from seller to buyer along internal investment arcs) always
/// exists and the trade is suspicious unconditionally.
struct IntraSyndicateFinding {
  NodeId syndicate_node = kInvalidNode;
  CompanyId seller = 0;
  CompanyId buyer = 0;
  /// seller, ..., buyer along internal investment arcs.
  std::vector<CompanyId> chain;
};

struct DetectorOptions {
  MatchOptions match;
  /// Also materialize the flat trail bases (Fig. 10 artifacts); mining
  /// itself consumes only the patterns trees.
  bool emit_pattern_bases = false;
  /// Detect intra-syndicate trades.
  bool include_intra_syndicate = true;
  /// Trail-generation safety valves (0 = unlimited).
  size_t max_trails_per_subtpiin = 0;

  /// Traverse the CSR FrozenGraph views carried by the subTPIINs (see
  /// PatternGenOptions::use_frozen_graph). Off = force the legacy
  /// adjacency-list walk; results are bit-identical either way.
  bool use_frozen_graph = true;

  /// Worker threads for the per-subTPIIN stage (§7's parallel-processing
  /// direction; subTPIINs are independent by construction). 0 auto-detects
  /// hardware_concurrency(); 1 runs single-threaded. Work is executed on
  /// the shared persistent ThreadPool (no per-call thread spawn). Results
  /// are identical for any thread count; only the per-stage timing
  /// attribution differs (worker time is summed).
  uint32_t num_threads = 1;

  /// Optional caller-owned buffer pool (core/arena_pool.h), sized by the
  /// previous run: each worker acquires a recycled PatternBase/tree
  /// buffer per subTPIIN and releases it after matching, so repeated
  /// DetectSuspiciousGroups calls — the serving-style workload — stop
  /// reallocating generation storage. Must outlive the call; safe to
  /// share across concurrent calls. Results are identical with or
  /// without a pool.
  ArenaPool* arena_pool = nullptr;
};

/// Wall-clock attribution across Algorithm 1's stages. The wall stages
/// (segment + mine + finalize) partition the run, so their sum tracks
/// total_seconds; pattern/match_seconds are *worker* time summed across
/// threads inside the mine stage and can exceed mine_seconds.
struct DetectionTimings {
  double segment_seconds = 0;
  double mine_seconds = 0;      ///< Parallel per-subTPIIN stage (wall).
  double finalize_seconds = 0;  ///< Merge + dedup + intra-syndicate.
  double pattern_seconds = 0;   ///< Summed worker pattern-gen time.
  double match_seconds = 0;     ///< Summed worker matching time.
  double total_seconds = 0;
  double segment_cpu_seconds = 0;
  double mine_cpu_seconds = 0;
  double finalize_cpu_seconds = 0;
};

/// Per-subTPIIN work profile, kept for report breakdowns (the top-K
/// slowest table). Index-addressed, so identical at any thread count.
struct SubTpiinProfile {
  size_t index = 0;       ///< SegmentTpiin emission order.
  size_t num_nodes = 0;
  size_t num_arcs = 0;
  size_t num_trails = 0;
  size_t num_groups = 0;  ///< Matched groups (all kinds).
  double pattern_seconds = 0;
  double match_seconds = 0;
  double Seconds() const { return pattern_seconds + match_seconds; }
};

/// Aggregated output of Algorithm 1 over a whole TPIIN.
struct DetectionResult {
  std::vector<SuspiciousGroup> groups;  // Iff options.match.collect_groups.
  std::vector<IntraSyndicateFinding> intra_syndicate;

  size_t num_simple = 0;        // Pairwise simple groups.
  size_t num_complex = 0;       // Pairwise complex groups.
  size_t num_cycle_groups = 0;  // In-trail circle groups.

  /// Seller/buyer TPIIN node pairs of suspicious trading arcs, sorted and
  /// deduplicated (excludes intra-syndicate trades, reported above).
  std::vector<std::pair<NodeId, NodeId>> suspicious_trades;

  size_t total_trading_arcs = 0;  // Trading arcs in the TPIIN.
  size_t num_subtpiins = 0;
  size_t num_trails = 0;          // Component patterns generated.
  bool truncated = false;

  DetectionTimings timings;
  SegmentStats segment_stats;
  /// One profile per subTPIIN, in emission order.
  std::vector<SubTpiinProfile> sub_profiles;

  size_t TotalGroups() const {
    return num_simple + num_complex + num_cycle_groups +
           intra_syndicate.size();
  }

  /// Fraction of trading arcs flagged suspicious (Table 1 last column),
  /// in percent.
  double SuspiciousTradePercent() const;

  std::string Summary() const;
};

/// Algorithm 1: segments `net` into subTPIINs, generates each potential
/// component patterns base (Algorithm 2), matches component patterns
/// into suspicious groups, and handles intra-syndicate trades.
Result<DetectionResult> DetectSuspiciousGroups(
    const Tpiin& net, const DetectorOptions& options = {});

class RunReport;

/// Folds a detection run into `report`: the wall stages (segment, mine,
/// finalize), a "detection" section of scalar counts, a "segmentation"
/// section mirroring SegmentStats, and a "slowest_subtpiins" table of
/// the top-`top_k` subTPIINs by worker seconds.
void AddDetectionToReport(const DetectionResult& result, size_t top_k,
                          RunReport* report);

}  // namespace tpiin

#endif  // TPIIN_CORE_DETECTOR_H_

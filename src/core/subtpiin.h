#ifndef TPIIN_CORE_SUBTPIIN_H_
#define TPIIN_CORE_SUBTPIIN_H_

#include <string>
#include <string_view>
#include <vector>

#include "fusion/tpiin.h"
#include "graph/digraph.h"
#include "graph/frozen.h"
#include "graph/types.h"

namespace tpiin {

/// One weakly connected subgraph of a TPIIN (Definition 4): a maximal
/// weakly connected subgraph (MWCS) of the antecedent network plus every
/// trading arc joining two of its Company nodes.
///
/// Nodes and arcs are re-indexed locally (dense ids) so the per-subgraph
/// algorithms run cache-friendly; `global_of_local` / `global_arc_of_local`
/// map results back to TPIIN ids.
struct SubTpiin {
  const Tpiin* parent = nullptr;

  /// Local graph: influence arcs occupy ids [0, num_influence_arcs).
  Digraph graph;
  ArcId num_influence_arcs = 0;

  /// CSR view of `graph` (influence arcs first per node); every worker
  /// traverses this compact form. SegmentTpiin freezes each subTPIIN it
  /// emits; call Freeze() after the last mutation when building a
  /// SubTpiin by hand, or leave it stale to force the adjacency-list
  /// code paths (GeneratePatternBase falls back automatically).
  FrozenGraph frozen;

  void Freeze() { frozen = FrozenGraph(graph, kArcInfluence); }

  /// True when `frozen` mirrors `graph` (same node and arc counts); the
  /// cheap staleness test the algorithm entry points use before taking
  /// the CSR fast path.
  bool frozen_in_sync() const {
    return frozen.NumNodes() == graph.NumNodes() &&
           frozen.NumArcs() == graph.NumArcs();
  }

  std::vector<NodeId> global_of_local;
  std::vector<ArcId> global_arc_of_local;

  NodeId ToGlobal(NodeId local) const { return global_of_local[local]; }
  ArcId ToGlobalArc(ArcId local) const { return global_arc_of_local[local]; }

  ArcId num_trading_arcs() const {
    return graph.NumArcs() - num_influence_arcs;
  }

  /// Label of a local node (delegates to the parent TPIIN).
  std::string_view Label(NodeId local) const {
    return parent->Label(ToGlobal(local));
  }
};

struct SegmentOptions {
  /// Skip components with no internal trading arc: they cannot contain a
  /// suspicious group (Definition 2 requires exactly one trading arc), so
  /// Algorithm 2 would enumerate trails for nothing. Disable to obtain
  /// every MWCS (e.g. for the worked-example figures).
  bool skip_tradeless = true;

  /// Skip single-node components (no arcs of any color can be internal).
  bool skip_singletons = true;
};

/// Statistics of one segmentation run.
struct SegmentStats {
  size_t num_components = 0;        // All MWCS of the antecedent network.
  size_t num_emitted = 0;           // SubTpiins returned.
  size_t trading_arcs_internal = 0; // Trading arcs inside some component.
  size_t trading_arcs_cross = 0;    // Unsuspicious by the divide rule.
};

/// Algorithm 1 steps 3-6: splits `net` into subTPIINs. A trading arc
/// between two different components is unsuspicious (no party can sit in
/// both components behind it) and is dropped — this is the paper's
/// divide-and-conquer entry point.
std::vector<SubTpiin> SegmentTpiin(const Tpiin& net,
                                   const SegmentOptions& options = {},
                                   SegmentStats* stats = nullptr);

}  // namespace tpiin

#endif  // TPIIN_CORE_SUBTPIIN_H_

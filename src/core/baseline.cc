#include "core/baseline.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/logging.h"

namespace tpiin {

namespace {

// All influence-only simple paths from `anchor` (including the trivial
// path {anchor}), plus every trade-terminated trail formed by joining a
// trading arc to a path end (Lemma 1).
//
// Walks the frozen CSR view: the DFS descends over each node's
// influence span and trail termination sweeps its trading span. Both
// spans preserve the Digraph's per-node insertion order, so the
// enumeration (and every group derived from it) is identical to the
// old adjacency-list walk that filtered arcs by color.
struct Enumeration {
  std::vector<std::vector<NodeId>> paths;  // Influence-only paths.
  // (path index, buyer node) pairs: the trail paths[i] plus the trading
  // arc from its end node to the buyer.
  std::vector<std::pair<size_t, NodeId>> trade_trails;
  // Path indices grouped by end node.
  std::unordered_map<NodeId, std::vector<size_t>> paths_by_end;
};

Enumeration EnumerateFrom(const FrozenGraph& fg, NodeId anchor) {
  Enumeration result;

  struct Frame {
    NodeId node;
    uint32_t arc_pos;
  };
  std::vector<Frame> frames = {{anchor, 0}};
  std::vector<NodeId> path = {anchor};

  auto record_path = [&]() {
    size_t index = result.paths.size();
    result.paths.push_back(path);
    result.paths_by_end[path.back()].push_back(index);
    for (NodeId buyer : fg.TradingOut(path.back()).nodes) {
      result.trade_trails.emplace_back(index, buyer);
    }
  };
  record_path();  // The trivial path {anchor} is a trail too.

  while (!frames.empty()) {
    Frame& frame = frames.back();
    std::span<const NodeId> influence = fg.InfluenceOut(frame.node).nodes;
    if (frame.arc_pos < influence.size()) {
      NodeId dst = influence[frame.arc_pos];
      ++frame.arc_pos;
      frames.push_back(Frame{dst, 0});
      path.push_back(dst);
      record_path();  // Every DFS prefix is a distinct path.
      continue;
    }
    path.pop_back();
    frames.pop_back();
  }
  return result;
}

}  // namespace

BaselineResult DetectBaseline(const Tpiin& net,
                              const BaselineOptions& options) {
  const FrozenGraph& fg = net.frozen();
  BaselineResult result;

  std::set<std::pair<NodeId, NodeId>> trades;
  std::vector<uint8_t> in_trade_trail(fg.NumNodes(), 0);

  auto over_budget = [&]() {
    return options.max_groups != 0 &&
           result.num_simple + result.num_complex >= options.max_groups;
  };

  for (NodeId anchor = 0; anchor < fg.NumNodes(); ++anchor) {
    if (options.anchor == BaselineAnchor::kIndegreeZeroOnly &&
        fg.InfluenceInDegree(anchor) != 0) {
      continue;
    }
    if (over_budget()) break;
    Enumeration enumeration = EnumerateFrom(fg, anchor);
    result.num_trails_enumerated +=
        enumeration.paths.size() + enumeration.trade_trails.size();

    if (options.naive_pairing) {
      // Pair every trade-terminated trail against every influence trail
      // and test Definition 2 membership directly (end-node equality),
      // without the paths_by_end index.
      for (const auto& [path_index, buyer] : enumeration.trade_trails) {
        if (over_budget()) break;
        const std::vector<NodeId>& p = enumeration.paths[path_index];
        const NodeId seller = p.back();
        for (size_t i = 1; i < p.size(); ++i) in_trade_trail[p[i]] = 1;
        for (const std::vector<NodeId>& q : enumeration.paths) {
          if (q.back() != buyer) continue;  // Ends must coincide.
          if (over_budget()) break;
          bool is_simple = true;
          for (size_t i = 1; i + 1 < q.size(); ++i) {
            if (in_trade_trail[q[i]]) {
              is_simple = false;
              break;
            }
          }
          if (is_simple) {
            ++result.num_simple;
          } else {
            ++result.num_complex;
          }
          trades.emplace(seller, buyer);
          if (options.collect_groups) {
            SuspiciousGroup group;
            group.antecedent = anchor;
            group.trade_trail = p;
            group.trade_seller = seller;
            group.trade_buyer = buyer;
            group.partner_trail = q;
            group.is_simple = is_simple;
            group.members = p;
            group.members.insert(group.members.end(), q.begin(), q.end());
            group.members.push_back(buyer);
            std::sort(group.members.begin(), group.members.end());
            group.members.erase(
                std::unique(group.members.begin(), group.members.end()),
                group.members.end());
            result.groups.push_back(std::move(group));
          }
        }
        for (size_t i = 1; i < p.size(); ++i) in_trade_trail[p[i]] = 0;
      }
      continue;
    }

    for (const auto& [path_index, buyer] : enumeration.trade_trails) {
      if (over_budget()) break;
      const std::vector<NodeId>& p = enumeration.paths[path_index];
      const NodeId seller = p.back();
      auto partners = enumeration.paths_by_end.find(buyer);
      if (partners == enumeration.paths_by_end.end()) continue;

      for (size_t i = 1; i < p.size(); ++i) in_trade_trail[p[i]] = 1;
      for (size_t partner_index : partners->second) {
        if (over_budget()) break;
        const std::vector<NodeId>& q = enumeration.paths[partner_index];
        bool is_simple = true;
        for (size_t i = 1; i + 1 < q.size(); ++i) {
          if (in_trade_trail[q[i]]) {
            is_simple = false;
            break;
          }
        }
        if (is_simple) {
          ++result.num_simple;
        } else {
          ++result.num_complex;
        }
        trades.emplace(seller, buyer);
        if (options.collect_groups) {
          SuspiciousGroup group;
          group.antecedent = anchor;
          group.trade_trail = p;
          group.trade_seller = seller;
          group.trade_buyer = buyer;
          group.partner_trail = q;
          group.is_simple = is_simple;
          group.members = p;
          group.members.insert(group.members.end(), q.begin(), q.end());
          group.members.push_back(buyer);
          std::sort(group.members.begin(), group.members.end());
          group.members.erase(
              std::unique(group.members.begin(), group.members.end()),
              group.members.end());
          result.groups.push_back(std::move(group));
        }
      }
      for (size_t i = 1; i < p.size(); ++i) in_trade_trail[p[i]] = 0;
    }
  }

  result.truncated = over_budget();
  result.suspicious_trades.assign(trades.begin(), trades.end());
  return result;
}

}  // namespace tpiin

#ifndef TPIIN_ITE_AUDIT_H_
#define TPIIN_ITE_AUDIT_H_

#include <string>
#include <utility>
#include <vector>

#include "ite/alp.h"
#include "ite/ledger.h"

namespace tpiin {

struct AuditOptions {
  CupOptions cup;
  /// Examine every transaction instead of only those on suspicious
  /// trading relationships — the "one-by-one identification" mode the
  /// paper's method replaces. Used as the efficiency baseline.
  bool examine_all = false;
};

/// Outcome of one ITE pass over a ledger.
struct AuditReport {
  size_t transactions_total = 0;
  size_t transactions_examined = 0;
  std::vector<CupFinding> findings;
  double total_adjustment = 0;

  /// Ground-truth quality against Ledger::mispriced.
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  double Precision() const;
  double Recall() const;

  /// Share of the ledger that had to be examined (the MSG phase's
  /// screening benefit).
  double ExaminedFraction() const;

  std::string Summary() const;
};

/// Runs the ITE phase: restricts the ledger to transactions whose
/// (seller, buyer) relationship is in `suspicious_pairs` (unless
/// options.examine_all), applies the CUP method, and scores against the
/// ledger's planted ground truth.
AuditReport RunAudit(
    const Ledger& ledger,
    const std::vector<std::pair<CompanyId, CompanyId>>& suspicious_pairs,
    const AuditOptions& options = {});

}  // namespace tpiin

#endif  // TPIIN_ITE_AUDIT_H_

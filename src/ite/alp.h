#ifndef TPIIN_ITE_ALP_H_
#define TPIIN_ITE_ALP_H_

#include <cstddef>
#include <vector>

#include "ite/ledger.h"

namespace tpiin {

/// Comparable Uncontrolled Price method: a transaction deviating from its
/// category's market price by more than `deviation_threshold` violates
/// the arm's length principle; the tax adjustment is the under-invoiced
/// value times `tax_rate` (Case 2: (30-20) x 5000 x 10% = $5000).
struct CupOptions {
  double deviation_threshold = 0.15;
  double tax_rate = 0.10;
};

struct CupFinding {
  size_t tx_index = 0;
  double underpricing = 0;     // (market - price) * quantity, >= 0.
  double tax_adjustment = 0;   // underpricing * tax_rate.
};

/// Scans the given transaction indices (or all when `candidates` is
/// empty and scan_all) against the market table.
std::vector<CupFinding> CupScan(const Ledger& ledger,
                                const std::vector<size_t>& candidates,
                                const CupOptions& options = {});

/// Transactional Net Margin Method (Case 1): rebuilds taxable income
/// from the industry-normal net margin. Returns the upward adjustment
/// (zero when the declared profit already meets the margin).
double TnmmAdjustment(double revenue, double declared_profit,
                      double normal_margin);

/// Cost-plus method (Case 3): arm's-length revenue is
/// (cost + expense) * (1 + normal_margin); the adjustment is the gap to
/// the declared revenue (zero when declared revenue suffices).
double CostPlusAdjustment(double cost, double expense, double revenue,
                          double normal_margin);

}  // namespace tpiin

#endif  // TPIIN_ITE_ALP_H_

#include "ite/ledger.h"

#include <unordered_set>

#include "common/rng.h"

namespace tpiin {

namespace {
uint64_t PairKey(CompanyId a, CompanyId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

Ledger GenerateLedger(
    const std::vector<TradeRecord>& trades,
    const std::vector<std::pair<CompanyId, CompanyId>>& iat_pairs,
    const LedgerConfig& config) {
  Rng rng(config.seed);
  Ledger ledger;

  ledger.market.unit_price.reserve(config.num_categories);
  for (CategoryId c = 0; c < config.num_categories; ++c) {
    ledger.market.unit_price.push_back(
        rng.UniformDouble(config.min_market_price, config.max_market_price));
  }

  std::unordered_set<uint64_t> iat;
  iat.reserve(iat_pairs.size() * 2);
  for (const auto& [seller, buyer] : iat_pairs) {
    iat.insert(PairKey(seller, buyer));
  }

  TransactionId next_id = 1;
  for (const TradeRecord& trade : trades) {
    ++ledger.num_relations;
    bool is_iat = iat.count(PairKey(trade.seller, trade.buyer)) > 0;
    uint32_t count = static_cast<uint32_t>(rng.UniformInt(
        config.min_transactions, config.max_transactions));
    for (uint32_t k = 0; k < count; ++k) {
      Transaction tx;
      tx.id = next_id++;
      tx.seller = trade.seller;
      tx.buyer = trade.buyer;
      tx.category = static_cast<CategoryId>(
          rng.UniformU64(config.num_categories));
      tx.quantity = rng.UniformDouble(config.min_quantity,
                                      config.max_quantity);
      double market = ledger.market.PriceOf(tx.category);
      if (is_iat) {
        double discount = rng.UniformDouble(config.iat_discount_min,
                                            config.iat_discount_max);
        tx.unit_price = market * (1.0 - discount);
        ledger.mispriced.push_back(ledger.transactions.size());
      } else {
        double noise = rng.UniformDouble(-config.honest_price_noise,
                                         config.honest_price_noise);
        tx.unit_price = market * (1.0 + noise);
      }
      ledger.transactions.push_back(tx);
    }
  }
  return ledger;
}

}  // namespace tpiin

#ifndef TPIIN_ITE_TRANSACTION_H_
#define TPIIN_ITE_TRANSACTION_H_

#include <cstdint>
#include <vector>

#include "model/records.h"

namespace tpiin {

using TransactionId = uint64_t;
using CategoryId = uint32_t;

/// One electronic-receipt row of the ITE phase. The MSG phase never sees
/// these — that separation (behaviors first, transactions second) is the
/// paper's efficiency argument.
struct Transaction {
  TransactionId id = 0;
  CompanyId seller = 0;
  CompanyId buyer = 0;
  CategoryId category = 0;
  double quantity = 0;
  double unit_price = 0;

  double Value() const { return quantity * unit_price; }
};

/// Arm's-length comparable prices per product category (the "similar
/// scale enterprises in the same industry" of Case 1).
struct MarketTable {
  std::vector<double> unit_price;

  double PriceOf(CategoryId category) const {
    return unit_price[category];
  }
  CategoryId num_categories() const {
    return static_cast<CategoryId>(unit_price.size());
  }
};

}  // namespace tpiin

#endif  // TPIIN_ITE_TRANSACTION_H_

#include "ite/audit.h"

#include <unordered_set>

#include "common/string_util.h"

namespace tpiin {

namespace {
uint64_t PairKey(CompanyId a, CompanyId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

double AuditReport::Precision() const {
  size_t flagged = true_positives + false_positives;
  return flagged == 0 ? 1.0
                      : static_cast<double>(true_positives) / flagged;
}

double AuditReport::Recall() const {
  size_t actual = true_positives + false_negatives;
  return actual == 0 ? 1.0
                     : static_cast<double>(true_positives) / actual;
}

double AuditReport::ExaminedFraction() const {
  return transactions_total == 0
             ? 0.0
             : static_cast<double>(transactions_examined) /
                   transactions_total;
}

std::string AuditReport::Summary() const {
  return StringPrintf(
      "examined %zu of %zu transactions (%.2f%%); %zu ALP violations, "
      "total adjustment %.2f; precision %.3f recall %.3f",
      transactions_examined, transactions_total,
      100.0 * ExaminedFraction(), findings.size(), total_adjustment,
      Precision(), Recall());
}

AuditReport RunAudit(
    const Ledger& ledger,
    const std::vector<std::pair<CompanyId, CompanyId>>& suspicious_pairs,
    const AuditOptions& options) {
  AuditReport report;
  report.transactions_total = ledger.transactions.size();

  std::vector<size_t> candidates;
  if (options.examine_all) {
    candidates.resize(ledger.transactions.size());
    for (size_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
  } else {
    std::unordered_set<uint64_t> pairs;
    pairs.reserve(suspicious_pairs.size() * 2);
    for (const auto& [seller, buyer] : suspicious_pairs) {
      pairs.insert(PairKey(seller, buyer));
    }
    for (size_t i = 0; i < ledger.transactions.size(); ++i) {
      const Transaction& tx = ledger.transactions[i];
      if (pairs.count(PairKey(tx.seller, tx.buyer))) {
        candidates.push_back(i);
      }
    }
  }
  report.transactions_examined = candidates.size();

  report.findings = CupScan(ledger, candidates, options.cup);
  std::unordered_set<size_t> flagged;
  for (const CupFinding& finding : report.findings) {
    report.total_adjustment += finding.tax_adjustment;
    flagged.insert(finding.tx_index);
  }

  std::unordered_set<size_t> truth(ledger.mispriced.begin(),
                                   ledger.mispriced.end());
  for (size_t index : flagged) {
    if (truth.count(index)) {
      ++report.true_positives;
    } else {
      ++report.false_positives;
    }
  }
  for (size_t index : truth) {
    if (!flagged.count(index)) ++report.false_negatives;
  }
  return report;
}

}  // namespace tpiin

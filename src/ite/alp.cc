#include "ite/alp.h"

#include <algorithm>
#include <cmath>

namespace tpiin {

std::vector<CupFinding> CupScan(const Ledger& ledger,
                                const std::vector<size_t>& candidates,
                                const CupOptions& options) {
  std::vector<CupFinding> findings;
  for (size_t index : candidates) {
    const Transaction& tx = ledger.transactions[index];
    double market = ledger.market.PriceOf(tx.category);
    if (market <= 0) continue;
    double deviation = (market - tx.unit_price) / market;
    if (deviation <= options.deviation_threshold) continue;
    CupFinding finding;
    finding.tx_index = index;
    finding.underpricing = (market - tx.unit_price) * tx.quantity;
    finding.tax_adjustment = finding.underpricing * options.tax_rate;
    findings.push_back(finding);
  }
  return findings;
}

double TnmmAdjustment(double revenue, double declared_profit,
                      double normal_margin) {
  double arms_length_profit = revenue * normal_margin;
  return std::max(0.0, arms_length_profit - declared_profit);
}

double CostPlusAdjustment(double cost, double expense, double revenue,
                          double normal_margin) {
  double arms_length_revenue = (cost + expense) * (1.0 + normal_margin);
  return std::max(0.0, arms_length_revenue - revenue);
}

}  // namespace tpiin

#ifndef TPIIN_ITE_LEDGER_H_
#define TPIIN_ITE_LEDGER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "ite/transaction.h"
#include "model/records.h"

namespace tpiin {

/// Parameters of the synthetic transaction ledger. The tax office
/// withheld real transaction details even from the authors (§5.1); the
/// ledger exercises the same code path: honest relations trade near the
/// market price, IAT relations transfer-price below it.
struct LedgerConfig {
  uint64_t seed = 7;
  CategoryId num_categories = 12;
  double min_market_price = 10.0;
  double max_market_price = 500.0;
  /// Transactions per trading relationship, uniform in [min, max].
  uint32_t min_transactions = 1;
  uint32_t max_transactions = 4;
  double min_quantity = 10;
  double max_quantity = 1000;
  /// Honest prices are market * (1 + U(-noise, +noise)).
  double honest_price_noise = 0.04;
  /// IAT prices are market * (1 - U(min, max) discount).
  double iat_discount_min = 0.20;
  double iat_discount_max = 0.50;
};

struct Ledger {
  MarketTable market;
  std::vector<Transaction> transactions;
  /// Indices of the deliberately mispriced (IAT) transactions — ground
  /// truth for audit precision/recall.
  std::vector<size_t> mispriced;
  size_t num_relations = 0;
};

/// Generates one ledger over `trades`; relationships listed in
/// `iat_pairs` (seller, buyer) get mispriced transactions.
Ledger GenerateLedger(const std::vector<TradeRecord>& trades,
                      const std::vector<std::pair<CompanyId, CompanyId>>&
                          iat_pairs,
                      const LedgerConfig& config = {});

}  // namespace tpiin

#endif  // TPIIN_ITE_LEDGER_H_

#ifndef TPIIN_SNAPSHOT_SNAPSHOT_H_
#define TPIIN_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fusion/tpiin.h"
#include "snapshot/format.h"

namespace tpiin {

struct SnapshotWriteOptions {
  /// Precompute the antecedent-layer WCC decomposition and store it as
  /// the segmentation index (SegmentTpiin then skips its union-find pass
  /// when detecting from the snapshot). Costs one WCC run at write time.
  bool include_wcc_index = true;
};

/// Serializes a fused TPIIN into a single-file binary snapshot at
/// `path`, written crash-safely (temp file + rename; an injected fault
/// or kill leaves the previous snapshot or nothing). Empty networks are
/// refused — an empty snapshot is always a pipeline bug upstream.
Status WriteSnapshot(const Tpiin& net, const std::string& path,
                     const SnapshotWriteOptions& options = {});

struct SnapshotOpenOptions {
  /// Verify each section's CRC-32C before trusting it. One sequential
  /// pass over the mapping; no allocation. Disable only for repeated
  /// opens of a snapshot already verified this boot.
  bool verify_checksums = true;
};

/// A TPIIN opened from a snapshot file: the file is mmap-ed read-only
/// and every column of `net()` points directly into the mapping. Open
/// does header/directory/shape/CRC validation and pointer fix-up only —
/// no per-node or per-arc work, no allocation proportional to the graph.
///
/// The view owns the mapping; `net()` and everything derived from it
/// (spans, labels, AdjSpans) die with the view. net().has_graph() is
/// false — algorithm code reads frozen() and arc(), which the detection
/// stack does throughout.
class SnapshotView {
 public:
  static Result<std::unique_ptr<SnapshotView>> Open(
      const std::string& path, const SnapshotOpenOptions& options = {});

  ~SnapshotView();

  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;

  const Tpiin& net() const { return net_; }
  uint64_t file_size() const { return map_size_; }

  /// The file's header CRC-32C. The header covers the section directory
  /// CRC, which in turn covers every payload CRC, so this one word
  /// fingerprints the snapshot's entire content — the serve layer keys
  /// its result cache on it (a rebuilt snapshot is a different key,
  /// never a stale hit).
  uint32_t header_crc() const { return header_crc_; }

 private:
  SnapshotView() = default;

  void* map_ = nullptr;
  size_t map_size_ = 0;
  uint32_t header_crc_ = 0;
  Tpiin net_;
};

/// Header/directory summary of a snapshot file, read with plain file IO
/// — the graph sections are never mapped, so `tpiin snapshot info` works
/// on files far larger than memory and on files whose payload is
/// corrupt.
struct SnapshotSectionInfo {
  uint32_t id = 0;
  std::string name;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t count = 0;
  uint32_t elem_size = 0;
  uint32_t crc = 0;
  /// Payload CRC re-computed by streaming the section; only meaningful
  /// when ReadSnapshotInfo ran with verify_checksums.
  bool crc_checked = false;
  bool crc_ok = false;
};

struct SnapshotInfo {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t file_size = 0;
  SnapshotMeta meta{};
  std::vector<SnapshotSectionInfo> sections;
};

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                      bool verify_checksums = true);

/// Human-readable rendering of ReadSnapshotInfo (the `tpiin snapshot
/// info` output).
std::string FormatSnapshotInfo(const SnapshotInfo& info);

/// Internal serializer/binder. Friend of Tpiin: Write reads the private
/// columns; Bind points them into a validated mapping. Not part of the
/// public API — use WriteSnapshot / SnapshotView::Open.
class SnapshotCodec {
 public:
  static Status Write(const Tpiin& net, const std::string& path,
                      const SnapshotWriteOptions& options);
  /// `base` is the start of the validated mapping; `entries` is indexed
  /// by SectionId value. All shape checks have already passed.
  static void Bind(const unsigned char* base,
                   const std::vector<SectionEntry>& by_id,
                   const SnapshotMeta& meta, uint32_t flags, Tpiin* out);
};

}  // namespace tpiin

#endif  // TPIIN_SNAPSHOT_SNAPSHOT_H_

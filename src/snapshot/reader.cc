#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "snapshot/snapshot.h"

namespace tpiin {

namespace {

uint32_t ExpectedElemSize(SectionId id) {
  switch (id) {
    case SectionId::kMeta:
      return sizeof(SnapshotMeta);
    case SectionId::kNodeColor:
    case SectionId::kLabelBytes:
      return 1;
    case SectionId::kLabelOffsets:
    case SectionId::kPersonMemberOffsets:
    case SectionId::kCompanyMemberOffsets:
    case SectionId::kInternalInvestmentOffsets:
      return sizeof(uint64_t);
    case SectionId::kInternalInvestments:
      return sizeof(InvestmentArc);
    case SectionId::kArcWeight:
      return sizeof(double);
    case SectionId::kIntraSyndicateTrades:
      return sizeof(IntraSyndicateTrade);
    default:
      return sizeof(uint32_t);  // CSR columns, endpoints, entity maps.
  }
}

Status BadSnapshot(const std::string& path, const std::string& what) {
  return Status::Corruption(path + ": " + what);
}

/// Validates header + directory read from `base` (at least
/// sizeof(SnapshotHeader) bytes). On success fills `header` and the
/// by-section-id entry table (index = SectionId value; `count`-less ids
/// absent when entry.elem_size == 0).
Status ValidateHeaderAndDirectory(const std::string& path,
                                  const unsigned char* base,
                                  uint64_t actual_size,
                                  SnapshotHeader* header,
                                  std::vector<SectionEntry>* by_id) {
  std::memcpy(header, base, sizeof(SnapshotHeader));
  if (std::memcmp(header->magic, kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return BadSnapshot(path, "not a TPIIN snapshot (bad magic)");
  }
  if (header->version != kSnapshotVersion) {
    return BadSnapshot(
        path, StringPrintf("unsupported snapshot version %u (expected %u)",
                           header->version, kSnapshotVersion));
  }
  if (header->endianness != kSnapshotLittleEndian) {
    return BadSnapshot(path,
                       "snapshot written on a foreign-endian machine; "
                       "rebuild it on this architecture");
  }
  SnapshotHeader crc_copy = *header;
  crc_copy.header_crc = 0;
  if (Crc32c(&crc_copy, sizeof(crc_copy)) != header->header_crc) {
    return BadSnapshot(path, "header checksum mismatch");
  }
  if (header->file_size != actual_size) {
    return BadSnapshot(
        path, StringPrintf("file is %llu bytes but the header says %llu "
                           "(truncated or padded)",
                           static_cast<unsigned long long>(actual_size),
                           static_cast<unsigned long long>(
                               header->file_size)));
  }
  if (header->section_count == 0 ||
      header->section_count > kSnapshotMaxSectionId) {
    return BadSnapshot(path, StringPrintf("implausible section count %u",
                                          header->section_count));
  }
  const uint64_t directory_end =
      sizeof(SnapshotHeader) +
      static_cast<uint64_t>(header->section_count) * sizeof(SectionEntry);
  if (directory_end > actual_size) {
    return BadSnapshot(path, "section directory extends past end of file");
  }
  if (Crc32c(base + sizeof(SnapshotHeader),
             directory_end - sizeof(SnapshotHeader)) !=
      header->directory_crc) {
    return BadSnapshot(path, "section directory checksum mismatch");
  }

  by_id->assign(kSnapshotMaxSectionId + 1, SectionEntry{});
  std::vector<SectionEntry> in_order(header->section_count);
  std::memcpy(in_order.data(), base + sizeof(SnapshotHeader),
              header->section_count * sizeof(SectionEntry));
  for (const SectionEntry& entry : in_order) {
    if (entry.id == 0 || entry.id > kSnapshotMaxSectionId) {
      return BadSnapshot(path,
                         StringPrintf("unknown section id %u", entry.id));
    }
    if ((*by_id)[entry.id].elem_size != 0) {
      return BadSnapshot(
          path, StringPrintf("duplicate section id %u", entry.id));
    }
    const SectionId id = static_cast<SectionId>(entry.id);
    if (entry.elem_size != ExpectedElemSize(id)) {
      return BadSnapshot(
          path, StringPrintf("section %s has element size %u, expected %u",
                             std::string(SectionName(id)).c_str(),
                             entry.elem_size, ExpectedElemSize(id)));
    }
    // Divide, never multiply: `count * elem_size` wraps for a crafted
    // count near 2^62, letting a huge element count masquerade as a
    // tiny (bounds-checked) byte size. elem_size is non-zero here — it
    // just matched ExpectedElemSize.
    if (entry.size % entry.elem_size != 0 ||
        entry.count != entry.size / entry.elem_size) {
      return BadSnapshot(
          path, StringPrintf("section %s size/count mismatch",
                             std::string(SectionName(id)).c_str()));
    }
    if (entry.offset % kSnapshotAlignment != 0) {
      return BadSnapshot(
          path, StringPrintf("section %s is misaligned",
                             std::string(SectionName(id)).c_str()));
    }
    if (entry.offset < directory_end || entry.offset > actual_size ||
        entry.size > actual_size - entry.offset) {
      return BadSnapshot(
          path, StringPrintf("section %s extends past end of file",
                             std::string(SectionName(id)).c_str()));
    }
    (*by_id)[entry.id] = entry;
  }

  // Reject overlapping payloads: sort by offset and require each section
  // to start at or after the previous one's end.
  std::sort(in_order.begin(), in_order.end(),
            [](const SectionEntry& a, const SectionEntry& b) {
              return a.offset < b.offset;
            });
  for (size_t i = 1; i < in_order.size(); ++i) {
    if (in_order[i].offset <
        in_order[i - 1].offset + in_order[i - 1].size) {
      return BadSnapshot(
          path,
          StringPrintf(
              "sections %s and %s overlap",
              std::string(
                  SectionName(static_cast<SectionId>(in_order[i - 1].id)))
                  .c_str(),
              std::string(
                  SectionName(static_cast<SectionId>(in_order[i].id)))
                  .c_str()));
    }
  }

  // Required sections (meta .. intra_syndicate_trades) must all exist;
  // the WCC index exists iff its flag is set.
  for (uint32_t id = 1; id <= kSnapshotRequiredSections; ++id) {
    if ((*by_id)[id].elem_size == 0) {
      return BadSnapshot(
          path, StringPrintf("missing section %s",
                             std::string(SectionName(
                                             static_cast<SectionId>(id)))
                                 .c_str()));
    }
  }
  const bool has_wcc =
      (*by_id)[static_cast<uint32_t>(SectionId::kWccComponentOf)]
          .elem_size != 0;
  if (has_wcc != ((header->flags & kSnapshotFlagHasWccIndex) != 0)) {
    return BadSnapshot(path,
                       "wcc_component_of section disagrees with the "
                       "header flag");
  }
  return Status::OK();
}

const SectionEntry& Entry(const std::vector<SectionEntry>& by_id,
                          SectionId id) {
  return by_id[static_cast<uint32_t>(id)];
}

/// Cross-checks the column shapes the directory promises against the
/// meta counts, then walks every offsets column once: terminals pinned
/// to [0, value-count], interiors monotone, and the CSR influence split
/// inside each node's arc range. Together these make every later span
/// construction in-bounds even for a CRC-consistent hostile file — a
/// non-monotonic interior offset would wrap a span length to ~2^64.
/// O(num_nodes) per offsets column; dwarfed by the optional CRC pass.
Status ValidateShapes(const std::string& path, const unsigned char* base,
                      const std::vector<SectionEntry>& by_id,
                      const SnapshotMeta& meta) {
  if (meta.num_nodes == 0) {
    return BadSnapshot(path, "snapshot holds an empty graph");
  }
  const uint64_t n = meta.num_nodes;
  const uint64_t m = meta.num_arcs;
  if (meta.num_influence_arcs > m) {
    return BadSnapshot(path, "more influence arcs than arcs");
  }
  if (n > static_cast<uint64_t>(kInvalidNode) ||
      m > static_cast<uint64_t>(kInvalidArc)) {
    return BadSnapshot(path, "node or arc count exceeds the id space");
  }

  struct Expectation {
    SectionId id;
    uint64_t count;
  };
  const Expectation expectations[] = {
      {SectionId::kOutOffsets, n + 1},
      {SectionId::kOutInfluenceEnd, n},
      {SectionId::kOutTargets, m},
      {SectionId::kOutArcIds, m},
      {SectionId::kInOffsets, n + 1},
      {SectionId::kInInfluenceEnd, n},
      {SectionId::kInSources, m},
      {SectionId::kInArcIds, m},
      {SectionId::kNodeColor, n},
      {SectionId::kLabelOffsets, n + 1},
      {SectionId::kPersonMemberOffsets, n + 1},
      {SectionId::kCompanyMemberOffsets, n + 1},
      {SectionId::kInternalInvestmentOffsets, n + 1},
      {SectionId::kArcWeight, m},
      {SectionId::kArcSrc, m},
      {SectionId::kArcDst, m},
      {SectionId::kPersonNode, meta.num_persons},
      {SectionId::kCompanyNode, meta.num_companies},
      {SectionId::kIntraSyndicateTrades, meta.num_intra_syndicate_trades},
  };
  for (const Expectation& expected : expectations) {
    if (Entry(by_id, expected.id).count != expected.count) {
      return BadSnapshot(
          path,
          StringPrintf("section %s holds %llu elements, expected %llu",
                       std::string(SectionName(expected.id)).c_str(),
                       static_cast<unsigned long long>(
                           Entry(by_id, expected.id).count),
                       static_cast<unsigned long long>(expected.count)));
    }
  }
  const SectionEntry& wcc = Entry(by_id, SectionId::kWccComponentOf);
  if (wcc.elem_size != 0 && wcc.count != n) {
    return BadSnapshot(path, "wcc_component_of count mismatch");
  }

  // Offsets columns: terminals pin the spanned range (first element 0,
  // last element the value column's length), and every interior step
  // must be non-decreasing or span lengths like offsets[i+1]-offsets[i]
  // underflow to huge values.
  struct OffsetPair {
    SectionId offsets;
    SectionId values;
  };
  const OffsetPair pairs[] = {
      {SectionId::kLabelOffsets, SectionId::kLabelBytes},
      {SectionId::kPersonMemberOffsets, SectionId::kPersonMembers},
      {SectionId::kCompanyMemberOffsets, SectionId::kCompanyMembers},
      {SectionId::kInternalInvestmentOffsets,
       SectionId::kInternalInvestments},
  };
  for (const OffsetPair& pair : pairs) {
    const SectionEntry& offsets = Entry(by_id, pair.offsets);
    const auto* data =
        reinterpret_cast<const uint64_t*>(base + offsets.offset);
    if (data[0] != 0 || data[n] != Entry(by_id, pair.values).count) {
      return BadSnapshot(
          path, StringPrintf("section %s terminal offsets are broken",
                             std::string(SectionName(pair.offsets))
                                 .c_str()));
    }
    for (uint64_t i = 0; i < n; ++i) {
      if (data[i] > data[i + 1]) {
        return BadSnapshot(
            path, StringPrintf("section %s offsets are not monotone",
                               std::string(SectionName(pair.offsets))
                                   .c_str()));
      }
    }
  }

  // CSR columns: same monotonicity contract, plus the influence split
  // must sit inside each node's arc range (FrozenGraph slices both
  // [offsets[v], end[v]) and [end[v], offsets[v+1])).
  struct CsrPair {
    SectionId offsets;
    SectionId influence_end;
  };
  const CsrPair csr[] = {
      {SectionId::kOutOffsets, SectionId::kOutInfluenceEnd},
      {SectionId::kInOffsets, SectionId::kInInfluenceEnd},
  };
  for (const CsrPair& pair : csr) {
    const auto* offsets = reinterpret_cast<const uint32_t*>(
        base + Entry(by_id, pair.offsets).offset);
    const auto* split = reinterpret_cast<const uint32_t*>(
        base + Entry(by_id, pair.influence_end).offset);
    if (offsets[0] != 0 || offsets[n] != m) {
      return BadSnapshot(
          path,
          StringPrintf("section %s terminal offsets are broken",
                       std::string(SectionName(pair.offsets)).c_str()));
    }
    for (uint64_t i = 0; i < n; ++i) {
      if (offsets[i] > offsets[i + 1]) {
        return BadSnapshot(
            path, StringPrintf("section %s offsets are not monotone",
                               std::string(SectionName(pair.offsets))
                                   .c_str()));
      }
      if (split[i] < offsets[i] || split[i] > offsets[i + 1]) {
        return BadSnapshot(
            path,
            StringPrintf(
                "section %s influence split is outside its arc range",
                std::string(SectionName(pair.influence_end)).c_str()));
      }
    }
  }
  return Status::OK();
}

Status VerifySectionChecksums(const std::string& path,
                              const unsigned char* base,
                              const std::vector<SectionEntry>& by_id) {
  TPIIN_SPAN("snapshot_verify_crc");
  for (const SectionEntry& entry : by_id) {
    if (entry.elem_size == 0) continue;
    if (Crc32c(base + entry.offset, entry.size) != entry.crc) {
      return BadSnapshot(
          path,
          StringPrintf("section %s checksum mismatch",
                       std::string(
                           SectionName(static_cast<SectionId>(entry.id)))
                           .c_str()));
    }
  }
  return Status::OK();
}

template <typename T>
std::span<const T> SectionSpan(const unsigned char* base,
                               const std::vector<SectionEntry>& by_id,
                               SectionId id) {
  const SectionEntry& entry = Entry(by_id, id);
  return {reinterpret_cast<const T*>(base + entry.offset),
          static_cast<size_t>(entry.count)};
}

}  // namespace

void SnapshotCodec::Bind(const unsigned char* base,
                         const std::vector<SectionEntry>& by_id,
                         const SnapshotMeta& meta, uint32_t flags,
                         Tpiin* out) {
  FrozenGraph::Parts parts;
  parts.out_offsets = SectionSpan<ArcId>(base, by_id, SectionId::kOutOffsets);
  parts.out_influence_end =
      SectionSpan<ArcId>(base, by_id, SectionId::kOutInfluenceEnd);
  parts.out_targets =
      SectionSpan<NodeId>(base, by_id, SectionId::kOutTargets);
  parts.out_arc_ids =
      SectionSpan<ArcId>(base, by_id, SectionId::kOutArcIds);
  parts.in_offsets = SectionSpan<ArcId>(base, by_id, SectionId::kInOffsets);
  parts.in_influence_end =
      SectionSpan<ArcId>(base, by_id, SectionId::kInInfluenceEnd);
  parts.in_sources =
      SectionSpan<NodeId>(base, by_id, SectionId::kInSources);
  parts.in_arc_ids = SectionSpan<ArcId>(base, by_id, SectionId::kInArcIds);
  out->frozen_ = FrozenGraph::FromParts(
      static_cast<NodeId>(meta.num_nodes),
      static_cast<ArcId>(meta.num_arcs),
      static_cast<ArcId>(meta.num_influence_arcs), meta.influence_color,
      parts);
  out->has_graph_ = false;
  out->num_influence_arcs_ = static_cast<ArcId>(meta.num_influence_arcs);

  auto bind = [&](auto& col, SectionId id) {
    using T = std::remove_cvref_t<decltype(col[0])>;
    const SectionEntry& entry = Entry(by_id, id);
    col.BindView(reinterpret_cast<const T*>(base + entry.offset),
                 static_cast<size_t>(entry.count));
  };
  bind(out->node_color_, SectionId::kNodeColor);
  bind(out->label_offsets_, SectionId::kLabelOffsets);
  bind(out->label_bytes_, SectionId::kLabelBytes);
  bind(out->person_member_offsets_, SectionId::kPersonMemberOffsets);
  bind(out->person_members_, SectionId::kPersonMembers);
  bind(out->company_member_offsets_, SectionId::kCompanyMemberOffsets);
  bind(out->company_members_, SectionId::kCompanyMembers);
  bind(out->internal_investment_offsets_,
       SectionId::kInternalInvestmentOffsets);
  bind(out->internal_investments_, SectionId::kInternalInvestments);
  bind(out->arc_weight_, SectionId::kArcWeight);
  bind(out->arc_src_, SectionId::kArcSrc);
  bind(out->arc_dst_, SectionId::kArcDst);
  bind(out->person_node_, SectionId::kPersonNode);
  bind(out->company_node_, SectionId::kCompanyNode);
  bind(out->intra_syndicate_trades_, SectionId::kIntraSyndicateTrades);
  if ((flags & kSnapshotFlagHasWccIndex) != 0) {
    bind(out->wcc_component_of_, SectionId::kWccComponentOf);
    out->wcc_num_components_ =
        static_cast<NodeId>(meta.wcc_num_components);
  }
}

SnapshotView::~SnapshotView() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

Result<std::unique_ptr<SnapshotView>> SnapshotView::Open(
    const std::string& path, const SnapshotOpenOptions& options) {
  TPIIN_SPAN("snapshot_open");
  TPIIN_FAILPOINT("snapshot.open");
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  if (static_cast<uint64_t>(st.st_size) < sizeof(SnapshotHeader)) {
    ::close(fd);
    return BadSnapshot(path, "file is smaller than a snapshot header");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return Status::IOError("cannot mmap " + path);

  // The view owns the mapping from here on; any validation failure
  // unmaps via the destructor.
  std::unique_ptr<SnapshotView> view(new SnapshotView());
  view->map_ = map;
  view->map_size_ = static_cast<size_t>(st.st_size);
  const auto* base = static_cast<const unsigned char*>(map);

  SnapshotHeader header;
  std::vector<SectionEntry> by_id;
  TPIIN_RETURN_IF_ERROR(ValidateHeaderAndDirectory(
      path, base, view->map_size_, &header, &by_id));
  TPIIN_FAILPOINT("snapshot.open.validate");

  SnapshotMeta meta;
  std::memcpy(&meta, base + Entry(by_id, SectionId::kMeta).offset,
              sizeof(meta));
  if (options.verify_checksums) {
    TPIIN_RETURN_IF_ERROR(VerifySectionChecksums(path, base, by_id));
  }
  TPIIN_RETURN_IF_ERROR(ValidateShapes(path, base, by_id, meta));

  SnapshotCodec::Bind(base, by_id, meta, header.flags, &view->net_);
  view->header_crc_ = header.header_crc;
  TPIIN_COUNTER_ADD("snapshot.bytes_mapped", view->map_size_);
  return view;
}

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path,
                                      bool verify_checksums) {
  TPIIN_FAILPOINT("snapshot.info");
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const uint64_t actual_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  if (actual_size < sizeof(SnapshotHeader)) {
    return BadSnapshot(path, "file is smaller than a snapshot header");
  }

  // Header + directory are tiny; read them through the same validator
  // the mmap path uses. Graph sections stay untouched unless checksums
  // are being verified, and even then they stream through a fixed
  // buffer — nothing is mapped or held.
  SnapshotHeader probe;
  in.read(reinterpret_cast<char*>(&probe), sizeof(probe));
  if (!in.good()) return Status::IOError("cannot read " + path);
  const uint64_t prefix_size =
      std::min(actual_size,
               sizeof(SnapshotHeader) +
                   static_cast<uint64_t>(probe.section_count) *
                       sizeof(SectionEntry));
  std::vector<unsigned char> prefix(prefix_size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(prefix.data()), prefix.size());
  if (!in.good()) return Status::IOError("cannot read " + path);

  SnapshotHeader header;
  std::vector<SectionEntry> by_id;
  TPIIN_RETURN_IF_ERROR(ValidateHeaderAndDirectory(
      path, prefix.data(), actual_size, &header, &by_id));

  SnapshotInfo info;
  info.version = header.version;
  info.flags = header.flags;
  info.file_size = header.file_size;

  const SectionEntry& meta_entry = Entry(by_id, SectionId::kMeta);
  in.seekg(static_cast<std::streamoff>(meta_entry.offset));
  in.read(reinterpret_cast<char*>(&info.meta), sizeof(info.meta));
  if (!in.good()) return Status::IOError("cannot read " + path);

  std::vector<char> buffer;
  for (const SectionEntry& entry : by_id) {
    if (entry.elem_size == 0) continue;
    SnapshotSectionInfo section;
    section.id = entry.id;
    section.name =
        std::string(SectionName(static_cast<SectionId>(entry.id)));
    section.offset = entry.offset;
    section.size = entry.size;
    section.count = entry.count;
    section.elem_size = entry.elem_size;
    section.crc = entry.crc;
    if (verify_checksums) {
      buffer.resize(256 * 1024);
      in.seekg(static_cast<std::streamoff>(entry.offset));
      uint32_t crc = 0;
      uint64_t remaining = entry.size;
      while (remaining > 0) {
        const uint64_t chunk =
            std::min<uint64_t>(remaining, buffer.size());
        in.read(buffer.data(), static_cast<std::streamsize>(chunk));
        if (!in.good()) return Status::IOError("cannot read " + path);
        crc = Crc32cExtend(crc, buffer.data(), chunk);
        remaining -= chunk;
      }
      section.crc_checked = true;
      section.crc_ok = crc == entry.crc;
    }
    info.sections.push_back(std::move(section));
  }
  return info;
}

std::string FormatSnapshotInfo(const SnapshotInfo& info) {
  std::string out;
  out += StringPrintf("tpiin snapshot v%u  (%llu bytes)\n", info.version,
                      static_cast<unsigned long long>(info.file_size));
  out += StringPrintf(
      "nodes %llu  arcs %llu (%llu influence, %llu trading)\n",
      static_cast<unsigned long long>(info.meta.num_nodes),
      static_cast<unsigned long long>(info.meta.num_arcs),
      static_cast<unsigned long long>(info.meta.num_influence_arcs),
      static_cast<unsigned long long>(info.meta.num_arcs -
                                      info.meta.num_influence_arcs));
  out += StringPrintf(
      "persons %llu  companies %llu  intra-syndicate trades %llu\n",
      static_cast<unsigned long long>(info.meta.num_persons),
      static_cast<unsigned long long>(info.meta.num_companies),
      static_cast<unsigned long long>(
          info.meta.num_intra_syndicate_trades));
  if ((info.flags & kSnapshotFlagHasWccIndex) != 0) {
    out += StringPrintf(
        "segmentation index: %llu antecedent components\n",
        static_cast<unsigned long long>(info.meta.wcc_num_components));
  } else {
    out += "segmentation index: absent\n";
  }
  out += StringPrintf("%-28s %10s %12s %12s %10s  %s\n", "section",
                      "elems", "bytes", "offset", "crc32c", "check");
  for (const SnapshotSectionInfo& section : info.sections) {
    out += StringPrintf(
        "%-28s %10llu %12llu %12llu   %08x  %s\n", section.name.c_str(),
        static_cast<unsigned long long>(section.count),
        static_cast<unsigned long long>(section.size),
        static_cast<unsigned long long>(section.offset), section.crc,
        !section.crc_checked ? "-"
        : section.crc_ok     ? "ok"
                             : "MISMATCH");
  }
  return out;
}

}  // namespace tpiin

#ifndef TPIIN_SNAPSHOT_FORMAT_H_
#define TPIIN_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tpiin {

/// On-disk layout of a TPIIN snapshot (see DESIGN.md "Snapshot format"):
///
///   [SnapshotHeader | 64 B]
///   [SectionEntry x section_count]
///   [64-byte padding]
///   [section payloads, each 64-byte aligned]
///
/// Every section is one fixed-width column copied verbatim from the
/// in-memory representation, so opening a snapshot is mmap + validation
/// + pointer fix-up — nothing is parsed, decompressed or re-allocated.
/// Integers are stored in host byte order; the header records the
/// writer's endianness so a foreign-endian file is rejected instead of
/// silently misread (the snapshot is a cache artifact, not an exchange
/// format — rebuild it from the CSVs when moving architectures).

inline constexpr char kSnapshotMagic[8] = {'T', 'P', 'I', 'I',
                                           'N', 'S', 'N', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// Section payload alignment. 64 keeps every element type this format
/// stores (u8..u64, double, 12-byte trade records) naturally aligned in
/// the page-aligned mapping and starts each column on its own cache line.
inline constexpr uint64_t kSnapshotAlignment = 64;

/// The value a little-endian writer stores in SnapshotHeader::endianness.
inline constexpr uint32_t kSnapshotLittleEndian = 0x01020304u;

// SnapshotHeader::flags bits.
inline constexpr uint32_t kSnapshotFlagHasWccIndex = 1u << 0;

/// Section ids of format version 1. All sections are required except
/// kWccComponentOf, which is present iff kSnapshotFlagHasWccIndex is set.
enum class SectionId : uint32_t {
  kMeta = 1,
  // FrozenGraph CSR columns, both directions (see FrozenGraph::Parts).
  kOutOffsets = 2,
  kOutInfluenceEnd = 3,
  kOutTargets = 4,
  kOutArcIds = 5,
  kInOffsets = 6,
  kInInfluenceEnd = 7,
  kInSources = 8,
  kInArcIds = 9,
  // Columnar node store.
  kNodeColor = 10,
  kLabelOffsets = 11,
  kLabelBytes = 12,
  kPersonMemberOffsets = 13,
  kPersonMembers = 14,
  kCompanyMemberOffsets = 15,
  kCompanyMembers = 16,
  kInternalInvestmentOffsets = 17,
  kInternalInvestments = 18,
  // Arc attribute columns. src/dst substitute for the dropped Digraph.
  kArcWeight = 19,
  kArcSrc = 20,
  kArcDst = 21,
  // Original-entity maps and deferred self-loop trades.
  kPersonNode = 22,
  kCompanyNode = 23,
  kIntraSyndicateTrades = 24,
  // Segmentation index: antecedent-WCC component id per node.
  kWccComponentOf = 25,
};

inline constexpr uint32_t kSnapshotMaxSectionId = 25;
inline constexpr uint32_t kSnapshotRequiredSections = 24;  // Without WCC.

std::string_view SectionName(SectionId id);

/// Fixed 64-byte file header. `header_crc` is the CRC-32C of this struct
/// with the header_crc field zeroed; `directory_crc` covers the raw
/// SectionEntry array. Both are checked before any entry is trusted.
struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t endianness;  // kSnapshotLittleEndian as written.
  uint64_t file_size;   // Total bytes; must equal the on-disk size.
  uint32_t flags;
  uint32_t section_count;
  uint32_t directory_crc;
  uint32_t header_crc;
  uint8_t reserved[24];
};
static_assert(sizeof(SnapshotHeader) == 64, "header must stay 64 bytes");

/// One directory row. `size == count * elem_size`; `offset` is from the
/// start of the file and kSnapshotAlignment-aligned.
struct SectionEntry {
  uint32_t id;         // SectionId.
  uint32_t elem_size;  // Bytes per element.
  uint64_t offset;
  uint64_t size;
  uint64_t count;
  uint32_t crc;  // CRC-32C of the payload bytes.
  uint32_t reserved;
};
static_assert(sizeof(SectionEntry) == 40, "entry must stay 40 bytes");

/// Payload of the kMeta section (one element). The counts are the
/// cross-check against the directory: each column section must have
/// exactly the element count these totals imply.
struct SnapshotMeta {
  uint64_t num_nodes;
  uint64_t num_arcs;
  uint64_t num_influence_arcs;
  int32_t influence_color;
  uint32_t reserved0;
  uint64_t num_persons;    // Entries in the person -> node map.
  uint64_t num_companies;  // Entries in the company -> node map.
  uint64_t num_intra_syndicate_trades;
  uint64_t wcc_num_components;  // 0 when the WCC section is absent.
  uint8_t reserved[64];
};
static_assert(sizeof(SnapshotMeta) == 128, "meta must stay 128 bytes");

inline uint64_t AlignSnapshotOffset(uint64_t offset) {
  return (offset + kSnapshotAlignment - 1) & ~(kSnapshotAlignment - 1);
}

}  // namespace tpiin

#endif  // TPIIN_SNAPSHOT_FORMAT_H_

#include "snapshot/format.h"

namespace tpiin {

std::string_view SectionName(SectionId id) {
  switch (id) {
    case SectionId::kMeta: return "meta";
    case SectionId::kOutOffsets: return "out_offsets";
    case SectionId::kOutInfluenceEnd: return "out_influence_end";
    case SectionId::kOutTargets: return "out_targets";
    case SectionId::kOutArcIds: return "out_arc_ids";
    case SectionId::kInOffsets: return "in_offsets";
    case SectionId::kInInfluenceEnd: return "in_influence_end";
    case SectionId::kInSources: return "in_sources";
    case SectionId::kInArcIds: return "in_arc_ids";
    case SectionId::kNodeColor: return "node_color";
    case SectionId::kLabelOffsets: return "label_offsets";
    case SectionId::kLabelBytes: return "label_bytes";
    case SectionId::kPersonMemberOffsets: return "person_member_offsets";
    case SectionId::kPersonMembers: return "person_members";
    case SectionId::kCompanyMemberOffsets: return "company_member_offsets";
    case SectionId::kCompanyMembers: return "company_members";
    case SectionId::kInternalInvestmentOffsets:
      return "internal_investment_offsets";
    case SectionId::kInternalInvestments: return "internal_investments";
    case SectionId::kArcWeight: return "arc_weight";
    case SectionId::kArcSrc: return "arc_src";
    case SectionId::kArcDst: return "arc_dst";
    case SectionId::kPersonNode: return "person_node";
    case SectionId::kCompanyNode: return "company_node";
    case SectionId::kIntraSyndicateTrades: return "intra_syndicate_trades";
    case SectionId::kWccComponentOf: return "wcc_component_of";
  }
  return "unknown";
}

}  // namespace tpiin

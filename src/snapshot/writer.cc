#include <cstring>
#include <vector>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "graph/connected.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "snapshot/snapshot.h"

namespace tpiin {

namespace {

struct Payload {
  SectionId id;
  const void* data;
  uint64_t count;
  uint32_t elem_size;
};

template <typename T>
Payload MakePayload(SectionId id, const T* data, uint64_t count) {
  static_assert(std::is_trivially_copyable_v<T>,
                "snapshot sections hold fixed-width PODs only");
  return Payload{id, data, count, static_cast<uint32_t>(sizeof(T))};
}

}  // namespace

Status SnapshotCodec::Write(const Tpiin& net, const std::string& path,
                            const SnapshotWriteOptions& options) {
  TPIIN_SPAN("snapshot_write");
  TPIIN_FAILPOINT("snapshot.write");
  if (net.NumNodes() == 0) {
    return Status::InvalidArgument(
        "refusing to write a snapshot of an empty TPIIN");
  }

  const FrozenGraph::Parts parts = net.frozen_.parts();
  const uint64_t n = net.NumNodes();
  const uint64_t m = net.NumArcs();

  // Arc endpoint columns substitute for the Digraph in the snapshot;
  // materialize them from the adjacency store (or reuse the columns when
  // re-snapshotting a snapshot-backed network).
  std::vector<NodeId> arc_src_storage;
  std::vector<NodeId> arc_dst_storage;
  const NodeId* arc_src = net.arc_src_.data();
  const NodeId* arc_dst = net.arc_dst_.data();
  if (net.has_graph_) {
    arc_src_storage.resize(m);
    arc_dst_storage.resize(m);
    for (ArcId id = 0; id < m; ++id) {
      const Arc& arc = net.graph_.arc(id);
      arc_src_storage[id] = arc.src;
      arc_dst_storage[id] = arc.dst;
    }
    arc_src = arc_src_storage.data();
    arc_dst = arc_dst_storage.data();
  }

  // Segmentation index: the same WCC run SegmentTpiin would do at every
  // detection, done once here. Numbering is a pure function of the arc
  // set, so loading it later reproduces the CSV path bit for bit.
  std::vector<NodeId> wcc_storage;
  const NodeId* wcc_component_of = nullptr;
  uint64_t wcc_num_components = 0;
  uint32_t flags = 0;
  if (options.include_wcc_index) {
    if (net.has_wcc_index()) {
      wcc_component_of = net.wcc_component_of_.data();
      wcc_num_components = net.wcc_num_components_;
    } else {
      WccResult wcc = WeaklyConnectedComponents(net.frozen_,
                                                FrozenArcClass::kInfluence);
      wcc_storage = std::move(wcc.component_of);
      wcc_component_of = wcc_storage.data();
      wcc_num_components = wcc.num_components;
    }
    flags |= kSnapshotFlagHasWccIndex;
  }

  SnapshotMeta meta{};
  meta.num_nodes = n;
  meta.num_arcs = m;
  meta.num_influence_arcs = net.num_influence_arcs_;
  meta.influence_color = net.frozen_.influence_color();
  meta.num_persons = net.person_node_.size();
  meta.num_companies = net.company_node_.size();
  meta.num_intra_syndicate_trades = net.intra_syndicate_trades_.size();
  meta.wcc_num_components = wcc_num_components;

  std::vector<Payload> payloads;
  payloads.reserve(kSnapshotMaxSectionId);
  payloads.push_back(MakePayload(SectionId::kMeta, &meta, 1));
  payloads.push_back(MakePayload(SectionId::kOutOffsets,
                                 parts.out_offsets.data(), n + 1));
  payloads.push_back(MakePayload(SectionId::kOutInfluenceEnd,
                                 parts.out_influence_end.data(), n));
  payloads.push_back(
      MakePayload(SectionId::kOutTargets, parts.out_targets.data(), m));
  payloads.push_back(
      MakePayload(SectionId::kOutArcIds, parts.out_arc_ids.data(), m));
  payloads.push_back(
      MakePayload(SectionId::kInOffsets, parts.in_offsets.data(), n + 1));
  payloads.push_back(MakePayload(SectionId::kInInfluenceEnd,
                                 parts.in_influence_end.data(), n));
  payloads.push_back(
      MakePayload(SectionId::kInSources, parts.in_sources.data(), m));
  payloads.push_back(
      MakePayload(SectionId::kInArcIds, parts.in_arc_ids.data(), m));
  payloads.push_back(
      MakePayload(SectionId::kNodeColor, net.node_color_.data(), n));
  payloads.push_back(MakePayload(SectionId::kLabelOffsets,
                                 net.label_offsets_.data(), n + 1));
  payloads.push_back(MakePayload(SectionId::kLabelBytes,
                                 net.label_bytes_.data(),
                                 net.label_bytes_.size()));
  payloads.push_back(MakePayload(SectionId::kPersonMemberOffsets,
                                 net.person_member_offsets_.data(), n + 1));
  payloads.push_back(MakePayload(SectionId::kPersonMembers,
                                 net.person_members_.data(),
                                 net.person_members_.size()));
  payloads.push_back(MakePayload(SectionId::kCompanyMemberOffsets,
                                 net.company_member_offsets_.data(), n + 1));
  payloads.push_back(MakePayload(SectionId::kCompanyMembers,
                                 net.company_members_.data(),
                                 net.company_members_.size()));
  payloads.push_back(MakePayload(SectionId::kInternalInvestmentOffsets,
                                 net.internal_investment_offsets_.data(),
                                 n + 1));
  payloads.push_back(MakePayload(SectionId::kInternalInvestments,
                                 net.internal_investments_.data(),
                                 net.internal_investments_.size()));
  payloads.push_back(
      MakePayload(SectionId::kArcWeight, net.arc_weight_.data(), m));
  payloads.push_back(MakePayload(SectionId::kArcSrc, arc_src, m));
  payloads.push_back(MakePayload(SectionId::kArcDst, arc_dst, m));
  payloads.push_back(MakePayload(SectionId::kPersonNode,
                                 net.person_node_.data(),
                                 net.person_node_.size()));
  payloads.push_back(MakePayload(SectionId::kCompanyNode,
                                 net.company_node_.data(),
                                 net.company_node_.size()));
  payloads.push_back(MakePayload(SectionId::kIntraSyndicateTrades,
                                 net.intra_syndicate_trades_.data(),
                                 net.intra_syndicate_trades_.size()));
  if (options.include_wcc_index) {
    payloads.push_back(
        MakePayload(SectionId::kWccComponentOf, wcc_component_of, n));
  }

  // Lay out the file and checksum every payload before the first byte is
  // written, so the header can state the final size and CRCs up front.
  std::vector<SectionEntry> entries(payloads.size());
  uint64_t cursor = AlignSnapshotOffset(
      sizeof(SnapshotHeader) + payloads.size() * sizeof(SectionEntry));
  for (size_t i = 0; i < payloads.size(); ++i) {
    const Payload& p = payloads[i];
    SectionEntry& entry = entries[i];
    entry.id = static_cast<uint32_t>(p.id);
    entry.elem_size = p.elem_size;
    entry.offset = cursor;
    entry.count = p.count;
    entry.size = p.count * p.elem_size;
    entry.crc = Crc32c(p.data, entry.size);
    entry.reserved = 0;
    cursor = AlignSnapshotOffset(cursor + entry.size);
  }

  SnapshotHeader header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(header.magic));
  header.version = kSnapshotVersion;
  header.endianness = kSnapshotLittleEndian;
  header.file_size = cursor;
  header.flags = flags;
  header.section_count = static_cast<uint32_t>(entries.size());
  header.directory_crc =
      Crc32c(entries.data(), entries.size() * sizeof(SectionEntry));
  header.header_crc = 0;
  header.header_crc = Crc32c(&header, sizeof(header));

  AtomicFile file(path, std::ios::binary);
  if (!file.ok()) return Status::IOError("cannot open " + path);
  std::ostream& out = file.stream();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(entries.data()),
            entries.size() * sizeof(SectionEntry));
  static constexpr char kZeros[kSnapshotAlignment] = {};
  uint64_t written =
      sizeof(header) + entries.size() * sizeof(SectionEntry);
  for (size_t i = 0; i < payloads.size(); ++i) {
    TPIIN_FAILPOINT("snapshot.write.section");
    out.write(kZeros, entries[i].offset - written);
    out.write(reinterpret_cast<const char*>(payloads[i].data),
              entries[i].size);
    written = entries[i].offset + entries[i].size;
    if (!out.good()) {
      return Status::IOError("failed writing snapshot section " +
                             std::string(SectionName(payloads[i].id)));
    }
  }
  out.write(kZeros, cursor - written);

  TPIIN_FAILPOINT("snapshot.write.commit");
  TPIIN_COUNTER_ADD("snapshot.bytes_written", cursor);
  return file.Commit();
}

Status WriteSnapshot(const Tpiin& net, const std::string& path,
                     const SnapshotWriteOptions& options) {
  return SnapshotCodec::Write(net, path, options);
}

}  // namespace tpiin

#ifndef TPIIN_IO_GEXF_EXPORT_H_
#define TPIIN_IO_GEXF_EXPORT_H_

#include <string>

#include "fusion/tpiin.h"

namespace tpiin {

/// Renders a TPIIN as a GEXF 1.2 document loadable by Gephi (the tool
/// the paper used to generate and render its networks, Figs. 11-16).
/// Node colors follow the paper: red companies, black persons; edges
/// carry a "kind" attribute (influence/trading).
std::string TpiinToGexf(const Tpiin& net);

}  // namespace tpiin

#endif  // TPIIN_IO_GEXF_EXPORT_H_

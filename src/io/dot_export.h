#ifndef TPIIN_IO_DOT_EXPORT_H_
#define TPIIN_IO_DOT_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fusion/tpiin.h"
#include "graph/digraph.h"
#include "graph/frozen.h"

namespace tpiin {

/// Renders a TPIIN as Graphviz DOT using the paper's palette: red
/// company nodes, black person nodes, blue influence arcs, black trading
/// arcs (Figs. 11-16 legend).
std::string TpiinToDot(const Tpiin& net, const std::string& graph_name);

/// Renders a homogeneous layer graph (G1/G2/GI/G4) with per-color edge
/// styling; `labels` supplies node captions (empty -> node indices).
/// The graph may use at most two arc colors (the CSR partition limit);
/// every layer graph does — G1 has kinship + interlocking, the others a
/// single color.
std::string LayerToDot(const Digraph& graph,
                       const std::vector<std::string>& labels,
                       const std::string& graph_name);

/// CSR-view variant: arcs are reconstructed in id order from the frozen
/// out spans (partition-color arcs render as `graph.influence_color()`,
/// the rest as `other_color`), so the DOT output is byte-identical to
/// the Digraph overload above.
std::string LayerToDot(const FrozenGraph& graph, ArcColor other_color,
                       const std::vector<std::string>& labels,
                       const std::string& graph_name);

/// Crash-safe whole-file write (temp + rename via WriteFileAtomic); a
/// failure never leaves a torn file at `path`.
Status WriteStringToFile(const std::string& path,
                         const std::string& contents);

}  // namespace tpiin

#endif  // TPIIN_IO_DOT_EXPORT_H_

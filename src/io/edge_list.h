#ifndef TPIIN_IO_EDGE_LIST_H_
#define TPIIN_IO_EDGE_LIST_H_

#include <string>

#include "common/result.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// Serializes a TPIIN to the paper's edge-list representation (§4.3): an
/// r x 3 table of {src, dst, color} rows with every antecedent (blue,
/// color 1) row before the trading (black, color 0) rows, prefixed by a
/// node table carrying colors and labels:
///
///   tpiin-edge-list v2
///   nodes <N>
///   <id> <P|C> <label>
///   arcs <r> <m>           # m = 1-based index of the first trading row
///   <src> <dst> <color> <weight>
///
/// v1 files (rows without the weight column) load with weight 1.0.
///
/// Syndicate provenance (member lists, internal investments,
/// intra-syndicate trades) is not stored; a round-tripped network mines
/// identically except for intra-syndicate findings.
Status WriteTpiinEdgeList(const std::string& path, const Tpiin& net);

/// Parses a file written by WriteTpiinEdgeList.
Result<Tpiin> ReadTpiinEdgeList(const std::string& path);

}  // namespace tpiin

#endif  // TPIIN_IO_EDGE_LIST_H_

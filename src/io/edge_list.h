#ifndef TPIIN_IO_EDGE_LIST_H_
#define TPIIN_IO_EDGE_LIST_H_

#include <string>

#include "common/result.h"
#include "fusion/tpiin.h"
#include "io/ingest.h"

namespace tpiin {

/// Serializes a TPIIN to the paper's edge-list representation (§4.3): an
/// r x 3 table of {src, dst, color} rows with every antecedent (blue,
/// color 1) row before the trading (black, color 0) rows, prefixed by a
/// node table carrying colors and labels:
///
///   tpiin-edge-list v2
///   nodes <N>
///   <id> <P|C> <label>
///   arcs <r> <m>           # m = 1-based index of the first trading row
///   <src> <dst> <color> <weight>
///
/// v1 files (rows without the weight column) load with weight 1.0.
///
/// Syndicate provenance (member lists, internal investments,
/// intra-syndicate trades) is not stored; a round-tripped network mines
/// identically except for intra-syndicate findings.
/// The file is written crash-safely: contents go to a temp file that is
/// renamed over `path` only on success, so a killed process never
/// leaves a torn edge list behind.
Status WriteTpiinEdgeList(const std::string& path, const Tpiin& net);

/// Parses a file written by WriteTpiinEdgeList. Equivalent to the
/// hardened overload below with default (strict) IngestOptions.
Result<Tpiin> ReadTpiinEdgeList(const std::string& path);

/// Hardened reader. The header lines and the node table are structural
/// — node ids index the table, so damage there is always fatal — but
/// malformed *arc* rows (bad numbers, out-of-range endpoints, unknown
/// colors, rows disagreeing with the m split) are classified per
/// ingest_error:: and skipped or quarantined per `options.mode`.
Result<Tpiin> ReadTpiinEdgeList(const std::string& path,
                                const IngestOptions& options,
                                LoadReport* report);

}  // namespace tpiin

#endif  // TPIIN_IO_EDGE_LIST_H_

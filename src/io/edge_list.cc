#include "io/edge_list.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace tpiin {

Status WriteTpiinEdgeList(const std::string& path, const Tpiin& net) {
  TPIIN_FAILPOINT("io.edge_list.write");
  AtomicFile file(path);
  if (!file.ok()) return Status::IOError("cannot open " + path);
  std::ostream& out = file.stream();

  out << "tpiin-edge-list v2\n";
  out << "nodes " << net.NumNodes() << "\n";
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    const TpiinNode& node = net.node(v);
    out << v << ' '
        << (node.color == NodeColor::kPerson ? 'P' : 'C') << ' '
        << node.label << "\n";
  }
  const std::vector<Arc> arcs = net.frozen().ArcsInIdOrder(kArcTrading);
  out << "arcs " << arcs.size() << ' '
      << (net.num_influence_arcs() + 1) << "\n";
  for (ArcId id = 0; id < arcs.size(); ++id) {
    const Arc& arc = arcs[id];
    out << arc.src << ' ' << arc.dst << ' ' << arc.color << ' '
        << StringPrintf("%.17g", net.ArcWeight(id)) << "\n";
  }
  return file.Commit();
}

Result<Tpiin> ReadTpiinEdgeList(const std::string& path) {
  return ReadTpiinEdgeList(path, IngestOptions{}, nullptr);
}

Result<Tpiin> ReadTpiinEdgeList(const std::string& path,
                                const IngestOptions& options,
                                LoadReport* report) {
  TPIIN_FAILPOINT("io.edge_list.read");
  LoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = LoadReport{};
  IngestSink sink(options, report);

  std::ifstream in(path);
  if (!in.good()) return Status::IOError("cannot open " + path);
  size_t line_number = 0;

  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption(path + ": empty file");
  }
  ++line_number;
  std::string magic(Trim(line));
  bool v2 = magic == "tpiin-edge-list v2";
  if (!v2 && magic != "tpiin-edge-list v1") {
    return Status::Corruption(path + ": bad magic line");
  }

  size_t num_nodes = 0;
  {
    if (!std::getline(in, line)) {
      return Status::Corruption(path + ": missing nodes header");
    }
    ++line_number;
    std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() != 2 || parts[0] != "nodes") {
      return Status::Corruption(path + ": bad nodes header: " + line);
    }
    TPIIN_ASSIGN_OR_RETURN(int64_t n, ParseInt64(parts[1]));
    if (n < 0) return Status::Corruption(path + ": negative node count");
    num_nodes = static_cast<size_t>(n);
  }

  // Node rows are structural: ids index the table and later arc rows
  // address nodes by position, so a damaged node row is always fatal
  // (skipping one would silently re-wire every later arc).
  TpiinBuilder builder;
  for (size_t i = 0; i < num_nodes; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption(path + ": truncated node table");
    }
    ++line_number;
    // "<id> <P|C> <label...>"; the label may contain spaces.
    std::istringstream row(line);
    uint64_t id = 0;
    char color = 0;
    row >> id >> color;
    std::string label;
    std::getline(row, label);
    label = std::string(Trim(label));
    if (row.fail() || id != i || (color != 'P' && color != 'C')) {
      return Status::Corruption(path + ": bad node row: " + line);
    }
    if (color == 'P') {
      builder.AddPersonNode(std::move(label));
    } else {
      builder.AddCompanyNode(std::move(label));
    }
    sink.CountLoaded();
  }

  size_t num_arcs = 0;
  size_t first_trading_row = 0;  // 1-based; num_arcs + 1 when none.
  {
    if (!std::getline(in, line)) {
      return Status::Corruption(path + ": missing arcs header");
    }
    ++line_number;
    std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() != 3 || parts[0] != "arcs") {
      return Status::Corruption(path + ": bad arcs header: " + line);
    }
    TPIIN_ASSIGN_OR_RETURN(int64_t r, ParseInt64(parts[1]));
    TPIIN_ASSIGN_OR_RETURN(int64_t m, ParseInt64(parts[2]));
    if (r < 0 || m < 1 || m > r + 1) {
      return Status::Corruption(path + ": inconsistent arcs header");
    }
    num_arcs = static_cast<size_t>(r);
    first_trading_row = static_cast<size_t>(m);
  }

  for (size_t i = 0; i < num_arcs; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption(path + ": truncated arc table");
    }
    ++line_number;
    // Arc rows are independent of one another, so a damaged row is
    // recoverable: classify it and let the sink apply the
    // strict/skip/quarantine policy.
    const char* error_class = ingest_error::kParse;
    Status row_status = [&]() -> Status {
      std::vector<std::string> parts = SplitWhitespace(line);
      size_t expected_columns = v2 ? 4u : 3u;
      if (parts.size() != expected_columns) {
        error_class = ingest_error::kColumns;
        return Status::Corruption("bad arc row: " + line);
      }
      Result<int64_t> src = ParseInt64(parts[0]);
      Result<int64_t> dst = ParseInt64(parts[1]);
      Result<int64_t> color = ParseInt64(parts[2]);
      if (!src.ok() || !dst.ok() || !color.ok()) {
        error_class = ingest_error::kBadNumber;
        return Status::Corruption("bad arc row: " + line);
      }
      double weight = 1.0;
      if (v2) {
        Result<double> parsed = ParseDouble(parts[3]);
        if (!parsed.ok()) {
          error_class = ingest_error::kBadNumber;
          return Status::Corruption("bad arc weight: " + line);
        }
        weight = *parsed;
        if (!(weight > 0.0 && weight <= 1.0)) {
          error_class = ingest_error::kBadNumber;
          return Status::Corruption("arc weight out of (0, 1]: " + line);
        }
      }
      if (*src < 0 || *dst < 0 ||
          *src >= static_cast<int64_t>(num_nodes) ||
          *dst >= static_cast<int64_t>(num_nodes)) {
        error_class = ingest_error::kIdRange;
        return Status::Corruption("arc endpoint out of range: " + line);
      }
      bool should_be_influence = (i + 1) < first_trading_row;
      if (should_be_influence != (*color == kArcInfluence)) {
        error_class = ingest_error::kBadEnum;
        return Status::Corruption("arc color disagrees with the m split: " +
                                  line);
      }
      if (*color == kArcInfluence) {
        builder.AddInfluenceArc(static_cast<NodeId>(*src),
                                static_cast<NodeId>(*dst), weight);
      } else if (*color == kArcTrading) {
        builder.AddTradingArc(static_cast<NodeId>(*src),
                              static_cast<NodeId>(*dst));
      } else {
        error_class = ingest_error::kBadEnum;
        return Status::Corruption("unknown arc color: " + line);
      }
      return Status::OK();
    }();
    if (!row_status.ok()) {
      TPIIN_RETURN_IF_ERROR(sink.Reject(path, line_number, line,
                                        error_class, row_status));
      continue;
    }
    sink.CountLoaded();
  }

  TPIIN_RETURN_IF_ERROR(sink.Finish());
  return builder.Build();
}

}  // namespace tpiin

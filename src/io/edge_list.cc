#include "io/edge_list.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace tpiin {

Status WriteTpiinEdgeList(const std::string& path, const Tpiin& net) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot open " + path);

  out << "tpiin-edge-list v2\n";
  out << "nodes " << net.NumNodes() << "\n";
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    const TpiinNode& node = net.node(v);
    out << v << ' '
        << (node.color == NodeColor::kPerson ? 'P' : 'C') << ' '
        << node.label << "\n";
  }
  const std::vector<Arc> arcs = net.frozen().ArcsInIdOrder(kArcTrading);
  out << "arcs " << arcs.size() << ' '
      << (net.num_influence_arcs() + 1) << "\n";
  for (ArcId id = 0; id < arcs.size(); ++id) {
    const Arc& arc = arcs[id];
    out << arc.src << ' ' << arc.dst << ' ' << arc.color << ' '
        << StringPrintf("%.17g", net.ArcWeight(id)) << "\n";
  }
  out.flush();
  if (!out.good()) return Status::IOError("failed writing " + path);
  return Status::OK();
}

Result<Tpiin> ReadTpiinEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::IOError("cannot open " + path);

  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption(path + ": empty file");
  }
  std::string magic(Trim(line));
  bool v2 = magic == "tpiin-edge-list v2";
  if (!v2 && magic != "tpiin-edge-list v1") {
    return Status::Corruption(path + ": bad magic line");
  }

  size_t num_nodes = 0;
  {
    if (!std::getline(in, line)) {
      return Status::Corruption(path + ": missing nodes header");
    }
    std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() != 2 || parts[0] != "nodes") {
      return Status::Corruption(path + ": bad nodes header: " + line);
    }
    TPIIN_ASSIGN_OR_RETURN(int64_t n, ParseInt64(parts[1]));
    if (n < 0) return Status::Corruption(path + ": negative node count");
    num_nodes = static_cast<size_t>(n);
  }

  TpiinBuilder builder;
  for (size_t i = 0; i < num_nodes; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption(path + ": truncated node table");
    }
    // "<id> <P|C> <label...>"; the label may contain spaces.
    std::istringstream row(line);
    uint64_t id = 0;
    char color = 0;
    row >> id >> color;
    std::string label;
    std::getline(row, label);
    label = std::string(Trim(label));
    if (row.fail() || id != i || (color != 'P' && color != 'C')) {
      return Status::Corruption(path + ": bad node row: " + line);
    }
    if (color == 'P') {
      builder.AddPersonNode(std::move(label));
    } else {
      builder.AddCompanyNode(std::move(label));
    }
  }

  size_t num_arcs = 0;
  size_t first_trading_row = 0;  // 1-based; num_arcs + 1 when none.
  {
    if (!std::getline(in, line)) {
      return Status::Corruption(path + ": missing arcs header");
    }
    std::vector<std::string> parts = SplitWhitespace(line);
    if (parts.size() != 3 || parts[0] != "arcs") {
      return Status::Corruption(path + ": bad arcs header: " + line);
    }
    TPIIN_ASSIGN_OR_RETURN(int64_t r, ParseInt64(parts[1]));
    TPIIN_ASSIGN_OR_RETURN(int64_t m, ParseInt64(parts[2]));
    if (r < 0 || m < 1 || m > r + 1) {
      return Status::Corruption(path + ": inconsistent arcs header");
    }
    num_arcs = static_cast<size_t>(r);
    first_trading_row = static_cast<size_t>(m);
  }

  for (size_t i = 0; i < num_arcs; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption(path + ": truncated arc table");
    }
    std::vector<std::string> parts = SplitWhitespace(line);
    size_t expected_columns = v2 ? 4u : 3u;
    if (parts.size() != expected_columns) {
      return Status::Corruption(path + ": bad arc row: " + line);
    }
    TPIIN_ASSIGN_OR_RETURN(int64_t src, ParseInt64(parts[0]));
    TPIIN_ASSIGN_OR_RETURN(int64_t dst, ParseInt64(parts[1]));
    TPIIN_ASSIGN_OR_RETURN(int64_t color, ParseInt64(parts[2]));
    double weight = 1.0;
    if (v2) {
      TPIIN_ASSIGN_OR_RETURN(weight, ParseDouble(parts[3]));
      if (!(weight > 0.0 && weight <= 1.0)) {
        return Status::Corruption(path + ": arc weight out of (0, 1]: " +
                                  line);
      }
    }
    if (src < 0 || dst < 0 ||
        src >= static_cast<int64_t>(num_nodes) ||
        dst >= static_cast<int64_t>(num_nodes)) {
      return Status::Corruption(path + ": arc endpoint out of range");
    }
    bool should_be_influence = (i + 1) < first_trading_row;
    if (should_be_influence != (color == kArcInfluence)) {
      return Status::Corruption(
          path + ": arc color disagrees with the m split: " + line);
    }
    if (color == kArcInfluence) {
      builder.AddInfluenceArc(static_cast<NodeId>(src),
                              static_cast<NodeId>(dst), weight);
    } else if (color == kArcTrading) {
      builder.AddTradingArc(static_cast<NodeId>(src),
                            static_cast<NodeId>(dst));
    } else {
      return Status::Corruption(path + ": unknown arc color: " + line);
    }
  }

  return builder.Build();
}

}  // namespace tpiin

#include "io/gexf_export.h"

#include "common/string_util.h"

namespace tpiin {

namespace {

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string TpiinToGexf(const Tpiin& net) {
  std::string out;
  out +=
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<gexf xmlns=\"http://www.gexf.net/1.2draft\" "
      "xmlns:viz=\"http://www.gexf.net/1.2draft/viz\" version=\"1.2\">\n"
      "  <graph mode=\"static\" defaultedgetype=\"directed\">\n"
      "    <attributes class=\"edge\">\n"
      "      <attribute id=\"0\" title=\"kind\" type=\"string\"/>\n"
      "    </attributes>\n"
      "    <nodes>\n";
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    const TpiinNode& node = net.node(v);
    bool is_company = node.color == NodeColor::kCompany;
    out += StringPrintf(
        "      <node id=\"%u\" label=\"%s\">"
        "<viz:color r=\"%d\" g=\"0\" b=\"0\"/></node>\n",
        v, XmlEscape(node.label).c_str(), is_company ? 255 : 0);
  }
  out += "    </nodes>\n    <edges>\n";
  ArcId edge_id = 0;
  for (const Arc& arc : net.frozen().ArcsInIdOrder(kArcTrading)) {
    out += StringPrintf(
        "      <edge id=\"%u\" source=\"%u\" target=\"%u\">"
        "<attvalues><attvalue for=\"0\" value=\"%s\"/></attvalues>"
        "</edge>\n",
        edge_id++, arc.src, arc.dst,
        IsInfluenceArc(arc) ? "influence" : "trading");
  }
  out += "    </edges>\n  </graph>\n</gexf>\n";
  return out;
}

}  // namespace tpiin

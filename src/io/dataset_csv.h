#ifndef TPIIN_IO_DATASET_CSV_H_
#define TPIIN_IO_DATASET_CSV_H_

#include <string>

#include "common/result.h"
#include "model/dataset.h"

namespace tpiin {

/// Persists a RawDataset as six CSV tables inside `directory` (created
/// by the caller): persons.csv, companies.csv, interdependence.csv,
/// influence.csv, investment.csv, trades.csv. This mirrors how the real
/// pipeline ingests per-source extracts (CSRC / HRDPSC / PTAO dumps).
Status SaveDatasetCsv(const std::string& directory,
                      const RawDataset& dataset);

/// Loads a dataset saved by SaveDatasetCsv. The result is validated.
Result<RawDataset> LoadDatasetCsv(const std::string& directory);

}  // namespace tpiin

#endif  // TPIIN_IO_DATASET_CSV_H_

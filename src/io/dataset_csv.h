#ifndef TPIIN_IO_DATASET_CSV_H_
#define TPIIN_IO_DATASET_CSV_H_

#include <string>

#include "common/result.h"
#include "io/ingest.h"
#include "model/dataset.h"

namespace tpiin {

/// Persists a RawDataset as six CSV tables inside `directory` (created
/// by the caller): persons.csv, companies.csv, interdependence.csv,
/// influence.csv, investment.csv, trades.csv. This mirrors how the real
/// pipeline ingests per-source extracts (CSRC / HRDPSC / PTAO dumps).
Status SaveDatasetCsv(const std::string& directory,
                      const RawDataset& dataset);

/// Loads a dataset saved by SaveDatasetCsv. The result is validated.
/// Equivalent to the hardened overload below with default (strict)
/// IngestOptions.
Result<RawDataset> LoadDatasetCsv(const std::string& directory);

/// Hardened loader. Row-level damage (torn lines, bad numbers, stray
/// quotes, oversized fields, invalid UTF-8 in names, duplicate ids,
/// references to ids that never loaded) is classified per
/// ingest_error:: and handled per `options.mode`: strict fails the
/// load, skip drops the row, quarantine drops it into
/// options.quarantine_path. Entity ids are taken from the id column and
/// remapped densely, so in skip mode a dropped person/company row can
/// never silently re-wire later references — those become dangling_ref
/// rejections instead. File-level damage (missing file, bad header) is
/// always fatal. `report`, when non-null, receives the row accounting;
/// the returned dataset is Validate()d either way.
Result<RawDataset> LoadDatasetCsv(const std::string& directory,
                                  const IngestOptions& options,
                                  LoadReport* report);

}  // namespace tpiin

#endif  // TPIIN_IO_DATASET_CSV_H_

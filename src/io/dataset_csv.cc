#include "io/dataset_csv.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace tpiin {

namespace {

const std::vector<std::string> kPersonsHeader = {"id", "name", "roles"};
const std::vector<std::string> kCompaniesHeader = {"id", "name"};
const std::vector<std::string> kInterdependenceHeader = {"person_a",
                                                         "person_b", "kind"};
const std::vector<std::string> kInfluenceHeader = {"person", "company",
                                                   "kind", "legal_person"};
const std::vector<std::string> kInvestmentHeader = {"investor", "investee",
                                                    "share"};
const std::vector<std::string> kTradesHeader = {"seller", "buyer"};

std::string PathOf(const std::string& directory, const char* file) {
  return directory + "/" + file;
}

Result<uint32_t> ParseId(const std::string& field, size_t limit,
                         const char* what) {
  TPIIN_ASSIGN_OR_RETURN(int64_t value, ParseInt64(field));
  if (value < 0 || static_cast<size_t>(value) >= limit) {
    return Status::Corruption(
        StringPrintf("%s id %lld out of range (limit %zu)", what,
                     static_cast<long long>(value), limit));
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

Status SaveDatasetCsv(const std::string& directory,
                      const RawDataset& dataset) {
  {
    CsvWriter w(PathOf(directory, "persons.csv"));
    w.WriteRow(kPersonsHeader);
    for (const Person& p : dataset.persons()) {
      w.WriteRow({StringPrintf("%u", p.id), p.name,
                  StringPrintf("%u", p.roles)});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "companies.csv"));
    w.WriteRow(kCompaniesHeader);
    for (const Company& c : dataset.companies()) {
      w.WriteRow({StringPrintf("%u", c.id), c.name});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "interdependence.csv"));
    w.WriteRow(kInterdependenceHeader);
    for (const InterdependenceRecord& r : dataset.interdependence()) {
      w.WriteRow({StringPrintf("%u", r.person_a),
                  StringPrintf("%u", r.person_b),
                  std::string(InterdependenceKindName(r.kind))});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "influence.csv"));
    w.WriteRow(kInfluenceHeader);
    for (const InfluenceRecord& r : dataset.influence()) {
      w.WriteRow({StringPrintf("%u", r.person),
                  StringPrintf("%u", r.company),
                  StringPrintf("%u", static_cast<unsigned>(r.kind)),
                  r.is_legal_person ? "1" : "0"});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "investment.csv"));
    w.WriteRow(kInvestmentHeader);
    for (const InvestmentRecord& r : dataset.investments()) {
      w.WriteRow({StringPrintf("%u", r.investor),
                  StringPrintf("%u", r.investee),
                  StringPrintf("%.6f", r.share)});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "trades.csv"));
    w.WriteRow(kTradesHeader);
    for (const TradeRecord& r : dataset.trades()) {
      w.WriteRow(
          {StringPrintf("%u", r.seller), StringPrintf("%u", r.buyer)});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  return Status::OK();
}

Result<RawDataset> LoadDatasetCsv(const std::string& directory) {
  RawDataset dataset;

  TPIIN_ASSIGN_OR_RETURN(
      auto person_rows,
      ReadCsvFile(PathOf(directory, "persons.csv"), kPersonsHeader));
  for (const auto& row : person_rows) {
    if (row.size() != 3) {
      return Status::Corruption("persons.csv: bad column count");
    }
    TPIIN_ASSIGN_OR_RETURN(int64_t roles, ParseInt64(row[2]));
    if (roles < 0 || roles > kAllRoleBits) {
      return Status::Corruption("persons.csv: bad roles mask " + row[2]);
    }
    dataset.AddPerson(row[1], static_cast<PersonRoles>(roles));
  }

  TPIIN_ASSIGN_OR_RETURN(
      auto company_rows,
      ReadCsvFile(PathOf(directory, "companies.csv"), kCompaniesHeader));
  for (const auto& row : company_rows) {
    if (row.size() != 2) {
      return Status::Corruption("companies.csv: bad column count");
    }
    dataset.AddCompany(row[1]);
  }

  const size_t np = dataset.persons().size();
  const size_t nc = dataset.companies().size();

  TPIIN_ASSIGN_OR_RETURN(auto inter_rows,
                         ReadCsvFile(PathOf(directory, "interdependence.csv"),
                                     kInterdependenceHeader));
  for (const auto& row : inter_rows) {
    if (row.size() != 3) {
      return Status::Corruption("interdependence.csv: bad column count");
    }
    TPIIN_ASSIGN_OR_RETURN(uint32_t a, ParseId(row[0], np, "person"));
    TPIIN_ASSIGN_OR_RETURN(uint32_t b, ParseId(row[1], np, "person"));
    InterdependenceKind kind;
    if (row[2] == "kinship") {
      kind = InterdependenceKind::kKinship;
    } else if (row[2] == "interlocking") {
      kind = InterdependenceKind::kInterlocking;
    } else {
      return Status::Corruption("interdependence.csv: bad kind " + row[2]);
    }
    dataset.AddInterdependence(a, b, kind);
  }

  TPIIN_ASSIGN_OR_RETURN(
      auto influence_rows,
      ReadCsvFile(PathOf(directory, "influence.csv"), kInfluenceHeader));
  for (const auto& row : influence_rows) {
    if (row.size() != 4) {
      return Status::Corruption("influence.csv: bad column count");
    }
    TPIIN_ASSIGN_OR_RETURN(uint32_t person, ParseId(row[0], np, "person"));
    TPIIN_ASSIGN_OR_RETURN(uint32_t company,
                           ParseId(row[1], nc, "company"));
    TPIIN_ASSIGN_OR_RETURN(int64_t kind, ParseInt64(row[2]));
    if (kind < 0 || kind > 3) {
      return Status::Corruption("influence.csv: bad kind " + row[2]);
    }
    dataset.AddInfluence(person, company, static_cast<InfluenceKind>(kind),
                         row[3] == "1");
  }

  TPIIN_ASSIGN_OR_RETURN(
      auto invest_rows,
      ReadCsvFile(PathOf(directory, "investment.csv"), kInvestmentHeader));
  for (const auto& row : invest_rows) {
    if (row.size() != 3) {
      return Status::Corruption("investment.csv: bad column count");
    }
    TPIIN_ASSIGN_OR_RETURN(uint32_t investor,
                           ParseId(row[0], nc, "company"));
    TPIIN_ASSIGN_OR_RETURN(uint32_t investee,
                           ParseId(row[1], nc, "company"));
    TPIIN_ASSIGN_OR_RETURN(double share, ParseDouble(row[2]));
    dataset.AddInvestment(investor, investee, share);
  }

  TPIIN_ASSIGN_OR_RETURN(
      auto trade_rows,
      ReadCsvFile(PathOf(directory, "trades.csv"), kTradesHeader));
  for (const auto& row : trade_rows) {
    if (row.size() != 2) {
      return Status::Corruption("trades.csv: bad column count");
    }
    TPIIN_ASSIGN_OR_RETURN(uint32_t seller, ParseId(row[0], nc, "company"));
    TPIIN_ASSIGN_OR_RETURN(uint32_t buyer, ParseId(row[1], nc, "company"));
    dataset.AddTrade(seller, buyer);
  }

  TPIIN_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace tpiin

#include "io/dataset_csv.h"

#include <functional>
#include <unordered_map>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace tpiin {

namespace {

const std::vector<std::string> kPersonsHeader = {"id", "name", "roles"};
const std::vector<std::string> kCompaniesHeader = {"id", "name"};
const std::vector<std::string> kInterdependenceHeader = {"person_a",
                                                         "person_b", "kind"};
const std::vector<std::string> kInfluenceHeader = {"person", "company",
                                                   "kind", "legal_person"};
const std::vector<std::string> kInvestmentHeader = {"investor", "investee",
                                                    "share"};
const std::vector<std::string> kTradesHeader = {"seller", "buyer"};

std::string PathOf(const std::string& directory, const char* file) {
  return directory + "/" + file;
}

}  // namespace

Status SaveDatasetCsv(const std::string& directory,
                      const RawDataset& dataset) {
  {
    CsvWriter w(PathOf(directory, "persons.csv"));
    w.WriteRow(kPersonsHeader);
    for (const Person& p : dataset.persons()) {
      w.WriteRow({StringPrintf("%u", p.id), p.name,
                  StringPrintf("%u", p.roles)});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "companies.csv"));
    w.WriteRow(kCompaniesHeader);
    for (const Company& c : dataset.companies()) {
      w.WriteRow({StringPrintf("%u", c.id), c.name});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "interdependence.csv"));
    w.WriteRow(kInterdependenceHeader);
    for (const InterdependenceRecord& r : dataset.interdependence()) {
      w.WriteRow({StringPrintf("%u", r.person_a),
                  StringPrintf("%u", r.person_b),
                  std::string(InterdependenceKindName(r.kind))});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "influence.csv"));
    w.WriteRow(kInfluenceHeader);
    for (const InfluenceRecord& r : dataset.influence()) {
      w.WriteRow({StringPrintf("%u", r.person),
                  StringPrintf("%u", r.company),
                  StringPrintf("%u", static_cast<unsigned>(r.kind)),
                  r.is_legal_person ? "1" : "0"});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "investment.csv"));
    w.WriteRow(kInvestmentHeader);
    for (const InvestmentRecord& r : dataset.investments()) {
      w.WriteRow({StringPrintf("%u", r.investor),
                  StringPrintf("%u", r.investee),
                  StringPrintf("%.6f", r.share)});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  {
    CsvWriter w(PathOf(directory, "trades.csv"));
    w.WriteRow(kTradesHeader);
    for (const TradeRecord& r : dataset.trades()) {
      w.WriteRow(
          {StringPrintf("%u", r.seller), StringPrintf("%u", r.buyer)});
    }
    TPIIN_RETURN_IF_ERROR(w.Close());
  }
  return Status::OK();
}

Result<RawDataset> LoadDatasetCsv(const std::string& directory) {
  return LoadDatasetCsv(directory, IngestOptions{}, nullptr);
}

namespace {

// Runs one CSV table through the hardened row loop: structural damage
// (open failure, bad header) is fatal; per-row damage — parse errors,
// wrong column counts, oversized fields, and whatever `handler` rejects
// (it sets *error_class before returning non-OK) — goes through `sink`,
// which applies the strict/skip/quarantine policy.
Status LoadTable(
    const std::string& path, const std::vector<std::string>& header,
    size_t max_field_bytes, IngestSink& sink,
    const std::function<Status(const std::vector<std::string>&,
                               const char**)>& handler) {
  CsvFileReader reader(path);
  TPIIN_RETURN_IF_ERROR(reader.status());
  TPIIN_RETURN_IF_ERROR(reader.ExpectHeader(header));
  CsvRow row;
  while (reader.Next(&row)) {
    const char* error_class = ingest_error::kParse;
    Status row_status = [&]() -> Status {
      if (!row.parse.ok()) return row.parse;
      if (row.fields.size() != header.size()) {
        error_class = ingest_error::kColumns;
        return Status::Corruption(
            StringPrintf("expected %zu columns, found %zu", header.size(),
                         row.fields.size()));
      }
      if (max_field_bytes != 0) {
        for (const std::string& field : row.fields) {
          if (field.size() > max_field_bytes) {
            error_class = ingest_error::kOversizedField;
            return Status::Corruption(
                StringPrintf("field of %zu bytes exceeds limit %zu",
                             field.size(), max_field_bytes));
          }
        }
      }
      return handler(row.fields, &error_class);
    }();
    if (!row_status.ok()) {
      TPIIN_RETURN_IF_ERROR(sink.Reject(path, row.line_number, row.raw,
                                        error_class, row_status));
      continue;
    }
    sink.CountLoaded();
  }
  return Status::OK();
}

// File-id -> dense-id map for one entity table. Ids come from the id
// column (not row order), so a skipped row leaves a hole instead of
// silently shifting every later reference.
using IdMap = std::unordered_map<int64_t, uint32_t>;

Result<int64_t> ParseFileId(const std::string& field,
                            const char** error_class) {
  Result<int64_t> value = ParseInt64(field);
  if (!value.ok() || *value < 0) {
    *error_class = ingest_error::kBadNumber;
    return Status::Corruption("bad id: " + field);
  }
  return value;
}

Result<uint32_t> ResolveRef(const IdMap& ids, const std::string& field,
                            const char* what, const char** error_class) {
  Result<int64_t> raw = ParseInt64(field);
  if (!raw.ok()) {
    *error_class = ingest_error::kBadNumber;
    return Status::Corruption(StringPrintf("bad %s id: %s", what,
                                           field.c_str()));
  }
  auto it = ids.find(*raw);
  if (it == ids.end()) {
    *error_class = ingest_error::kDanglingRef;
    return Status::Corruption(
        StringPrintf("%s id %s does not refer to a loaded row", what,
                     field.c_str()));
  }
  return it->second;
}

}  // namespace

Result<RawDataset> LoadDatasetCsv(const std::string& directory,
                                  const IngestOptions& options,
                                  LoadReport* report) {
  TPIIN_FAILPOINT("io.dataset.load");
  LoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = LoadReport{};
  RawDataset dataset;
  IngestSink sink(options, report);
  IdMap person_ids;
  IdMap company_ids;

  TPIIN_RETURN_IF_ERROR(LoadTable(
      PathOf(directory, "persons.csv"), kPersonsHeader,
      options.max_field_bytes, sink,
      [&](const std::vector<std::string>& row,
          const char** cls) -> Status {
        TPIIN_ASSIGN_OR_RETURN(int64_t id, ParseFileId(row[0], cls));
        if (person_ids.count(id) != 0) {
          *cls = ingest_error::kDuplicateId;
          return Status::Corruption("duplicate person id " + row[0]);
        }
        if (!IsValidUtf8(row[1])) {
          *cls = ingest_error::kBadUtf8;
          return Status::Corruption("person name is not valid UTF-8");
        }
        Result<int64_t> roles = ParseInt64(row[2]);
        if (!roles.ok()) {
          *cls = ingest_error::kBadNumber;
          return Status::Corruption("bad roles mask " + row[2]);
        }
        if (*roles < 0 || *roles > kAllRoleBits) {
          *cls = ingest_error::kBadEnum;
          return Status::Corruption("bad roles mask " + row[2]);
        }
        person_ids.emplace(
            id, dataset.AddPerson(row[1],
                                  static_cast<PersonRoles>(*roles)));
        return Status::OK();
      }));

  TPIIN_RETURN_IF_ERROR(LoadTable(
      PathOf(directory, "companies.csv"), kCompaniesHeader,
      options.max_field_bytes, sink,
      [&](const std::vector<std::string>& row,
          const char** cls) -> Status {
        TPIIN_ASSIGN_OR_RETURN(int64_t id, ParseFileId(row[0], cls));
        if (company_ids.count(id) != 0) {
          *cls = ingest_error::kDuplicateId;
          return Status::Corruption("duplicate company id " + row[0]);
        }
        if (!IsValidUtf8(row[1])) {
          *cls = ingest_error::kBadUtf8;
          return Status::Corruption("company name is not valid UTF-8");
        }
        company_ids.emplace(id, dataset.AddCompany(row[1]));
        return Status::OK();
      }));

  TPIIN_RETURN_IF_ERROR(LoadTable(
      PathOf(directory, "interdependence.csv"), kInterdependenceHeader,
      options.max_field_bytes, sink,
      [&](const std::vector<std::string>& row,
          const char** cls) -> Status {
        TPIIN_ASSIGN_OR_RETURN(uint32_t a,
                               ResolveRef(person_ids, row[0], "person",
                                          cls));
        TPIIN_ASSIGN_OR_RETURN(uint32_t b,
                               ResolveRef(person_ids, row[1], "person",
                                          cls));
        InterdependenceKind kind;
        if (row[2] == "kinship") {
          kind = InterdependenceKind::kKinship;
        } else if (row[2] == "interlocking") {
          kind = InterdependenceKind::kInterlocking;
        } else {
          *cls = ingest_error::kBadEnum;
          return Status::Corruption("bad interdependence kind " + row[2]);
        }
        dataset.AddInterdependence(a, b, kind);
        return Status::OK();
      }));

  TPIIN_RETURN_IF_ERROR(LoadTable(
      PathOf(directory, "influence.csv"), kInfluenceHeader,
      options.max_field_bytes, sink,
      [&](const std::vector<std::string>& row,
          const char** cls) -> Status {
        TPIIN_ASSIGN_OR_RETURN(uint32_t person,
                               ResolveRef(person_ids, row[0], "person",
                                          cls));
        TPIIN_ASSIGN_OR_RETURN(uint32_t company,
                               ResolveRef(company_ids, row[1], "company",
                                          cls));
        Result<int64_t> kind = ParseInt64(row[2]);
        if (!kind.ok()) {
          *cls = ingest_error::kBadNumber;
          return Status::Corruption("bad influence kind " + row[2]);
        }
        if (*kind < 0 || *kind > 3) {
          *cls = ingest_error::kBadEnum;
          return Status::Corruption("bad influence kind " + row[2]);
        }
        if (row[3] != "0" && row[3] != "1") {
          *cls = ingest_error::kBadEnum;
          return Status::Corruption("bad legal_person flag " + row[3]);
        }
        dataset.AddInfluence(person, company,
                             static_cast<InfluenceKind>(*kind),
                             row[3] == "1");
        return Status::OK();
      }));

  TPIIN_RETURN_IF_ERROR(LoadTable(
      PathOf(directory, "investment.csv"), kInvestmentHeader,
      options.max_field_bytes, sink,
      [&](const std::vector<std::string>& row,
          const char** cls) -> Status {
        TPIIN_ASSIGN_OR_RETURN(uint32_t investor,
                               ResolveRef(company_ids, row[0], "company",
                                          cls));
        TPIIN_ASSIGN_OR_RETURN(uint32_t investee,
                               ResolveRef(company_ids, row[1], "company",
                                          cls));
        Result<double> share = ParseDouble(row[2]);
        if (!share.ok()) {
          *cls = ingest_error::kBadNumber;
          return Status::Corruption("bad share " + row[2]);
        }
        dataset.AddInvestment(investor, investee, *share);
        return Status::OK();
      }));

  TPIIN_RETURN_IF_ERROR(LoadTable(
      PathOf(directory, "trades.csv"), kTradesHeader,
      options.max_field_bytes, sink,
      [&](const std::vector<std::string>& row,
          const char** cls) -> Status {
        TPIIN_ASSIGN_OR_RETURN(uint32_t seller,
                               ResolveRef(company_ids, row[0], "company",
                                          cls));
        TPIIN_ASSIGN_OR_RETURN(uint32_t buyer,
                               ResolveRef(company_ids, row[1], "company",
                                          cls));
        dataset.AddTrade(seller, buyer);
        return Status::OK();
      }));

  TPIIN_RETURN_IF_ERROR(sink.Finish());
  TPIIN_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace tpiin

#include "io/dot_export.h"

#include "common/atomic_file.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "fusion/layers.h"

namespace tpiin {

namespace {

// Escapes a DOT double-quoted string.
std::string DotEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* LayerEdgeColor(ArcColor color) {
  switch (color) {
    case kLayerKinship:
      return "brown";
    case kLayerInterlocking:
      return "gold";
    case kLayerInfluence:
      return "blue";
    case kLayerInvestment:
      return "forestgreen";
    case kLayerTrading:
      return "black";
    default:
      return "gray";
  }
}

}  // namespace

std::string TpiinToDot(const Tpiin& net, const std::string& graph_name) {
  std::string out = "digraph \"" + DotEscape(graph_name) + "\" {\n";
  out += "  rankdir=LR;\n  node [fontsize=10];\n";
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    const TpiinNode& node = net.node(v);
    bool is_company = node.color == NodeColor::kCompany;
    out += StringPrintf(
        "  n%u [label=\"%s\", shape=%s, color=%s, fontcolor=%s];\n", v,
        DotEscape(node.label).c_str(), is_company ? "box" : "ellipse",
        is_company ? "red" : "black", is_company ? "red" : "black");
  }
  // ArcsInIdOrder reconstructs the arc table from the frozen CSR view in
  // arc-id order, so the emitted edge lines match the adjacency-list
  // output byte for byte.
  for (const Arc& arc : net.frozen().ArcsInIdOrder(kArcTrading)) {
    out += StringPrintf("  n%u -> n%u [color=%s];\n", arc.src, arc.dst,
                        IsInfluenceArc(arc) ? "blue" : "black");
  }
  out += "}\n";
  return out;
}

std::string LayerToDot(const Digraph& graph,
                       const std::vector<std::string>& labels,
                       const std::string& graph_name) {
  // Freeze on the first arc color seen; the CSR partition keeps the
  // second color (if any) addressable as the "other" class. Layer
  // graphs never carry more than two colors, which the reconstruction
  // below relies on, so check rather than silently miscolor.
  ArcColor first_color = 1;
  ArcColor other_color = 0;
  bool have_first = false;
  bool have_other = false;
  for (const Arc& arc : graph.arcs()) {
    if (!have_first) {
      first_color = arc.color;
      have_first = true;
    } else if (arc.color != first_color) {
      TPIIN_CHECK(!have_other || arc.color == other_color)
          << "LayerToDot supports at most two arc colors";
      other_color = arc.color;
      have_other = true;
    }
  }
  return LayerToDot(FrozenGraph(graph, first_color), other_color, labels,
                    graph_name);
}

std::string LayerToDot(const FrozenGraph& graph, ArcColor other_color,
                       const std::vector<std::string>& labels,
                       const std::string& graph_name) {
  std::string out = "digraph \"" + DotEscape(graph_name) + "\" {\n";
  out += "  node [fontsize=10, shape=circle];\n";
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    std::string label =
        v < labels.size() ? labels[v] : StringPrintf("%u", v);
    out += StringPrintf("  n%u [label=\"%s\"];\n", v,
                        DotEscape(label).c_str());
  }
  for (const Arc& arc : graph.ArcsInIdOrder(other_color)) {
    // Interdependence links are unidirectional (undirected) edges in the
    // paper; render without arrowheads.
    bool undirected =
        arc.color == kLayerKinship || arc.color == kLayerInterlocking;
    out += StringPrintf("  n%u -> n%u [color=%s%s];\n", arc.src, arc.dst,
                        LayerEdgeColor(arc.color),
                        undirected ? ", dir=none" : "");
  }
  out += "}\n";
  return out;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  return WriteFileAtomic(path, contents);
}

}  // namespace tpiin

#include "io/pattern_file.h"

#include "common/atomic_file.h"

namespace tpiin {

// All four writers stream through AtomicFile: a crash or injected IO
// failure mid-write leaves the previous artifact (or nothing), never a
// torn one.

Status WritePatternBaseFile(const std::string& path, const SubTpiin& sub,
                            const PatternBase& base) {
  AtomicFile file(path);
  if (!file.ok()) return Status::IOError("cannot open " + path);
  file.stream() << FormatPatternBase(sub, base);
  return file.Commit();
}

std::string RenderSuspiciousGroups(
    const Tpiin& net, const std::vector<SuspiciousGroup>& groups) {
  std::string out;
  for (const SuspiciousGroup& group : groups) {
    out += group.Format(net);
    out += "\n";
  }
  return out;
}

Status WriteSuspiciousGroupsFile(const std::string& path, const Tpiin& net,
                                 const std::vector<SuspiciousGroup>& groups) {
  AtomicFile file(path);
  if (!file.ok()) return Status::IOError("cannot open " + path);
  file.stream() << RenderSuspiciousGroups(net, groups);
  return file.Commit();
}

Status WriteSuspiciousTradesFile(
    const std::string& path, const Tpiin& net,
    const std::vector<std::pair<NodeId, NodeId>>& trades) {
  AtomicFile file(path);
  if (!file.ok()) return Status::IOError("cannot open " + path);
  for (const auto& [seller, buyer] : trades) {
    file.stream() << net.Label(seller) << " -> " << net.Label(buyer)
                  << "\n";
  }
  return file.Commit();
}

Status WriteDetectionReport(const std::string& path, const Tpiin& net,
                            const DetectionResult& result) {
  AtomicFile file(path);
  if (!file.ok()) return Status::IOError("cannot open " + path);
  std::ostream& out = file.stream();
  out << result.Summary() << "\n\n";
  out << "Suspicious trading relationships:\n";
  for (const auto& [seller, buyer] : result.suspicious_trades) {
    out << "  " << net.Label(seller) << " -> " << net.Label(buyer) << "\n";
  }
  for (const IntraSyndicateFinding& finding : result.intra_syndicate) {
    out << "  [intra-SCC " << net.Label(finding.syndicate_node)
        << "] company#" << finding.seller << " -> company#"
        << finding.buyer << "\n";
  }
  out << "\nSuspicious groups:\n";
  for (const SuspiciousGroup& group : result.groups) {
    out << "  " << group.Format(net) << "\n";
  }
  return file.Commit();
}

}  // namespace tpiin

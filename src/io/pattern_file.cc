#include "io/pattern_file.h"

#include <fstream>

namespace tpiin {

namespace {

Status Flush(std::ofstream& out, const std::string& path) {
  out.flush();
  if (!out.good()) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace

Status WritePatternBaseFile(const std::string& path, const SubTpiin& sub,
                            const PatternBase& base) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot open " + path);
  out << FormatPatternBase(sub, base);
  return Flush(out, path);
}

Status WriteSuspiciousGroupsFile(const std::string& path, const Tpiin& net,
                                 const std::vector<SuspiciousGroup>& groups) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot open " + path);
  for (const SuspiciousGroup& group : groups) {
    out << group.Format(net) << "\n";
  }
  return Flush(out, path);
}

Status WriteSuspiciousTradesFile(
    const std::string& path, const Tpiin& net,
    const std::vector<std::pair<NodeId, NodeId>>& trades) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot open " + path);
  for (const auto& [seller, buyer] : trades) {
    out << net.Label(seller) << " -> " << net.Label(buyer) << "\n";
  }
  return Flush(out, path);
}

Status WriteDetectionReport(const std::string& path, const Tpiin& net,
                            const DetectionResult& result) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot open " + path);
  out << result.Summary() << "\n\n";
  out << "Suspicious trading relationships:\n";
  for (const auto& [seller, buyer] : result.suspicious_trades) {
    out << "  " << net.Label(seller) << " -> " << net.Label(buyer) << "\n";
  }
  for (const IntraSyndicateFinding& finding : result.intra_syndicate) {
    out << "  [intra-SCC " << net.Label(finding.syndicate_node)
        << "] company#" << finding.seller << " -> company#"
        << finding.buyer << "\n";
  }
  out << "\nSuspicious groups:\n";
  for (const SuspiciousGroup& group : result.groups) {
    out << "  " << group.Format(net) << "\n";
  }
  return Flush(out, path);
}

}  // namespace tpiin

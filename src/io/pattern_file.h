#ifndef TPIIN_IO_PATTERN_FILE_H_
#define TPIIN_IO_PATTERN_FILE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/component_pattern.h"
#include "core/detector.h"
#include "core/matcher.h"
#include "core/subtpiin.h"

namespace tpiin {

/// Writes one subTPIIN's potential component patterns base as the paper's
/// numbered-trail file patterns(i) (Fig. 10 layout).
Status WritePatternBaseFile(const std::string& path, const SubTpiin& sub,
                            const PatternBase& base);

/// Renders detected suspicious groups in the paper's susGroup(i)
/// layout: one group per line, "antecedent: {trail1} | {trail2}
/// [flags]". The single source of the format — the batch file writer
/// below streams exactly these bytes, and the serve layer's `groups`
/// verb returns them, so the two are diffable byte for byte.
std::string RenderSuspiciousGroups(const Tpiin& net,
                                   const std::vector<SuspiciousGroup>& groups);

/// Writes RenderSuspiciousGroups to the susGroup(i) file.
Status WriteSuspiciousGroupsFile(const std::string& path, const Tpiin& net,
                                 const std::vector<SuspiciousGroup>& groups);

/// Writes suspicious trading relationships as susTrade(i): one
/// "seller -> buyer" pair per line.
Status WriteSuspiciousTradesFile(
    const std::string& path, const Tpiin& net,
    const std::vector<std::pair<NodeId, NodeId>>& trades);

/// Full detection report (summary + groups + trades) in one text file.
Status WriteDetectionReport(const std::string& path, const Tpiin& net,
                            const DetectionResult& result);

}  // namespace tpiin

#endif  // TPIIN_IO_PATTERN_FILE_H_

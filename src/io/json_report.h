#ifndef TPIIN_IO_JSON_REPORT_H_
#define TPIIN_IO_JSON_REPORT_H_

#include <string>
#include <string_view>

#include "core/detector.h"
#include "core/scoring.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// Renders a detection run (and optionally its scoring) as a JSON
/// document for downstream tooling:
///
/// {
///   "summary": {"subtpiins": ..., "trails": ..., "simple": ...,
///               "complex": ..., "circle": ..., "intra_scc": ...,
///               "suspicious_trades": ..., "total_trades": ...},
///   "suspicious_trades": [{"seller": "...", "buyer": "...",
///                          "score": 0.92, "groups": 3}, ...],
///   "groups": [{"antecedent": "...", "trade_trail": [...],
///               "partner_trail": [...], "seller": "...",
///               "buyer": "...", "kind": "simple|complex|circle",
///               "score": 0.81}, ...]
/// }
///
/// `scoring` may be null (scores are then omitted). Labels are the TPIIN
/// node labels; JSON string escaping is applied.
std::string DetectionToJson(const Tpiin& net,
                            const DetectionResult& detection,
                            const ScoringResult* scoring = nullptr);

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
std::string JsonEscape(std::string_view text);

}  // namespace tpiin

#endif  // TPIIN_IO_JSON_REPORT_H_

#include "io/ledger_csv.h"

#include <fstream>
#include <unordered_set>

#include "common/csv.h"
#include "common/string_util.h"

namespace tpiin {

namespace {

const std::vector<std::string> kMarketHeader = {"category", "unit_price"};
const std::vector<std::string> kTransactionsHeader = {
    "id", "seller", "buyer", "category", "quantity", "unit_price",
    "mispriced"};

}  // namespace

Status SaveLedgerCsv(const std::string& directory, const Ledger& ledger) {
  {
    CsvWriter writer(directory + "/market.csv");
    writer.WriteRow(kMarketHeader);
    for (CategoryId c = 0; c < ledger.market.num_categories(); ++c) {
      writer.WriteRow({StringPrintf("%u", c),
                       StringPrintf("%.17g", ledger.market.PriceOf(c))});
    }
    TPIIN_RETURN_IF_ERROR(writer.Close());
  }
  std::unordered_set<size_t> mispriced(ledger.mispriced.begin(),
                                       ledger.mispriced.end());
  CsvWriter writer(directory + "/transactions.csv");
  writer.WriteRow(kTransactionsHeader);
  for (size_t i = 0; i < ledger.transactions.size(); ++i) {
    const Transaction& tx = ledger.transactions[i];
    writer.WriteRow({StringPrintf("%llu", static_cast<unsigned long long>(
                                              tx.id)),
                     StringPrintf("%u", tx.seller),
                     StringPrintf("%u", tx.buyer),
                     StringPrintf("%u", tx.category),
                     StringPrintf("%.17g", tx.quantity),
                     StringPrintf("%.17g", tx.unit_price),
                     mispriced.count(i) ? "1" : "0"});
  }
  return writer.Close();
}

Result<Ledger> LoadLedgerCsv(const std::string& directory) {
  Ledger ledger;
  TPIIN_ASSIGN_OR_RETURN(
      auto market_rows,
      ReadCsvFile(directory + "/market.csv", kMarketHeader));
  for (const auto& row : market_rows) {
    if (row.size() != 2) {
      return Status::Corruption("market.csv: bad column count");
    }
    TPIIN_ASSIGN_OR_RETURN(int64_t category, ParseInt64(row[0]));
    TPIIN_ASSIGN_OR_RETURN(double price, ParseDouble(row[1]));
    if (category !=
        static_cast<int64_t>(ledger.market.unit_price.size())) {
      return Status::Corruption("market.csv: categories must be dense");
    }
    ledger.market.unit_price.push_back(price);
  }

  TPIIN_ASSIGN_OR_RETURN(
      auto tx_rows,
      ReadCsvFile(directory + "/transactions.csv", kTransactionsHeader));
  std::unordered_set<uint64_t> relations;
  for (const auto& row : tx_rows) {
    if (row.size() != 7) {
      return Status::Corruption("transactions.csv: bad column count");
    }
    Transaction tx;
    TPIIN_ASSIGN_OR_RETURN(int64_t id, ParseInt64(row[0]));
    tx.id = static_cast<TransactionId>(id);
    TPIIN_ASSIGN_OR_RETURN(int64_t seller, ParseInt64(row[1]));
    tx.seller = static_cast<CompanyId>(seller);
    TPIIN_ASSIGN_OR_RETURN(int64_t buyer, ParseInt64(row[2]));
    tx.buyer = static_cast<CompanyId>(buyer);
    TPIIN_ASSIGN_OR_RETURN(int64_t category, ParseInt64(row[3]));
    if (category < 0 ||
        category >= static_cast<int64_t>(ledger.market.num_categories())) {
      return Status::Corruption("transactions.csv: bad category " +
                                row[3]);
    }
    tx.category = static_cast<CategoryId>(category);
    TPIIN_ASSIGN_OR_RETURN(tx.quantity, ParseDouble(row[4]));
    TPIIN_ASSIGN_OR_RETURN(tx.unit_price, ParseDouble(row[5]));
    if (row[6] == "1") {
      ledger.mispriced.push_back(ledger.transactions.size());
    } else if (row[6] != "0") {
      return Status::Corruption("transactions.csv: bad mispriced flag");
    }
    relations.insert((static_cast<uint64_t>(tx.seller) << 32) | tx.buyer);
    ledger.transactions.push_back(tx);
  }
  ledger.num_relations = relations.size();
  return ledger;
}

Status WriteAuditReport(const std::string& path, const Ledger& ledger,
                        const AuditReport& report) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.good()) return Status::IOError("cannot open " + path);
  out << report.Summary() << "\n\nFindings:\n";
  for (const CupFinding& finding : report.findings) {
    const Transaction& tx = ledger.transactions[finding.tx_index];
    out << StringPrintf(
        "  tx#%llu  company#%u -> company#%u  category %u  "
        "price %.2f (market %.2f)  under-invoiced %.2f  adjustment "
        "%.2f\n",
        static_cast<unsigned long long>(tx.id), tx.seller, tx.buyer,
        tx.category, tx.unit_price, ledger.market.PriceOf(tx.category),
        finding.underpricing, finding.tax_adjustment);
  }
  out.flush();
  if (!out.good()) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace tpiin

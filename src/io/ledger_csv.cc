#include "io/ledger_csv.h"

#include <unordered_set>

#include "common/atomic_file.h"
#include "common/csv.h"
#include "common/string_util.h"

namespace tpiin {

namespace {

const std::vector<std::string> kMarketHeader = {"category", "unit_price"};
const std::vector<std::string> kTransactionsHeader = {
    "id", "seller", "buyer", "category", "quantity", "unit_price",
    "mispriced"};

}  // namespace

Status SaveLedgerCsv(const std::string& directory, const Ledger& ledger) {
  {
    CsvWriter writer(directory + "/market.csv");
    writer.WriteRow(kMarketHeader);
    for (CategoryId c = 0; c < ledger.market.num_categories(); ++c) {
      writer.WriteRow({StringPrintf("%u", c),
                       StringPrintf("%.17g", ledger.market.PriceOf(c))});
    }
    TPIIN_RETURN_IF_ERROR(writer.Close());
  }
  std::unordered_set<size_t> mispriced(ledger.mispriced.begin(),
                                       ledger.mispriced.end());
  CsvWriter writer(directory + "/transactions.csv");
  writer.WriteRow(kTransactionsHeader);
  for (size_t i = 0; i < ledger.transactions.size(); ++i) {
    const Transaction& tx = ledger.transactions[i];
    writer.WriteRow({StringPrintf("%llu", static_cast<unsigned long long>(
                                              tx.id)),
                     StringPrintf("%u", tx.seller),
                     StringPrintf("%u", tx.buyer),
                     StringPrintf("%u", tx.category),
                     StringPrintf("%.17g", tx.quantity),
                     StringPrintf("%.17g", tx.unit_price),
                     mispriced.count(i) ? "1" : "0"});
  }
  return writer.Close();
}

Result<Ledger> LoadLedgerCsv(const std::string& directory) {
  return LoadLedgerCsv(directory, IngestOptions{}, nullptr);
}

Result<Ledger> LoadLedgerCsv(const std::string& directory,
                             const IngestOptions& options,
                             LoadReport* report) {
  LoadReport local_report;
  if (report == nullptr) report = &local_report;
  *report = LoadReport{};
  IngestSink sink(options, report);
  Ledger ledger;

  {
    const std::string path = directory + "/market.csv";
    CsvFileReader reader(path);
    TPIIN_RETURN_IF_ERROR(reader.status());
    TPIIN_RETURN_IF_ERROR(reader.ExpectHeader(kMarketHeader));
    CsvRow row;
    while (reader.Next(&row)) {
      const char* error_class = ingest_error::kParse;
      Status row_status = [&]() -> Status {
        if (!row.parse.ok()) return row.parse;
        if (row.fields.size() != 2) {
          error_class = ingest_error::kColumns;
          return Status::Corruption("bad column count");
        }
        Result<int64_t> category = ParseInt64(row.fields[0]);
        Result<double> price = ParseDouble(row.fields[1]);
        if (!category.ok() || !price.ok()) {
          error_class = ingest_error::kBadNumber;
          return Status::Corruption("bad market row");
        }
        // Categories index the price vector, so they must stay dense; a
        // rejected market row therefore cascades (later categories are
        // rejected too, and transactions on them become dangling_ref)
        // rather than silently re-pricing anything.
        if (*category !=
            static_cast<int64_t>(ledger.market.unit_price.size())) {
          error_class = ingest_error::kIdRange;
          return Status::Corruption("categories must be dense");
        }
        ledger.market.unit_price.push_back(*price);
        return Status::OK();
      }();
      if (!row_status.ok()) {
        TPIIN_RETURN_IF_ERROR(sink.Reject(path, row.line_number, row.raw,
                                          error_class, row_status));
        continue;
      }
      sink.CountLoaded();
    }
  }

  {
    const std::string path = directory + "/transactions.csv";
    CsvFileReader reader(path);
    TPIIN_RETURN_IF_ERROR(reader.status());
    TPIIN_RETURN_IF_ERROR(reader.ExpectHeader(kTransactionsHeader));
    std::unordered_set<uint64_t> relations;
    CsvRow row;
    while (reader.Next(&row)) {
      const char* error_class = ingest_error::kParse;
      Status row_status = [&]() -> Status {
        if (!row.parse.ok()) return row.parse;
        if (row.fields.size() != 7) {
          error_class = ingest_error::kColumns;
          return Status::Corruption("bad column count");
        }
        Transaction tx;
        Result<int64_t> id = ParseInt64(row.fields[0]);
        Result<int64_t> seller = ParseInt64(row.fields[1]);
        Result<int64_t> buyer = ParseInt64(row.fields[2]);
        Result<int64_t> category = ParseInt64(row.fields[3]);
        Result<double> quantity = ParseDouble(row.fields[4]);
        Result<double> unit_price = ParseDouble(row.fields[5]);
        if (!id.ok() || !seller.ok() || !buyer.ok() || !category.ok() ||
            !quantity.ok() || !unit_price.ok()) {
          error_class = ingest_error::kBadNumber;
          return Status::Corruption("bad transaction row");
        }
        if (*category < 0 ||
            *category >=
                static_cast<int64_t>(ledger.market.num_categories())) {
          error_class = ingest_error::kDanglingRef;
          return Status::Corruption("bad category " + row.fields[3]);
        }
        if (row.fields[6] != "0" && row.fields[6] != "1") {
          error_class = ingest_error::kBadEnum;
          return Status::Corruption("bad mispriced flag");
        }
        tx.id = static_cast<TransactionId>(*id);
        tx.seller = static_cast<CompanyId>(*seller);
        tx.buyer = static_cast<CompanyId>(*buyer);
        tx.category = static_cast<CategoryId>(*category);
        tx.quantity = *quantity;
        tx.unit_price = *unit_price;
        if (row.fields[6] == "1") {
          ledger.mispriced.push_back(ledger.transactions.size());
        }
        relations.insert((static_cast<uint64_t>(tx.seller) << 32) |
                         tx.buyer);
        ledger.transactions.push_back(tx);
        return Status::OK();
      }();
      if (!row_status.ok()) {
        TPIIN_RETURN_IF_ERROR(sink.Reject(path, row.line_number, row.raw,
                                          error_class, row_status));
        continue;
      }
      sink.CountLoaded();
    }
    ledger.num_relations = relations.size();
  }

  TPIIN_RETURN_IF_ERROR(sink.Finish());
  return ledger;
}

Status WriteAuditReport(const std::string& path, const Ledger& ledger,
                        const AuditReport& report) {
  AtomicFile file(path);
  if (!file.ok()) return Status::IOError("cannot open " + path);
  std::ostream& out = file.stream();
  out << report.Summary() << "\n\nFindings:\n";
  for (const CupFinding& finding : report.findings) {
    const Transaction& tx = ledger.transactions[finding.tx_index];
    out << StringPrintf(
        "  tx#%llu  company#%u -> company#%u  category %u  "
        "price %.2f (market %.2f)  under-invoiced %.2f  adjustment "
        "%.2f\n",
        static_cast<unsigned long long>(tx.id), tx.seller, tx.buyer,
        tx.category, tx.unit_price, ledger.market.PriceOf(tx.category),
        finding.underpricing, finding.tax_adjustment);
  }
  return file.Commit();
}

}  // namespace tpiin

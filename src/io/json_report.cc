#include "io/json_report.h"

#include <unordered_map>

#include "common/string_util.h"

namespace tpiin {

namespace {

uint64_t PairKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

void AppendLabelArray(std::string& out, const Tpiin& net,
                      const std::vector<NodeId>& nodes) {
  out += '[';
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += JsonEscape(net.Label(nodes[i]));
    out += '"';
  }
  out += ']';
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string DetectionToJson(const Tpiin& net,
                            const DetectionResult& detection,
                            const ScoringResult* scoring) {
  std::unordered_map<uint64_t, const ScoredTrade*> trade_scores;
  if (scoring != nullptr) {
    for (const ScoredTrade& trade : scoring->ranked_trades) {
      trade_scores.emplace(PairKey(trade.seller, trade.buyer), &trade);
    }
  }

  std::string out = "{\n  \"summary\": {";
  out += StringPrintf(
      "\"subtpiins\": %zu, \"trails\": %zu, \"simple\": %zu, "
      "\"complex\": %zu, \"circle\": %zu, \"intra_scc\": %zu, "
      "\"suspicious_trades\": %zu, \"total_trades\": %zu",
      detection.num_subtpiins, detection.num_trails, detection.num_simple,
      detection.num_complex, detection.num_cycle_groups,
      detection.intra_syndicate.size(),
      detection.suspicious_trades.size() + detection.intra_syndicate.size(),
      detection.total_trading_arcs + detection.intra_syndicate.size());
  out += "},\n  \"suspicious_trades\": [";

  for (size_t i = 0; i < detection.suspicious_trades.size(); ++i) {
    const auto& [seller, buyer] = detection.suspicious_trades[i];
    if (i > 0) out += ',';
    out += "\n    {\"seller\": \"" + JsonEscape(net.Label(seller)) +
           "\", \"buyer\": \"" + JsonEscape(net.Label(buyer)) + "\"";
    auto it = trade_scores.find(PairKey(seller, buyer));
    if (it != trade_scores.end()) {
      out += StringPrintf(", \"score\": %.6f, \"groups\": %zu",
                          it->second->score, it->second->group_count);
    }
    out += '}';
  }
  out += "\n  ],\n  \"groups\": [";

  for (size_t i = 0; i < detection.groups.size(); ++i) {
    const SuspiciousGroup& group = detection.groups[i];
    if (i > 0) out += ',';
    out += "\n    {\"antecedent\": \"" +
           JsonEscape(net.Label(group.antecedent)) + "\", ";
    out += "\"trade_trail\": ";
    AppendLabelArray(out, net, group.trade_trail);
    out += ", \"partner_trail\": ";
    AppendLabelArray(out, net, group.partner_trail);
    out += ", \"seller\": \"" + JsonEscape(net.Label(group.trade_seller)) +
           "\", \"buyer\": \"" + JsonEscape(net.Label(group.trade_buyer)) +
           "\", \"kind\": \"";
    out += group.from_cycle ? "circle"
           : group.is_simple ? "simple"
                             : "complex";
    out += '"';
    if (scoring != nullptr && i < scoring->group_scores.size()) {
      out += StringPrintf(", \"score\": %.6f", scoring->group_scores[i]);
    }
    out += '}';
  }
  out += "\n  ],\n  \"intra_syndicate\": [";
  for (size_t i = 0; i < detection.intra_syndicate.size(); ++i) {
    const IntraSyndicateFinding& finding = detection.intra_syndicate[i];
    if (i > 0) out += ',';
    out += StringPrintf(
        "\n    {\"syndicate\": \"%s\", \"seller\": %u, \"buyer\": %u}",
        JsonEscape(net.Label(finding.syndicate_node)).c_str(),
        finding.seller, finding.buyer);
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace tpiin

#ifndef TPIIN_IO_LEDGER_CSV_H_
#define TPIIN_IO_LEDGER_CSV_H_

#include <string>

#include "common/result.h"
#include "io/ingest.h"
#include "ite/audit.h"
#include "ite/ledger.h"

namespace tpiin {

/// Persists a transaction ledger as two CSV tables inside `directory`:
/// market.csv (category, unit_price) and transactions.csv
/// (id, seller, buyer, category, quantity, unit_price, mispriced).
/// The mispriced column carries the generator's ground truth so saved
/// ledgers remain usable as audit oracles.
Status SaveLedgerCsv(const std::string& directory, const Ledger& ledger);

/// Loads a ledger saved by SaveLedgerCsv. `num_relations` is
/// recomputed from the distinct (seller, buyer) pairs. Equivalent to
/// the hardened overload below with default (strict) IngestOptions.
Result<Ledger> LoadLedgerCsv(const std::string& directory);

/// Hardened loader: malformed market/transaction rows are classified
/// per ingest_error:: and handled per `options.mode` (strict fails,
/// skip drops, quarantine drops into options.quarantine_path).
/// Transactions referencing a category that did not load are rejected
/// as dangling_ref, so a skipped market row cannot silently re-price
/// later rows.
Result<Ledger> LoadLedgerCsv(const std::string& directory,
                             const IngestOptions& options,
                             LoadReport* report);

/// Writes an audit report (summary plus one line per finding) to `path`.
Status WriteAuditReport(const std::string& path, const Ledger& ledger,
                        const AuditReport& report);

}  // namespace tpiin

#endif  // TPIIN_IO_LEDGER_CSV_H_

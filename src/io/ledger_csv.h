#ifndef TPIIN_IO_LEDGER_CSV_H_
#define TPIIN_IO_LEDGER_CSV_H_

#include <string>

#include "common/result.h"
#include "ite/audit.h"
#include "ite/ledger.h"

namespace tpiin {

/// Persists a transaction ledger as two CSV tables inside `directory`:
/// market.csv (category, unit_price) and transactions.csv
/// (id, seller, buyer, category, quantity, unit_price, mispriced).
/// The mispriced column carries the generator's ground truth so saved
/// ledgers remain usable as audit oracles.
Status SaveLedgerCsv(const std::string& directory, const Ledger& ledger);

/// Loads a ledger saved by SaveLedgerCsv. `num_relations` is
/// recomputed from the distinct (seller, buyer) pairs.
Result<Ledger> LoadLedgerCsv(const std::string& directory);

/// Writes an audit report (summary plus one line per finding) to `path`.
Status WriteAuditReport(const std::string& path, const Ledger& ledger,
                        const AuditReport& report);

}  // namespace tpiin

#endif  // TPIIN_IO_LEDGER_CSV_H_

#ifndef TPIIN_IO_INGEST_H_
#define TPIIN_IO_INGEST_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tpiin {

class AtomicFile;

/// What a loader does with a malformed row.
enum class IngestMode {
  kStrict,      ///< First bad row fails the whole load (the default, and
                ///< the historical behavior).
  kSkip,        ///< Bad rows are counted and dropped; the load succeeds
                ///< with whatever parsed cleanly.
  kQuarantine,  ///< Like kSkip, but every rejected row is appended to a
                ///< quarantine file (annotated with file, line, and
                ///< error class) for offline repair and replay.
};

const char* IngestModeName(IngestMode mode);

/// Stable error-class tokens: LoadReport counter keys, quarantine
/// annotations, and the DESIGN.md error table all use these spellings.
namespace ingest_error {
inline constexpr const char* kIo = "io_error";
inline constexpr const char* kParse = "parse";
inline constexpr const char* kColumns = "columns";
inline constexpr const char* kBadNumber = "bad_number";
inline constexpr const char* kIdRange = "id_range";
inline constexpr const char* kBadEnum = "bad_enum";
inline constexpr const char* kDuplicateId = "duplicate_id";
inline constexpr const char* kDanglingRef = "dangling_ref";
inline constexpr const char* kBadUtf8 = "bad_utf8";
inline constexpr const char* kOversizedField = "oversized_field";
}  // namespace ingest_error

struct IngestOptions {
  IngestMode mode = IngestMode::kStrict;

  /// Destination for rejected rows; required when mode == kQuarantine.
  /// Written atomically (temp + rename) when the load finishes.
  std::string quarantine_path;

  /// Reject any field longer than this (error class oversized_field);
  /// 0 disables the guard. Protects label maps from a multi-megabyte
  /// line produced by a corrupt extract.
  size_t max_field_bytes = 64 * 1024;

  /// In kSkip/kQuarantine mode, give up (IOError) once this many rows
  /// were rejected — a file that is mostly garbage is more likely the
  /// wrong file than a damaged one. 0 = never give up.
  size_t max_bad_rows = 0;
};

/// Outcome accounting for one hardened load. rows_seen covers every
/// non-blank data row; rows_loaded + rows_rejected == rows_seen.
struct LoadReport {
  size_t rows_seen = 0;
  size_t rows_loaded = 0;
  size_t rows_rejected = 0;
  size_t rows_quarantined = 0;

  /// Rejections keyed by ingest_error class (deterministic iteration).
  std::map<std::string, size_t> errors_by_class;

  /// First few rejection messages ("file:line: class: detail"), for
  /// logs and CLI output.
  std::vector<std::string> samples;

  bool Clean() const { return rows_rejected == 0; }

  /// "1200 rows: 1190 loaded, 10 rejected (bad_number=7, columns=3)".
  std::string ToString() const;
};

/// Row-level rejection policy shared by the hardened loaders. One sink
/// spans one logical load (possibly several files); the quarantine file
/// is opened lazily on the first rejected row and committed by Finish().
///
/// Usage:
///   IngestSink sink(options, &report);
///   for (...) {
///     if (bad) {
///       TPIIN_RETURN_IF_ERROR(sink.Reject(file, line, raw, class, status));
///       continue;  // Row dropped (skip/quarantine mode).
///     }
///     sink.CountLoaded();
///   }
///   TPIIN_RETURN_IF_ERROR(sink.Finish());
class IngestSink {
 public:
  IngestSink(const IngestOptions& options, LoadReport* report);
  ~IngestSink();

  IngestSink(const IngestSink&) = delete;
  IngestSink& operator=(const IngestSink&) = delete;

  /// Records one rejected row. In strict mode returns `error` (annotated
  /// with file:line) for the caller to propagate; in skip/quarantine
  /// mode returns OK — unless the max_bad_rows limit tripped — and the
  /// caller drops the row.
  Status Reject(const std::string& file, size_t line_number,
                std::string_view raw, const char* error_class,
                const Status& error);

  /// Records one successfully loaded row.
  void CountLoaded();

  /// Commits the quarantine file (no-op when nothing was quarantined).
  Status Finish();

 private:
  const IngestOptions& options_;
  LoadReport* report_;
  std::unique_ptr<AtomicFile> quarantine_;
  bool finished_ = false;
};

}  // namespace tpiin

#endif  // TPIIN_IO_INGEST_H_

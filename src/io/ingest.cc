#include "io/ingest.h"

#include "common/atomic_file.h"
#include "common/string_util.h"

namespace tpiin {

namespace {

constexpr size_t kMaxSamples = 5;

}  // namespace

const char* IngestModeName(IngestMode mode) {
  switch (mode) {
    case IngestMode::kStrict: return "strict";
    case IngestMode::kSkip: return "skip";
    case IngestMode::kQuarantine: return "quarantine";
  }
  return "unknown";
}

std::string LoadReport::ToString() const {
  std::string out = StringPrintf("%zu rows: %zu loaded, %zu rejected",
                                 rows_seen, rows_loaded, rows_rejected);
  if (!errors_by_class.empty()) {
    out += " (";
    bool first = true;
    for (const auto& [cls, count] : errors_by_class) {
      if (!first) out += ", ";
      first = false;
      out += StringPrintf("%s=%zu", cls.c_str(), count);
    }
    out += ")";
  }
  if (rows_quarantined > 0) {
    out += StringPrintf(", %zu quarantined", rows_quarantined);
  }
  return out;
}

IngestSink::IngestSink(const IngestOptions& options, LoadReport* report)
    : options_(options), report_(report) {}

IngestSink::~IngestSink() = default;

Status IngestSink::Reject(const std::string& file, size_t line_number,
                          std::string_view raw, const char* error_class,
                          const Status& error) {
  ++report_->rows_seen;
  ++report_->rows_rejected;
  ++report_->errors_by_class[error_class];
  const std::string where =
      StringPrintf("%s:%zu", file.c_str(), line_number);
  if (report_->samples.size() < kMaxSamples) {
    report_->samples.push_back(where + ": " + error_class + ": " +
                               error.message());
  }
  if (options_.mode == IngestMode::kStrict) {
    return Status(error.code(), where + ": " + error.message());
  }
  if (options_.mode == IngestMode::kQuarantine) {
    if (quarantine_ == nullptr) {
      if (options_.quarantine_path.empty()) {
        return Status::InvalidArgument(
            "quarantine mode requires a quarantine path");
      }
      quarantine_ =
          std::make_unique<AtomicFile>(options_.quarantine_path);
      if (!quarantine_->ok()) {
        return Status::IOError("cannot open quarantine file " +
                               options_.quarantine_path);
      }
    }
    quarantine_->stream() << "# " << where << ": " << error_class << ": "
                          << error.message() << "\n"
                          << raw << "\n";
    ++report_->rows_quarantined;
  }
  if (options_.max_bad_rows != 0 &&
      report_->rows_rejected >= options_.max_bad_rows) {
    return Status::IOError(StringPrintf(
        "%s: aborting after %zu rejected rows (max_bad_rows)",
        file.c_str(), report_->rows_rejected));
  }
  return Status::OK();
}

void IngestSink::CountLoaded() {
  ++report_->rows_seen;
  ++report_->rows_loaded;
}

Status IngestSink::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  if (quarantine_ != nullptr) return quarantine_->Commit();
  return Status::OK();
}

}  // namespace tpiin

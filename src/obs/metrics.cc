#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace tpiin {

size_t ObsThreadIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void Histogram::Record(uint64_t value) {
  const size_t bucket = std::bit_width(value);  // 0 -> 0, else log2+1.
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (observed > value &&
         !min_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (observed < value &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  const uint64_t value = min_.load(std::memory_order_relaxed);
  return value == UINT64_MAX ? 0 : value;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::Buckets() const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t count = buckets_[b].load(std::memory_order_relaxed);
    if (count == 0) continue;
    // Bucket b holds values of bit width b: upper bound 2^b - 1
    // (bucket 0 holds only zero).
    const uint64_t upper =
        b == 0 ? 0 : (b >= 64 ? UINT64_MAX : (uint64_t{1} << b) - 1);
    out.emplace_back(upper, count);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t QuantileFromBuckets(
    const std::vector<std::pair<uint64_t, uint64_t>>& buckets, double q) {
  uint64_t total = 0;
  for (const auto& [upper, count] : buckets) total += count;
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // rank ceil(q * total), with rank at least 1 so q=0 is the first
  // non-empty bucket.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (const auto& [upper, count] : buckets) {
    seen += count;
    if (seen >= rank) return upper;
  }
  return buckets.back().first;
}

uint64_t MetricsSnapshot::Entry::Quantile(double q) const {
  uint64_t value = QuantileFromBuckets(buckets, q);
  if (value < min) value = min;
  if (value > max) value = max;
  return value;
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    std::string_view name) const {
  for (const Entry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  char buf[128];
  bool first = true;
  for (const Entry& entry : entries) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"" + entry.name + "\": ";
    switch (entry.kind) {
      case Kind::kCounter:
        std::snprintf(buf, sizeof(buf),
                      "{\"type\": \"counter\", \"value\": %llu}",
                      static_cast<unsigned long long>(entry.value));
        out += buf;
        break;
      case Kind::kGauge:
        std::snprintf(buf, sizeof(buf),
                      "{\"type\": \"gauge\", \"value\": %lld}",
                      static_cast<long long>(entry.gauge));
        out += buf;
        break;
      case Kind::kHistogram:
        std::snprintf(
            buf, sizeof(buf),
            "{\"type\": \"histogram\", \"count\": %llu, \"sum\": %llu, "
            "\"min\": %llu, \"max\": %llu, \"buckets\": [",
            static_cast<unsigned long long>(entry.count),
            static_cast<unsigned long long>(entry.sum),
            static_cast<unsigned long long>(entry.min),
            static_cast<unsigned long long>(entry.max));
        out += buf;
        for (size_t i = 0; i < entry.buckets.size(); ++i) {
          if (i > 0) out += ',';
          std::snprintf(buf, sizeof(buf), "[%llu,%llu]",
                        static_cast<unsigned long long>(
                            entry.buckets[i].first),
                        static_cast<unsigned long long>(
                            entry.buckets[i].second));
          out += buf;
        }
        out += "]}";
        break;
    }
  }
  out += entries.empty() ? "}" : "\n  }";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked like ThreadPool::Global(): counter handles cached by
  // function-local statics must stay valid through shutdown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.entries.reserve(counters_.size() + gauges_.size() +
                           histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricsSnapshot::Entry entry;
    entry.name = name;
    entry.kind = MetricsSnapshot::Kind::kCounter;
    entry.value = counter->Value();
    snapshot.entries.push_back(std::move(entry));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricsSnapshot::Entry entry;
    entry.name = name;
    entry.kind = MetricsSnapshot::Kind::kGauge;
    entry.gauge = gauge->Value();
    snapshot.entries.push_back(std::move(entry));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::Entry entry;
    entry.name = name;
    entry.kind = MetricsSnapshot::Kind::kHistogram;
    entry.count = histogram->Count();
    entry.sum = histogram->Sum();
    entry.min = histogram->Min();
    entry.max = histogram->Max();
    entry.buckets = histogram->Buckets();
    snapshot.entries.push_back(std::move(entry));
  }
  std::sort(snapshot.entries.begin(), snapshot.entries.end(),
            [](const MetricsSnapshot::Entry& a,
               const MetricsSnapshot::Entry& b) { return a.name < b.name; });
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace tpiin

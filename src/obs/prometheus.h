#ifndef TPIIN_OBS_PROMETHEUS_H_
#define TPIIN_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace tpiin {

/// Maps a registry metric name to a Prometheus metric family name:
/// prefix + name with every character outside [a-zA-Z0-9_:] replaced by
/// '_' ("serve.latency_us.groups" -> "tpiin_serve_latency_us_groups").
std::string PrometheusName(std::string_view name, std::string_view prefix);

/// Renders a MetricsSnapshot in the Prometheus text exposition format
/// (version 0.0.4), one family per entry, entries in snapshot order:
///
///  - counters:    `# TYPE <p><name>_total counter` + a single sample;
///  - gauges:      `# TYPE <p><name> gauge` + a single sample;
///  - histograms:  `# TYPE <p><name> histogram` with cumulative
///    `_bucket{le="<upper>"}` samples over the log2 bucket bounds plus
///    `le="+Inf"`, `_sum`, and `_count`, followed by derived
///    `<p><name>_p50` / `_p90` / `_p99` gauges (nearest-rank over
///    bucket upper bounds, clamped to [min, max]) so dashboards get
///    percentiles without PromQL histogram_quantile.
///
/// Ends with a trailing newline; an empty snapshot renders "".
std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 std::string_view prefix = "tpiin_");

}  // namespace tpiin

#endif  // TPIIN_OBS_PROMETHEUS_H_

#ifndef TPIIN_OBS_LOG_H_
#define TPIIN_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// Header-only use of tpiin_common: the LogLevel enum and the abstract
// LogBackend interface. obs sits below common in the link graph, so
// this file must never reference a symbol defined in a common/*.cc.
#include "common/logging.h"
#include "obs/report.h"  // ReportValue / ReportValueToJson.

namespace tpiin {

/// One structured log field: a key and a JSON-expressible scalar.
struct LogField {
  LogField(std::string k, ReportValue v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v)
      : key(std::move(k)), value(std::string(v)) {}
  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, int64_t v) : key(std::move(k)), value(v) {}
  LogField(std::string k, uint64_t v) : key(std::move(k)), value(v) {}
  LogField(std::string k, double v) : key(std::move(k)), value(v) {}
  LogField(std::string k, bool v) : key(std::move(k)), value(v) {}

  std::string key;
  ReportValue value;
};

/// Microseconds since the Unix epoch (wall clock; the log timestamp
/// source). Split out so formatting is testable with a fixed instant.
int64_t UnixMicrosNow();

/// Renders `unix_micros` as RFC 3339 UTC with microsecond precision,
/// e.g. "2026-08-08T12:34:56.789012Z".
std::string FormatLogTimestamp(int64_t unix_micros);

/// Renders one NDJSON event line (no trailing newline): a flat JSON
/// object with fixed leading keys ts/level/component/event followed by
/// the caller's fields in order. Exposed for tests and for callers that
/// want the bytes without a sink.
std::string FormatLogEvent(LogLevel level, std::string_view component,
                           std::string_view event,
                           const std::vector<LogField>& fields,
                           int64_t unix_micros);

/// A leveled, thread-safe, newline-delimited JSON log sink.
///
/// Every event is one flat JSON object on one line:
///
///   {"ts":"2026-08-08T12:34:56.789012Z","level":"info",
///    "component":"serve","event":"request","conn":3,"req":"c3-r7",...}
///
/// Output is a file opened O_APPEND (one write(2) per line, so a crash
/// can tear at most the final line — NDJSON readers skip it) or stderr
/// when constructed with path "" or "-". Writes from any number of
/// threads serialize on an internal mutex; the sink never throws and
/// never allocates in signal context.
///
/// As a LogBackend (common/logging.h), it upgrades every TPIIN_LOG
/// line in the process to a structured event:
///
///   {"ts":...,"level":"warn","component":"fusion","event":"log",
///    "msg":"...","src":"pipeline.cc:123"}
///
/// Rotation: RequestReopen() is async-signal-safe (one relaxed store);
/// the next write closes and reopens the path, so the external rotation
/// idiom — rename the file, signal the process — loses no events. The
/// CLI's SIGHUP handler calls RequestReopenAll() on every live sink.
class JsonLogSink : public LogBackend {
 public:
  /// Opens a sink appending to `path` ("" or "-" = stderr, not
  /// reopenable). Returns nullptr and sets *error when the file cannot
  /// be opened (obs cannot use Status; callers wrap).
  static std::unique_ptr<JsonLogSink> Open(const std::string& path,
                                           std::string* error);

  ~JsonLogSink() override;

  JsonLogSink(const JsonLogSink&) = delete;
  JsonLogSink& operator=(const JsonLogSink&) = delete;

  /// Writes one structured event line. Not level-gated: callers using a
  /// sink as a dedicated event stream (the serve access log) decide
  /// what to record; TPIIN_LOG traffic is gated upstream by
  /// SetLogLevel.
  void Event(LogLevel level, std::string_view component,
             std::string_view event, const std::vector<LogField>& fields);

  /// LogBackend: a TPIIN_LOG line becomes an "event":"log" record with
  /// the message under "msg" and the call site under "src". The
  /// component is the source subdirectory (src/serve/server.cc ->
  /// "serve").
  void Write(LogLevel level, const char* file, int line,
             std::string_view message) override;

  /// Async-signal-safe: the next write reopens the path. No-op for a
  /// stderr sink.
  void RequestReopen() { reopen_.store(true, std::memory_order_release); }

  /// Async-signal-safe: RequestReopen() on every live JsonLogSink. The
  /// CLI's SIGHUP handler; sinks must outlive the handler's last
  /// possible firing (uninstall the handler before destroying sinks).
  static void RequestReopenAll();

  /// Lines successfully written since construction (across reopens).
  uint64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }

  /// True while the last write (and the open) succeeded.
  bool ok() const { return ok_.load(std::memory_order_relaxed); }

  const std::string& path() const { return path_; }

 private:
  JsonLogSink(std::string path, int fd, bool owns_fd);

  void WriteLine(std::string_view line);  // Appends '\n', one write(2).

  const std::string path_;
  std::mutex mu_;
  int fd_;             // Guarded by mu_ (reopen swaps it).
  const bool owns_fd_;
  std::atomic<bool> reopen_{false};
  std::atomic<bool> ok_{true};
  std::atomic<uint64_t> lines_{0};
};

}  // namespace tpiin

#endif  // TPIIN_OBS_LOG_H_

#ifndef TPIIN_OBS_RSS_H_
#define TPIIN_OBS_RSS_H_

#include <cstdint>

namespace tpiin {

/// High-water resident set size of this process in bytes (getrusage
/// ru_maxrss). Monotone over the process lifetime — it never decreases
/// even after memory is released — so out-of-core claims must be
/// measured in a fresh process per configuration. Returns 0 when the
/// platform cannot report it.
int64_t PeakRssBytes();

/// Instantaneous resident set size in bytes (/proc/self/statm).
/// Returns 0 on platforms without procfs.
int64_t CurrentRssBytes();

/// Samples both sizes into the global MetricsRegistry:
/// `process.peak_rss_bytes` (a running-max gauge) and
/// `process.current_rss_bytes`. Called at stage boundaries
/// (RunReport::AddStage) so memory-boundedness is observable in every
/// run report, not just claimed. Returns the peak in bytes.
int64_t SampleRssGauges();

}  // namespace tpiin

#endif  // TPIIN_OBS_RSS_H_

#ifndef TPIIN_OBS_TRACE_H_
#define TPIIN_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

/// Compile-time observability gate. Building with
/// -DTPIIN_OBS_ENABLED=0 compiles every TPIIN_SPAN / TPIIN_COUNTER_*
/// site down to nothing; the default build keeps them in, guarded by a
/// single relaxed atomic load per site (nullptr recorder / registered
/// handle), so a run without --trace-out pays no measurable cost.
#ifndef TPIIN_OBS_ENABLED
#define TPIIN_OBS_ENABLED 1
#endif

namespace tpiin {

/// CPU time consumed by the calling thread, in seconds (0 where the
/// platform offers no thread clock). Stage instrumentation records it
/// next to wall time so a report can separate "slow" from "starved".
double ThreadCpuSeconds();

/// CPU time consumed by the whole process (all threads), in seconds.
/// Stage drivers sample it before/after a parallel stage so reports can
/// show aggregate CPU next to wall time.
double ProcessCpuSeconds();

/// Collects nested start/duration span events from any number of
/// threads into per-thread buffers and merges them into a
/// Chrome-trace_event-format JSON that opens directly in
/// chrome://tracing or Perfetto.
///
/// Usage: construct, Install(), run the pipeline, Uninstall(), then
/// WriteChromeTrace(). While installed, every TPIIN_SPAN in the process
/// records into this recorder. Recording is lock-free after a thread's
/// first span (one vector push_back per span); Install/Uninstall and
/// the merge accessors take a mutex and must not run concurrently with
/// active spans — uninstall after the instrumented calls return, which
/// the blocking pipeline entry points guarantee.
///
/// Tracing never changes pipeline results: spans only read the clock
/// and append to buffers, so detector/fusion output is bit-identical
/// with tracing on or off at any thread count
/// (tests/obs/obs_determinism_test.cc).
class TraceRecorder {
 public:
  /// One completed span. `name` must point to static-storage strings
  /// (the TPIIN_SPAN contract); timestamps are microseconds relative to
  /// the recorder's construction.
  struct SpanEvent {
    const char* name = nullptr;
    int64_t ts_us = 0;
    int64_t dur_us = 0;
    uint32_t tid = 0;  // Dense per-recorder thread index.
    uint32_t seq = 0;  // Start order within the thread (see BeginSpan).
  };

  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Makes this recorder the process-wide span sink. The recorder must
  /// outlive every span started while it is installed.
  void Install();

  /// Clears the process-wide recorder (spans become no-ops again).
  static void Uninstall();

  /// The installed recorder, or nullptr when tracing is disabled. One
  /// relaxed atomic load; this is the span fast path.
  static TraceRecorder* Current() {
    return current_.load(std::memory_order_relaxed);
  }

  /// Microseconds since recorder construction (steady clock).
  int64_t NowMicros() const;

  /// Allocates the calling thread's next span start index. TraceSpan
  /// calls this at construction, so the indices order same-thread spans
  /// by program order (parent before child, siblings in start order)
  /// even when their microsecond timestamps tie — destruction order
  /// cannot distinguish those two cases.
  uint32_t BeginSpan();

  /// Appends a completed span to the calling thread's buffer.
  void RecordSpan(const char* name, int64_t ts_us, int64_t dur_us,
                  uint32_t start_seq);

  /// Spans recorded so far, across all threads.
  size_t NumEvents() const;

  /// All events merged and sorted by (ts, tid, start order), so a
  /// parent span always precedes its children and same-thread order is
  /// reproducible run to run regardless of clock resolution.
  std::vector<SpanEvent> MergedEvents() const;

  /// Chrome trace_event JSON ("traceEvents" array of "X" complete
  /// events plus thread-name metadata).
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::thread::id owner;
    uint32_t tid = 0;
    uint32_t next_seq = 0;  // Next BeginSpan start index.
    std::vector<SpanEvent> events;
  };

  ThreadBuffer* LocalBuffer();

  static std::atomic<TraceRecorder*> current_;

  const uint64_t id_;  // Process-unique, for thread-local cache checks.
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) into the installed
/// TraceRecorder, or does nothing when none is installed. `name` must
/// have static storage duration (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : recorder_(TraceRecorder::Current()), name_(name) {
    if (recorder_ != nullptr) {
      start_us_ = recorder_->NowMicros();
      start_seq_ = recorder_->BeginSpan();
    }
  }

  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordSpan(name_, start_us_,
                            recorder_->NowMicros() - start_us_,
                            start_seq_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  int64_t start_us_ = 0;
  uint32_t start_seq_ = 0;
};

}  // namespace tpiin

#define TPIIN_OBS_CONCAT_INNER(a, b) a##b
#define TPIIN_OBS_CONCAT(a, b) TPIIN_OBS_CONCAT_INNER(a, b)

#if TPIIN_OBS_ENABLED
/// Opens a trace span covering the rest of the enclosing scope, e.g.
/// `TPIIN_SPAN("scc_contract");`. Free when no recorder is installed.
#define TPIIN_SPAN(name) \
  ::tpiin::TraceSpan TPIIN_OBS_CONCAT(tpiin_span_, __COUNTER__)(name)
#else
#define TPIIN_SPAN(name) ((void)0)
#endif

#endif  // TPIIN_OBS_TRACE_H_

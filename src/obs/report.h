#ifndef TPIIN_OBS_REPORT_H_
#define TPIIN_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "obs/metrics.h"

namespace tpiin {

/// One scalar in a RunReport: the JSON-expressible primitives.
using ReportValue =
    std::variant<int64_t, uint64_t, double, bool, std::string>;

/// Renders a ReportValue as a JSON literal (strings escaped+quoted).
std::string ReportValueToJson(const ReportValue& value);

/// An ordered key -> scalar map; Set overwrites in place, new keys
/// append (so report sections read in the order the producer wrote).
class ReportSection {
 public:
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> &&
                             !std::is_same_v<T, bool>>* = nullptr>
  void Set(const std::string& key, T value) {
    if constexpr (std::is_signed_v<T>) {
      SetValue(key, ReportValue(static_cast<int64_t>(value)));
    } else {
      SetValue(key, ReportValue(static_cast<uint64_t>(value)));
    }
  }
  void Set(const std::string& key, double value) {
    SetValue(key, ReportValue(value));
  }
  void Set(const std::string& key, bool value) {
    SetValue(key, ReportValue(value));
  }
  void Set(const std::string& key, const std::string& value) {
    SetValue(key, ReportValue(value));
  }
  void Set(const std::string& key, const char* value) {
    SetValue(key, ReportValue(std::string(value)));
  }

  const std::vector<std::pair<std::string, ReportValue>>& items() const {
    return items_;
  }

 private:
  void SetValue(const std::string& key, ReportValue value);

  std::vector<std::pair<std::string, ReportValue>> items_;
};

/// A named-column table (e.g. the top-K slowest subTPIINs). Build rows
/// left to right:
///   ReportTable& t = report.AddTable("slowest", {"index", "seconds"});
///   t.AddRow().Append(3).Append(0.12);
class ReportTable {
 public:
  class Row {
   public:
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                               !std::is_same_v<T, bool>>* = nullptr>
    Row& Append(T value) {
      if constexpr (std::is_signed_v<T>) {
        values_.emplace_back(static_cast<int64_t>(value));
      } else {
        values_.emplace_back(static_cast<uint64_t>(value));
      }
      return *this;
    }
    Row& Append(double value) {
      values_.emplace_back(value);
      return *this;
    }
    Row& Append(bool value) {
      values_.emplace_back(value);
      return *this;
    }
    Row& Append(std::string value) {
      values_.emplace_back(std::move(value));
      return *this;
    }
    Row& Append(const char* value) {
      values_.emplace_back(std::string(value));
      return *this;
    }

    const std::vector<ReportValue>& values() const { return values_; }

   private:
    std::vector<ReportValue> values_;
  };

  explicit ReportTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// The machine-readable record of one pipeline run: wall/CPU-attributed
/// stages, per-layer stat sections (fusion, segmentation, detection),
/// breakdown tables and a metrics snapshot, serialized as one JSON
/// document. Producers: the CLI (`fuse --report=`, `detect --report=`)
/// and every bench harness (`--report=`); consumer:
/// tools/bench_compare's report-diff mode and anything downstream that
/// can read JSON.
class RunReport {
 public:
  explicit RunReport(std::string tool) : tool_(std::move(tool)) {}

  void set_threads(uint32_t threads) { threads_ = threads; }
  void set_total_seconds(double seconds) { total_seconds_ = seconds; }
  double total_seconds() const { return total_seconds_; }

  /// Appends a stage timing row (wall seconds, plus the coordinating
  /// thread's CPU seconds when measured). Each stage also samples the
  /// process peak RSS (obs/rss.h) at the moment it is recorded, so a
  /// report shows *where* in the pipeline the memory high-water mark was
  /// reached — the out-of-core shard path is gated on this.
  void AddStage(const std::string& name, double seconds,
                double cpu_seconds = 0);

  /// Peak RSS (bytes) sampled when the most recent stage was added;
  /// 0 before any stage. Test/introspection accessor.
  int64_t LastStagePeakRssBytes() const {
    return stages_.empty() ? 0 : stages_.back().peak_rss_bytes;
  }

  /// Sum of stage wall seconds; the CLI report's stages are measured so
  /// this lands within a few percent of total_seconds().
  double StageSecondsSum() const;

  /// Create-or-get an ordered section.
  ReportSection& Section(const std::string& name);

  ReportTable& AddTable(const std::string& name,
                        std::vector<std::string> columns);

  void AttachMetrics(MetricsSnapshot snapshot) {
    metrics_ = std::move(snapshot);
    has_metrics_ = true;
  }

  std::string ToJson() const;

  /// Writes ToJson() to `path`; false on I/O failure.
  bool WriteJson(const std::string& path) const;

 private:
  struct Stage {
    std::string name;
    double seconds = 0;
    double cpu_seconds = 0;
    int64_t peak_rss_bytes = 0;
  };

  std::string tool_;
  uint32_t threads_ = 0;
  double total_seconds_ = 0;
  std::vector<Stage> stages_;
  std::vector<std::pair<std::string, ReportSection>> sections_;
  std::vector<std::pair<std::string, ReportTable>> tables_;
  MetricsSnapshot metrics_;
  bool has_metrics_ = false;
};

}  // namespace tpiin

#endif  // TPIIN_OBS_REPORT_H_

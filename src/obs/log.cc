#include "obs/log.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace tpiin {
namespace {

// Registry of live sinks for the async-signal-safe RequestReopenAll().
// A fixed array of atomic slots: registration CASes a null slot,
// deregistration stores null. A signal handler only loads and calls
// RequestReopen() (itself one relaxed store), so no locks are taken in
// signal context.
constexpr int kMaxSinks = 16;
std::array<std::atomic<JsonLogSink*>, kMaxSinks> g_sinks{};

void RegisterSink(JsonLogSink* sink) {
  for (auto& slot : g_sinks) {
    JsonLogSink* expected = nullptr;
    if (slot.compare_exchange_strong(expected, sink,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
  // More than kMaxSinks live sinks: the overflow sink simply cannot be
  // rotated via signal; Event()/Write() still work.
}

void UnregisterSink(JsonLogSink* sink) {
  for (auto& slot : g_sinks) {
    JsonLogSink* expected = sink;
    if (slot.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

// src/serve/server.cc -> "serve"; fallback: file basename sans
// extension. Never allocates beyond the returned string.
std::string ComponentFromPath(const char* file) {
  std::string_view path(file == nullptr ? "" : file);
  constexpr std::string_view kSrc = "src/";
  size_t pos = path.rfind(kSrc);
  if (pos != std::string_view::npos) {
    std::string_view rest = path.substr(pos + kSrc.size());
    size_t slash = rest.find('/');
    if (slash != std::string_view::npos && slash > 0) {
      return std::string(rest.substr(0, slash));
    }
  }
  size_t slash = path.rfind('/');
  std::string_view base =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  size_t dot = base.rfind('.');
  if (dot != std::string_view::npos && dot > 0) base = base.substr(0, dot);
  return base.empty() ? std::string("unknown") : std::string(base);
}

std::string Basename(const char* file) {
  std::string_view path(file == nullptr ? "" : file);
  size_t slash = path.rfind('/');
  return std::string(slash == std::string_view::npos ? path
                                                     : path.substr(slash + 1));
}

void AppendJsonString(std::string* out, std::string_view value) {
  *out += ReportValueToJson(ReportValue(std::string(value)));
}

}  // namespace

int64_t UnixMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string FormatLogTimestamp(int64_t unix_micros) {
  // Floor-divide so pre-epoch instants still get micros in [0, 1e6).
  int64_t secs = unix_micros / 1000000;
  int64_t micros = unix_micros % 1000000;
  if (micros < 0) {
    micros += 1000000;
    secs -= 1;
  }
  std::tm tm{};
  time_t t = static_cast<time_t>(secs);
  gmtime_r(&t, &tm);
  char buf[40];
  int n = std::snprintf(buf, sizeof(buf),
                        "%04d-%02d-%02dT%02d:%02d:%02d.%06lldZ",
                        tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                        tm.tm_hour, tm.tm_min, tm.tm_sec,
                        static_cast<long long>(micros));
  return std::string(buf, n > 0 ? static_cast<size_t>(n) : 0);
}

std::string FormatLogEvent(LogLevel level, std::string_view component,
                           std::string_view event,
                           const std::vector<LogField>& fields,
                           int64_t unix_micros) {
  std::string out;
  out.reserve(96 + fields.size() * 24);
  out += "{\"ts\":\"";
  out += FormatLogTimestamp(unix_micros);
  out += "\",\"level\":\"";
  out += LogLevelToken(level);
  out += "\",\"component\":";
  AppendJsonString(&out, component);
  out += ",\"event\":";
  AppendJsonString(&out, event);
  for (const LogField& field : fields) {
    out += ',';
    AppendJsonString(&out, field.key);
    out += ':';
    out += ReportValueToJson(field.value);
  }
  out += '}';
  return out;
}

std::unique_ptr<JsonLogSink> JsonLogSink::Open(const std::string& path,
                                               std::string* error) {
  if (path.empty() || path == "-") {
    return std::unique_ptr<JsonLogSink>(
        new JsonLogSink(path, STDERR_FILENO, /*owns_fd=*/false));
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot open log file '" + path + "': " + std::strerror(errno);
    }
    return nullptr;
  }
  return std::unique_ptr<JsonLogSink>(
      new JsonLogSink(path, fd, /*owns_fd=*/true));
}

JsonLogSink::JsonLogSink(std::string path, int fd, bool owns_fd)
    : path_(std::move(path)), fd_(fd), owns_fd_(owns_fd) {
  RegisterSink(this);
}

JsonLogSink::~JsonLogSink() {
  UnregisterSink(this);
  std::lock_guard<std::mutex> lock(mu_);
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void JsonLogSink::Event(LogLevel level, std::string_view component,
                        std::string_view event,
                        const std::vector<LogField>& fields) {
  WriteLine(FormatLogEvent(level, component, event, fields, UnixMicrosNow()));
}

void JsonLogSink::Write(LogLevel level, const char* file, int line,
                        std::string_view message) {
  std::vector<LogField> fields;
  fields.reserve(2);
  fields.emplace_back("msg", std::string(message));
  fields.emplace_back("src", Basename(file) + ":" + std::to_string(line));
  Event(level, ComponentFromPath(file), "log", fields);
}

void JsonLogSink::RequestReopenAll() {
  for (auto& slot : g_sinks) {
    if (JsonLogSink* sink = slot.load(std::memory_order_acquire)) {
      sink->RequestReopen();
    }
  }
}

void JsonLogSink::WriteLine(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (owns_fd_ && reopen_.exchange(false, std::memory_order_acq_rel)) {
    int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                    0644);
    if (fd >= 0) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = fd;
      ok_.store(true, std::memory_order_relaxed);
    } else {
      // Keep writing to the old fd; better torn rotation than lost logs.
      ok_.store(false, std::memory_order_relaxed);
    }
  }
  if (fd_ < 0) return;
  std::string buf;
  buf.reserve(line.size() + 1);
  buf.append(line.data(), line.size());
  buf.push_back('\n');
  // One write(2) per line on an O_APPEND fd: atomic for pipe-sized
  // lines, and a crash tears at most the final record. Loop only for
  // EINTR / short writes (regular files rarely short-write).
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok_.store(false, std::memory_order_relaxed);
      return;
    }
    off += static_cast<size_t>(n);
  }
  ok_.store(true, std::memory_order_relaxed);
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace tpiin

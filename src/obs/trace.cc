#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>

namespace tpiin {

double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#else
  return 0;
#endif
}

double ProcessCpuSeconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#else
  return 0;
#endif
}

std::atomic<TraceRecorder*> TraceRecorder::current_{nullptr};

namespace {

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread cache of the buffer registered with the current recorder,
// keyed by the recorder's process-unique id so a stale cache from a
// destroyed recorder can never be mistaken for a live one.
struct TlsBufferCache {
  uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local TlsBufferCache tls_buffer_cache;

}  // namespace

TraceRecorder::TraceRecorder()
    : id_(NextRecorderId()), epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  // Self-uninstall guards against a caller forgetting Uninstall();
  // spans racing this destructor are a caller bug either way.
  TraceRecorder* self = this;
  current_.compare_exchange_strong(self, nullptr,
                                   std::memory_order_relaxed);
}

void TraceRecorder::Install() {
  current_.store(this, std::memory_order_relaxed);
}

void TraceRecorder::Uninstall() {
  current_.store(nullptr, std::memory_order_relaxed);
}

int64_t TraceRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  if (tls_buffer_cache.recorder_id == id_) {
    return static_cast<ThreadBuffer*>(tls_buffer_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A thread that alternated between recorders re-finds its original
  // buffer here instead of registering a duplicate tid.
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& existing : buffers_) {
    if (existing->owner == self) {
      tls_buffer_cache = {id_, existing.get()};
      return existing.get();
    }
  }
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->owner = self;
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tls_buffer_cache = {id_, raw};
  return raw;
}

uint32_t TraceRecorder::BeginSpan() { return LocalBuffer()->next_seq++; }

void TraceRecorder::RecordSpan(const char* name, int64_t ts_us,
                               int64_t dur_us, uint32_t start_seq) {
  ThreadBuffer* buffer = LocalBuffer();
  buffer->events.push_back(
      SpanEvent{name, ts_us, dur_us, buffer->tid, start_seq});
}

size_t TraceRecorder::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  return total;
}

std::vector<TraceRecorder::SpanEvent> TraceRecorder::MergedEvents() const {
  std::vector<SpanEvent> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& buffer : buffers_) total += buffer->events.size();
    merged.reserve(total);
    for (const auto& buffer : buffers_) {
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  // Same-thread ties break on BeginSpan start order, which is program
  // order: a parent constructs before the children it started in the
  // same microsecond, and an earlier sibling constructs before a later
  // one. (Duration or destruction order cannot tell those two cases
  // apart, which made merge order flap with clock resolution.)
  std::sort(merged.begin(), merged.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return merged;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<SpanEvent> events = MergedEvents();
  uint32_t max_tid = 0;
  for (const SpanEvent& event : events) {
    max_tid = std::max(max_tid, event.tid);
  }

  std::string out = "{\"traceEvents\":[\n";
  char line[256];
  // Thread-name metadata rows; tid 0 is always the installing thread.
  const uint32_t num_tids = events.empty() ? 0 : max_tid + 1;
  for (uint32_t tid = 0; tid < num_tids; ++tid) {
    std::snprintf(line, sizeof(line),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"%s%u\"}},\n",
                  tid, tid == 0 ? "main" : "worker", tid);
    out += line;
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& event = events[i];
    std::snprintf(line, sizeof(line),
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%lld,"
                  "\"dur\":%lld,\"name\":\"%s\",\"cat\":\"tpiin\"}%s\n",
                  event.tid, static_cast<long long>(event.ts_us),
                  static_cast<long long>(event.dur_us), event.name,
                  i + 1 < events.size() ? "," : "");
    out += line;
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  // obs sits below common in the dependency graph, so it cannot use
  // AtomicFile; inline the same temp-write + rename(2) discipline.
  const std::string json = ToChromeTraceJson();
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace tpiin

#include "obs/prometheus.h"

#include <cstdio>

namespace tpiin {
namespace {

void AppendU64(std::string* out, uint64_t value) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(value));
  out->append(buf, static_cast<size_t>(n));
}

void AppendI64(std::string* out, int64_t value) {
  char buf[24];
  int n = std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(value));
  out->append(buf, static_cast<size_t>(n));
}

void AppendType(std::string* out, const std::string& family,
                const char* type) {
  *out += "# TYPE ";
  *out += family;
  *out += ' ';
  *out += type;
  *out += '\n';
}

void AppendDerivedQuantile(std::string* out, const std::string& family,
                           const char* suffix,
                           const MetricsSnapshot::Entry& entry, double q) {
  const std::string name = family + suffix;
  AppendType(out, name, "gauge");
  *out += name;
  *out += ' ';
  AppendU64(out, entry.Quantile(q));
  *out += '\n';
}

}  // namespace

std::string PrometheusName(std::string_view name, std::string_view prefix) {
  std::string out;
  out.reserve(prefix.size() + name.size());
  out.append(prefix);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 std::string_view prefix) {
  std::string out;
  out.reserve(snapshot.entries.size() * 96);
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    const std::string family = PrometheusName(entry.name, prefix);
    switch (entry.kind) {
      case MetricsSnapshot::Kind::kCounter: {
        const std::string name = family + "_total";
        AppendType(&out, name, "counter");
        out += name;
        out += ' ';
        AppendU64(&out, entry.value);
        out += '\n';
        break;
      }
      case MetricsSnapshot::Kind::kGauge: {
        AppendType(&out, family, "gauge");
        out += family;
        out += ' ';
        AppendI64(&out, entry.gauge);
        out += '\n';
        break;
      }
      case MetricsSnapshot::Kind::kHistogram: {
        AppendType(&out, family, "histogram");
        uint64_t cumulative = 0;
        for (const auto& [upper, count] : entry.buckets) {
          cumulative += count;
          out += family;
          out += "_bucket{le=\"";
          AppendU64(&out, upper);
          out += "\"} ";
          AppendU64(&out, cumulative);
          out += '\n';
        }
        out += family;
        out += "_bucket{le=\"+Inf\"} ";
        AppendU64(&out, entry.count);
        out += '\n';
        out += family;
        out += "_sum ";
        AppendU64(&out, entry.sum);
        out += '\n';
        out += family;
        out += "_count ";
        AppendU64(&out, entry.count);
        out += '\n';
        AppendDerivedQuantile(&out, family, "_p50", entry, 0.50);
        AppendDerivedQuantile(&out, family, "_p90", entry, 0.90);
        AppendDerivedQuantile(&out, family, "_p99", entry, 0.99);
        break;
      }
    }
  }
  return out;
}

}  // namespace tpiin

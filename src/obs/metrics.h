#ifndef TPIIN_OBS_METRICS_H_
#define TPIIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/trace.h"  // TPIIN_OBS_ENABLED

namespace tpiin {

/// Dense small index of the calling thread, assigned on first use;
/// shards the counter cells so concurrent writers rarely share a cache
/// line. Stable for the thread's lifetime.
size_t ObsThreadIndex();

/// A monotonically increasing counter, sharded across cache-line-padded
/// cells. Add() is one relaxed fetch_add on the caller's shard; Value()
/// sums the shards (snapshot-time only).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[ObsThreadIndex() % kNumShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kNumShards = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, kNumShards> cells_;
};

/// A last-write-wins (or running-max) instantaneous value.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

  /// Raises the gauge to `value` if larger (high-water marks: pool
  /// queue depth, peak arena size, ...).
  void SetMax(int64_t value) {
    int64_t observed = value_.load(std::memory_order_relaxed);
    while (observed < value &&
           !value_.compare_exchange_weak(observed, value,
                                         std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log2-bucketed histogram of non-negative values (bucket b counts
/// values whose bit width is b, i.e. upper bound 2^b - 1), plus exact
/// count/sum/min/max. All updates are relaxed atomics; totals are only
/// read at snapshot time.
class Histogram {
 public:
  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;  // 0 when empty.
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// Non-empty buckets as (inclusive upper bound, count), ascending.
  std::vector<std::pair<uint64_t, uint64_t>> Buckets() const;

  void Reset();

 private:
  static constexpr size_t kNumBuckets = 65;  // bit_width in [0, 64].
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Quantile estimate over (inclusive upper bound, count) buckets in
/// ascending bound order (the Histogram::Buckets() shape). Returns the
/// upper bound of the first bucket whose cumulative count reaches
/// ceil(q * total) — i.e. an upper bound on the true quantile that is
/// exact whenever the recorded values sit on bucket edges. Returns 0
/// for an empty bucket list. `q` is clamped to [0, 1].
uint64_t QuantileFromBuckets(
    const std::vector<std::pair<uint64_t, uint64_t>>& buckets, double q);

/// Point-in-time aggregation of a MetricsRegistry, sorted by name.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    // Counter: value. Gauge: gauge. Histogram: count/sum/min/max +
    // buckets.
    uint64_t value = 0;
    int64_t gauge = 0;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::vector<std::pair<uint64_t, uint64_t>> buckets;

    /// Histogram entries only: QuantileFromBuckets clamped to
    /// [min, max], so p100 is the exact max and tiny histograms never
    /// report a bucket bound below their smallest sample.
    uint64_t Quantile(double q) const;
  };

  std::vector<Entry> entries;

  const Entry* Find(std::string_view name) const;

  /// {"name": {"type": "counter", "value": 3}, ...} — one flat object,
  /// keys sorted, embedded in RunReport JSON and diffed by
  /// tools/bench_compare.
  std::string ToJson() const;
};

/// A process-wide registry of named counters/gauges/histograms.
/// Get*() returns a stable reference (create-or-get under a mutex);
/// hot paths register once through the TPIIN_COUNTER_ADD-style macros
/// and afterwards pay only the relaxed atomic update. Reset() zeroes
/// values but never invalidates handles, so per-run CLI/bench reports
/// can scope the global registry to one run.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tpiin

#if TPIIN_OBS_ENABLED
/// Bumps the named global counter. The handle is resolved once per call
/// site (function-local static), so steady state is one relaxed
/// fetch_add.
#define TPIIN_COUNTER_ADD(name, delta)                       \
  do {                                                       \
    static ::tpiin::Counter& tpiin_obs_counter =             \
        ::tpiin::MetricsRegistry::Global().GetCounter(name); \
    tpiin_obs_counter.Add(delta);                            \
  } while (false)

#define TPIIN_GAUGE_SET(name, value)                       \
  do {                                                     \
    static ::tpiin::Gauge& tpiin_obs_gauge =               \
        ::tpiin::MetricsRegistry::Global().GetGauge(name); \
    tpiin_obs_gauge.Set(value);                            \
  } while (false)

#define TPIIN_GAUGE_MAX(name, value)                       \
  do {                                                     \
    static ::tpiin::Gauge& tpiin_obs_gauge =               \
        ::tpiin::MetricsRegistry::Global().GetGauge(name); \
    tpiin_obs_gauge.SetMax(value);                         \
  } while (false)

#define TPIIN_HISTOGRAM_RECORD(name, value)                    \
  do {                                                         \
    static ::tpiin::Histogram& tpiin_obs_histogram =           \
        ::tpiin::MetricsRegistry::Global().GetHistogram(name); \
    tpiin_obs_histogram.Record(value);                         \
  } while (false)
#else
#define TPIIN_COUNTER_ADD(name, delta) ((void)0)
#define TPIIN_GAUGE_SET(name, value) ((void)0)
#define TPIIN_GAUGE_MAX(name, value) ((void)0)
#define TPIIN_HISTOGRAM_RECORD(name, value) ((void)0)
#endif

#endif  // TPIIN_OBS_METRICS_H_

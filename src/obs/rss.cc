#include "obs/rss.h"

#include <cstdio>

#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace tpiin {

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // Bytes on Darwin.
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux.
#endif
#else
  return 0;
#endif
}

int64_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long total_pages = 0;
  long long resident_pages = 0;
  const int parsed =
      std::fscanf(f, "%lld %lld", &total_pages, &resident_pages);
  std::fclose(f);
  if (parsed != 2) return 0;
  return static_cast<int64_t>(resident_pages) *
         static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

int64_t SampleRssGauges() {
  const int64_t peak = PeakRssBytes();
  const int64_t current = CurrentRssBytes();
  TPIIN_GAUGE_MAX("process.peak_rss_bytes", peak);
  TPIIN_GAUGE_SET("process.current_rss_bytes", current);
  return peak;
}

}  // namespace tpiin

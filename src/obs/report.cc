#include "obs/report.h"

#include <unistd.h>

#include <cstdio>

#include "obs/rss.h"

namespace tpiin {

namespace {

// obs sits below common in the dependency graph, so it cannot use
// AtomicFile; this is the same temp-write + rename(2) discipline inlined.
bool WriteWholeFileAtomic(const std::string& path,
                          const std::string& data) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(data.data(), 1, data.size(), f) == data.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::string JsonEscapeString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ReportValueToJson(const ReportValue& value) {
  char buf[64];
  switch (value.index()) {
    case 0:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(std::get<int64_t>(value)));
      return buf;
    case 1:
      std::snprintf(
          buf, sizeof(buf), "%llu",
          static_cast<unsigned long long>(std::get<uint64_t>(value)));
      return buf;
    case 2:
      std::snprintf(buf, sizeof(buf), "%.9g", std::get<double>(value));
      return buf;
    case 3:
      return std::get<bool>(value) ? "true" : "false";
    default: {
      std::string quoted = "\"";
      quoted += JsonEscapeString(std::get<std::string>(value));
      quoted += '"';
      return quoted;
    }
  }
}

void ReportSection::SetValue(const std::string& key, ReportValue value) {
  for (auto& [existing_key, existing_value] : items_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  items_.emplace_back(key, std::move(value));
}

void RunReport::AddStage(const std::string& name, double seconds,
                         double cpu_seconds) {
  stages_.push_back(Stage{name, seconds, cpu_seconds, SampleRssGauges()});
}

double RunReport::StageSecondsSum() const {
  double sum = 0;
  for (const Stage& stage : stages_) sum += stage.seconds;
  return sum;
}

ReportSection& RunReport::Section(const std::string& name) {
  for (auto& [existing_name, section] : sections_) {
    if (existing_name == name) return section;
  }
  sections_.emplace_back(name, ReportSection());
  return sections_.back().second;
}

ReportTable& RunReport::AddTable(const std::string& name,
                                 std::vector<std::string> columns) {
  tables_.emplace_back(name, ReportTable(std::move(columns)));
  return tables_.back().second;
}

std::string RunReport::ToJson() const {
  char buf[96];
  std::string out = "{\n";
  out += "  \"tool\": \"";
  out += JsonEscapeString(tool_);
  out += "\",\n";
  std::snprintf(buf, sizeof(buf), "  \"threads\": %u,\n", threads_);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"total_seconds\": %.9g,\n",
                total_seconds_);
  out += buf;

  out += "  \"stages\": [";
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Stage& stage = stages_[i];
    if (i > 0) out += ',';
    out += "\n    {\"name\": \"";
    out += JsonEscapeString(stage.name);
    out += "\", ";
    std::snprintf(buf, sizeof(buf),
                  "\"seconds\": %.9g, \"cpu_seconds\": %.9g, "
                  "\"peak_rss_bytes\": %lld}",
                  stage.seconds, stage.cpu_seconds,
                  static_cast<long long>(stage.peak_rss_bytes));
    out += buf;
  }
  out += stages_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"sections\": {";
  for (size_t s = 0; s < sections_.size(); ++s) {
    if (s > 0) out += ',';
    out += "\n    \"";
    out += JsonEscapeString(sections_[s].first);
    out += "\": {";
    const auto& items = sections_[s].second.items();
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"';
      out += JsonEscapeString(items[i].first);
      out += "\": ";
      out += ReportValueToJson(items[i].second);
    }
    out += '}';
  }
  out += sections_.empty() ? "},\n" : "\n  },\n";

  out += "  \"tables\": {";
  for (size_t t = 0; t < tables_.size(); ++t) {
    if (t > 0) out += ',';
    const ReportTable& table = tables_[t].second;
    out += "\n    \"";
    out += JsonEscapeString(tables_[t].first);
    out += "\": {\"columns\": [";
    for (size_t c = 0; c < table.columns().size(); ++c) {
      if (c > 0) out += ", ";
      out += '"';
      out += JsonEscapeString(table.columns()[c]);
      out += '"';
    }
    out += "], \"rows\": [";
    for (size_t r = 0; r < table.rows().size(); ++r) {
      if (r > 0) out += ", ";
      out += '[';
      const auto& values = table.rows()[r].values();
      for (size_t v = 0; v < values.size(); ++v) {
        if (v > 0) out += ", ";
        out += ReportValueToJson(values[v]);
      }
      out += ']';
    }
    out += "]}";
  }
  out += tables_.empty() ? "},\n" : "\n  },\n";

  out += "  \"metrics\": ";
  out += has_metrics_ ? metrics_.ToJson() : "{}";
  out += "\n}\n";
  return out;
}

bool RunReport::WriteJson(const std::string& path) const {
  return WriteWholeFileAtomic(path, ToJson());
}

}  // namespace tpiin

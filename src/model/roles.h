#ifndef TPIIN_MODEL_ROLES_H_
#define TPIIN_MODEL_ROLES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tpiin {

/// Position flags a person can hold in a company (paper §4.1):
/// Shareholder (S), Director (D), Chief Executive Officer (CEO) and
/// Chairman of the Board (CB). Combinations form role subclasses.
enum RoleFlag : uint8_t {
  kRoleShareholder = 1u << 0,  // S
  kRoleDirector = 1u << 1,     // D
  kRoleCeo = 1u << 2,          // CEO
  kRoleChairman = 1u << 3,     // CB
};

/// Bitmask of RoleFlag values. Zero means "no recorded position".
using PersonRoles = uint8_t;

inline constexpr PersonRoles kAllRoleBits =
    kRoleShareholder | kRoleDirector | kRoleCeo | kRoleChairman;

/// The paper's reduction (§4.1): a shareholder who matters for influence
/// participates in monitoring and decision-making, i.e. acts as a
/// director, so the S flag folds into D. This maps the 15 non-empty
/// subclasses of {S, D, CEO, CB} onto the 7 non-empty subclasses of
/// {D, CEO, CB}.
PersonRoles ReduceRoles(PersonRoles roles);

/// True when `roles` (after reduction) may be assigned the Legal Person
/// (LP) role. Per the Company Act discussion in §4.1 an LP must be a CB,
/// an executive/managing director (CEO and D), or a CEO — every reduced
/// subclass except the bare Director.
bool RolesEligibleForLegalPerson(PersonRoles roles);

/// Human-readable subclass name of the (unreduced or reduced) mask,
/// e.g. "CEO&D&CB", "D", "S&CB". Empty mask renders "none".
std::string RoleSubclassName(PersonRoles roles);

/// All non-empty role subclasses over the full four flags (15 entries,
/// deterministic order). Exposed for tests and the datagen role sampler.
std::vector<PersonRoles> AllRawRoleSubclasses();

/// All non-empty reduced subclasses (7 entries).
std::vector<PersonRoles> AllReducedRoleSubclasses();

}  // namespace tpiin

#endif  // TPIIN_MODEL_ROLES_H_

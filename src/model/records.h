#ifndef TPIIN_MODEL_RECORDS_H_
#define TPIIN_MODEL_RECORDS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "model/roles.h"

namespace tpiin {

/// Index into RawDataset::persons().
using PersonId = uint32_t;
/// Index into RawDataset::companies().
using CompanyId = uint32_t;

/// A natural person appearing in any source database (CSRC filings,
/// household registration, tax office records).
struct Person {
  PersonId id = 0;
  std::string name;
  /// Union of positions held across all companies (raw, unreduced).
  PersonRoles roles = 0;
};

/// A legally and separately registered company/corporate/trust — one
/// taxpayer.
struct Company {
  CompanyId id = 0;
  std::string name;
};

/// The two kinds of person-to-person interdependence the paper fuses
/// into a single unidirectional edge color (§4.1): family kinship (from
/// the household registration database) and director interlocking (from
/// acting-in-concert agreements and board overlap).
enum class InterdependenceKind : uint8_t {
  kKinship = 0,
  kInterlocking = 1,
};

std::string_view InterdependenceKindName(InterdependenceKind kind);

/// Undirected person-person relationship. If both a kinship and an
/// interlocking edge exist for a pair, fusion keeps only one.
struct InterdependenceRecord {
  PersonId person_a = 0;
  PersonId person_b = 0;
  InterdependenceKind kind = InterdependenceKind::kKinship;
};

/// The influence subclasses between a Person and a Company (§4.1):
/// (i) is-a-CEO-and-D-of, (ii) is-CEO-of, (iii) is-CB-of, (iv) is-a-D-of.
enum class InfluenceKind : uint8_t {
  kCeoAndDirectorOf = 0,
  kCeoOf = 1,
  kChairmanOf = 2,
  kDirectorOf = 3,
};

std::string_view InfluenceKindName(InfluenceKind kind);

/// Directed person -> company influence link. `is_legal_person` marks the
/// company's unique registered legal representative; every company must
/// carry exactly one such record.
struct InfluenceRecord {
  PersonId person = 0;
  CompanyId company = 0;
  InfluenceKind kind = InfluenceKind::kDirectorOf;
  bool is_legal_person = false;
};

/// Directed company -> company major-shareholding link.
struct InvestmentRecord {
  CompanyId investor = 0;
  CompanyId investee = 0;
  /// Ownership fraction in (0, 1].
  double share = 0;
};

/// Directed company -> company trading relationship (seller -> buyer).
/// Represents the existence of trade — a "transaction behavior" — not an
/// individual transaction; the ITE phase attaches transactions to it.
struct TradeRecord {
  CompanyId seller = 0;
  CompanyId buyer = 0;
};

}  // namespace tpiin

#endif  // TPIIN_MODEL_RECORDS_H_

#include "model/roles.h"

namespace tpiin {

PersonRoles ReduceRoles(PersonRoles roles) {
  PersonRoles reduced = roles & kAllRoleBits;
  if (reduced & kRoleShareholder) {
    reduced = static_cast<PersonRoles>(
        (reduced & ~kRoleShareholder) | kRoleDirector);
  }
  return reduced;
}

bool RolesEligibleForLegalPerson(PersonRoles roles) {
  PersonRoles reduced = ReduceRoles(roles);
  if (reduced == 0) return false;
  // Eligible: any subclass containing CEO or CB; the only reduced
  // subclass with neither is the bare Director, which is excluded.
  return (reduced & (kRoleCeo | kRoleChairman)) != 0;
}

std::string RoleSubclassName(PersonRoles roles) {
  if ((roles & kAllRoleBits) == 0) return "none";
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += '&';
    out += name;
  };
  if (roles & kRoleCeo) append("CEO");
  if (roles & kRoleDirector) append("D");
  if (roles & kRoleShareholder) append("S");
  if (roles & kRoleChairman) append("CB");
  return out;
}

std::vector<PersonRoles> AllRawRoleSubclasses() {
  std::vector<PersonRoles> out;
  for (uint8_t mask = 1; mask <= kAllRoleBits; ++mask) {
    out.push_back(mask);
  }
  return out;
}

std::vector<PersonRoles> AllReducedRoleSubclasses() {
  std::vector<PersonRoles> out;
  for (uint8_t mask = 1; mask <= kAllRoleBits; ++mask) {
    if ((mask & kRoleShareholder) == 0) out.push_back(mask);
  }
  return out;
}

}  // namespace tpiin

#ifndef TPIIN_MODEL_DATASET_H_
#define TPIIN_MODEL_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/records.h"

namespace tpiin {

/// Summary counts over a RawDataset, used by validation reports and the
/// network-figure benches.
struct DatasetStats {
  size_t num_persons = 0;
  size_t num_companies = 0;
  size_t num_kinship = 0;
  size_t num_interlocking = 0;
  size_t num_influence = 0;
  size_t num_legal_person_links = 0;
  size_t num_investment = 0;
  size_t num_trades = 0;

  std::string ToString() const;
};

/// The un-fused input to the pipeline: persons, companies and the five
/// relationship tables abstracted from the information sources (CSRC,
/// HRDPSC, PTAOs in the paper; the synthetic generator here). This is
/// the "un-contracted taxpayer interest interacted network" of Fig. 7 in
/// tabular form.
///
/// The container is append-only; Validate() checks the CNBM structural
/// rules before fusion consumes it.
class RawDataset {
 public:
  /// Appends a person; returns its PersonId. Roles are raw (may include
  /// the Shareholder flag; fusion reduces them).
  PersonId AddPerson(std::string name, PersonRoles roles);

  /// Appends a company; returns its CompanyId.
  CompanyId AddCompany(std::string name);

  /// Records a kinship or interlocking edge between two distinct persons.
  void AddInterdependence(PersonId a, PersonId b, InterdependenceKind kind);

  /// Records a person -> company influence link. Exactly one link per
  /// company must have is_legal_person = true.
  void AddInfluence(PersonId person, CompanyId company, InfluenceKind kind,
                    bool is_legal_person);

  /// Records investor -> investee shareholding.
  void AddInvestment(CompanyId investor, CompanyId investee, double share);

  /// Records a seller -> buyer trading relationship.
  void AddTrade(CompanyId seller, CompanyId buyer);

  const std::vector<Person>& persons() const { return persons_; }
  const std::vector<Company>& companies() const { return companies_; }
  const std::vector<InterdependenceRecord>& interdependence() const {
    return interdependence_;
  }
  const std::vector<InfluenceRecord>& influence() const {
    return influence_;
  }
  const std::vector<InvestmentRecord>& investments() const {
    return investments_;
  }
  const std::vector<TradeRecord>& trades() const { return trades_; }

  std::vector<TradeRecord>& mutable_trades() { return trades_; }

  /// Replaces the trading layer (Table 1 re-runs the same antecedent data
  /// under twenty different simulated trading networks).
  void SetTrades(std::vector<TradeRecord> trades) {
    trades_ = std::move(trades);
  }

  /// Checks the CNBM structural rules:
  ///  - all record ids reference existing persons/companies;
  ///  - no self-referencing interdependence, investment or trade records;
  ///  - every company has exactly one legal-person link;
  ///  - every legal person's roles are LP-eligible (§4.1);
  ///  - investment shares lie in (0, 1].
  Status Validate() const;

  DatasetStats Stats() const;

 private:
  std::vector<Person> persons_;
  std::vector<Company> companies_;
  std::vector<InterdependenceRecord> interdependence_;
  std::vector<InfluenceRecord> influence_;
  std::vector<InvestmentRecord> investments_;
  std::vector<TradeRecord> trades_;
};

}  // namespace tpiin

#endif  // TPIIN_MODEL_DATASET_H_

#include "model/dataset.h"

#include "common/string_util.h"

namespace tpiin {

std::string DatasetStats::ToString() const {
  return StringPrintf(
      "persons=%zu companies=%zu kinship=%zu interlocking=%zu "
      "influence=%zu (legal-person=%zu) investment=%zu trades=%zu",
      num_persons, num_companies, num_kinship, num_interlocking,
      num_influence, num_legal_person_links, num_investment, num_trades);
}

PersonId RawDataset::AddPerson(std::string name, PersonRoles roles) {
  PersonId id = static_cast<PersonId>(persons_.size());
  persons_.push_back(Person{id, std::move(name), roles});
  return id;
}

CompanyId RawDataset::AddCompany(std::string name) {
  CompanyId id = static_cast<CompanyId>(companies_.size());
  companies_.push_back(Company{id, std::move(name)});
  return id;
}

void RawDataset::AddInterdependence(PersonId a, PersonId b,
                                    InterdependenceKind kind) {
  interdependence_.push_back(InterdependenceRecord{a, b, kind});
}

void RawDataset::AddInfluence(PersonId person, CompanyId company,
                              InfluenceKind kind, bool is_legal_person) {
  influence_.push_back(InfluenceRecord{person, company, kind,
                                       is_legal_person});
}

void RawDataset::AddInvestment(CompanyId investor, CompanyId investee,
                               double share) {
  investments_.push_back(InvestmentRecord{investor, investee, share});
}

void RawDataset::AddTrade(CompanyId seller, CompanyId buyer) {
  trades_.push_back(TradeRecord{seller, buyer});
}

Status RawDataset::Validate() const {
  const size_t np = persons_.size();
  const size_t nc = companies_.size();

  for (const InterdependenceRecord& rec : interdependence_) {
    if (rec.person_a >= np || rec.person_b >= np) {
      return Status::InvalidArgument(StringPrintf(
          "interdependence record references unknown person (%u, %u)",
          rec.person_a, rec.person_b));
    }
    if (rec.person_a == rec.person_b) {
      return Status::InvalidArgument(StringPrintf(
          "self-referencing interdependence record on person %u",
          rec.person_a));
    }
  }

  std::vector<uint32_t> lp_links(nc, 0);
  for (const InfluenceRecord& rec : influence_) {
    if (rec.person >= np) {
      return Status::InvalidArgument(
          StringPrintf("influence record references unknown person %u",
                       rec.person));
    }
    if (rec.company >= nc) {
      return Status::InvalidArgument(
          StringPrintf("influence record references unknown company %u",
                       rec.company));
    }
    if (rec.is_legal_person) {
      ++lp_links[rec.company];
      if (!RolesEligibleForLegalPerson(persons_[rec.person].roles)) {
        return Status::FailedPrecondition(StringPrintf(
            "person %u (%s) holds the legal-person role of company %u but "
            "has LP-ineligible roles %s",
            rec.person, persons_[rec.person].name.c_str(), rec.company,
            RoleSubclassName(persons_[rec.person].roles).c_str()));
      }
    }
  }
  for (CompanyId c = 0; c < nc; ++c) {
    if (lp_links[c] != 1) {
      return Status::FailedPrecondition(StringPrintf(
          "company %u (%s) has %u legal-person links; exactly 1 required",
          c, companies_[c].name.c_str(), lp_links[c]));
    }
  }

  for (const InvestmentRecord& rec : investments_) {
    if (rec.investor >= nc || rec.investee >= nc) {
      return Status::InvalidArgument(StringPrintf(
          "investment record references unknown company (%u, %u)",
          rec.investor, rec.investee));
    }
    if (rec.investor == rec.investee) {
      return Status::InvalidArgument(
          StringPrintf("company %u invests in itself", rec.investor));
    }
    if (!(rec.share > 0.0 && rec.share <= 1.0)) {
      return Status::InvalidArgument(StringPrintf(
          "investment share %.4f out of (0, 1] for arc %u -> %u",
          rec.share, rec.investor, rec.investee));
    }
  }

  for (const TradeRecord& rec : trades_) {
    if (rec.seller >= nc || rec.buyer >= nc) {
      return Status::InvalidArgument(
          StringPrintf("trade record references unknown company (%u, %u)",
                       rec.seller, rec.buyer));
    }
    if (rec.seller == rec.buyer) {
      return Status::InvalidArgument(
          StringPrintf("company %u trades with itself", rec.seller));
    }
  }

  return Status::OK();
}

DatasetStats RawDataset::Stats() const {
  DatasetStats stats;
  stats.num_persons = persons_.size();
  stats.num_companies = companies_.size();
  for (const InterdependenceRecord& rec : interdependence_) {
    if (rec.kind == InterdependenceKind::kKinship) {
      ++stats.num_kinship;
    } else {
      ++stats.num_interlocking;
    }
  }
  stats.num_influence = influence_.size();
  for (const InfluenceRecord& rec : influence_) {
    if (rec.is_legal_person) ++stats.num_legal_person_links;
  }
  stats.num_investment = investments_.size();
  stats.num_trades = trades_.size();
  return stats;
}

}  // namespace tpiin

#include "model/records.h"

namespace tpiin {

std::string_view InterdependenceKindName(InterdependenceKind kind) {
  switch (kind) {
    case InterdependenceKind::kKinship:
      return "kinship";
    case InterdependenceKind::kInterlocking:
      return "interlocking";
  }
  return "unknown";
}

std::string_view InfluenceKindName(InfluenceKind kind) {
  switch (kind) {
    case InfluenceKind::kCeoAndDirectorOf:
      return "is-CEO-and-D-of";
    case InfluenceKind::kCeoOf:
      return "is-CEO-of";
    case InfluenceKind::kChairmanOf:
      return "is-CB-of";
    case InfluenceKind::kDirectorOf:
      return "is-a-D-of";
  }
  return "unknown";
}

}  // namespace tpiin

#include "cli/cli.h"

#include <filesystem>
#include <memory>
#include <unordered_map>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/detector.h"
#include "core/explain.h"
#include "core/incremental.h"
#include "core/scoring.h"
#include "datagen/plant.h"
#include "datagen/province.h"
#include "fusion/neighborhood.h"
#include "fusion/pipeline.h"
#include "graph/degree.h"
#include "io/dataset_csv.h"
#include "io/dot_export.h"
#include "io/edge_list.h"
#include "io/gexf_export.h"
#include "io/json_report.h"
#include "io/pattern_file.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace tpiin {

namespace {

Status ParseFlags(FlagParser& flags, const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"tpiin"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  return flags.Parse(static_cast<int>(argv.size()), argv.data());
}

// Consumes every --log-level flag (global: valid before or after the
// command's own flags) and applies the last one.
Status ApplyLogLevelFlag(std::vector<std::string>& args) {
  constexpr const char* kPrefix = "--log-level=";
  for (auto it = args.begin(); it != args.end();) {
    std::string value;
    if (it->rfind(kPrefix, 0) == 0) {
      value = it->substr(std::string(kPrefix).size());
      it = args.erase(it);
    } else if (*it == "--log-level") {
      if (std::next(it) == args.end()) {
        return Status::InvalidArgument("--log-level requires a value");
      }
      value = *std::next(it);
      it = args.erase(it, it + 2);
    } else {
      ++it;
      continue;
    }
    if (value == "debug") {
      SetLogLevel(LogLevel::kDebug);
    } else if (value == "info") {
      SetLogLevel(LogLevel::kInfo);
    } else if (value == "warning") {
      SetLogLevel(LogLevel::kWarning);
    } else if (value == "error") {
      SetLogLevel(LogLevel::kError);
    } else {
      return Status::InvalidArgument(
          "unknown --log-level: " + value +
          " (expected debug|info|warning|error)");
    }
  }
  return Status::OK();
}

// Consumes every --failpoints flag (global, like --log-level) and
// installs the last spec. Only touches the failpoint registry when the
// flag is present, so in-process callers (tests driving RunCli) keep
// whatever configuration they installed themselves.
Status ApplyFailpointsFlag(std::vector<std::string>& args) {
  constexpr const char* kPrefix = "--failpoints=";
  bool seen = false;
  std::string spec;
  for (auto it = args.begin(); it != args.end();) {
    if (it->rfind(kPrefix, 0) == 0) {
      spec = it->substr(std::string(kPrefix).size());
      seen = true;
      it = args.erase(it);
    } else if (*it == "--failpoints") {
      if (std::next(it) == args.end()) {
        return Status::InvalidArgument("--failpoints requires a value");
      }
      spec = *std::next(it);
      seen = true;
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  if (seen) return Failpoints::Configure(spec);
  return Status::OK();
}

// Shared --report / --trace-out handling for the pipeline commands.
// Construct after FlagParser::Parse; Begin() resets the run-wide metrics
// and installs the trace recorder, Finish() writes both artifacts.
class ObsOutputs {
 public:
  explicit ObsOutputs(const FlagParser& flags)
      : report_path_(flags.GetString("report")),
        trace_path_(flags.GetString("trace-out")) {}

  void Begin() {
    if (!report_path_.empty()) MetricsRegistry::Global().Reset();
    if (!trace_path_.empty()) {
      recorder_ = std::make_unique<TraceRecorder>();
      recorder_->Install();
    }
  }

  bool wants_report() const { return !report_path_.empty(); }

  /// Writes the trace and the report (the caller fills `report` first).
  Status Finish(RunReport* report, std::ostream& out) {
    if (recorder_ != nullptr) {
      TraceRecorder::Uninstall();
      if (!recorder_->WriteChromeTrace(trace_path_)) {
        return Status::IOError("cannot write trace to " + trace_path_);
      }
      out << "trace written to " << trace_path_ << "\n";
    }
    if (!report_path_.empty()) {
      report->AttachMetrics(MetricsRegistry::Global().Snapshot());
      if (!report->WriteJson(report_path_)) {
        return Status::IOError("cannot write report to " + report_path_);
      }
      out << "run report written to " << report_path_ << "\n";
    }
    return Status::OK();
  }

 private:
  std::string report_path_;
  std::string trace_path_;
  std::unique_ptr<TraceRecorder> recorder_;
};

Status RunGen(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("out", "", "output directory for the CSV dataset");
  flags.DefineInt64("companies", 400, "number of companies");
  flags.DefineDouble("p", 0.01, "trading probability");
  flags.DefineInt64("seed", 20170402, "RNG seed");
  flags.DefineInt64("plant", 0, "planted IAT relationships");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("out").empty()) {
    return Status::InvalidArgument("gen requires --out=DIR");
  }

  ProvinceConfig config = SmallProvinceConfig(
      static_cast<uint32_t>(flags.GetInt64("companies")),
      static_cast<uint64_t>(flags.GetInt64("seed")));
  config.trading_probability = flags.GetDouble("p");
  TPIIN_ASSIGN_OR_RETURN(Province province, GenerateProvince(config));
  if (flags.GetInt64("plant") > 0) {
    Rng rng(config.seed + 17);
    std::vector<PlantedScheme> planted = PlantSuspiciousTrades(
        province.dataset, rng,
        static_cast<size_t>(flags.GetInt64("plant")));
    out << "planted " << planted.size() << " IAT relationships\n";
  }
  std::error_code ec;
  std::filesystem::create_directories(flags.GetString("out"), ec);
  TPIIN_RETURN_IF_ERROR(
      SaveDatasetCsv(flags.GetString("out"), province.dataset));
  out << "dataset: " << province.dataset.Stats().ToString() << "\n";
  out << "written to " << flags.GetString("out") << "\n";
  return Status::OK();
}

Status RunFuse(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("data", "", "CSV dataset directory");
  flags.DefineString("out", "", "edge-list output file");
  flags.DefineInt64("threads", 0, "worker threads (0 = auto-detect)");
  flags.DefineString("report", "", "machine-readable run report (JSON)");
  flags.DefineString("trace-out", "",
                     "Chrome trace_event JSON (chrome://tracing)");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("data").empty() || flags.GetString("out").empty()) {
    return Status::InvalidArgument("fuse requires --data=DIR --out=FILE");
  }
  ObsOutputs obs(flags);
  obs.Begin();
  TPIIN_ASSIGN_OR_RETURN(RawDataset dataset,
                         LoadDatasetCsv(flags.GetString("data")));
  FusionOptions fusion;
  fusion.num_threads = static_cast<uint32_t>(flags.GetInt64("threads"));
  TPIIN_ASSIGN_OR_RETURN(FusionOutput fused, BuildTpiin(dataset, fusion));
  TPIIN_RETURN_IF_ERROR(
      WriteTpiinEdgeList(flags.GetString("out"), fused.tpiin));
  out << fused.stats.ToString() << "\n";
  out << "TPIIN written to " << flags.GetString("out") << "\n";

  RunReport report("fuse");
  report.set_threads(
      ResolveThreadCount(static_cast<uint32_t>(flags.GetInt64("threads"))));
  AddFusionToReport(fused, &report);
  return obs.Finish(&report, out);
}

Status RunDetect(const std::vector<std::string>& args, std::ostream& out,
                 int* exit_code) {
  FlagParser flags;
  flags.DefineString("net", "", "TPIIN edge-list file");
  flags.DefineString("out", "", "optional output directory for reports");
  flags.DefineInt64("threads", 0, "worker threads (0 = auto-detect)");
  flags.DefineInt64("top", 10, "ranked trades to print");
  flags.DefineString("json", "", "optional JSON report file");
  flags.DefineString("report", "", "machine-readable run report (JSON)");
  flags.DefineString("trace-out", "",
                     "Chrome trace_event JSON (chrome://tracing)");
  flags.DefineInt64("deadline-ms", 0,
                    "wall-clock budget for the run (0 = unlimited)");
  flags.DefineInt64("sub-slice-ms", 0,
                    "per-subTPIIN pattern-walk budget (0 = unlimited)");
  flags.DefineInt64("max-sub-nodes", 0,
                    "skip subTPIINs with more nodes (0 = unlimited)");
  flags.DefineInt64("max-sub-arcs", 0,
                    "skip subTPIINs with more arcs (0 = unlimited)");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("net").empty()) {
    return Status::InvalidArgument("detect requires --net=FILE");
  }
  ObsOutputs obs(flags);
  obs.Begin();
  TPIIN_ASSIGN_OR_RETURN(Tpiin net,
                         ReadTpiinEdgeList(flags.GetString("net")));
  DetectorOptions options;
  options.num_threads = static_cast<uint32_t>(flags.GetInt64("threads"));
  options.budget.deadline_seconds = flags.GetInt64("deadline-ms") / 1e3;
  options.budget.sub_slice_seconds = flags.GetInt64("sub-slice-ms") / 1e3;
  options.budget.max_sub_nodes = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt64("max-sub-nodes")));
  options.budget.max_sub_arcs = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt64("max-sub-arcs")));
  TPIIN_ASSIGN_OR_RETURN(DetectionResult detection,
                         DetectSuspiciousGroups(net, options));
  out << detection.Summary() << "\n";
  if (detection.degraded) {
    out << "WARNING: results are partial — " << detection.num_skipped_subs
        << " subTPIIN(s) skipped by the run budget (exit code 2)\n";
    if (exit_code != nullptr) *exit_code = 2;
  }

  ScoringResult scoring = ScoreDetection(net, detection);
  size_t top = std::min<size_t>(
      scoring.ranked_trades.size(),
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt64("top"))));
  if (top > 0) {
    out << "\ntop " << top << " suspicious trading relationships:\n";
    for (size_t i = 0; i < top; ++i) {
      const ScoredTrade& trade = scoring.ranked_trades[i];
      out << "  " << StringPrintf("%.4f", trade.score) << "  "
          << net.Label(trade.seller) << " -> " << net.Label(trade.buyer)
          << "  (" << trade.group_count << " proof chains)\n";
    }
  }

  if (!flags.GetString("json").empty()) {
    TPIIN_RETURN_IF_ERROR(WriteStringToFile(
        flags.GetString("json"),
        DetectionToJson(net, detection, &scoring)));
    out << "JSON report written to " << flags.GetString("json") << "\n";
  }

  const std::string& out_dir = flags.GetString("out");
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    TPIIN_RETURN_IF_ERROR(WriteSuspiciousGroupsFile(
        out_dir + "/susGroup.txt", net, detection.groups));
    TPIIN_RETURN_IF_ERROR(WriteSuspiciousTradesFile(
        out_dir + "/susTrade.txt", net, detection.suspicious_trades));
    TPIIN_RETURN_IF_ERROR(
        WriteDetectionReport(out_dir + "/report.txt", net, detection));
    out << "\nreports written to " << out_dir << "\n";
  }

  RunReport report("detect");
  report.set_threads(
      ResolveThreadCount(static_cast<uint32_t>(flags.GetInt64("threads"))));
  AddDetectionToReport(
      detection,
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt64("top"))),
      &report);
  return obs.Finish(&report, out);
}

Status RunExplain(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("net", "", "TPIIN edge-list file");
  flags.DefineString("company", "", "company node label to analyze");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("net").empty() ||
      flags.GetString("company").empty()) {
    return Status::InvalidArgument(
        "explain requires --net=FILE --company=LABEL");
  }
  TPIIN_ASSIGN_OR_RETURN(Tpiin net,
                         ReadTpiinEdgeList(flags.GetString("net")));
  NodeId company = kInvalidNode;
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    if (net.Label(v) == flags.GetString("company")) {
      company = v;
      break;
    }
  }
  if (company == kInvalidNode) {
    return Status::NotFound("no node labeled " +
                            flags.GetString("company"));
  }
  if (net.node(company).color != NodeColor::kCompany) {
    return Status::InvalidArgument(flags.GetString("company") +
                                   " is a Person node");
  }
  TPIIN_ASSIGN_OR_RETURN(DetectionResult detection,
                         DetectSuspiciousGroups(net));
  ScoringResult scoring = ScoreDetection(net, detection);
  CompanyDossier dossier =
      BuildCompanyDossier(net, detection, scoring, company);
  out << FormatCompanyDossier(net, dossier);
  return Status::OK();
}

Status RunScreen(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("net", "", "TPIIN edge-list file");
  flags.DefineString("seller", "", "seller company label");
  flags.DefineString("buyer", "", "buyer company label");
  flags.DefineString("pairs", "",
                     "CSV of candidate relationships (seller,buyer labels)");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  bool single = !flags.GetString("seller").empty() &&
                !flags.GetString("buyer").empty();
  if (flags.GetString("net").empty() ||
      (!single && flags.GetString("pairs").empty())) {
    return Status::InvalidArgument(
        "screen requires --net=FILE and either --seller/--buyer labels "
        "or --pairs=CSV");
  }
  TPIIN_ASSIGN_OR_RETURN(Tpiin net,
                         ReadTpiinEdgeList(flags.GetString("net")));

  std::unordered_map<std::string, NodeId> by_label;
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    by_label.emplace(net.Label(v), v);
  }
  auto lookup = [&](const std::string& label) -> Result<NodeId> {
    auto it = by_label.find(label);
    if (it == by_label.end()) {
      return Status::NotFound("no node labeled " + label);
    }
    if (net.node(it->second).color != NodeColor::kCompany) {
      return Status::InvalidArgument(label + " is a Person node");
    }
    return it->second;
  };

  std::vector<std::pair<NodeId, NodeId>> candidates;
  if (single) {
    TPIIN_ASSIGN_OR_RETURN(NodeId seller,
                           lookup(flags.GetString("seller")));
    TPIIN_ASSIGN_OR_RETURN(NodeId buyer, lookup(flags.GetString("buyer")));
    candidates.emplace_back(seller, buyer);
  } else {
    TPIIN_ASSIGN_OR_RETURN(auto rows,
                           ReadCsvFile(flags.GetString("pairs"), {}));
    for (const auto& row : rows) {
      if (row.size() != 2) {
        return Status::Corruption("pairs CSV must have two columns");
      }
      TPIIN_ASSIGN_OR_RETURN(NodeId seller, lookup(row[0]));
      TPIIN_ASSIGN_OR_RETURN(NodeId buyer, lookup(row[1]));
      candidates.emplace_back(seller, buyer);
    }
  }

  // The network came from an edge-list file, so acyclicity of the
  // antecedent layer is not guaranteed — use the checked factory.
  TPIIN_ASSIGN_OR_RETURN(IncrementalScreener screener,
                         IncrementalScreener::Create(net));
  size_t flagged = 0;
  for (const auto& [seller, buyer] : candidates) {
    std::optional<NodeId> witness =
        screener.CommonAntecedent(seller, buyer);
    if (witness.has_value()) {
      ++flagged;
      out << "SUSPICIOUS  " << net.Label(seller) << " -> "
          << net.Label(buyer) << "  (common antecedent "
          << net.Label(*witness) << ")\n";
    } else {
      out << "clear       " << net.Label(seller) << " -> "
          << net.Label(buyer) << "\n";
    }
  }
  out << flagged << " of " << candidates.size()
      << " relationship(s) suspicious\n";
  return Status::OK();
}

Status RunStats(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("net", "", "TPIIN edge-list file");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("net").empty()) {
    return Status::InvalidArgument("stats requires --net=FILE");
  }
  TPIIN_ASSIGN_OR_RETURN(Tpiin net,
                         ReadTpiinEdgeList(flags.GetString("net")));
  size_t persons = 0;
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    persons += net.node(v).color == NodeColor::kPerson;
  }
  out << "nodes: " << net.NumNodes() << " (" << persons << " person, "
      << (net.NumNodes() - persons) << " company)\n";
  DegreeStats antecedent = ComputeDegreeStats(net.graph(), IsInfluenceArc);
  DegreeStats trading = ComputeDegreeStats(net.graph(), IsTradingArc);
  out << StringPrintf(
      "antecedent: %u arcs, avg degree %.3f, max out %u\n",
      antecedent.num_arcs, antecedent.average_degree,
      antecedent.max_out_degree);
  out << StringPrintf("trading:    %u arcs, avg degree %.3f, max out %u\n",
                      trading.num_arcs, trading.average_degree,
                      trading.max_out_degree);
  return Status::OK();
}

Status RunExport(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("net", "", "TPIIN edge-list file");
  flags.DefineString("format", "dot", "dot or gexf");
  flags.DefineString("out", "", "output file");
  flags.DefineString("ego", "",
                     "restrict to the neighborhood of this node label");
  flags.DefineInt64("depth", 2, "ego neighborhood depth");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("net").empty() || flags.GetString("out").empty()) {
    return Status::InvalidArgument(
        "export requires --net=FILE --out=FILE");
  }
  TPIIN_ASSIGN_OR_RETURN(Tpiin net,
                         ReadTpiinEdgeList(flags.GetString("net")));
  if (!flags.GetString("ego").empty()) {
    NodeId center = kInvalidNode;
    for (NodeId v = 0; v < net.NumNodes(); ++v) {
      if (net.Label(v) == flags.GetString("ego")) {
        center = v;
        break;
      }
    }
    if (center == kInvalidNode) {
      return Status::NotFound("no node labeled " + flags.GetString("ego"));
    }
    EgoOptions ego_options;
    ego_options.depth =
        static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt64("depth")));
    ego_options.follow_trading = true;
    TPIIN_ASSIGN_OR_RETURN(net, ExtractEgoNetwork(net, center, ego_options));
    out << "ego network of " << flags.GetString("ego") << ": "
        << net.NumNodes() << " nodes, " << net.graph().NumArcs()
        << " arcs\n";
  }
  std::string rendered;
  if (flags.GetString("format") == "dot") {
    rendered = TpiinToDot(net, "TPIIN");
  } else if (flags.GetString("format") == "gexf") {
    rendered = TpiinToGexf(net);
  } else {
    return Status::InvalidArgument("unknown --format: " +
                                   flags.GetString("format"));
  }
  TPIIN_RETURN_IF_ERROR(
      WriteStringToFile(flags.GetString("out"), rendered));
  out << "exported " << flags.GetString("format") << " to "
      << flags.GetString("out") << "\n";
  return Status::OK();
}

}  // namespace

std::string CliUsage() {
  return
      "tpiin <command> [flags]\n"
      "\n"
      "Commands:\n"
      "  gen     generate a synthetic province dataset (CSV)\n"
      "          --out=DIR [--companies=N] [--p=X] [--seed=S] [--plant=K]\n"
      "  fuse    fuse a CSV dataset into a TPIIN edge list\n"
      "          --data=DIR --out=FILE [--threads=T] [--report=FILE]\n"
      "          [--trace-out=FILE]\n"
      "  detect  mine suspicious tax evasion groups\n"
      "          --net=FILE [--out=DIR] [--threads=T] [--top=K] "
      "[--json=FILE]\n"
      "          [--report=FILE] [--trace-out=FILE]\n"
      "          [--deadline-ms=N] [--sub-slice-ms=N] [--max-sub-nodes=N]\n"
      "          [--max-sub-arcs=N]   (run budget; partial results exit 2)\n"
      "  explain per-company dossier (IATs, antecedents, proof chains)\n"
      "          --net=FILE --company=LABEL\n"
      "  screen  classify candidate trading relationships (streaming)\n"
      "          --net=FILE (--seller=L --buyer=L | --pairs=CSV)\n"
      "  stats   print layer statistics of a TPIIN\n"
      "          --net=FILE\n"
      "  export  render a TPIIN (or one company's neighborhood) for\n"
      "          Graphviz/Gephi\n"
      "          --net=FILE --format=dot|gexf --out=FILE [--ego=LABEL "
      "--depth=N]\n"
      "\n"
      "Global flags:\n"
      "  --log-level=debug|info|warning|error   minimum log severity\n"
      "                                         (default info)\n"
      "  --failpoints=SPEC   inject faults at named sites (testing);\n"
      "                      e.g. 'io.csv.open:ioerror,*:p0.01@42'\n"
      "\n"
      "Exit codes: 0 success, 1 error, 2 completed with partial results\n"
      "(a --deadline-ms/--max-sub-* budget bound).\n";
}

namespace {

Status DispatchCli(const std::vector<std::string>& args, std::ostream& out,
                   int* exit_code) {
  std::vector<std::string> mutable_args = args;
  TPIIN_RETURN_IF_ERROR(ApplyLogLevelFlag(mutable_args));
  TPIIN_RETURN_IF_ERROR(ApplyFailpointsFlag(mutable_args));
  if (mutable_args.empty() || mutable_args[0] == "help" ||
      mutable_args[0] == "--help") {
    out << CliUsage();
    return Status::OK();
  }
  const std::string& command = mutable_args[0];
  std::vector<std::string> rest(mutable_args.begin() + 1,
                                mutable_args.end());
  if (command == "gen") return RunGen(rest, out);
  if (command == "fuse") return RunFuse(rest, out);
  if (command == "detect") return RunDetect(rest, out, exit_code);
  if (command == "explain") return RunExplain(rest, out);
  if (command == "screen") return RunScreen(rest, out);
  if (command == "stats") return RunStats(rest, out);
  if (command == "export") return RunExport(rest, out);
  return Status::InvalidArgument("unknown command: " + command + "\n" +
                                 CliUsage());
}

}  // namespace

Status RunCli(const std::vector<std::string>& args, std::ostream& out,
              int* exit_code) {
  int code = 0;
  Status status = DispatchCli(args, out, &code);
  if (!status.ok()) code = 1;
  if (exit_code != nullptr) *exit_code = code;
  return status;
}

}  // namespace tpiin

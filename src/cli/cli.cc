#include "cli/cli.h"

#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <unordered_map>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/detector.h"
#include "core/explain.h"
#include "core/incremental.h"
#include "core/scoring.h"
#include "datagen/plant.h"
#include "datagen/province.h"
#include "fusion/neighborhood.h"
#include "fusion/pipeline.h"
#include "graph/degree.h"
#include "io/dataset_csv.h"
#include "io/dot_export.h"
#include "io/edge_list.h"
#include "io/gexf_export.h"
#include "io/json_report.h"
#include "io/pattern_file.h"
#include "common/atomic_file.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "shard/build.h"
#include "shard/canonical.h"
#include "shard/detect.h"
#include "shard/merge.h"
#include "snapshot/snapshot.h"

namespace tpiin {

namespace {

Status ParseFlags(FlagParser& flags, const std::vector<std::string>& args) {
  std::vector<const char*> argv = {"tpiin"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  return flags.Parse(static_cast<int>(argv.size()), argv.data());
}

// Consumes every --log-level flag (global: valid before or after the
// command's own flags) and applies the last one.
Status ApplyLogLevelFlag(std::vector<std::string>& args) {
  constexpr const char* kPrefix = "--log-level=";
  for (auto it = args.begin(); it != args.end();) {
    std::string value;
    if (it->rfind(kPrefix, 0) == 0) {
      value = it->substr(std::string(kPrefix).size());
      it = args.erase(it);
    } else if (*it == "--log-level") {
      if (std::next(it) == args.end()) {
        return Status::InvalidArgument("--log-level requires a value");
      }
      value = *std::next(it);
      it = args.erase(it, it + 2);
    } else {
      ++it;
      continue;
    }
    if (value == "debug") {
      SetLogLevel(LogLevel::kDebug);
    } else if (value == "info") {
      SetLogLevel(LogLevel::kInfo);
    } else if (value == "warning") {
      SetLogLevel(LogLevel::kWarning);
    } else if (value == "error") {
      SetLogLevel(LogLevel::kError);
    } else {
      return Status::InvalidArgument(
          "unknown --log-level: " + value +
          " (expected debug|info|warning|error)");
    }
  }
  return Status::OK();
}

// The process-wide structured-log sink installed by --log-json. Kept in
// a static so it outlives every TPIIN_LOG statement (the LogBackend
// contract); replaced — uninstall first, then swap — when a later
// in-process RunCli passes the flag again.
std::unique_ptr<JsonLogSink>& LogJsonSinkSlot() {
  static std::unique_ptr<JsonLogSink> sink;
  return sink;
}

// Consumes every --log-json flag (global: valid before or after the
// command's own flags) and installs a JSON log backend writing to the
// last given path ("-" = stderr), upgrading every TPIIN_LOG line in the
// process to one NDJSON event.
Status ApplyLogJsonFlag(std::vector<std::string>& args) {
  constexpr const char* kPrefix = "--log-json=";
  bool seen = false;
  std::string path;
  for (auto it = args.begin(); it != args.end();) {
    if (it->rfind(kPrefix, 0) == 0) {
      path = it->substr(std::string(kPrefix).size());
      seen = true;
      it = args.erase(it);
    } else if (*it == "--log-json") {
      if (std::next(it) == args.end()) {
        return Status::InvalidArgument("--log-json requires a value");
      }
      path = *std::next(it);
      seen = true;
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  if (!seen) return Status::OK();
  std::string error;
  std::unique_ptr<JsonLogSink> sink = JsonLogSink::Open(path, &error);
  if (sink == nullptr) return Status::IOError(error);
  SetLogBackend(nullptr);  // Never leave the backend dangling mid-swap.
  LogJsonSinkSlot() = std::move(sink);
  SetLogBackend(LogJsonSinkSlot().get());
  return Status::OK();
}

// Consumes every --failpoints flag (global, like --log-level) and
// installs the last spec. Only touches the failpoint registry when the
// flag is present, so in-process callers (tests driving RunCli) keep
// whatever configuration they installed themselves.
Status ApplyFailpointsFlag(std::vector<std::string>& args) {
  constexpr const char* kPrefix = "--failpoints=";
  bool seen = false;
  std::string spec;
  for (auto it = args.begin(); it != args.end();) {
    if (it->rfind(kPrefix, 0) == 0) {
      spec = it->substr(std::string(kPrefix).size());
      seen = true;
      it = args.erase(it);
    } else if (*it == "--failpoints") {
      if (std::next(it) == args.end()) {
        return Status::InvalidArgument("--failpoints requires a value");
      }
      spec = *std::next(it);
      seen = true;
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  if (seen) return Failpoints::Configure(spec);
  return Status::OK();
}

// Shared --report / --trace-out handling for the pipeline commands.
// Construct after FlagParser::Parse; Begin() resets the run-wide metrics
// and installs the trace recorder, Finish() writes both artifacts.
class ObsOutputs {
 public:
  explicit ObsOutputs(const FlagParser& flags)
      : report_path_(flags.GetString("report")),
        trace_path_(flags.GetString("trace-out")) {}

  void Begin() {
    if (!report_path_.empty()) MetricsRegistry::Global().Reset();
    if (!trace_path_.empty()) {
      recorder_ = std::make_unique<TraceRecorder>();
      recorder_->Install();
    }
  }

  bool wants_report() const { return !report_path_.empty(); }

  /// Writes the trace and the report (the caller fills `report` first).
  Status Finish(RunReport* report, std::ostream& out) {
    if (recorder_ != nullptr) {
      TraceRecorder::Uninstall();
      if (!recorder_->WriteChromeTrace(trace_path_)) {
        return Status::IOError("cannot write trace to " + trace_path_);
      }
      out << "trace written to " << trace_path_ << "\n";
    }
    if (!report_path_.empty()) {
      report->AttachMetrics(MetricsRegistry::Global().Snapshot());
      if (!report->WriteJson(report_path_)) {
        return Status::IOError("cannot write report to " + report_path_);
      }
      out << "run report written to " << report_path_ << "\n";
    }
    return Status::OK();
  }

 private:
  std::string report_path_;
  std::string trace_path_;
  std::unique_ptr<TraceRecorder> recorder_;
};

// Network input shared by every mining command: --net=FILE parses a
// TPIIN edge list, --snapshot=FILE mmaps a binary snapshot written by
// `tpiin build`. Exactly one must be given. The view (when used) owns
// the mapping, so keep the LoadedNet alive as long as net() is read.
void DefineNetworkFlags(FlagParser& flags) {
  flags.DefineString("net", "", "TPIIN edge-list file");
  flags.DefineString("snapshot", "",
                     "binary TPIIN snapshot (written by `tpiin build`)");
}

struct LoadedNet {
  Tpiin owned;
  std::unique_ptr<SnapshotView> view;
  double open_seconds = 0;
  bool from_snapshot = false;

  const Tpiin& net() const { return view != nullptr ? view->net() : owned; }

  /// Records where the network came from and how long the open took.
  /// `snapshot_open_ms` is the mmap+validate cost the snapshot path pays
  /// instead of the edge-list parse (or the full CSV cold start — see
  /// the `build` report's cold_start_ms for that comparison).
  void AddToReport(RunReport* report) const {
    report->AddStage(from_snapshot ? "snapshot_open" : "load_net",
                     open_seconds);
    ReportSection& section = report->Section("input");
    section.Set("source", from_snapshot ? "snapshot" : "edge_list");
    section.Set(from_snapshot ? "snapshot_open_ms" : "load_net_ms",
                open_seconds * 1e3);
  }
};

Result<LoadedNet> LoadNetwork(const FlagParser& flags,
                              const std::string& command) {
  const std::string& net_path = flags.GetString("net");
  const std::string& snapshot_path = flags.GetString("snapshot");
  if (net_path.empty() == snapshot_path.empty()) {
    return Status::InvalidArgument(
        command + " requires exactly one of --net=FILE or --snapshot=FILE");
  }
  LoadedNet loaded;
  WallTimer timer;
  if (!snapshot_path.empty()) {
    TPIIN_ASSIGN_OR_RETURN(loaded.view, SnapshotView::Open(snapshot_path));
    loaded.from_snapshot = true;
  } else {
    TPIIN_ASSIGN_OR_RETURN(loaded.owned, ReadTpiinEdgeList(net_path));
  }
  loaded.open_seconds = timer.ElapsedSeconds();
  return loaded;
}

// `tpiin build`: run ingest+fusion once (or parse an edge list) and
// persist the fused TPIIN as a binary snapshot, so every later command
// opens it in milliseconds via --snapshot.
Status RunBuild(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("data", "", "CSV dataset directory to ingest+fuse");
  flags.DefineString("net", "", "TPIIN edge-list file (alternative input)");
  flags.DefineString("out", "", "snapshot output file");
  flags.DefineInt64("threads", 0, "worker threads (0 = auto-detect)");
  flags.DefineBool("wcc-index", true,
                   "precompute the subTPIIN segmentation index");
  flags.DefineString("report", "", "machine-readable run report (JSON)");
  flags.DefineString("trace-out", "",
                     "Chrome trace_event JSON (chrome://tracing)");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  const std::string& data_dir = flags.GetString("data");
  const std::string& net_path = flags.GetString("net");
  if (flags.GetString("out").empty() ||
      data_dir.empty() == net_path.empty()) {
    return Status::InvalidArgument(
        "build requires --out=FILE and exactly one of --data=DIR or "
        "--net=FILE");
  }
  ObsOutputs obs(flags);
  obs.Begin();

  RunReport report("build");
  report.set_threads(
      ResolveThreadCount(static_cast<uint32_t>(flags.GetInt64("threads"))));

  // The cold start the snapshot replaces: CSV ingest + fusion (or the
  // edge-list parse).
  WallTimer cold_timer;
  Tpiin net;
  if (!data_dir.empty()) {
    WallTimer timer;
    TPIIN_ASSIGN_OR_RETURN(RawDataset dataset, LoadDatasetCsv(data_dir));
    report.AddStage("load_csv", timer.ElapsedSeconds());
    FusionOptions fusion;
    fusion.num_threads = static_cast<uint32_t>(flags.GetInt64("threads"));
    timer.Restart();
    TPIIN_ASSIGN_OR_RETURN(FusionOutput fused, BuildTpiin(dataset, fusion));
    report.AddStage("fuse", timer.ElapsedSeconds());
    out << fused.stats.ToString() << "\n";
    net = std::move(fused.tpiin);
  } else {
    WallTimer timer;
    TPIIN_ASSIGN_OR_RETURN(net, ReadTpiinEdgeList(net_path));
    report.AddStage("load_net", timer.ElapsedSeconds());
  }
  const double cold_start_s = cold_timer.ElapsedSeconds();

  SnapshotWriteOptions options;
  options.include_wcc_index = flags.GetBool("wcc-index");
  WallTimer write_timer;
  TPIIN_RETURN_IF_ERROR(WriteSnapshot(net, flags.GetString("out"), options));
  report.AddStage("snapshot_write", write_timer.ElapsedSeconds());

  // Re-open what was just written: verifies the round trip end to end
  // and measures the open cost every later --snapshot run will pay.
  WallTimer open_timer;
  TPIIN_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotView> view,
                         SnapshotView::Open(flags.GetString("out")));
  const double open_s = open_timer.ElapsedSeconds();
  report.AddStage("snapshot_open", open_s);

  out << "snapshot written to " << flags.GetString("out") << " ("
      << view->file_size() << " bytes, " << net.NumNodes() << " nodes, "
      << net.NumArcs() << " arcs)\n";
  out << StringPrintf(
      "cold start %.1f ms -> snapshot open %.2f ms (%.0fx)\n",
      cold_start_s * 1e3, open_s * 1e3,
      open_s > 0 ? cold_start_s / open_s : 0.0);

  ReportSection& section = report.Section("snapshot");
  section.Set("path", flags.GetString("out"));
  section.Set("bytes", view->file_size());
  section.Set("cold_start_ms", cold_start_s * 1e3);
  section.Set("snapshot_open_ms", open_s * 1e3);
  section.Set("speedup",
              open_s > 0 ? cold_start_s / open_s : 0.0);
  section.Set("wcc_index", options.include_wcc_index);
  return obs.Finish(&report, out);
}

// `tpiin snapshot info FILE`: header + section directory without
// mapping the graph sections; exit 1 on any structural or checksum
// problem so scripts can use it as a validator.
Status RunSnapshotCmd(const std::vector<std::string>& args,
                      std::ostream& out) {
  FlagParser flags;
  flags.DefineBool("verify", true, "stream sections to check CRCs");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.positional().size() != 2 || flags.positional()[0] != "info") {
    return Status::InvalidArgument(
        "usage: tpiin snapshot info FILE [--verify=false]");
  }
  const std::string& path = flags.positional()[1];
  TPIIN_ASSIGN_OR_RETURN(SnapshotInfo info,
                         ReadSnapshotInfo(path, flags.GetBool("verify")));
  out << FormatSnapshotInfo(info);
  for (const SnapshotSectionInfo& section : info.sections) {
    if (section.crc_checked && !section.crc_ok) {
      return Status::Corruption(path + ": section " + section.name +
                                " checksum mismatch");
    }
  }
  return Status::OK();
}

Status RunGen(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("out", "", "output directory for the CSV dataset");
  flags.DefineInt64("companies", 400, "number of companies");
  flags.DefineDouble("p", 0.01, "trading probability");
  flags.DefineInt64("seed", 20170402, "RNG seed");
  flags.DefineInt64("plant", 0, "planted IAT relationships");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("out").empty()) {
    return Status::InvalidArgument("gen requires --out=DIR");
  }

  ProvinceConfig config = SmallProvinceConfig(
      static_cast<uint32_t>(flags.GetInt64("companies")),
      static_cast<uint64_t>(flags.GetInt64("seed")));
  config.trading_probability = flags.GetDouble("p");
  TPIIN_ASSIGN_OR_RETURN(Province province, GenerateProvince(config));
  if (flags.GetInt64("plant") > 0) {
    Rng rng(config.seed + 17);
    std::vector<PlantedScheme> planted = PlantSuspiciousTrades(
        province.dataset, rng,
        static_cast<size_t>(flags.GetInt64("plant")));
    out << "planted " << planted.size() << " IAT relationships\n";
  }
  std::error_code ec;
  std::filesystem::create_directories(flags.GetString("out"), ec);
  TPIIN_RETURN_IF_ERROR(
      SaveDatasetCsv(flags.GetString("out"), province.dataset));
  out << "dataset: " << province.dataset.Stats().ToString() << "\n";
  out << "written to " << flags.GetString("out") << "\n";
  return Status::OK();
}

Status RunFuse(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  flags.DefineString("data", "", "CSV dataset directory");
  flags.DefineString("out", "", "edge-list output file");
  flags.DefineInt64("threads", 0, "worker threads (0 = auto-detect)");
  flags.DefineString("report", "", "machine-readable run report (JSON)");
  flags.DefineString("trace-out", "",
                     "Chrome trace_event JSON (chrome://tracing)");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("data").empty() || flags.GetString("out").empty()) {
    return Status::InvalidArgument("fuse requires --data=DIR --out=FILE");
  }
  ObsOutputs obs(flags);
  obs.Begin();
  TPIIN_ASSIGN_OR_RETURN(RawDataset dataset,
                         LoadDatasetCsv(flags.GetString("data")));
  FusionOptions fusion;
  fusion.num_threads = static_cast<uint32_t>(flags.GetInt64("threads"));
  TPIIN_ASSIGN_OR_RETURN(FusionOutput fused, BuildTpiin(dataset, fusion));
  TPIIN_RETURN_IF_ERROR(
      WriteTpiinEdgeList(flags.GetString("out"), fused.tpiin));
  out << fused.stats.ToString() << "\n";
  out << "TPIIN written to " << flags.GetString("out") << "\n";

  RunReport report("fuse");
  report.set_threads(
      ResolveThreadCount(static_cast<uint32_t>(flags.GetInt64("threads"))));
  AddFusionToReport(fused, &report);
  return obs.Finish(&report, out);
}

// The RunBudget knobs shared by `detect` and `shard detect`.
void DefineBudgetFlags(FlagParser& flags) {
  flags.DefineInt64("deadline-ms", 0,
                    "wall-clock budget for the run (0 = unlimited)");
  flags.DefineInt64("sub-slice-ms", 0,
                    "per-subTPIIN pattern-walk budget (0 = unlimited)");
  flags.DefineInt64("max-sub-nodes", 0,
                    "skip subTPIINs with more nodes (0 = unlimited)");
  flags.DefineInt64("max-sub-arcs", 0,
                    "skip subTPIINs with more arcs (0 = unlimited)");
}

RunBudget BudgetFromFlags(const FlagParser& flags) {
  RunBudget budget;
  budget.deadline_seconds = flags.GetInt64("deadline-ms") / 1e3;
  budget.sub_slice_seconds = flags.GetInt64("sub-slice-ms") / 1e3;
  budget.max_sub_nodes = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt64("max-sub-nodes")));
  budget.max_sub_arcs = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt64("max-sub-arcs")));
  return budget;
}

Status RunDetect(const std::vector<std::string>& args, std::ostream& out,
                 int* exit_code) {
  FlagParser flags;
  DefineNetworkFlags(flags);
  flags.DefineString("out", "", "optional output directory for reports");
  flags.DefineInt64("threads", 0, "worker threads (0 = auto-detect)");
  flags.DefineInt64("top", 10, "ranked trades to print");
  flags.DefineString("json", "", "optional JSON report file");
  flags.DefineString("report", "", "machine-readable run report (JSON)");
  flags.DefineString("trace-out", "",
                     "Chrome trace_event JSON (chrome://tracing)");
  DefineBudgetFlags(flags);
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  ObsOutputs obs(flags);
  obs.Begin();
  TPIIN_ASSIGN_OR_RETURN(LoadedNet loaded, LoadNetwork(flags, "detect"));
  const Tpiin& net = loaded.net();
  DetectorOptions options;
  options.num_threads = static_cast<uint32_t>(flags.GetInt64("threads"));
  options.budget = BudgetFromFlags(flags);
  TPIIN_ASSIGN_OR_RETURN(DetectionResult detection,
                         DetectSuspiciousGroups(net, options));
  out << detection.Summary() << "\n";
  if (detection.degraded) {
    out << "WARNING: results are partial — " << detection.num_skipped_subs
        << " subTPIIN(s) skipped by the run budget (exit code 2)\n";
    if (exit_code != nullptr) *exit_code = 2;
  }

  ScoringResult scoring = ScoreDetection(net, detection);
  size_t top = std::min<size_t>(
      scoring.ranked_trades.size(),
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt64("top"))));
  if (top > 0) {
    out << "\ntop " << top << " suspicious trading relationships:\n";
    for (size_t i = 0; i < top; ++i) {
      const ScoredTrade& trade = scoring.ranked_trades[i];
      out << "  " << StringPrintf("%.4f", trade.score) << "  "
          << net.Label(trade.seller) << " -> " << net.Label(trade.buyer)
          << "  (" << trade.group_count << " proof chains)\n";
    }
  }

  if (!flags.GetString("json").empty()) {
    TPIIN_RETURN_IF_ERROR(WriteStringToFile(
        flags.GetString("json"),
        DetectionToJson(net, detection, &scoring)));
    out << "JSON report written to " << flags.GetString("json") << "\n";
  }

  const std::string& out_dir = flags.GetString("out");
  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    TPIIN_RETURN_IF_ERROR(WriteSuspiciousGroupsFile(
        out_dir + "/susGroup.txt", net, detection.groups));
    TPIIN_RETURN_IF_ERROR(WriteSuspiciousTradesFile(
        out_dir + "/susTrade.txt", net, detection.suspicious_trades));
    TPIIN_RETURN_IF_ERROR(
        WriteDetectionReport(out_dir + "/report.txt", net, detection));
    // The canonical ranked report: `tpiin shard merge` reproduces this
    // file byte for byte from a sharded run over the same dataset.
    TPIIN_RETURN_IF_ERROR(WriteFileAtomic(
        out_dir + "/ranked.txt",
        RenderCanonicalReport(
            BuildCanonicalReport(net, detection, scoring))));
    out << "\nreports written to " << out_dir << "\n";
  }

  RunReport report("detect");
  report.set_threads(
      ResolveThreadCount(static_cast<uint32_t>(flags.GetInt64("threads"))));
  loaded.AddToReport(&report);
  AddDetectionToReport(
      detection,
      static_cast<size_t>(std::max<int64_t>(0, flags.GetInt64("top"))),
      &report);
  return obs.Finish(&report, out);
}

Status RunExplain(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  DefineNetworkFlags(flags);
  flags.DefineString("company", "", "company node label to analyze");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("company").empty()) {
    return Status::InvalidArgument("explain requires --company=LABEL");
  }
  TPIIN_ASSIGN_OR_RETURN(LoadedNet loaded, LoadNetwork(flags, "explain"));
  const Tpiin& net = loaded.net();
  NodeId company = kInvalidNode;
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    if (net.Label(v) == flags.GetString("company")) {
      company = v;
      break;
    }
  }
  if (company == kInvalidNode) {
    return Status::NotFound("no node labeled " +
                            flags.GetString("company"));
  }
  if (net.node(company).color != NodeColor::kCompany) {
    return Status::InvalidArgument(flags.GetString("company") +
                                   " is a Person node");
  }
  TPIIN_ASSIGN_OR_RETURN(DetectionResult detection,
                         DetectSuspiciousGroups(net));
  ScoringResult scoring = ScoreDetection(net, detection);
  CompanyDossier dossier =
      BuildCompanyDossier(net, detection, scoring, company);
  out << FormatCompanyDossier(net, dossier);
  return Status::OK();
}

Status RunScreen(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  DefineNetworkFlags(flags);
  flags.DefineString("seller", "", "seller company label");
  flags.DefineString("buyer", "", "buyer company label");
  flags.DefineString("pairs", "",
                     "CSV of candidate relationships (seller,buyer labels)");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  bool single = !flags.GetString("seller").empty() &&
                !flags.GetString("buyer").empty();
  if (!single && flags.GetString("pairs").empty()) {
    return Status::InvalidArgument(
        "screen requires either --seller/--buyer labels or --pairs=CSV");
  }
  TPIIN_ASSIGN_OR_RETURN(LoadedNet loaded, LoadNetwork(flags, "screen"));
  const Tpiin& net = loaded.net();

  std::unordered_map<std::string, NodeId> by_label;
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    by_label.emplace(net.Label(v), v);
  }
  auto lookup = [&](const std::string& label) -> Result<NodeId> {
    auto it = by_label.find(label);
    if (it == by_label.end()) {
      return Status::NotFound("no node labeled " + label);
    }
    if (net.node(it->second).color != NodeColor::kCompany) {
      return Status::InvalidArgument(label + " is a Person node");
    }
    return it->second;
  };

  std::vector<std::pair<NodeId, NodeId>> candidates;
  if (single) {
    TPIIN_ASSIGN_OR_RETURN(NodeId seller,
                           lookup(flags.GetString("seller")));
    TPIIN_ASSIGN_OR_RETURN(NodeId buyer, lookup(flags.GetString("buyer")));
    candidates.emplace_back(seller, buyer);
  } else {
    TPIIN_ASSIGN_OR_RETURN(auto rows,
                           ReadCsvFile(flags.GetString("pairs"), {}));
    for (const auto& row : rows) {
      if (row.size() != 2) {
        return Status::Corruption("pairs CSV must have two columns");
      }
      TPIIN_ASSIGN_OR_RETURN(NodeId seller, lookup(row[0]));
      TPIIN_ASSIGN_OR_RETURN(NodeId buyer, lookup(row[1]));
      candidates.emplace_back(seller, buyer);
    }
  }

  // The network came from an edge-list file, so acyclicity of the
  // antecedent layer is not guaranteed — use the checked factory.
  TPIIN_ASSIGN_OR_RETURN(IncrementalScreener screener,
                         IncrementalScreener::Create(net));
  size_t flagged = 0;
  for (const auto& [seller, buyer] : candidates) {
    std::optional<NodeId> witness =
        screener.CommonAntecedent(seller, buyer);
    if (witness.has_value()) {
      ++flagged;
      out << "SUSPICIOUS  " << net.Label(seller) << " -> "
          << net.Label(buyer) << "  (common antecedent "
          << net.Label(*witness) << ")\n";
    } else {
      out << "clear       " << net.Label(seller) << " -> "
          << net.Label(buyer) << "\n";
    }
  }
  out << flagged << " of " << candidates.size()
      << " relationship(s) suspicious\n";
  return Status::OK();
}

Status RunStats(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  DefineNetworkFlags(flags);
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  TPIIN_ASSIGN_OR_RETURN(LoadedNet loaded, LoadNetwork(flags, "stats"));
  const Tpiin& net = loaded.net();
  size_t persons = 0;
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    persons += net.node(v).color == NodeColor::kPerson;
  }
  out << "nodes: " << net.NumNodes() << " (" << persons << " person, "
      << (net.NumNodes() - persons) << " company)\n";
  DegreeStats antecedent =
      ComputeDegreeStats(net.frozen(), FrozenArcClass::kInfluence);
  DegreeStats trading =
      ComputeDegreeStats(net.frozen(), FrozenArcClass::kTrading);
  out << StringPrintf(
      "antecedent: %u arcs, avg degree %.3f, max out %u\n",
      antecedent.num_arcs, antecedent.average_degree,
      antecedent.max_out_degree);
  out << StringPrintf("trading:    %u arcs, avg degree %.3f, max out %u\n",
                      trading.num_arcs, trading.average_degree,
                      trading.max_out_degree);
  return Status::OK();
}

Status RunExport(const std::vector<std::string>& args, std::ostream& out) {
  FlagParser flags;
  DefineNetworkFlags(flags);
  flags.DefineString("format", "dot", "dot or gexf");
  flags.DefineString("out", "", "output file");
  flags.DefineString("ego", "",
                     "restrict to the neighborhood of this node label");
  flags.DefineInt64("depth", 2, "ego neighborhood depth");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("out").empty()) {
    return Status::InvalidArgument("export requires --out=FILE");
  }
  TPIIN_ASSIGN_OR_RETURN(LoadedNet loaded, LoadNetwork(flags, "export"));
  const Tpiin* net = &loaded.net();
  Tpiin ego_net;
  if (!flags.GetString("ego").empty()) {
    NodeId center = kInvalidNode;
    for (NodeId v = 0; v < net->NumNodes(); ++v) {
      if (net->Label(v) == flags.GetString("ego")) {
        center = v;
        break;
      }
    }
    if (center == kInvalidNode) {
      return Status::NotFound("no node labeled " + flags.GetString("ego"));
    }
    EgoOptions ego_options;
    ego_options.depth =
        static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt64("depth")));
    ego_options.follow_trading = true;
    TPIIN_ASSIGN_OR_RETURN(ego_net,
                           ExtractEgoNetwork(*net, center, ego_options));
    net = &ego_net;
    out << "ego network of " << flags.GetString("ego") << ": "
        << net->NumNodes() << " nodes, " << net->NumArcs() << " arcs\n";
  }
  std::string rendered;
  if (flags.GetString("format") == "dot") {
    rendered = TpiinToDot(*net, "TPIIN");
  } else if (flags.GetString("format") == "gexf") {
    rendered = TpiinToGexf(*net);
  } else {
    return Status::InvalidArgument("unknown --format: " +
                                   flags.GetString("format"));
  }
  TPIIN_RETURN_IF_ERROR(
      WriteStringToFile(flags.GetString("out"), rendered));
  out << "exported " << flags.GetString("format") << " to "
      << flags.GetString("out") << "\n";
  return Status::OK();
}

// `tpiin shard build`: out-of-core sharded build — plan, route, fuse one
// shard at a time, so peak RSS is O(entities + largest shard).
Status RunShardBuild(const std::vector<std::string>& args,
                     std::ostream& out) {
  FlagParser flags;
  flags.DefineString("data", "", "CSV dataset directory to shard");
  flags.DefineString("out", "", "output directory for the sharded build");
  flags.DefineInt64("shards", 4, "number of shards");
  flags.DefineInt64("threads", 1, "threads inside each per-shard fusion");
  flags.DefineInt64("spill-buffer-kb", 1024,
                    "per-(shard, table) routing buffer");
  flags.DefineBool("keep-spill", false,
                   "keep the routed per-shard CSV spill directories");
  flags.DefineBool("wcc-index", true,
                   "precompute each shard's segmentation index");
  flags.DefineString("report", "", "machine-readable run report (JSON)");
  flags.DefineString("trace-out", "",
                     "Chrome trace_event JSON (chrome://tracing)");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("data").empty() || flags.GetString("out").empty()) {
    return Status::InvalidArgument(
        "shard build requires --data=DIR --out=DIR");
  }
  if (flags.GetInt64("shards") < 1) {
    return Status::InvalidArgument("--shards must be positive");
  }
  ObsOutputs obs(flags);
  obs.Begin();
  RunReport report("shard_build");
  report.set_threads(ResolveThreadCount(
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt64("threads")))));
  ShardBuildOptions options;
  options.num_shards = static_cast<uint32_t>(flags.GetInt64("shards"));
  options.num_threads =
      static_cast<uint32_t>(std::max<int64_t>(1, flags.GetInt64("threads")));
  options.spill_buffer_bytes = static_cast<size_t>(
      std::max<int64_t>(4, flags.GetInt64("spill-buffer-kb")) * 1024);
  options.keep_spill = flags.GetBool("keep-spill");
  options.include_wcc_index = flags.GetBool("wcc-index");
  TPIIN_ASSIGN_OR_RETURN(
      ShardManifest manifest,
      BuildShards(flags.GetString("data"), flags.GetString("out"), options,
                  &report));
  size_t live = 0;
  uint64_t bytes = 0;
  for (const ShardEntry& entry : manifest.shards) {
    if (entry.empty) continue;
    ++live;
    bytes += entry.snapshot_bytes;
  }
  out << "sharded build written to " << flags.GetString("out") << ": "
      << live << " of " << manifest.num_shards << " shards populated, "
      << manifest.num_persons << " persons, " << manifest.num_companies
      << " companies, " << bytes << " snapshot bytes\n";
  out << "cross-shard trades: " << manifest.cross_trade_rows << " rows, "
      << manifest.cross_trade_pairs << " distinct pairs\n";
  return obs.Finish(&report, out);
}

// `tpiin shard detect`: per-shard Algorithm 1 + scoring, one result
// file per shard (budget degradation maps to exit code 2, like detect).
Status RunShardDetect(const std::vector<std::string>& args,
                      std::ostream& out, int* exit_code) {
  FlagParser flags;
  flags.DefineString("dir", "", "sharded build directory");
  flags.DefineInt64("threads", 1, "threads inside one shard's detection");
  flags.DefineInt64("shard-parallel", 1, "shards detected concurrently");
  flags.DefineString("report", "", "machine-readable run report (JSON)");
  flags.DefineString("trace-out", "",
                     "Chrome trace_event JSON (chrome://tracing)");
  DefineBudgetFlags(flags);
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("dir").empty()) {
    return Status::InvalidArgument("shard detect requires --dir=DIR");
  }
  ObsOutputs obs(flags);
  obs.Begin();
  RunReport report("shard_detect");
  report.set_threads(ResolveThreadCount(
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt64("threads")))));
  ShardDetectOptions options;
  options.num_threads =
      static_cast<uint32_t>(std::max<int64_t>(1, flags.GetInt64("threads")));
  options.shard_parallel = static_cast<uint32_t>(
      std::max<int64_t>(1, flags.GetInt64("shard-parallel")));
  options.budget = BudgetFromFlags(flags);
  TPIIN_ASSIGN_OR_RETURN(
      ShardDetectStats stats,
      DetectShards(flags.GetString("dir"), options, &report));
  out << "detected " << stats.shards_detected << " shard(s): "
      << stats.groups << " suspicious groups\n";
  if (stats.degraded) {
    out << "WARNING: results are partial — at least one shard hit its run "
           "budget (exit code 2)\n";
    if (exit_code != nullptr) *exit_code = 2;
  }
  return obs.Finish(&report, out);
}

// `tpiin shard merge`: fold per-shard results into the globally ranked
// report (byte-identical to `detect --out`'s ranked.txt).
Status RunShardMerge(const std::vector<std::string>& args,
                     std::ostream& out, int* exit_code) {
  FlagParser flags;
  flags.DefineString("dir", "", "sharded build directory");
  flags.DefineString("out", "", "merged ranked report file");
  flags.DefineString("report", "", "machine-readable run report (JSON)");
  flags.DefineString("trace-out", "",
                     "Chrome trace_event JSON (chrome://tracing)");
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("dir").empty() || flags.GetString("out").empty()) {
    return Status::InvalidArgument(
        "shard merge requires --dir=DIR --out=FILE");
  }
  ObsOutputs obs(flags);
  obs.Begin();
  RunReport report("shard_merge");
  TPIIN_ASSIGN_OR_RETURN(
      ShardMergeStats stats,
      MergeShards(flags.GetString("dir"), flags.GetString("out"), &report));
  const CanonicalSummary& s = stats.summary;
  out << "merged " << stats.shards_merged << " shard(s) into "
      << flags.GetString("out") << ": " << s.suspicious_trades + s.intra
      << " suspicious of " << s.total_trading_arcs + s.intra
      << " trading relationships\n";
  if (s.degraded) {
    out << "WARNING: merged results are partial — a shard ran under a "
           "binding budget (exit code 2)\n";
    if (exit_code != nullptr) *exit_code = 2;
  }
  return obs.Finish(&report, out);
}

// Signal wiring for `tpiin serve`: SIGINT/SIGTERM kick the running
// server's wake pipe (async-signal-safe) so it drains and exits
// cleanly. SIGHUP does two things, both async-signal-safe: every live
// JSON log sink reopens its file (the logrotate idiom: rename, signal,
// keep writing) and the server revalidates + hot-reloads its snapshot
// path (a no-op when the file's content is unchanged, so a pure
// logrotate SIGHUP does not churn generations). Handlers are restored
// on return, so an in-process caller (tests driving RunCli) gets its
// dispositions back — and the sinks outlive the handler window.
void ServeSignalHandler(int) { Server::RequestShutdownFromSignal(); }
void ServeHupHandler(int) {
  JsonLogSink::RequestReopenAll();
  Server::RequestReloadFromSignal();
}

class ScopedServeSignals {
 public:
  ScopedServeSignals() {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = ServeSignalHandler;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, &old_int_);
    sigaction(SIGTERM, &action, &old_term_);
    action.sa_handler = ServeHupHandler;
    sigaction(SIGHUP, &action, &old_hup_);
  }
  ~ScopedServeSignals() {
    sigaction(SIGINT, &old_int_, nullptr);
    sigaction(SIGTERM, &old_term_, nullptr);
    sigaction(SIGHUP, &old_hup_, nullptr);
  }

 private:
  struct sigaction old_int_;
  struct sigaction old_term_;
  struct sigaction old_hup_;
};

// `tpiin serve`: open a snapshot once, answer newline-delimited JSON
// queries over TCP until SIGINT/SIGTERM, then drain and exit (0 clean,
// 2 when any response was budget-degraded).
Status RunServe(const std::vector<std::string>& args, std::ostream& out,
                int* exit_code) {
  FlagParser flags;
  flags.DefineString("snapshot", "",
                     "binary TPIIN snapshot (written by `tpiin build`)");
  flags.DefineString("host", "127.0.0.1",
                     "IPv4 address to bind (loopback by default)");
  flags.DefineInt64("port", 0, "TCP port (0 = ephemeral; see --port-file)");
  flags.DefineString("port-file", "",
                     "write the bound port here (scripts using --port=0)");
  flags.DefineInt64("threads", 0,
                    "detector threads per request (0 = auto-detect)");
  flags.DefineInt64("max-inflight", 4,
                    "requests executing concurrently; beyond this they "
                    "queue");
  flags.DefineInt64("max-queue", 16,
                    "queued connections beyond max-inflight; further "
                    "connects are answered busy");
  flags.DefineInt64("cache-entries", 256,
                    "per-subTPIIN rescore result cache capacity (0 = off)");
  flags.DefineInt64("bundle-cache-entries", 4,
                    "full detection+scoring bundle cache capacity (0 = "
                    "off)");
  flags.DefineInt64("idle-timeout-ms", 30000,
                    "close a connection idle this long");
  flags.DefineInt64("line-deadline-ms", 10000,
                    "a started request line must complete within this "
                    "(slow-loris guard; 0 = off)");
  flags.DefineInt64("write-deadline-ms", 30000,
                    "per-send stall budget before a non-draining client "
                    "is dropped (0 = off)");
  flags.DefineInt64("request-deadline-ms", 0,
                    "hard per-request wall-clock ceiling; a truncated "
                    "request answers degraded (0 = off)");
  flags.DefineInt64("drain-ms", 10000,
                    "graceful-drain budget for in-flight requests at "
                    "shutdown");
  flags.DefineBool("verify", true, "verify snapshot checksums at open");
  flags.DefineString("report", "",
                     "write the final stats report (JSON) at shutdown");
  flags.DefineString("access-log", "",
                     "NDJSON access log, one event per request "
                     "('-' = stderr; SIGHUP reopens the file)");
  flags.DefineString("trace-out", "",
                     "write a Chrome trace of live traffic at shutdown");
  flags.DefineString("metrics-out", "",
                     "Prometheus text snapshot, rewritten atomically "
                     "every --metrics-interval-ms");
  flags.DefineInt64("metrics-interval-ms", 5000,
                    "period of the --metrics-out snapshot");
  flags.DefineInt64("slow-requests", 8,
                    "slow-request ring capacity (the `slow` verb; 0 = "
                    "off)");
  DefineBudgetFlags(flags);
  TPIIN_RETURN_IF_ERROR(ParseFlags(flags, args));
  if (flags.GetString("snapshot").empty()) {
    return Status::InvalidArgument("serve requires --snapshot=FILE");
  }

  ServeOptions options;
  options.snapshot_path = flags.GetString("snapshot");
  options.host = flags.GetString("host");
  options.port = static_cast<uint16_t>(
      std::max<int64_t>(0, std::min<int64_t>(65535, flags.GetInt64("port"))));
  options.max_inflight = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt64("max-inflight")));
  options.max_queue = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt64("max-queue")));
  options.idle_timeout_seconds = flags.GetInt64("idle-timeout-ms") / 1e3;
  options.line_deadline_seconds = flags.GetInt64("line-deadline-ms") / 1e3;
  options.write_deadline_seconds = flags.GetInt64("write-deadline-ms") / 1e3;
  options.service.request_deadline_seconds =
      flags.GetInt64("request-deadline-ms") / 1e3;
  options.drain_seconds = flags.GetInt64("drain-ms") / 1e3;
  options.verify_checksums = flags.GetBool("verify");
  options.service.threads =
      static_cast<uint32_t>(std::max<int64_t>(0, flags.GetInt64("threads")));
  options.service.cache_entries = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt64("cache-entries")));
  options.service.bundle_cache_entries = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt64("bundle-cache-entries")));
  options.service.default_budget = BudgetFromFlags(flags);
  options.access_log_path = flags.GetString("access-log");
  options.trace_out_path = flags.GetString("trace-out");
  options.metrics_out_path = flags.GetString("metrics-out");
  options.metrics_interval_seconds =
      std::max<int64_t>(100, flags.GetInt64("metrics-interval-ms")) / 1e3;
  options.slow_requests = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt64("slow-requests")));

  TPIIN_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
                         Server::Start(options));

  // Handlers go in the moment the server is accepting, ahead of the
  // port-file/readiness I/O: a SIGINT/SIGTERM in that window must
  // drain and report, not kill the process on the default disposition.
  ScopedServeSignals signals;

  if (!flags.GetString("port-file").empty()) {
    TPIIN_RETURN_IF_ERROR(
        WriteFileAtomic(flags.GetString("port-file"),
                        StringPrintf("%u\n", server->port())));
  }

  // Readiness line, flushed before blocking: scripts wait for it.
  {
    const std::shared_ptr<const SnapshotGeneration> generation =
        server->CurrentGeneration();
    out << "serving on " << server->host() << ":" << server->port()
        << " (snapshot " << options.snapshot_path << ", crc "
        << StringPrintf("%08x", generation->crc()) << ", "
        << generation->net().NumNodes() << " nodes, "
        << generation->net().NumArcs() << " arcs)\n";
    out.flush();
  }

  const ServeSummary summary = server->Wait();

  if (!flags.GetString("report").empty()) {
    if (!server->BuildStatsReport().WriteJson(flags.GetString("report"))) {
      return Status::IOError("cannot write report to " +
                             flags.GetString("report"));
    }
    out << "run report written to " << flags.GetString("report") << "\n";
  }
  out << "shutdown: " << summary.connections_accepted << " connection(s), "
      << summary.requests << " request(s) — " << summary.ok << " ok, "
      << summary.degraded << " degraded, " << summary.busy << " busy, "
      << summary.errors << " error(s)\n";
  if (summary.degraded > 0) {
    out << "WARNING: some responses were budget-degraded (exit code 2)\n";
  }
  if (exit_code != nullptr) *exit_code = summary.ExitCode();
  return Status::OK();
}

Status RunShardCmd(const std::vector<std::string>& args, std::ostream& out,
                   int* exit_code) {
  if (args.empty()) {
    return Status::InvalidArgument(
        "usage: tpiin shard build|detect|merge [flags]");
  }
  const std::string& sub = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (sub == "build") return RunShardBuild(rest, out);
  if (sub == "detect") return RunShardDetect(rest, out, exit_code);
  if (sub == "merge") return RunShardMerge(rest, out, exit_code);
  return Status::InvalidArgument("unknown shard subcommand: " + sub +
                                 " (expected build, detect, or merge)");
}

}  // namespace

std::string CliUsage() {
  return
      "tpiin <command> [flags]\n"
      "\n"
      "Commands:\n"
      "  gen     generate a synthetic province dataset (CSV)\n"
      "          --out=DIR [--companies=N] [--p=X] [--seed=S] [--plant=K]\n"
      "  fuse    fuse a CSV dataset into a TPIIN edge list\n"
      "          --data=DIR --out=FILE [--threads=T] [--report=FILE]\n"
      "          [--trace-out=FILE]\n"
      "  build   fuse once and persist a binary snapshot (mmap-able by\n"
      "          every command below via --snapshot)\n"
      "          (--data=DIR | --net=FILE) --out=FILE [--threads=T]\n"
      "          [--wcc-index=false] [--report=FILE] [--trace-out=FILE]\n"
      "  snapshot info FILE [--verify=false]\n"
      "          print a snapshot's header, section directory and\n"
      "          checksums without mapping the graph sections\n"
      "  detect  mine suspicious tax evasion groups\n"
      "          (--net=FILE | --snapshot=FILE) [--out=DIR] [--threads=T]\n"
      "          [--top=K] [--json=FILE]\n"
      "          [--report=FILE] [--trace-out=FILE]\n"
      "          [--deadline-ms=N] [--sub-slice-ms=N] [--max-sub-nodes=N]\n"
      "          [--max-sub-arcs=N]   (run budget; partial results exit 2)\n"
      "  explain per-company dossier (IATs, antecedents, proof chains)\n"
      "          (--net=FILE | --snapshot=FILE) --company=LABEL\n"
      "  screen  classify candidate trading relationships (streaming)\n"
      "          (--net=FILE | --snapshot=FILE)\n"
      "          (--seller=L --buyer=L | --pairs=CSV)\n"
      "  stats   print layer statistics of a TPIIN\n"
      "          (--net=FILE | --snapshot=FILE)\n"
      "  shard build   out-of-core sharded build: plan, route, fuse one\n"
      "          shard at a time (peak RSS ~ largest shard)\n"
      "          --data=DIR --out=DIR [--shards=N] [--threads=T]\n"
      "          [--spill-buffer-kb=N] [--keep-spill] [--wcc-index=false]\n"
      "          [--report=FILE] [--trace-out=FILE]\n"
      "  shard detect  mine every shard, one result file per shard\n"
      "          --dir=DIR [--threads=T] [--shard-parallel=N]\n"
      "          [--deadline-ms=N ...budget flags] [--report=FILE]\n"
      "  shard merge   fold shard results into one globally ranked\n"
      "          report, byte-identical to an unsharded detect --out\n"
      "          --dir=DIR --out=FILE [--report=FILE]\n"
      "  serve   long-lived query daemon over a loaded snapshot:\n"
      "          newline-delimited JSON over TCP (verbs: groups, explain,\n"
      "          rescore, stats, slow, metrics, healthz, reload);\n"
      "          groups/explain bytes match the batch commands exactly\n"
      "          --snapshot=FILE [--host=ADDR] [--port=N] [--port-file=F]\n"
      "          [--threads=T] [--max-inflight=N] [--max-queue=N]\n"
      "          [--cache-entries=N] [--bundle-cache-entries=N]\n"
      "          [--idle-timeout-ms=N] [--line-deadline-ms=N]\n"
      "          [--write-deadline-ms=N] [--request-deadline-ms=N]\n"
      "          [--drain-ms=N] [--report=FILE]\n"
      "          [--access-log=FILE] [--trace-out=FILE]\n"
      "          [--metrics-out=FILE] [--metrics-interval-ms=N]\n"
      "          [--slow-requests=N] [--deadline-ms=N ...budget flags]\n"
      "          (SIGINT/SIGTERM drain in-flight requests; SIGHUP\n"
      "          reopens log files and hot-reloads the snapshot after\n"
      "          revalidating it — a corrupt replacement is rejected and\n"
      "          the old generation keeps serving; exit 0 clean,\n"
      "          1 startup failure, 2 served degraded results)\n"
      "  export  render a TPIIN (or one company's neighborhood) for\n"
      "          Graphviz/Gephi\n"
      "          (--net=FILE | --snapshot=FILE) --format=dot|gexf "
      "--out=FILE\n"
      "          [--ego=LABEL --depth=N]\n"
      "\n"
      "Global flags:\n"
      "  --log-level=debug|info|warning|error   minimum log severity\n"
      "                                         (default info)\n"
      "  --log-json=FILE     upgrade all log lines to NDJSON events\n"
      "                      appended to FILE ('-' = stderr)\n"
      "  --failpoints=SPEC   inject faults at named sites (testing);\n"
      "                      e.g. 'io.csv.open:ioerror,*:p0.01@42'\n"
      "\n"
      "Exit codes: 0 success, 1 error, 2 completed with partial results\n"
      "(a --deadline-ms/--max-sub-* budget bound).\n";
}

namespace {

Status DispatchCli(const std::vector<std::string>& args, std::ostream& out,
                   int* exit_code) {
  std::vector<std::string> mutable_args = args;
  TPIIN_RETURN_IF_ERROR(ApplyLogLevelFlag(mutable_args));
  TPIIN_RETURN_IF_ERROR(ApplyLogJsonFlag(mutable_args));
  TPIIN_RETURN_IF_ERROR(ApplyFailpointsFlag(mutable_args));
  if (mutable_args.empty() || mutable_args[0] == "help" ||
      mutable_args[0] == "--help") {
    out << CliUsage();
    return Status::OK();
  }
  const std::string& command = mutable_args[0];
  std::vector<std::string> rest(mutable_args.begin() + 1,
                                mutable_args.end());
  if (command == "gen") return RunGen(rest, out);
  if (command == "fuse") return RunFuse(rest, out);
  if (command == "build") return RunBuild(rest, out);
  if (command == "snapshot") return RunSnapshotCmd(rest, out);
  if (command == "detect") return RunDetect(rest, out, exit_code);
  if (command == "shard") return RunShardCmd(rest, out, exit_code);
  if (command == "serve") return RunServe(rest, out, exit_code);
  if (command == "explain") return RunExplain(rest, out);
  if (command == "screen") return RunScreen(rest, out);
  if (command == "stats") return RunStats(rest, out);
  if (command == "export") return RunExport(rest, out);
  return Status::InvalidArgument("unknown command: " + command + "\n" +
                                 CliUsage());
}

}  // namespace

Status RunCli(const std::vector<std::string>& args, std::ostream& out,
              int* exit_code) {
  int code = 0;
  Status status = DispatchCli(args, out, &code);
  if (!status.ok()) code = 1;
  if (exit_code != nullptr) *exit_code = code;
  return status;
}

}  // namespace tpiin

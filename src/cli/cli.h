#ifndef TPIIN_CLI_CLI_H_
#define TPIIN_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace tpiin {

/// The `tpiin` command-line tool, as a library so every command is unit
/// testable. Subcommands:
///
///   gen     --out=DIR [--companies=N] [--p=X] [--seed=S] [--plant=K]
///           Generate a synthetic province and write its CSV dataset.
///   fuse    --data=DIR --out=FILE
///           Load a CSV dataset, run multi-network fusion, write the
///           TPIIN edge list.
///   detect  --net=FILE [--out=DIR] [--threads=T] [--top=K]
///           Mine suspicious groups from an edge-list TPIIN; optionally
///           write susGroup/susTrade/report files; print the top-K
///           scored trading relationships.
///   stats   --net=FILE
///           Degree statistics of the antecedent/trading layers.
///   serve   --snapshot=FILE [--port=N] ...
///           Long-lived query daemon: newline-delimited JSON over TCP
///           (groups, explain, rescore, stats, healthz), answers
///           byte-identical to the batch commands; drains on
///           SIGINT/SIGTERM.
///   export  --net=FILE --format=dot|gexf --out=FILE
///           Render the TPIIN for Graphviz or Gephi.
///
/// `RunCli` dispatches argv and writes human-readable output to `out`;
/// errors are reported on the returned Status (the binary prints them to
/// stderr and exits non-zero).
///
/// When `exit_code` is non-null it receives the process exit code:
///   0  success
///   1  error (the returned Status is non-OK)
///   2  completed, but degraded — a RunBudget limit bound (deadline hit
///      or subTPIINs skipped by a cap) and the results are partial.
Status RunCli(const std::vector<std::string>& args, std::ostream& out,
              int* exit_code = nullptr);

/// Renders the top-level usage text.
std::string CliUsage();

}  // namespace tpiin

#endif  // TPIIN_CLI_CLI_H_

#include "datagen/worked_example.h"

#include "common/logging.h"

namespace tpiin {

RawDataset BuildWorkedExampleDataset() {
  RawDataset data;
  // Persons of Fig. 7. Roles: legal persons as CEOs, directors as D.
  PersonId l6 = data.AddPerson("L6", kRoleCeo);
  PersonId lb = data.AddPerson("LB", kRoleCeo);
  PersonId l2 = data.AddPerson("L2", kRoleCeo);
  PersonId l3 = data.AddPerson("L3", kRoleCeo);
  PersonId l4 = data.AddPerson("L4", kRoleCeo);
  PersonId l5 = data.AddPerson("L5", kRoleCeo);
  PersonId b1 = data.AddPerson("B1", kRoleDirector);
  PersonId b5 = data.AddPerson("B5", kRoleDirector);
  PersonId b6 = data.AddPerson("B6", kRoleDirector);

  CompanyId c1 = data.AddCompany("C1");
  CompanyId c2 = data.AddCompany("C2");
  CompanyId c3 = data.AddCompany("C3");
  CompanyId c4 = data.AddCompany("C4");
  CompanyId c5 = data.AddCompany("C5");
  CompanyId c6 = data.AddCompany("C6");
  CompanyId c7 = data.AddCompany("C7");
  CompanyId c8 = data.AddCompany("C8");

  // Interdependence: the kinship L6-LB and the interlocking B5-B6 that
  // contract into the syndicates L1 and B2 of Fig. 8.
  data.AddInterdependence(l6, lb, InterdependenceKind::kKinship);
  data.AddInterdependence(b5, b6, InterdependenceKind::kInterlocking);

  // Legal-person links (exactly one per company). The merged syndicate
  // {L6+LB} influences C1, C2 and C4 as in Fig. 8.
  data.AddInfluence(lb, c1, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l6, c2, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l2, c3, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l6, c4, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l3, c5, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l4, c6, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l4, c7, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l5, c8, InfluenceKind::kCeoOf, true);

  // Director links.
  data.AddInfluence(b1, c5, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(b1, c6, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(b5, c7, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(b6, c8, InfluenceKind::kDirectorOf, false);

  // Investment arcs (part of the antecedent network).
  data.AddInvestment(c1, c3, 0.8);
  data.AddInvestment(c2, c5, 0.6);

  // Trading relationships of Fig. 8.
  data.AddTrade(c5, c6);
  data.AddTrade(c5, c7);
  data.AddTrade(c3, c5);
  data.AddTrade(c7, c8);
  data.AddTrade(c8, c4);

  TPIIN_CHECK(data.Validate().ok());
  return data;
}

Tpiin BuildWorkedExampleTpiin() {
  TpiinBuilder builder;
  NodeId l1 = builder.AddPersonNode("L1");  // Syndicate {L6+LB}.
  NodeId l2 = builder.AddPersonNode("L2");
  NodeId l3 = builder.AddPersonNode("L3");
  NodeId l4 = builder.AddPersonNode("L4");
  NodeId l5 = builder.AddPersonNode("L5");
  NodeId b1 = builder.AddPersonNode("B1");
  NodeId b2 = builder.AddPersonNode("B2");  // Syndicate {B5+B6}.
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  NodeId c4 = builder.AddCompanyNode("C4");
  NodeId c5 = builder.AddCompanyNode("C5");
  NodeId c6 = builder.AddCompanyNode("C6");
  NodeId c7 = builder.AddCompanyNode("C7");
  NodeId c8 = builder.AddCompanyNode("C8");

  builder.AddInfluenceArc(l1, c1);
  builder.AddInfluenceArc(l1, c2);
  builder.AddInfluenceArc(l1, c4);
  builder.AddInfluenceArc(l2, c3);
  builder.AddInfluenceArc(l3, c5);
  builder.AddInfluenceArc(l4, c6);
  builder.AddInfluenceArc(l4, c7);
  builder.AddInfluenceArc(l5, c8);
  builder.AddInfluenceArc(b1, c5);
  builder.AddInfluenceArc(b1, c6);
  builder.AddInfluenceArc(b2, c7);
  builder.AddInfluenceArc(b2, c8);
  builder.AddInfluenceArc(c1, c3);
  builder.AddInfluenceArc(c2, c5);

  builder.AddTradingArc(c5, c6);
  builder.AddTradingArc(c5, c7);
  builder.AddTradingArc(c3, c5);
  builder.AddTradingArc(c7, c8);
  builder.AddTradingArc(c8, c4);

  Result<Tpiin> net = builder.Build();
  TPIIN_CHECK(net.ok()) << net.status().ToString();
  return std::move(net).value();
}

}  // namespace tpiin

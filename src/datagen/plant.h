#ifndef TPIIN_DATAGEN_PLANT_H_
#define TPIIN_DATAGEN_PLANT_H_

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "model/dataset.h"

namespace tpiin {

/// The IAT schemes of the paper's case studies (§3.1), used to plant
/// trades with known-suspicious structure.
enum class SchemeKind : uint8_t {
  /// Case 2: one company holds shares of both trade parties.
  kSameInvestor = 0,
  /// Case 1: the legal persons (or other influencers) of the two parties
  /// are linked by kinship/interlocking, i.e. merge into one syndicate.
  kLinkedPersons = 1,
  /// Degenerate but common: both parties share the very same influencer.
  kSharedInfluencer = 2,
  /// Case-1 variant: an investor sells to (or buys from) a company it
  /// influences transitively.
  kInvestorChain = 3,
};

std::string_view SchemeKindName(SchemeKind kind);

/// One planted interest-affiliated trade with its scheme. Every planted
/// trade is suspicious by construction (the two parties provably share a
/// common antecedent after fusion), so a sound+complete detector must
/// flag all of them — the accuracy oracle used in tests.
struct PlantedScheme {
  SchemeKind kind = SchemeKind::kSameInvestor;
  CompanyId seller = 0;
  CompanyId buyer = 0;
};

/// Plants up to `count` scheme trades into `dataset` (appending to its
/// trade table) chosen from the structures present in the relationship
/// data. Returns the planted records; fewer than `count` if the dataset
/// offers fewer eligible structures.
std::vector<PlantedScheme> PlantSuspiciousTrades(RawDataset& dataset,
                                                 Rng& rng, size_t count);

}  // namespace tpiin

#endif  // TPIIN_DATAGEN_PLANT_H_

#include "datagen/case_studies.h"

#include "common/logging.h"

namespace tpiin {

CaseStudy BuildCaseStudy1() {
  CaseStudy cs;
  cs.title = "Case 1: brothers behind a captive producer (Fig. 1)";
  cs.narrative =
      "Biochemical producer C3 in Zhejiang is fully held by C1 in "
      "Shanghai (its raw-material supplier) and sells all output to C2. "
      "The legal persons L1 (C1) and L2 (C2) are brothers; C3 booked "
      "losses every year since 2005, violating the arm's length "
      "principle.";
  RawDataset& data = cs.dataset;

  PersonId l1 = data.AddPerson("L1", kRoleCeo);
  PersonId l2 = data.AddPerson("L2", kRoleCeo);
  PersonId l3 = data.AddPerson("L3", kRoleCeo);  // C3's registered LP.
  CompanyId c1 = data.AddCompany("C1");
  CompanyId c2 = data.AddCompany("C2");
  CompanyId c3 = data.AddCompany("C3");

  data.AddInterdependence(l1, l2, InterdependenceKind::kKinship);
  data.AddInfluence(l1, c1, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l2, c2, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l3, c3, InfluenceKind::kCeoOf, true);
  data.AddInvestment(c1, c3, 1.0);  // C1 holds all shares of C3.
  data.AddTrade(c1, c3);            // Raw materials downstream.
  data.AddTrade(c3, c2);            // All products to C2.

  cs.expected_seller = c3;
  cs.expected_buyer = c2;
  // TNMM facts: the TAO rebuilt C3's taxable income from the average net
  // margin of comparable producers.
  cs.revenue = 638.0e6;      // Declared related-party revenue (RMB).
  cs.normal_margin = 0.04;   // Comparable producers' net margin.
  cs.expected_adjustment = 25.52e6;
  cs.adjustment_method = "TNMM";

  TPIIN_CHECK(data.Validate().ok());
  return cs;
}

CaseStudy BuildCaseStudy2() {
  CaseStudy cs;
  cs.title = "Case 2: common investor behind an export discount (Fig. 2a)";
  cs.narrative =
      "C5 (mainland) sold 5000 smart meters at $20 each to C6 "
      "(Hong Kong) while charging domestic customers roughly $30. "
      "C4 holds shares of both C5 and C6.";
  RawDataset& data = cs.dataset;

  PersonId l4 = data.AddPerson("L4", kRoleCeo);
  PersonId l5 = data.AddPerson("L5", kRoleCeo);
  PersonId l6 = data.AddPerson("L6", kRoleCeo);
  CompanyId c4 = data.AddCompany("C4");
  CompanyId c5 = data.AddCompany("C5");
  CompanyId c6 = data.AddCompany("C6");

  data.AddInfluence(l4, c4, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l5, c5, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l6, c6, InfluenceKind::kCeoOf, true);
  data.AddInvestment(c4, c5, 0.4);
  data.AddInvestment(c4, c6, 0.35);
  data.AddTrade(c5, c6);

  cs.expected_seller = c5;
  cs.expected_buyer = c6;
  cs.transfer_price = 20.0;
  cs.market_price = 30.0;
  cs.quantity = 5000;
  cs.expected_adjustment = 5000.0;  // The TAO's tax adjustment (USD).
  cs.adjustment_method = "CUP";

  TPIIN_CHECK(data.Validate().ok());
  return cs;
}

CaseStudy BuildCaseStudy3() {
  CaseStudy cs;
  cs.title = "Case 3: interlocked controlling directors (Fig. 2b)";
  cs.narrative =
      "C7 (China) sold BMX worth 90M RMB to C8 (US). B3 and B4 hold "
      "over 51% of C7 and C8 respectively and, together with B5, signed "
      "an acting-in-concert agreement over their joint venture C9 — a "
      "director interlocking.";
  RawDataset& data = cs.dataset;

  PersonId b3 = data.AddPerson(
      "B3", static_cast<PersonRoles>(kRoleDirector | kRoleShareholder));
  PersonId b4 = data.AddPerson(
      "B4", static_cast<PersonRoles>(kRoleDirector | kRoleShareholder));
  PersonId b5 = data.AddPerson(
      "B5", static_cast<PersonRoles>(kRoleDirector | kRoleShareholder));
  PersonId l7 = data.AddPerson("L7", kRoleCeo);
  PersonId l8 = data.AddPerson("L8", kRoleCeo);
  PersonId l9 = data.AddPerson("L9", kRoleCeo);
  CompanyId c7 = data.AddCompany("C7");
  CompanyId c8 = data.AddCompany("C8");
  CompanyId c9 = data.AddCompany("C9");

  // The acting-in-concert agreement interlocks the three directors.
  data.AddInterdependence(b3, b4, InterdependenceKind::kInterlocking);
  data.AddInterdependence(b4, b5, InterdependenceKind::kInterlocking);
  data.AddInterdependence(b3, b5, InterdependenceKind::kInterlocking);

  data.AddInfluence(l7, c7, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l8, c8, InfluenceKind::kCeoOf, true);
  data.AddInfluence(l9, c9, InfluenceKind::kCeoOf, true);
  data.AddInfluence(b3, c7, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(b4, c8, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(b3, c9, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(b4, c9, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(b5, c9, InfluenceKind::kDirectorOf, false);

  data.AddTrade(c7, c8);

  cs.expected_seller = c7;
  cs.expected_buyer = c8;
  // Cost-plus facts: cost 80M, selling expense 20M, normal profit rate 9%.
  cs.revenue = 90.0e6;
  cs.cost = 80.0e6;
  cs.expense = 20.0e6;
  cs.normal_margin = 0.09;
  cs.expected_adjustment = 19.89e6;
  cs.adjustment_method = "cost-plus";

  TPIIN_CHECK(data.Validate().ok());
  return cs;
}

std::vector<CaseStudy> BuildAllCaseStudies() {
  return {BuildCaseStudy1(), BuildCaseStudy2(), BuildCaseStudy3()};
}

}  // namespace tpiin

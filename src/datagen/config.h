#ifndef TPIIN_DATAGEN_CONFIG_H_
#define TPIIN_DATAGEN_CONFIG_H_

#include <cstdint>
#include <vector>

namespace tpiin {

/// Parameters of the synthetic province generator.
///
/// The generator substitutes the paper's withheld provincial data (§5.1):
/// it reproduces the published population (776 directors, 1350 legal
/// persons, 2452 companies) and a business-group structure calibrated so
/// the derived quantities the paper reports — about 6.3k antecedent arcs
/// and roughly 5% of random trading arcs having a common antecedent —
/// come out in the same range. See DESIGN.md §2 for the substitution
/// argument and EXPERIMENTS.md for the calibration numbers.
struct ProvinceConfig {
  uint64_t seed = 20170402;

  // Population (paper defaults).
  uint32_t num_companies = 2452;
  uint32_t num_legal_persons = 1350;
  uint32_t num_directors = 776;

  /// Sizes of the large business groups (conglomerates). Real provincial
  /// data is dominated by a few very large ownership networks; the
  /// default list is calibrated against Table 1's ~5% suspicious-trade
  /// rate. Remaining companies fall into small groups of 1..
  /// `small_group_max` companies.
  std::vector<uint32_t> large_group_sizes = {465, 320, 235, 185, 150, 120,
                                             95,  75,  60,  45,  40,  30};
  uint32_t small_group_max = 3;

  /// Expected number of non-LP director links per company (each company
  /// always has exactly one legal-person link on top of these).
  double director_links_per_company = 1.0;

  /// Probability of chaining two consecutive persons of a group with an
  /// interdependence edge. Higher values merge more persons into
  /// syndicates, increasing common-antecedent coverage within groups.
  double person_chain_link_prob = 0.15;

  /// Fraction of interdependence edges that are kinship (the rest are
  /// director interlocking).
  double kinship_fraction = 0.5;

  /// Probability that a non-first company of a group receives an
  /// intra-group investment arc from an earlier group member (builds the
  /// investment DAG).
  double investment_arc_prob = 0.88;

  /// Probability that an invested company additionally receives a second
  /// investor (creates diamonds in the investment DAG, i.e. multiple
  /// proof trails per pair — the paper's complex groups).
  double second_investor_prob = 0.2;

  /// Probability that a subsidiary registers its investor's legal person
  /// as its own LP (real holding structures reuse representatives, which
  /// gives the antecedent both a direct arc and a chain path from the
  /// same person syndicate).
  double lp_follow_investor_prob = 0.35;

  /// Number of investment cycles injected (creates strongly connected
  /// shareholding circles, exercising the SCC contraction). The paper's
  /// province had none; tests and the ablation benches use nonzero
  /// values.
  uint32_t num_investment_cycles = 0;

  /// Cross-group kinship links (merges otherwise-separate groups into
  /// one antecedent component occasionally, as real families do).
  uint32_t cross_group_person_links = 8;

  /// Trading layer: per ordered company pair existence probability, the
  /// paper's "trading probability" swept over [0.002, 0.1] in Table 1.
  double trading_probability = 0.002;
  bool generate_trading = true;
};

/// Scaled-down configuration for unit tests and property sweeps.
ProvinceConfig SmallProvinceConfig(uint32_t num_companies, uint64_t seed);

/// Proportionally scales `base`'s population to `factor` times its size:
/// companies, legal persons and directors scale together (with the same
/// floors the scaling bench always used: 4 legal persons, 2 directors),
/// and the large-group size list scales so the group-size *distribution*
/// is preserved. For factor <= 1 each group shrinks (floor 4 companies);
/// for factor > 1 the base list is *tiled* — repeated whole plus one
/// scaled remainder — rather than inflated, so the largest single
/// business group (and with it the largest antecedent WCC, the unit of
/// shard balance and of per-shard peak memory) stays bounded by the base
/// configuration no matter how far the population grows. factor == 1
/// returns `base` unchanged. Used by bench_scaling's ladders and the
/// sharded million-company rungs.
ProvinceConfig ScaleConfig(const ProvinceConfig& base, double factor);

/// The Table 1 / Figs 11-16 configuration (paper population).
ProvinceConfig PaperProvinceConfig(uint64_t seed = 20170402);

}  // namespace tpiin

#endif  // TPIIN_DATAGEN_CONFIG_H_

#ifndef TPIIN_DATAGEN_RECEIPTS_H_
#define TPIIN_DATAGEN_RECEIPTS_H_

#include <utility>
#include <vector>

#include "ite/transaction.h"
#include "model/records.h"
#include "store/receipt_store.h"

namespace tpiin {

/// Parameters of the synthetic receipt stream filling a ReceiptStore.
/// Semantics mirror LedgerConfig (honest relations trade near market,
/// IAT relations transfer-price below it), plus a time axis.
struct ReceiptGenConfig {
  uint64_t seed = 11;
  CategoryId num_categories = 12;
  double min_market_price = 10.0;
  double max_market_price = 500.0;
  uint32_t min_receipts = 1;
  uint32_t max_receipts = 5;
  double min_quantity = 10;
  double max_quantity = 1000;
  double honest_price_noise = 0.04;
  double iat_discount_min = 0.20;
  double iat_discount_max = 0.50;
  uint32_t num_days = 365;
};

struct GeneratedReceipts {
  std::vector<Receipt> receipts;
  /// The true per-category market prices the generator drew from —
  /// compare with EstimateMarketTable's reconstruction.
  MarketTable true_market;
  /// Indices (into `receipts`) of deliberately mispriced rows.
  std::vector<size_t> mispriced;
};

/// Generates a receipt stream over `trades`; relationships listed in
/// `iat_pairs` get transfer-priced rows. Deterministic in config.seed.
GeneratedReceipts GenerateReceipts(
    const std::vector<TradeRecord>& trades,
    const std::vector<std::pair<CompanyId, CompanyId>>& iat_pairs,
    const ReceiptGenConfig& config = {});

}  // namespace tpiin

#endif  // TPIIN_DATAGEN_RECEIPTS_H_

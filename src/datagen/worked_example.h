#ifndef TPIIN_DATAGEN_WORKED_EXAMPLE_H_
#define TPIIN_DATAGEN_WORKED_EXAMPLE_H_

#include "fusion/tpiin.h"
#include "model/dataset.h"

namespace tpiin {

/// The paper's worked example, Fig. 7: the un-contracted taxpayer
/// interest interacted network with persons L6, LB, L2..L5, B1, B5, B6
/// and companies C1..C8. Kinship links L6-LB and interlocking B5-B6
/// contract into the syndicates L1 = {L6+LB} and B2 = {B5+B6} of Fig. 8.
RawDataset BuildWorkedExampleDataset();

/// The contracted TPIIN of Fig. 8, built directly via TpiinBuilder with
/// the paper's node labels (L1..L5, B1, B2, C1..C8). Running Algorithm 2
/// on its single subTPIIN reproduces the 15-trail component pattern base
/// of Fig. 10, and matching yields exactly the paper's three suspicious
/// groups: (L1, C1, C2, C3, C5), (B1, C5, C6) and (B2, C7, C8).
Tpiin BuildWorkedExampleTpiin();

}  // namespace tpiin

#endif  // TPIIN_DATAGEN_WORKED_EXAMPLE_H_

#ifndef TPIIN_DATAGEN_CASE_STUDIES_H_
#define TPIIN_DATAGEN_CASE_STUDIES_H_

#include <string>
#include <vector>

#include "model/dataset.h"

namespace tpiin {

/// One of the paper's three investigated IAT tax evasion cases (§3.1,
/// Figs. 1-3), as a relationship dataset plus the economic facts the tax
/// administration office used in the ITE phase.
struct CaseStudy {
  std::string title;
  std::string narrative;
  RawDataset dataset;

  /// The headline interest-affiliated transaction the TAO adjusted.
  CompanyId expected_seller = 0;
  CompanyId expected_buyer = 0;

  /// Economic facts for the ITE phase (unused fields are zero).
  double transfer_price = 0;   // Price charged inside the group.
  double market_price = 0;     // Arm's-length comparable price.
  double quantity = 0;         // Units traded.
  double revenue = 0;          // Declared revenue of the IAT.
  double cost = 0;             // Production cost.
  double expense = 0;          // Selling expense.
  double normal_margin = 0;    // Industry-normal profit margin.

  /// The paper's published adjustment and the method that produced it.
  double expected_adjustment = 0;
  std::string adjustment_method;
};

/// Case 1 (Fig. 1): producer C3 fully held by C1; all output sold to C2;
/// the legal persons of C1 and C2 are brothers. TNMM adjustment of
/// 25.52 million RMB.
CaseStudy BuildCaseStudy1();

/// Case 2 (Fig. 2a): C4 partially owns both C5 (mainland) and C6
/// (Hong Kong); C5 sells smart meters to C6 at $20 against a $30
/// domestic price. CUP adjustment of $5000 x ... = $50,000 total
/// under-invoicing, of which the TAO adjusted $5000 of tax.
CaseStudy BuildCaseStudy2();

/// Case 3 (Fig. 2b): C7 (China) sells BMX to C8 (US); their controlling
/// directors B3 and B4 act in concert with B5 through C9. Cost-plus
/// adjustment of 19.89 million RMB.
CaseStudy BuildCaseStudy3();

/// All three cases in order.
std::vector<CaseStudy> BuildAllCaseStudies();

}  // namespace tpiin

#endif  // TPIIN_DATAGEN_CASE_STUDIES_H_

#ifndef TPIIN_DATAGEN_PROVINCE_DETAIL_H_
#define TPIIN_DATAGEN_PROVINCE_DETAIL_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "model/records.h"
#include "model/roles.h"

namespace tpiin {
namespace datagen_detail {

// Internals shared by the in-memory generator (GenerateProvince) and the
// streaming one (StreamProvinceCsv). The two must stay RNG-call-for-call
// identical — tests/datagen/stream_test.cc checks byte equality of the
// emitted CSVs — so the shared pieces live here rather than being
// duplicated.

// LP-eligible reduced role subclasses (§4.1): everything except the bare
// Director.
constexpr PersonRoles kLpRolePool[] = {
    kRoleCeo,
    static_cast<PersonRoles>(kRoleCeo | kRoleDirector),
    static_cast<PersonRoles>(kRoleCeo | kRoleChairman),
    static_cast<PersonRoles>(kRoleDirector | kRoleChairman),
    kRoleChairman,
    static_cast<PersonRoles>(kRoleCeo | kRoleDirector | kRoleChairman),
};

// Director role pool; the Shareholder flag exercises the 15->7 reduction.
constexpr PersonRoles kDirectorRolePool[] = {
    kRoleDirector,
    static_cast<PersonRoles>(kRoleDirector | kRoleShareholder),
    kRoleShareholder,
};

inline InfluenceKind InfluenceKindForRoles(PersonRoles roles) {
  PersonRoles reduced = ReduceRoles(roles);
  if ((reduced & kRoleCeo) && (reduced & kRoleDirector)) {
    return InfluenceKind::kCeoAndDirectorOf;
  }
  if (reduced & kRoleCeo) return InfluenceKind::kCeoOf;
  if (reduced & kRoleChairman) return InfluenceKind::kChairmanOf;
  return InfluenceKind::kDirectorOf;
}

// Proportional allocation of `total` items over `weights` with the
// largest-remainder method; every bucket gets at least `minimum`.
inline std::vector<uint32_t> Apportion(const std::vector<uint32_t>& weights,
                                       uint32_t total, uint32_t minimum) {
  const size_t n = weights.size();
  std::vector<uint32_t> out(n, minimum);
  TPIIN_CHECK_GE(total, minimum * n);
  uint32_t remaining = total - minimum * static_cast<uint32_t>(n);
  double weight_sum = 0;
  for (uint32_t w : weights) weight_sum += w;
  std::vector<std::pair<double, size_t>> remainders(n);
  uint32_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    double exact = weight_sum == 0
                       ? static_cast<double>(remaining) / n
                       : remaining * (weights[i] / weight_sum);
    uint32_t whole = static_cast<uint32_t>(exact);
    out[i] += whole;
    assigned += whole;
    remainders[i] = {exact - whole, i};
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (uint32_t k = 0; k < remaining - assigned; ++k) {
    ++out[remainders[k % n].second];
  }
  return out;
}

}  // namespace datagen_detail
}  // namespace tpiin

#endif  // TPIIN_DATAGEN_PROVINCE_DETAIL_H_

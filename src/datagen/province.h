#ifndef TPIIN_DATAGEN_PROVINCE_H_
#define TPIIN_DATAGEN_PROVINCE_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "datagen/config.h"
#include "model/dataset.h"

namespace tpiin {

/// A generated province: the relationship dataset plus the business-group
/// partition used to build it (the partition is generator provenance, not
/// something the miner sees).
struct Province {
  RawDataset dataset;
  /// Company ids per business group.
  std::vector<std::vector<CompanyId>> groups;
};

/// Generates a synthetic province per `config` (deterministic in
/// config.seed). Fails if the population constraints are unsatisfiable
/// (fewer legal persons than business groups, etc.). The returned dataset
/// always passes RawDataset::Validate().
Result<Province> GenerateProvince(const ProvinceConfig& config);

/// Directed Erdos-Renyi trading layer: every ordered pair of distinct
/// companies trades with probability `p` (the paper's Gephi random
/// network). O(expected edges) via geometric skipping.
std::vector<TradeRecord> GenerateTradingNetwork(uint32_t num_companies,
                                                double p, Rng& rng);

}  // namespace tpiin

#endif  // TPIIN_DATAGEN_PROVINCE_H_

#include "datagen/province.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/province_detail.h"

namespace tpiin {

using datagen_detail::Apportion;
using datagen_detail::InfluenceKindForRoles;
using datagen_detail::kDirectorRolePool;
using datagen_detail::kLpRolePool;

ProvinceConfig SmallProvinceConfig(uint32_t num_companies, uint64_t seed) {
  ProvinceConfig config;
  config.seed = seed;
  config.num_companies = num_companies;
  config.num_legal_persons = std::max<uint32_t>(2, num_companies / 2);
  config.num_directors = std::max<uint32_t>(1, num_companies / 3);
  config.large_group_sizes.clear();
  if (num_companies >= 12) {
    config.large_group_sizes = {num_companies / 4, num_companies / 6};
  }
  config.cross_group_person_links = num_companies >= 20 ? 2 : 0;
  return config;
}

ProvinceConfig PaperProvinceConfig(uint64_t seed) {
  ProvinceConfig config;
  config.seed = seed;
  return config;
}

ProvinceConfig ScaleConfig(const ProvinceConfig& base, double factor) {
  TPIIN_CHECK(factor > 0) << "scale factor must be positive";
  ProvinceConfig config = base;
  if (factor == 1.0) return config;
  config.num_companies = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             std::llround(base.num_companies * factor)));
  config.num_legal_persons = std::max<uint32_t>(
      4, static_cast<uint32_t>(base.num_legal_persons * factor));
  config.num_directors = std::max<uint32_t>(
      2, static_cast<uint32_t>(base.num_directors * factor));
  config.large_group_sizes.clear();
  if (factor < 1.0) {
    for (uint32_t s : base.large_group_sizes) {
      config.large_group_sizes.push_back(
          std::max<uint32_t>(4, static_cast<uint32_t>(s * factor)));
    }
  } else {
    // Tile: `whole` full copies of the base list keep every group at its
    // base size; the fractional remainder adds one shrunken copy.
    const uint32_t whole = static_cast<uint32_t>(factor);
    const double remainder = factor - whole;
    for (uint32_t copy = 0; copy < whole; ++copy) {
      config.large_group_sizes.insert(config.large_group_sizes.end(),
                                      base.large_group_sizes.begin(),
                                      base.large_group_sizes.end());
    }
    if (remainder > 0) {
      for (uint32_t s : base.large_group_sizes) {
        uint32_t scaled = static_cast<uint32_t>(s * remainder);
        if (scaled >= 4) config.large_group_sizes.push_back(scaled);
      }
    }
  }
  // Tiling may overshoot a small company budget; drop whole groups from
  // the tail until the list fits (GenerateProvince would otherwise stop
  // consuming the list at the first group that no longer fits).
  uint64_t used = 0;
  size_t kept = 0;
  for (uint32_t s : config.large_group_sizes) {
    if (used + s > config.num_companies) break;
    used += s;
    ++kept;
  }
  config.large_group_sizes.resize(kept);
  return config;
}

std::vector<TradeRecord> GenerateTradingNetwork(uint32_t num_companies,
                                                double p, Rng& rng) {
  std::vector<TradeRecord> trades;
  if (num_companies < 2 || p <= 0.0) return trades;
  const uint64_t n = num_companies;
  const uint64_t slots = n * (n - 1);
  if (p >= 1.0) {
    trades.reserve(slots);
    for (uint64_t s = 0; s < slots; ++s) {
      uint32_t i = static_cast<uint32_t>(s / (n - 1));
      uint64_t r = s % (n - 1);
      uint32_t j = static_cast<uint32_t>(r < i ? r : r + 1);
      trades.push_back(TradeRecord{i, j});
    }
    return trades;
  }
  // Geometric skipping: jump over non-edges so cost is O(p * n^2), not
  // O(n^2) Bernoulli draws (matters for the twenty-way Table 1 sweep).
  const double log1mp = std::log1p(-p);
  double pos = -1;
  while (true) {
    double u = rng.UniformDouble();
    if (u <= 0) u = 1e-300;
    pos += 1 + std::floor(std::log(u) / log1mp);
    if (pos >= static_cast<double>(slots)) break;
    uint64_t s = static_cast<uint64_t>(pos);
    uint32_t i = static_cast<uint32_t>(s / (n - 1));
    uint64_t r = s % (n - 1);
    uint32_t j = static_cast<uint32_t>(r < i ? r : r + 1);
    trades.push_back(TradeRecord{i, j});
  }
  return trades;
}

Result<Province> GenerateProvince(const ProvinceConfig& config) {
  if (config.num_companies == 0) {
    return Status::InvalidArgument("num_companies must be positive");
  }
  Rng rng(config.seed);
  Province province;
  RawDataset& data = province.dataset;

  // --- Business-group sizes: the configured large groups, then small
  // groups of 1..small_group_max companies until the population is
  // exhausted.
  std::vector<uint32_t> sizes;
  uint32_t used = 0;
  for (uint32_t s : config.large_group_sizes) {
    if (s > config.num_companies - used) break;  // No uint32 wrap.
    sizes.push_back(s);
    used += s;
  }
  while (used < config.num_companies) {
    uint32_t s = static_cast<uint32_t>(
        rng.UniformInt(1, std::max<uint32_t>(1, config.small_group_max)));
    s = std::min(s, config.num_companies - used);
    sizes.push_back(s);
    used += s;
  }
  const size_t num_groups = sizes.size();
  if (config.num_legal_persons < num_groups) {
    return Status::InvalidArgument(StringPrintf(
        "%u legal persons cannot cover %zu business groups (each needs "
        "at least one)",
        config.num_legal_persons, num_groups));
  }

  // --- Allocate legal persons (min 1 per group) and directors
  // (proportional, may be 0) across groups.
  std::vector<uint32_t> lp_count = Apportion(sizes, config.num_legal_persons,
                                             /*minimum=*/1);
  std::vector<uint32_t> dir_count =
      Apportion(sizes, config.num_directors, /*minimum=*/0);

  // --- Create persons and companies group by group.
  struct GroupPeople {
    std::vector<PersonId> lps;
    std::vector<PersonId> directors;
  };
  std::vector<GroupPeople> people(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    for (uint32_t k = 0; k < lp_count[g]; ++k) {
      PersonRoles roles =
          kLpRolePool[rng.UniformU64(std::size(kLpRolePool))];
      PersonId id = data.AddPerson(
          StringPrintf("L%04zu", data.persons().size()), roles);
      people[g].lps.push_back(id);
    }
    for (uint32_t k = 0; k < dir_count[g]; ++k) {
      PersonRoles roles =
          kDirectorRolePool[rng.UniformU64(std::size(kDirectorRolePool))];
      PersonId id = data.AddPerson(
          StringPrintf("B%04zu", data.persons().size()), roles);
      people[g].directors.push_back(id);
    }
  }

  province.groups.resize(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    for (uint32_t k = 0; k < sizes[g]; ++k) {
      CompanyId c = data.AddCompany(
          StringPrintf("C%04zu", data.companies().size()));
      province.groups[g].push_back(c);
    }
  }

  // --- Per group: the intra-group investment DAG first (later companies
  // receive capital from earlier ones; index order is the topological
  // order, so no cycles), then legal persons — subsidiaries preferentially
  // reuse their investor's LP, which is how real holding structures give
  // one person syndicate both a direct arc and an investment-chain path
  // to the same company — then extra directors.
  for (size_t g = 0; g < num_groups; ++g) {
    const GroupPeople& gp = people[g];
    const std::vector<CompanyId>& members = province.groups[g];

    std::vector<int64_t> primary_investor(members.size(), -1);
    for (size_t i = 1; i < members.size(); ++i) {
      if (!rng.Bernoulli(config.investment_arc_prob)) continue;
      size_t investor = rng.UniformU64(i);
      primary_investor[i] = static_cast<int64_t>(investor);
      data.AddInvestment(members[investor], members[i],
                         rng.UniformDouble(0.51, 1.0));
      if (i >= 2 && rng.Bernoulli(config.second_investor_prob)) {
        size_t second = rng.UniformU64(i);
        if (second != investor) {
          data.AddInvestment(members[second], members[i],
                             rng.UniformDouble(0.1, 0.49));
        }
      }
    }

    std::vector<PersonId> lp_of(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      CompanyId c = members[i];
      PersonId lp;
      if (primary_investor[i] >= 0 &&
          rng.Bernoulli(config.lp_follow_investor_prob)) {
        lp = lp_of[static_cast<size_t>(primary_investor[i])];
      } else {
        lp = gp.lps[rng.UniformU64(gp.lps.size())];
      }
      lp_of[i] = lp;
      data.AddInfluence(lp, c, InfluenceKindForRoles(data.persons()[lp].roles),
                        /*is_legal_person=*/true);
      if (!gp.directors.empty()) {
        // 0, 1 or 2 director links; sum of two Bernoulli(mean/2) draws
        // has expectation exactly `mean`.
        double half = config.director_links_per_company / 2.0;
        uint32_t k = (rng.Bernoulli(half) ? 1u : 0u) +
                     (rng.Bernoulli(half) ? 1u : 0u);
        k = std::min<uint32_t>(k, static_cast<uint32_t>(gp.directors.size()));
        std::vector<uint64_t> picks =
            rng.SampleWithoutReplacement(gp.directors.size(), k);
        for (uint64_t pick : picks) {
          data.AddInfluence(gp.directors[pick], c,
                            InfluenceKind::kDirectorOf,
                            /*is_legal_person=*/false);
        }
      }
    }
  }

  // --- Interdependence chains within each group's person pool.
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<PersonId> pool = people[g].lps;
    pool.insert(pool.end(), people[g].directors.begin(),
                people[g].directors.end());
    rng.Shuffle(pool);
    for (size_t i = 1; i < pool.size(); ++i) {
      if (!rng.Bernoulli(config.person_chain_link_prob)) continue;
      InterdependenceKind kind = rng.Bernoulli(config.kinship_fraction)
                                     ? InterdependenceKind::kKinship
                                     : InterdependenceKind::kInterlocking;
      data.AddInterdependence(pool[i - 1], pool[i], kind);
    }
  }

  // --- Cross-group kinship links.
  if (num_groups >= 2) {
    for (uint32_t k = 0; k < config.cross_group_person_links; ++k) {
      size_t ga = rng.UniformU64(num_groups);
      size_t gb = rng.UniformU64(num_groups);
      if (ga == gb || people[ga].lps.empty() || people[gb].lps.empty()) {
        continue;
      }
      // Draw both endpoints in named locals: argument evaluation order
      // is unspecified, and the RNG sequence must not depend on it (the
      // streaming generator replays this sequence draw for draw).
      PersonId pa = people[ga].lps[rng.UniformU64(people[ga].lps.size())];
      PersonId pb = people[gb].lps[rng.UniformU64(people[gb].lps.size())];
      data.AddInterdependence(pa, pb, InterdependenceKind::kKinship);
    }
  }

  // --- Optional investment cycles (strongly connected shareholding
  // circles) for SCC-contraction coverage.
  uint32_t cycles_added = 0;
  for (size_t g = 0; g < num_groups && cycles_added < config.num_investment_cycles;
       ++g) {
    const std::vector<CompanyId>& members = province.groups[g];
    if (members.size() < 3) continue;
    // Ring over three consecutive members; the forward arcs may duplicate
    // tree arcs, which fusion dedups.
    size_t base = rng.UniformU64(members.size() - 2);
    data.AddInvestment(members[base], members[base + 1], 0.6);
    data.AddInvestment(members[base + 1], members[base + 2], 0.6);
    data.AddInvestment(members[base + 2], members[base], 0.6);
    ++cycles_added;
  }

  // --- Trading layer.
  if (config.generate_trading) {
    data.SetTrades(GenerateTradingNetwork(config.num_companies,
                                          config.trading_probability, rng));
  }

  TPIIN_RETURN_IF_ERROR(data.Validate());
  return province;
}

}  // namespace tpiin

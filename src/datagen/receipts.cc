#include "datagen/receipts.h"

#include <unordered_set>

#include "common/rng.h"

namespace tpiin {

namespace {
uint64_t PairKey(CompanyId a, CompanyId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

GeneratedReceipts GenerateReceipts(
    const std::vector<TradeRecord>& trades,
    const std::vector<std::pair<CompanyId, CompanyId>>& iat_pairs,
    const ReceiptGenConfig& config) {
  Rng rng(config.seed);
  GeneratedReceipts out;

  out.true_market.unit_price.reserve(config.num_categories);
  for (CategoryId c = 0; c < config.num_categories; ++c) {
    out.true_market.unit_price.push_back(rng.UniformDouble(
        config.min_market_price, config.max_market_price));
  }

  std::unordered_set<uint64_t> iat;
  iat.reserve(iat_pairs.size() * 2);
  for (const auto& [seller, buyer] : iat_pairs) {
    iat.insert(PairKey(seller, buyer));
  }

  TransactionId next_id = 1;
  for (const TradeRecord& trade : trades) {
    bool is_iat = iat.count(PairKey(trade.seller, trade.buyer)) > 0;
    uint32_t count = static_cast<uint32_t>(
        rng.UniformInt(config.min_receipts, config.max_receipts));
    for (uint32_t k = 0; k < count; ++k) {
      Receipt receipt;
      receipt.id = next_id++;
      receipt.seller = trade.seller;
      receipt.buyer = trade.buyer;
      receipt.category =
          static_cast<CategoryId>(rng.UniformU64(config.num_categories));
      receipt.day = static_cast<uint32_t>(
          rng.UniformU64(std::max<uint32_t>(1, config.num_days)));
      receipt.quantity =
          rng.UniformDouble(config.min_quantity, config.max_quantity);
      double market = out.true_market.PriceOf(receipt.category);
      if (is_iat) {
        double discount = rng.UniformDouble(config.iat_discount_min,
                                            config.iat_discount_max);
        receipt.unit_price = market * (1.0 - discount);
        out.mispriced.push_back(out.receipts.size());
      } else {
        double noise = rng.UniformDouble(-config.honest_price_noise,
                                         config.honest_price_noise);
        receipt.unit_price = market * (1.0 + noise);
      }
      out.receipts.push_back(receipt);
    }
  }
  return out;
}

}  // namespace tpiin

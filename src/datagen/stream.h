#ifndef TPIIN_DATAGEN_STREAM_H_
#define TPIIN_DATAGEN_STREAM_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "datagen/config.h"

namespace tpiin {

/// Row counts of a streamed province, for manifests and logs.
struct StreamStats {
  uint64_t num_groups = 0;
  uint64_t persons = 0;
  uint64_t companies = 0;
  uint64_t interdependence = 0;
  uint64_t influence = 0;
  uint64_t investments = 0;
  uint64_t trades = 0;
};

/// Streams the synthetic province of `config` directly into the six CSV
/// tables under `directory` (which must exist) without ever holding the
/// dataset in memory — the out-of-core path for populations 100×–1000×
/// the paper's, where GenerateProvince + SaveDatasetCsv would cost
/// O(population) RSS just to produce the input.
///
/// Output is byte-identical to SaveDatasetCsv(GenerateProvince(config))
/// for every config (the generators share their RNG call sequence;
/// tests/datagen/stream_test.cc gates this), so the sharded and
/// in-memory pipelines consume literally the same bytes. Peak memory is
/// O(persons + groups): one role byte per person and a few offsets per
/// business group; companies, relation rows and the trading layer are
/// emitted as they are drawn.
Result<StreamStats> StreamProvinceCsv(const ProvinceConfig& config,
                                      const std::string& directory);

}  // namespace tpiin

#endif  // TPIIN_DATAGEN_STREAM_H_

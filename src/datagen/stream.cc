#include "datagen/stream.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/csv.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/province_detail.h"
#include "model/records.h"

namespace tpiin {

using datagen_detail::Apportion;
using datagen_detail::InfluenceKindForRoles;
using datagen_detail::kDirectorRolePool;
using datagen_detail::kLpRolePool;

// Mirrors GenerateProvince (datagen/province.cc) draw for draw. Any
// change to the in-memory generator's RNG sequence must be made here
// too; the stream_test byte-equality suite catches divergence.
Result<StreamStats> StreamProvinceCsv(const ProvinceConfig& config,
                                      const std::string& directory) {
  if (config.num_companies == 0) {
    return Status::InvalidArgument("num_companies must be positive");
  }
  Rng rng(config.seed);
  StreamStats stats;

  // --- Business-group sizes (same consumption of the large-group list
  // and the same small-group draws as GenerateProvince).
  std::vector<uint32_t> sizes;
  uint32_t used = 0;
  for (uint32_t s : config.large_group_sizes) {
    if (s > config.num_companies - used) break;  // No uint32 wrap.
    sizes.push_back(s);
    used += s;
  }
  while (used < config.num_companies) {
    uint32_t s = static_cast<uint32_t>(
        rng.UniformInt(1, std::max<uint32_t>(1, config.small_group_max)));
    s = std::min(s, config.num_companies - used);
    sizes.push_back(s);
    used += s;
  }
  const size_t num_groups = sizes.size();
  stats.num_groups = num_groups;
  if (config.num_legal_persons < num_groups) {
    return Status::InvalidArgument(StringPrintf(
        "%u legal persons cannot cover %zu business groups (each needs "
        "at least one)",
        config.num_legal_persons, num_groups));
  }

  std::vector<uint32_t> lp_count = Apportion(sizes, config.num_legal_persons,
                                             /*minimum=*/1);
  std::vector<uint32_t> dir_count =
      Apportion(sizes, config.num_directors, /*minimum=*/0);

  // Persons are ids [person_base[g], person_base[g] + lp_count[g] +
  // dir_count[g]): the group's legal persons first, then its directors —
  // exactly the order GenerateProvince calls AddPerson. Companies are
  // ids [company_base[g], company_base[g] + sizes[g]). Only the role
  // byte per person and these offsets persist; everything else is
  // written out as it is drawn.
  std::vector<uint32_t> person_base(num_groups + 1, 0);
  std::vector<uint32_t> company_base(num_groups + 1, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    person_base[g + 1] = person_base[g] + lp_count[g] + dir_count[g];
    company_base[g + 1] = company_base[g] + sizes[g];
  }
  std::vector<PersonRoles> person_roles(person_base[num_groups]);

  {
    CsvWriter persons(directory + "/persons.csv");
    persons.WriteRow({"id", "name", "roles"});
    uint32_t id = 0;
    for (size_t g = 0; g < num_groups; ++g) {
      for (uint32_t k = 0; k < lp_count[g]; ++k, ++id) {
        PersonRoles roles =
            kLpRolePool[rng.UniformU64(std::size(kLpRolePool))];
        person_roles[id] = roles;
        persons.WriteRow({StringPrintf("%u", id),
                          StringPrintf("L%04zu", static_cast<size_t>(id)),
                          StringPrintf("%u", roles)});
      }
      for (uint32_t k = 0; k < dir_count[g]; ++k, ++id) {
        PersonRoles roles =
            kDirectorRolePool[rng.UniformU64(std::size(kDirectorRolePool))];
        person_roles[id] = roles;
        persons.WriteRow({StringPrintf("%u", id),
                          StringPrintf("B%04zu", static_cast<size_t>(id)),
                          StringPrintf("%u", roles)});
      }
    }
    stats.persons = id;
    TPIIN_RETURN_IF_ERROR(persons.Close());
  }

  {
    CsvWriter companies(directory + "/companies.csv");
    companies.WriteRow({"id", "name"});
    for (uint32_t c = 0; c < config.num_companies; ++c) {
      companies.WriteRow({StringPrintf("%u", c),
                          StringPrintf("C%04zu", static_cast<size_t>(c))});
    }
    stats.companies = config.num_companies;
    TPIIN_RETURN_IF_ERROR(companies.Close());
  }

  CsvWriter interdependence(directory + "/interdependence.csv");
  interdependence.WriteRow({"person_a", "person_b", "kind"});
  CsvWriter influence(directory + "/influence.csv");
  influence.WriteRow({"person", "company", "kind", "legal_person"});
  CsvWriter investment(directory + "/investment.csv");
  investment.WriteRow({"investor", "investee", "share"});

  auto write_interdependence = [&](PersonId a, PersonId b,
                                   InterdependenceKind kind) {
    interdependence.WriteRow(
        {StringPrintf("%u", a), StringPrintf("%u", b),
         std::string(InterdependenceKindName(kind))});
    ++stats.interdependence;
  };
  auto write_influence = [&](PersonId p, CompanyId c, InfluenceKind kind,
                             bool legal_person) {
    influence.WriteRow({StringPrintf("%u", p), StringPrintf("%u", c),
                        StringPrintf("%u", static_cast<unsigned>(kind)),
                        legal_person ? "1" : "0"});
    ++stats.influence;
  };
  auto write_investment = [&](CompanyId investor, CompanyId investee,
                              double share) {
    investment.WriteRow({StringPrintf("%u", investor),
                         StringPrintf("%u", investee),
                         StringPrintf("%.6f", share)});
    ++stats.investments;
  };

  // --- Per group: investment DAG, then legal persons + directors.
  for (size_t g = 0; g < num_groups; ++g) {
    const uint32_t group_size = sizes[g];
    const uint32_t cbase = company_base[g];
    const uint32_t lp_base = person_base[g];
    const uint32_t dir_base = lp_base + lp_count[g];

    std::vector<int64_t> primary_investor(group_size, -1);
    for (size_t i = 1; i < group_size; ++i) {
      if (!rng.Bernoulli(config.investment_arc_prob)) continue;
      size_t investor = rng.UniformU64(i);
      primary_investor[i] = static_cast<int64_t>(investor);
      write_investment(cbase + static_cast<uint32_t>(investor),
                       cbase + static_cast<uint32_t>(i),
                       rng.UniformDouble(0.51, 1.0));
      if (i >= 2 && rng.Bernoulli(config.second_investor_prob)) {
        size_t second = rng.UniformU64(i);
        if (second != investor) {
          write_investment(cbase + static_cast<uint32_t>(second),
                           cbase + static_cast<uint32_t>(i),
                           rng.UniformDouble(0.1, 0.49));
        }
      }
    }

    std::vector<PersonId> lp_of(group_size);
    for (size_t i = 0; i < group_size; ++i) {
      CompanyId c = cbase + static_cast<uint32_t>(i);
      PersonId lp;
      if (primary_investor[i] >= 0 &&
          rng.Bernoulli(config.lp_follow_investor_prob)) {
        lp = lp_of[static_cast<size_t>(primary_investor[i])];
      } else {
        lp = lp_base + static_cast<uint32_t>(rng.UniformU64(lp_count[g]));
      }
      lp_of[i] = lp;
      write_influence(lp, c, InfluenceKindForRoles(person_roles[lp]),
                      /*legal_person=*/true);
      if (dir_count[g] > 0) {
        double half = config.director_links_per_company / 2.0;
        uint32_t k = (rng.Bernoulli(half) ? 1u : 0u) +
                     (rng.Bernoulli(half) ? 1u : 0u);
        k = std::min<uint32_t>(k, dir_count[g]);
        std::vector<uint64_t> picks =
            rng.SampleWithoutReplacement(dir_count[g], k);
        for (uint64_t pick : picks) {
          write_influence(dir_base + static_cast<uint32_t>(pick), c,
                          InfluenceKind::kDirectorOf,
                          /*legal_person=*/false);
        }
      }
    }
  }

  // --- Interdependence chains within each group's person pool.
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<PersonId> pool(person_base[g + 1] - person_base[g]);
    for (size_t i = 0; i < pool.size(); ++i) {
      pool[i] = person_base[g] + static_cast<uint32_t>(i);
    }
    rng.Shuffle(pool);
    for (size_t i = 1; i < pool.size(); ++i) {
      if (!rng.Bernoulli(config.person_chain_link_prob)) continue;
      InterdependenceKind kind = rng.Bernoulli(config.kinship_fraction)
                                     ? InterdependenceKind::kKinship
                                     : InterdependenceKind::kInterlocking;
      write_interdependence(pool[i - 1], pool[i], kind);
    }
  }

  // --- Cross-group kinship links.
  if (num_groups >= 2) {
    for (uint32_t k = 0; k < config.cross_group_person_links; ++k) {
      size_t ga = rng.UniformU64(num_groups);
      size_t gb = rng.UniformU64(num_groups);
      if (ga == gb || lp_count[ga] == 0 || lp_count[gb] == 0) continue;
      PersonId a = person_base[ga] +
                   static_cast<uint32_t>(rng.UniformU64(lp_count[ga]));
      PersonId b = person_base[gb] +
                   static_cast<uint32_t>(rng.UniformU64(lp_count[gb]));
      write_interdependence(a, b, InterdependenceKind::kKinship);
    }
  }

  // --- Optional investment cycles.
  uint32_t cycles_added = 0;
  for (size_t g = 0;
       g < num_groups && cycles_added < config.num_investment_cycles; ++g) {
    if (sizes[g] < 3) continue;
    uint32_t base = company_base[g] +
                    static_cast<uint32_t>(rng.UniformU64(sizes[g] - 2));
    write_investment(base, base + 1, 0.6);
    write_investment(base + 1, base + 2, 0.6);
    write_investment(base + 2, base, 0.6);
    ++cycles_added;
  }

  TPIIN_RETURN_IF_ERROR(interdependence.Close());
  TPIIN_RETURN_IF_ERROR(influence.Close());
  TPIIN_RETURN_IF_ERROR(investment.Close());

  // --- Trading layer, streamed straight to disk (GenerateTradingNetwork
  // materializes the edge vector; at p*n^2 in the millions that is the
  // largest allocation of the whole generator).
  {
    CsvWriter trades(directory + "/trades.csv");
    trades.WriteRow({"seller", "buyer"});
    if (config.generate_trading && config.num_companies >= 2 &&
        config.trading_probability > 0) {
      const uint64_t n = config.num_companies;
      const uint64_t slots = n * (n - 1);
      const double p = config.trading_probability;
      auto write_trade = [&](uint64_t s) {
        uint32_t i = static_cast<uint32_t>(s / (n - 1));
        uint64_t r = s % (n - 1);
        uint32_t j = static_cast<uint32_t>(r < i ? r : r + 1);
        trades.WriteRow({StringPrintf("%u", i), StringPrintf("%u", j)});
        ++stats.trades;
      };
      if (p >= 1.0) {
        for (uint64_t s = 0; s < slots; ++s) write_trade(s);
      } else {
        const double log1mp = std::log1p(-p);
        double pos = -1;
        while (true) {
          double u = rng.UniformDouble();
          if (u <= 0) u = 1e-300;
          pos += 1 + std::floor(std::log(u) / log1mp);
          if (pos >= static_cast<double>(slots)) break;
          write_trade(static_cast<uint64_t>(pos));
        }
      }
    }
    TPIIN_RETURN_IF_ERROR(trades.Close());
  }
  return stats;
}

}  // namespace tpiin

#include "datagen/plant.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/union_find.h"

namespace tpiin {

std::string_view SchemeKindName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kSameInvestor:
      return "same-investor";
    case SchemeKind::kLinkedPersons:
      return "linked-persons";
    case SchemeKind::kSharedInfluencer:
      return "shared-influencer";
    case SchemeKind::kInvestorChain:
      return "investor-chain";
  }
  return "unknown";
}

std::vector<PlantedScheme> PlantSuspiciousTrades(RawDataset& dataset,
                                                 Rng& rng, size_t count) {
  std::vector<PlantedScheme> candidates;
  const size_t num_persons = dataset.persons().size();

  // Person syndicates exactly as fusion will build them.
  UnionFind person_uf(static_cast<NodeId>(num_persons));
  for (const InterdependenceRecord& rec : dataset.interdependence()) {
    person_uf.Union(rec.person_a, rec.person_b);
  }

  // Companies grouped by influencing person-syndicate.
  std::unordered_map<NodeId, std::vector<CompanyId>> by_syndicate;
  for (const InfluenceRecord& rec : dataset.influence()) {
    by_syndicate[person_uf.Find(rec.person)].push_back(rec.company);
  }
  for (auto& [syndicate, companies] : by_syndicate) {
    std::sort(companies.begin(), companies.end());
    companies.erase(std::unique(companies.begin(), companies.end()),
                    companies.end());
    if (companies.size() < 2) continue;
    // One candidate pair per syndicate keeps the pool diverse.
    size_t a = rng.UniformU64(companies.size());
    size_t b = rng.UniformU64(companies.size() - 1);
    if (b >= a) ++b;
    bool same_person =
        dataset.persons().size() > 0 &&
        person_uf.SizeOf(static_cast<NodeId>(syndicate)) == 1;
    candidates.push_back(PlantedScheme{same_person
                                           ? SchemeKind::kSharedInfluencer
                                           : SchemeKind::kLinkedPersons,
                                       companies[a], companies[b]});
  }

  // Common-investor triangles (Case 2) and investor chains (Case 1).
  std::unordered_map<CompanyId, std::vector<CompanyId>> investees;
  for (const InvestmentRecord& rec : dataset.investments()) {
    investees[rec.investor].push_back(rec.investee);
  }
  for (const auto& [investor, list] : investees) {
    if (list.size() >= 2) {
      size_t a = rng.UniformU64(list.size());
      size_t b = rng.UniformU64(list.size() - 1);
      if (b >= a) ++b;
      candidates.push_back(
          PlantedScheme{SchemeKind::kSameInvestor, list[a], list[b]});
    }
    // Investor sells to its own investee: common antecedent is the
    // investor itself (the A == seller degenerate case).
    candidates.push_back(PlantedScheme{SchemeKind::kInvestorChain, investor,
                                       list[rng.UniformU64(list.size())]});
  }

  rng.Shuffle(candidates);
  if (candidates.size() > count) candidates.resize(count);

  // Avoid planting duplicates of one pair (fusion would dedupe the arcs,
  // making ground-truth bookkeeping ambiguous).
  std::unordered_set<uint64_t> seen;
  std::vector<PlantedScheme> planted;
  for (const PlantedScheme& scheme : candidates) {
    if (scheme.seller == scheme.buyer) continue;
    uint64_t key =
        (static_cast<uint64_t>(scheme.seller) << 32) | scheme.buyer;
    if (!seen.insert(key).second) continue;
    dataset.AddTrade(scheme.seller, scheme.buyer);
    planted.push_back(scheme);
  }
  return planted;
}

}  // namespace tpiin

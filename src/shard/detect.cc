#include "shard/detect.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/scoring.h"
#include "obs/report.h"
#include "shard/gids.h"
#include "snapshot/snapshot.h"

namespace tpiin {

namespace {

constexpr char kResultMagic[] = "tpiin-shard-result v1";

std::string EscapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeLabel(const std::string& escaped,
                                  const std::string& path) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out += escaped[i];
      continue;
    }
    if (i + 1 >= escaped.size()) {
      return Status::Corruption(path + ": dangling escape in label");
    }
    switch (escaped[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      default:
        return Status::Corruption(path + ": bad escape in label");
    }
  }
  return out;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

Result<uint64_t> ParseU64Field(const std::string& field,
                               const std::string& path) {
  Result<int64_t> value = ParseInt64(field);
  if (!value.ok() || *value < 0) {
    return Status::Corruption(path + ": bad number " + field);
  }
  return static_cast<uint64_t>(*value);
}

Result<uint64_t> ParseCountToken(const std::string& token,
                                 const char* key, const std::string& path) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) {
    return Status::Corruption(path + ": expected " + prefix + "..., found " +
                              token);
  }
  return ParseU64Field(token.substr(prefix.size()), path);
}

}  // namespace

std::string ShardResultPath(const std::string& dir,
                            const ShardManifest& manifest, uint32_t shard) {
  std::string name = ExpandShardPath(manifest.path_template, shard);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name.resize(dot);
  return dir + "/" + name + ".result";
}

std::string SerializeShardResult(uint32_t shard,
                                 const CanonicalReport& report) {
  const CanonicalSummary& s = report.summary;
  std::string body;
  body += kResultMagic;
  body += '\n';
  body += StringPrintf("shard %u\n", shard);
  body += StringPrintf(
      "counts subtpiins=%" PRIu64 " trails=%" PRIu64 " complex=%" PRIu64
      " simple=%" PRIu64 " circle=%" PRIu64 " intra=%" PRIu64
      " suspicious=%" PRIu64 " trading_arcs=%" PRIu64 " skipped=%" PRIu64
      " degraded=%d truncated=%d\n",
      s.subtpiins, s.trails, s.complex_groups, s.simple_groups,
      s.circle_groups, s.intra, s.suspicious_trades, s.total_trading_arcs,
      s.skipped_subs, s.degraded ? 1 : 0, s.truncated ? 1 : 0);
  for (const CanonicalTrade& t : report.trades) {
    // %.17g round-trips an IEEE double exactly, so the merged rendering
    // sorts and prints the same bits the shard computed.
    body += StringPrintf("trade %.17g\t%" PRIu64 "\t%s\t%s\n", t.score,
                         t.group_count, EscapeLabel(t.seller).c_str(),
                         EscapeLabel(t.buyer).c_str());
  }
  for (const CanonicalIntra& i : report.intra) {
    body += StringPrintf("intra %u\t%u\t%s\t", i.seller, i.buyer,
                         EscapeLabel(i.syndicate).c_str());
    for (size_t k = 0; k < i.chain.size(); ++k) {
      if (k > 0) body += ',';
      body += StringPrintf("%u", i.chain[k]);
    }
    body += '\n';
  }
  body += StringPrintf("crc %08x\n", Crc32c(body.data(), body.size()));
  return body;
}

Result<CanonicalReport> ParseShardResult(const std::string& contents,
                                         const std::string& path,
                                         uint32_t expect_shard) {
  auto corrupt = [&](const std::string& what) {
    return Status::Corruption(path + ": " + what);
  };
  if (contents.empty() || contents.back() != '\n') {
    return corrupt("missing trailing newline (truncated?)");
  }
  const size_t crc_line_start =
      contents.find_last_of('\n', contents.size() - 2);
  const size_t body_size =
      crc_line_start == std::string::npos ? 0 : crc_line_start + 1;
  const std::string crc_line =
      contents.substr(body_size, contents.size() - body_size - 1);
  uint32_t stored_crc = 0;
  if (crc_line.size() != 12 || crc_line.rfind("crc ", 0) != 0 ||
      std::sscanf(crc_line.c_str(), "crc %8x", &stored_crc) != 1) {
    return corrupt("missing crc trailer");
  }
  if (Crc32c(contents.data(), body_size) != stored_crc) {
    return corrupt("crc mismatch");
  }

  std::istringstream lines(contents.substr(0, body_size));
  std::string line;
  if (!std::getline(lines, line) || line != kResultMagic) {
    return corrupt("bad magic line: " + line);
  }
  uint32_t shard = 0;
  if (!std::getline(lines, line) ||
      std::sscanf(line.c_str(), "shard %u", &shard) != 1 ||
      shard != expect_shard) {
    return corrupt("bad shard line: " + line);
  }
  CanonicalReport report;
  if (!std::getline(lines, line)) return corrupt("missing counts line");
  {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag != "counts") return corrupt("bad counts line: " + line);
    static constexpr const char* kKeys[] = {
        "subtpiins", "trails",     "complex",      "simple",
        "circle",    "intra",      "suspicious",   "trading_arcs",
        "skipped",   "degraded",   "truncated"};
    uint64_t values[std::size(kKeys)] = {};
    std::string token;
    for (size_t k = 0; k < std::size(kKeys); ++k) {
      if (!(fields >> token)) return corrupt("truncated counts: " + line);
      TPIIN_ASSIGN_OR_RETURN(values[k],
                             ParseCountToken(token, kKeys[k], path));
    }
    if (fields >> token) return corrupt("trailing counts: " + line);
    if (values[9] > 1 || values[10] > 1) {
      return corrupt("bad flag in counts: " + line);
    }
    report.summary = CanonicalSummary{
        values[0], values[1], values[2], values[3],  values[4], values[5],
        values[6], values[7], values[8], values[9] == 1, values[10] == 1};
  }

  bool in_intra = false;
  while (std::getline(lines, line)) {
    if (line.rfind("trade ", 0) == 0) {
      if (in_intra) return corrupt("trade line after intra lines");
      std::vector<std::string> fields = SplitTabs(line.substr(6));
      if (fields.size() != 4) return corrupt("bad trade line: " + line);
      CanonicalTrade trade;
      char* end = nullptr;
      trade.score = std::strtod(fields[0].c_str(), &end);
      if (end == nullptr || *end != '\0' || fields[0].empty()) {
        return corrupt("bad score: " + fields[0]);
      }
      TPIIN_ASSIGN_OR_RETURN(trade.group_count,
                             ParseU64Field(fields[1], path));
      TPIIN_ASSIGN_OR_RETURN(trade.seller, UnescapeLabel(fields[2], path));
      TPIIN_ASSIGN_OR_RETURN(trade.buyer, UnescapeLabel(fields[3], path));
      report.trades.push_back(std::move(trade));
    } else if (line.rfind("intra ", 0) == 0) {
      in_intra = true;
      std::vector<std::string> fields = SplitTabs(line.substr(6));
      if (fields.size() != 4) return corrupt("bad intra line: " + line);
      CanonicalIntra intra;
      TPIIN_ASSIGN_OR_RETURN(uint64_t seller,
                             ParseU64Field(fields[0], path));
      TPIIN_ASSIGN_OR_RETURN(uint64_t buyer, ParseU64Field(fields[1], path));
      intra.seller = static_cast<uint32_t>(seller);
      intra.buyer = static_cast<uint32_t>(buyer);
      TPIIN_ASSIGN_OR_RETURN(intra.syndicate,
                             UnescapeLabel(fields[2], path));
      size_t start = 0;
      const std::string& chain = fields[3];
      while (start < chain.size()) {
        size_t comma = chain.find(',', start);
        if (comma == std::string::npos) comma = chain.size();
        TPIIN_ASSIGN_OR_RETURN(
            uint64_t id,
            ParseU64Field(chain.substr(start, comma - start), path));
        intra.chain.push_back(static_cast<uint32_t>(id));
        start = comma + 1;
      }
      report.intra.push_back(std::move(intra));
    } else {
      return corrupt("unrecognized line: " + line);
    }
  }
  if (report.intra.size() != report.summary.intra) {
    return corrupt("intra line count disagrees with the counts line");
  }
  return report;
}

Result<ShardDetectStats> DetectShards(const std::string& dir,
                                      const ShardDetectOptions& options,
                                      RunReport* report) {
  WallTimer timer;
  TPIIN_ASSIGN_OR_RETURN(ShardManifest manifest,
                         ReadShardManifest(dir + "/" + kShardManifestName));
  std::vector<uint32_t> live;
  for (const ShardEntry& entry : manifest.shards) {
    if (!entry.empty) live.push_back(entry.shard);
  }
  const uint32_t shard_parallel = std::max<uint32_t>(
      1, std::min<uint32_t>(options.shard_parallel,
                            static_cast<uint32_t>(live.size())));
  // One level of parallelism at a time: either across shards or inside
  // one shard's detection, never both.
  const uint32_t inner_threads =
      shard_parallel > 1 ? 1 : std::max<uint32_t>(1, options.num_threads);

  struct Outcome {
    uint64_t groups = 0;
    bool degraded = false;
    bool truncated = false;
  };
  std::vector<Outcome> outcomes(live.size());

  Status status = ThreadPool::Global().ParallelForChecked(
      live.size(), shard_parallel, [&](size_t i) -> Status {
        TPIIN_FAILPOINT("shard.detect");
        const uint32_t s = live[i];
        const std::string snapshot_path =
            dir + "/" + ExpandShardPath(manifest.path_template, s);
        TPIIN_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotView> view,
                               SnapshotView::Open(snapshot_path));
        TPIIN_ASSIGN_OR_RETURN(std::vector<uint32_t> gids,
                               ReadShardGids(snapshot_path + ".gids"));
        if (gids.size() != manifest.shards[s].companies) {
          return Status::Corruption(StringPrintf(
              "%s.gids: %zu ids for a shard of %" PRIu64 " companies",
              snapshot_path.c_str(), gids.size(),
              manifest.shards[s].companies));
        }
        DetectorOptions detector;
        detector.num_threads = inner_threads;
        detector.budget = options.budget;
        TPIIN_ASSIGN_OR_RETURN(
            DetectionResult detection,
            DetectSuspiciousGroups(view->net(), detector));
        ScoringResult scoring = ScoreDetection(view->net(), detection);
        CanonicalReport canonical =
            BuildCanonicalReport(view->net(), detection, scoring, &gids);
        outcomes[i] = Outcome{detection.TotalGroups(), detection.degraded,
                              detection.truncated};
        return WriteFileAtomic(ShardResultPath(dir, manifest, s),
                               SerializeShardResult(s, canonical));
      });
  TPIIN_RETURN_IF_ERROR(status);

  ShardDetectStats stats;
  stats.shards_detected = live.size();
  for (const Outcome& o : outcomes) {
    stats.groups += o.groups;
    stats.degraded = stats.degraded || o.degraded;
    stats.truncated = stats.truncated || o.truncated;
  }
  if (report != nullptr) {
    report->AddStage("shard_detect", timer.ElapsedSeconds());
    ReportSection& section = report->Section("shard_detect");
    section.Set("shards", static_cast<int64_t>(stats.shards_detected));
    section.Set("groups", static_cast<int64_t>(stats.groups));
    section.Set("shard_parallel", static_cast<int64_t>(shard_parallel));
    section.Set("degraded", stats.degraded);
  }
  return stats;
}

}  // namespace tpiin

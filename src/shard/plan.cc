#include "shard/plan.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "graph/union_find.h"

namespace tpiin {

namespace {

Status RowError(const std::string& path, size_t line,
                const std::string& what) {
  return Status::Corruption(
      StringPrintf("%s:%zu: %s", path.c_str(), line, what.c_str()));
}

// Strict per-row scan of one CSV table: malformed rows are fatal (the
// planner must see exactly the rows the router and the per-shard loads
// will see; resilience policies belong to the single-process loader).
Status ScanTable(const std::string& path,
                 const std::vector<std::string>& header,
                 const std::function<Status(const CsvRow&)>& handler) {
  CsvFileReader reader(path);
  TPIIN_RETURN_IF_ERROR(reader.status());
  TPIIN_RETURN_IF_ERROR(reader.ExpectHeader(header));
  CsvRow row;
  while (reader.Next(&row)) {
    if (!row.parse.ok()) return row.parse;
    if (row.fields.size() != header.size()) {
      return RowError(path, row.line_number,
                      StringPrintf("expected %zu columns, found %zu",
                                   header.size(), row.fields.size()));
    }
    TPIIN_RETURN_IF_ERROR(handler(row));
  }
  return Status::OK();
}

Result<int64_t> ParseId(const std::string& field, const std::string& path,
                        size_t line) {
  Result<int64_t> value = ParseInt64(field);
  if (!value.ok() || *value < 0) {
    return RowError(path, line, "bad id: " + field);
  }
  return value;
}

}  // namespace

Status ShardIdIndex::Add(int64_t file_id) {
  if (dense_) {
    if (file_id == static_cast<int64_t>(next_)) {
      ++next_;
      return Status::OK();
    }
    // First non-sequential id: fall back to the hash map.
    map_.reserve(next_ + 1);
    for (uint64_t i = 0; i < next_; ++i) {
      map_.emplace(static_cast<int64_t>(i), static_cast<uint32_t>(i));
    }
    dense_ = false;
  }
  auto [it, inserted] =
      map_.emplace(file_id, static_cast<uint32_t>(next_));
  if (!inserted) {
    return Status::Corruption(
        StringPrintf("duplicate id %lld", static_cast<long long>(file_id)));
  }
  ++next_;
  return Status::OK();
}

Result<ShardPlan> PlanShards(const std::string& data_dir,
                             const ShardPlanOptions& options) {
  TPIIN_FAILPOINT("shard.plan.scan");
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  ShardPlan plan;
  plan.num_shards = options.num_shards;

  // --- Entity tables: register ids in row order.
  TPIIN_RETURN_IF_ERROR(ScanTable(
      data_dir + "/persons.csv", {"id", "name", "roles"},
      [&](const CsvRow& row) -> Status {
        TPIIN_ASSIGN_OR_RETURN(
            int64_t id,
            ParseId(row.fields[0], data_dir + "/persons.csv",
                    row.line_number));
        return plan.person_index.Add(id);
      }));
  TPIIN_RETURN_IF_ERROR(ScanTable(
      data_dir + "/companies.csv", {"id", "name"},
      [&](const CsvRow& row) -> Status {
        TPIIN_ASSIGN_OR_RETURN(
            int64_t id,
            ParseId(row.fields[0], data_dir + "/companies.csv",
                    row.line_number));
        return plan.company_index.Add(id);
      }));
  plan.num_persons = plan.person_index.size();
  plan.num_companies = plan.company_index.size();
  const uint64_t num_entities = plan.num_persons + plan.num_companies;
  if (num_entities > 0xFFFFFFFFull) {
    return Status::InvalidArgument(
        "entity population exceeds 32-bit id space");
  }

  // Union-find over persons [0, P) and companies [P, P+C); relation rows
  // union their endpoints — exactly the edges that become antecedent
  // connectivity after fusion (interdependence merges persons into
  // syndicates, influence links persons to companies, investment links
  // companies), so these components are in bijection with the fused
  // net's antecedent WCCs.
  UnionFind uf(static_cast<NodeId>(num_entities));
  // Relation rows incident to each entity, the balance weight.
  std::vector<uint32_t> entity_rows(num_entities, 0);
  const uint32_t person_count = static_cast<uint32_t>(plan.num_persons);

  auto resolve = [&](const ShardIdIndex& index, const std::string& field,
                     const char* what, const std::string& path,
                     size_t line) -> Result<uint32_t> {
    Result<int64_t> raw = ParseInt64(field);
    if (!raw.ok()) return RowError(path, line, "bad id: " + field);
    int64_t dense = index.Lookup(*raw);
    if (dense < 0) {
      return RowError(
          path, line,
          StringPrintf("%s id %s does not refer to a loaded row", what,
                       field.c_str()));
    }
    return static_cast<uint32_t>(dense);
  };

  {
    const std::string path = data_dir + "/interdependence.csv";
    TPIIN_RETURN_IF_ERROR(ScanTable(
        path, {"person_a", "person_b", "kind"},
        [&](const CsvRow& row) -> Status {
          TPIIN_ASSIGN_OR_RETURN(
              uint32_t a, resolve(plan.person_index, row.fields[0],
                                  "person", path, row.line_number));
          TPIIN_ASSIGN_OR_RETURN(
              uint32_t b, resolve(plan.person_index, row.fields[1],
                                  "person", path, row.line_number));
          uf.Union(a, b);
          ++entity_rows[a];
          return Status::OK();
        }));
  }
  {
    const std::string path = data_dir + "/influence.csv";
    TPIIN_RETURN_IF_ERROR(ScanTable(
        path, {"person", "company", "kind", "legal_person"},
        [&](const CsvRow& row) -> Status {
          TPIIN_ASSIGN_OR_RETURN(
              uint32_t p, resolve(plan.person_index, row.fields[0],
                                  "person", path, row.line_number));
          TPIIN_ASSIGN_OR_RETURN(
              uint32_t c, resolve(plan.company_index, row.fields[1],
                                  "company", path, row.line_number));
          uf.Union(p, person_count + c);
          ++entity_rows[p];
          return Status::OK();
        }));
  }
  {
    const std::string path = data_dir + "/investment.csv";
    TPIIN_RETURN_IF_ERROR(ScanTable(
        path, {"investor", "investee", "share"},
        [&](const CsvRow& row) -> Status {
          TPIIN_ASSIGN_OR_RETURN(
              uint32_t a, resolve(plan.company_index, row.fields[0],
                                  "company", path, row.line_number));
          TPIIN_ASSIGN_OR_RETURN(
              uint32_t b, resolve(plan.company_index, row.fields[1],
                                  "company", path, row.line_number));
          uf.Union(person_count + a, person_count + b);
          ++entity_rows[person_count + a];
          return Status::OK();
        }));
  }

  // --- Dense component ids and weights.
  std::vector<NodeId> component_of = uf.DenseComponentIds();
  plan.num_components = uf.NumSets();
  std::vector<uint64_t> component_weight(plan.num_components, 0);
  for (uint64_t e = 0; e < num_entities; ++e) {
    component_weight[component_of[e]] += 1 + entity_rows[e];
  }
  entity_rows.clear();
  entity_rows.shrink_to_fit();

  // --- Trading layer: intra-component rows add weight to their
  // component; cross-component rows are only counted.
  {
    const std::string path = data_dir + "/trades.csv";
    TPIIN_RETURN_IF_ERROR(ScanTable(
        path, {"seller", "buyer"},
        [&](const CsvRow& row) -> Status {
          TPIIN_ASSIGN_OR_RETURN(
              uint32_t s, resolve(plan.company_index, row.fields[0],
                                  "company", path, row.line_number));
          TPIIN_ASSIGN_OR_RETURN(
              uint32_t b, resolve(plan.company_index, row.fields[1],
                                  "company", path, row.line_number));
          ++plan.trade_rows;
          const uint32_t comp_s = component_of[person_count + s];
          const uint32_t comp_b = component_of[person_count + b];
          if (comp_s == comp_b) {
            ++component_weight[comp_s];
          } else {
            ++plan.cross_trade_rows;
          }
          return Status::OK();
        }));
  }

  // --- Greedy balance: heaviest component first onto the least-loaded
  // shard (ties: lower component id, lower shard id) — deterministic,
  // and within 4/3 of optimal makespan, which is what bounds per-shard
  // peak memory.
  std::vector<uint32_t> order(plan.num_components);
  for (uint32_t i = 0; i < plan.num_components; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (component_weight[a] != component_weight[b]) {
      return component_weight[a] > component_weight[b];
    }
    return a < b;
  });
  plan.component_shard.assign(plan.num_components, 0);
  plan.shard_weight.assign(plan.num_shards, 0);
  using Load = std::pair<uint64_t, uint32_t>;
  std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
  for (uint32_t s = 0; s < plan.num_shards; ++s) heap.push({0, s});
  for (uint32_t comp : order) {
    auto [load, shard] = heap.top();
    heap.pop();
    plan.component_shard[comp] = shard;
    load += component_weight[comp];
    plan.shard_weight[shard] = load;
    heap.push({load, shard});
  }

  plan.person_component.assign(component_of.begin(),
                               component_of.begin() + person_count);
  plan.company_component.assign(component_of.begin() + person_count,
                                component_of.end());
  return plan;
}

}  // namespace tpiin

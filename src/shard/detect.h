#ifndef TPIIN_SHARD_DETECT_H_
#define TPIIN_SHARD_DETECT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/detector.h"
#include "shard/canonical.h"
#include "shard/manifest.h"

namespace tpiin {

class RunReport;

struct ShardDetectOptions {
  /// Threads inside one shard's detection. Forced to 1 when
  /// shard_parallel > 1 (one level of parallelism at a time; results are
  /// identical either way).
  uint32_t num_threads = 1;
  /// Shards detected concurrently. 1 = sequential, the minimal-memory
  /// operating point.
  uint32_t shard_parallel = 1;
  /// Per-shard resource envelope (core/detector.h). A budget that binds
  /// marks the shard's result degraded; merge propagates the flag.
  RunBudget budget;
};

struct ShardDetectStats {
  uint64_t shards_detected = 0;
  uint64_t groups = 0;
  bool degraded = false;
  bool truncated = false;
};

/// Runs Algorithm 1 + scoring over every non-empty shard of the sharded
/// build in `dir` (written by BuildShards), producing one
/// `part-XXXXX.result` file per shard — each a self-contained, CRC'd
/// canonical-report serialization in global ids/labels. Shards are
/// mined sequentially (or `shard_parallel` at a time); each result file
/// is written atomically, so a crash leaves finished shards reusable.
Result<ShardDetectStats> DetectShards(const std::string& dir,
                                      const ShardDetectOptions& options,
                                      RunReport* report = nullptr);

/// `dir`-relative result path for one shard: the snapshot path with its
/// extension replaced by ".result".
std::string ShardResultPath(const std::string& dir,
                            const ShardManifest& manifest, uint32_t shard);

/// Serializes one shard's canonical report ("tpiin-shard-result v1"
/// text: counts line, tab-separated trade/intra lines with escaped
/// labels, CRC-32C trailer).
std::string SerializeShardResult(uint32_t shard,
                                 const CanonicalReport& report);

/// Strict inverse of SerializeShardResult; any truncation, bad escape,
/// CRC or shard-number mismatch is Corruption.
Result<CanonicalReport> ParseShardResult(const std::string& contents,
                                         const std::string& path,
                                         uint32_t expect_shard);

}  // namespace tpiin

#endif  // TPIIN_SHARD_DETECT_H_

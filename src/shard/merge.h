#ifndef TPIIN_SHARD_MERGE_H_
#define TPIIN_SHARD_MERGE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "shard/canonical.h"

namespace tpiin {

class RunReport;

struct ShardMergeStats {
  uint64_t shards_merged = 0;
  CanonicalSummary summary;
};

/// Folds every per-shard result file of the sharded build in `dir`
/// (manifest + part-XXXXX.result written by DetectShards) into one
/// globally ranked report at `out_path` — byte-identical to the report
/// an unsharded `tpiin detect --out` writes over the same dataset, at
/// any shard count and any thread count. Counts sum; the global trading
/// arc total is the per-shard sum plus the manifest's deduplicated
/// cross-shard pair count; trades and intra findings concatenate and
/// are sorted by content during rendering.
Result<ShardMergeStats> MergeShards(const std::string& dir,
                                    const std::string& out_path,
                                    RunReport* report = nullptr);

}  // namespace tpiin

#endif  // TPIIN_SHARD_MERGE_H_

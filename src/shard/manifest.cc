#include "shard/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace tpiin {

namespace {

constexpr char kMagicLine[] = "tpiin-shard-manifest v1";

// One shard line. Fixed field order keeps the parser strict and the
// file diffable.
std::string FormatShardEntry(const ShardEntry& e) {
  return StringPrintf(
      "shard %u empty=%d nodes=%" PRIu64 " arcs=%" PRIu64
      " influence_arcs=%" PRIu64 " trading_arcs=%" PRIu64
      " intra_trades=%" PRIu64 " persons=%" PRIu64 " companies=%" PRIu64
      " trade_rows=%" PRIu64 " bytes=%" PRIu64,
      e.shard, e.empty ? 1 : 0, e.nodes, e.arcs, e.influence_arcs,
      e.trading_arcs, e.intra_trades, e.persons, e.companies, e.trade_rows,
      e.snapshot_bytes);
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::Corruption(path + ": " + what);
}

// Parses "key=value" returning the u64 value; `line` context for errors.
Result<uint64_t> ParseKeyU64(const std::string& token,
                             const std::string& key,
                             const std::string& path) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    return Corrupt(path, "expected " + prefix + "..., found " + token);
  }
  Result<int64_t> value = ParseInt64(token.substr(prefix.size()));
  if (!value.ok() || *value < 0) {
    return Corrupt(path, "bad number in " + token);
  }
  return static_cast<uint64_t>(*value);
}

}  // namespace

std::string ExpandShardPath(const std::string& path_template,
                            uint32_t shard) {
  const std::string placeholder = "{shard}";
  const size_t pos = path_template.find(placeholder);
  if (pos == std::string::npos) return path_template;
  return path_template.substr(0, pos) + StringPrintf("%05u", shard) +
         path_template.substr(pos + placeholder.size());
}

Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest) {
  TPIIN_FAILPOINT("shard.manifest.write");
  if (manifest.shards.size() != manifest.num_shards) {
    return Status::InvalidArgument(StringPrintf(
        "manifest lists %zu shard entries for num_shards=%u",
        manifest.shards.size(), manifest.num_shards));
  }
  if (manifest.path_template.find("{shard}") == std::string::npos) {
    return Status::InvalidArgument(
        "shard path template must contain {shard}: " +
        manifest.path_template);
  }
  std::string body;
  body += kMagicLine;
  body += '\n';
  body += StringPrintf("shards %u\n", manifest.num_shards);
  body += "template " + manifest.path_template + "\n";
  body += StringPrintf("entities persons=%" PRIu64 " companies=%" PRIu64
                       "\n",
                       manifest.num_persons, manifest.num_companies);
  body += StringPrintf("trades rows=%" PRIu64 " cross_rows=%" PRIu64
                       " cross_pairs=%" PRIu64 "\n",
                       manifest.trade_rows, manifest.cross_trade_rows,
                       manifest.cross_trade_pairs);
  for (const ShardEntry& entry : manifest.shards) {
    body += FormatShardEntry(entry);
    body += '\n';
  }
  const uint32_t crc = Crc32c(body.data(), body.size());
  body += StringPrintf("crc %08x\n", crc);
  return WriteFileAtomic(path, body);
}

Result<ShardManifest> ReadShardManifest(const std::string& path) {
  TPIIN_FAILPOINT("shard.manifest.read");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound(path + ": cannot open shard manifest");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError(path + ": read failed");
  const std::string contents = buffer.str();

  // Split off the trailing "crc XXXXXXXX\n" line and verify it covers
  // everything before it — byte-exact, so truncation or appended junk
  // both fail here.
  if (contents.empty() || contents.back() != '\n') {
    return Corrupt(path, "missing trailing newline (truncated?)");
  }
  const size_t crc_line_start =
      contents.find_last_of('\n', contents.size() - 2);
  const size_t body_size =
      crc_line_start == std::string::npos ? 0 : crc_line_start + 1;
  const std::string crc_line =
      contents.substr(body_size, contents.size() - body_size - 1);
  if (crc_line.size() != 12 || crc_line.rfind("crc ", 0) != 0) {
    return Corrupt(path, "missing crc trailer");
  }
  uint32_t stored_crc = 0;
  if (std::sscanf(crc_line.c_str(), "crc %8x", &stored_crc) != 1) {
    return Corrupt(path, "bad crc trailer: " + crc_line);
  }
  const uint32_t actual_crc = Crc32c(contents.data(), body_size);
  if (actual_crc != stored_crc) {
    return Corrupt(path,
                   StringPrintf("crc mismatch: stored %08x, computed %08x",
                                stored_crc, actual_crc));
  }

  std::istringstream lines(contents.substr(0, body_size));
  std::string line;
  auto next_line = [&](std::string* out) {
    if (!std::getline(lines, line)) return false;
    *out = line;
    return true;
  };

  ShardManifest manifest;
  std::string current;
  if (!next_line(&current) || current != kMagicLine) {
    return Corrupt(path, "bad magic/version line: " + current);
  }
  if (!next_line(&current) ||
      std::sscanf(current.c_str(), "shards %u", &manifest.num_shards) != 1) {
    return Corrupt(path, "bad shards line: " + current);
  }
  if (manifest.num_shards == 0 || manifest.num_shards > 100000) {
    return Corrupt(path, "implausible shard count: " + current);
  }
  if (!next_line(&current) || current.rfind("template ", 0) != 0) {
    return Corrupt(path, "bad template line: " + current);
  }
  manifest.path_template = current.substr(std::string("template ").size());
  if (manifest.path_template.find("{shard}") == std::string::npos ||
      manifest.path_template.find("..") != std::string::npos ||
      manifest.path_template.find('/') != std::string::npos) {
    // Shard files always live beside the manifest; a template that
    // escapes the directory is hostile.
    return Corrupt(path, "bad path template: " + manifest.path_template);
  }
  if (!next_line(&current)) return Corrupt(path, "missing entities line");
  {
    std::istringstream fields(current);
    std::string tag, persons, companies;
    fields >> tag >> persons >> companies;
    if (tag != "entities" || !fields.eof()) {
      return Corrupt(path, "bad entities line: " + current);
    }
    TPIIN_ASSIGN_OR_RETURN(manifest.num_persons,
                           ParseKeyU64(persons, "persons", path));
    TPIIN_ASSIGN_OR_RETURN(manifest.num_companies,
                           ParseKeyU64(companies, "companies", path));
  }
  if (!next_line(&current)) return Corrupt(path, "missing trades line");
  {
    std::istringstream fields(current);
    std::string tag, rows, cross_rows, cross_pairs;
    fields >> tag >> rows >> cross_rows >> cross_pairs;
    if (tag != "trades" || !fields.eof()) {
      return Corrupt(path, "bad trades line: " + current);
    }
    TPIIN_ASSIGN_OR_RETURN(manifest.trade_rows,
                           ParseKeyU64(rows, "rows", path));
    TPIIN_ASSIGN_OR_RETURN(manifest.cross_trade_rows,
                           ParseKeyU64(cross_rows, "cross_rows", path));
    TPIIN_ASSIGN_OR_RETURN(manifest.cross_trade_pairs,
                           ParseKeyU64(cross_pairs, "cross_pairs", path));
  }

  manifest.shards.reserve(manifest.num_shards);
  for (uint32_t s = 0; s < manifest.num_shards; ++s) {
    if (!next_line(&current)) {
      return Corrupt(path, StringPrintf("missing line for shard %u", s));
    }
    std::istringstream fields(current);
    std::string tag;
    uint32_t shard_id = 0;
    fields >> tag >> shard_id;
    if (tag != "shard" || fields.fail() || shard_id != s) {
      return Corrupt(path, "bad shard line: " + current);
    }
    ShardEntry entry;
    entry.shard = shard_id;
    std::string token;
    static constexpr const char* kKeys[] = {
        "empty",    "nodes",     "arcs",      "influence_arcs",
        "trading_arcs", "intra_trades", "persons", "companies",
        "trade_rows",   "bytes"};
    uint64_t values[std::size(kKeys)] = {};
    for (size_t k = 0; k < std::size(kKeys); ++k) {
      if (!(fields >> token)) {
        return Corrupt(path, "truncated shard line: " + current);
      }
      TPIIN_ASSIGN_OR_RETURN(values[k], ParseKeyU64(token, kKeys[k], path));
    }
    if (fields >> token) {
      return Corrupt(path, "trailing fields in shard line: " + current);
    }
    if (values[0] > 1) return Corrupt(path, "bad empty flag: " + current);
    entry.empty = values[0] == 1;
    entry.nodes = values[1];
    entry.arcs = values[2];
    entry.influence_arcs = values[3];
    entry.trading_arcs = values[4];
    entry.intra_trades = values[5];
    entry.persons = values[6];
    entry.companies = values[7];
    entry.trade_rows = values[8];
    entry.snapshot_bytes = values[9];
    if (entry.empty &&
        (entry.nodes != 0 || entry.persons != 0 || entry.companies != 0)) {
      return Corrupt(path, "empty shard with nonzero counts: " + current);
    }
    manifest.shards.push_back(entry);
  }
  if (std::getline(lines, line)) {
    return Corrupt(path, "trailing content after shard lines: " + line);
  }
  return manifest;
}

}  // namespace tpiin

#ifndef TPIIN_SHARD_BUILD_H_
#define TPIIN_SHARD_BUILD_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "shard/manifest.h"

namespace tpiin {

class RunReport;

struct ShardBuildOptions {
  uint32_t num_shards = 1;
  /// Worker threads for each per-shard fusion (shards themselves build
  /// one at a time — that sequencing is the memory bound).
  uint32_t num_threads = 1;
  /// Per-(shard, table) routing buffer before an append flush. Small
  /// values bound router memory at high shard counts; large values cut
  /// open/append/close churn.
  size_t spill_buffer_bytes = 1 << 20;
  /// Keep the routed per-shard CSV spill directories after the build
  /// (debugging; they are normally deleted once the manifest commits).
  bool keep_spill = false;
  /// Precompute each shard snapshot's segmentation index.
  bool include_wcc_index = true;
};

/// Builds a sharded TPIIN out of the CSV dataset in `data_dir` without
/// ever materializing the whole population: pass 1 plans (streaming
/// union-find, see PlanShards), pass 2 routes raw rows verbatim into
/// per-shard spill datasets, then each shard is loaded, fused, and
/// written as a PR 5 snapshot one at a time — peak memory is
/// O(entities + largest shard), not O(dataset).
///
/// Output layout under `out_dir`:
///   part-00000.tpiin ...   per-shard snapshots (empty shards omitted)
///   part-00000.tpiin.gids  local->global company id sidecars
///   MANIFEST.shards        written last, atomically: its presence is
///                          the commit point (crash mid-build leaves
///                          finished shards valid and no manifest).
///
/// `report`, when non-null, receives plan/route/fuse stages and a
/// "shard" section.
Result<ShardManifest> BuildShards(const std::string& data_dir,
                                  const std::string& out_dir,
                                  const ShardBuildOptions& options,
                                  RunReport* report = nullptr);

}  // namespace tpiin

#endif  // TPIIN_SHARD_BUILD_H_

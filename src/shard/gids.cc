#include "shard/gids.h"

#include <cstring>
#include <fstream>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace tpiin {

namespace {

constexpr char kMagic[8] = {'T', 'P', 'I', 'I', 'N', 'G', 'I', 'D'};
constexpr uint32_t kVersion = 1;

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

Status WriteShardGids(const std::string& path,
                      const std::vector<uint32_t>& global_ids) {
  TPIIN_FAILPOINT("shard.gids.write");
  std::string body;
  body.reserve(sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t) +
               global_ids.size() * sizeof(uint32_t) + sizeof(uint32_t));
  body.append(kMagic, sizeof(kMagic));
  AppendPod(&body, kVersion);
  AppendPod(&body, static_cast<uint64_t>(global_ids.size()));
  body.append(reinterpret_cast<const char*>(global_ids.data()),
              global_ids.size() * sizeof(uint32_t));
  AppendPod(&body, Crc32c(body.data(), body.size()));
  return WriteFileAtomic(path, body);
}

Result<std::vector<uint32_t>> ReadShardGids(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound(path + ": cannot open gids sidecar");
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError(path + ": read failed");
  const size_t header = sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t);
  if (contents.size() < header + sizeof(uint32_t)) {
    return Status::Corruption(path + ": truncated gids sidecar");
  }
  if (std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad gids magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, contents.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersion) {
    return Status::Corruption(
        StringPrintf("%s: unsupported gids version %u", path.c_str(),
                     version));
  }
  uint64_t count = 0;
  std::memcpy(&count, contents.data() + sizeof(kMagic) + sizeof(uint32_t),
              sizeof(count));
  // A hostile count must not overflow the size arithmetic below.
  if (count > contents.size() / sizeof(uint32_t)) {
    return Status::Corruption(StringPrintf(
        "%s: implausible gids count %llu", path.c_str(),
        static_cast<unsigned long long>(count)));
  }
  const size_t expected =
      header + count * sizeof(uint32_t) + sizeof(uint32_t);
  if (contents.size() != expected) {
    return Status::Corruption(StringPrintf(
        "%s: gids size %zu does not match count %llu", path.c_str(),
        contents.size(), static_cast<unsigned long long>(count)));
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, contents.data() + expected - sizeof(uint32_t),
              sizeof(stored_crc));
  const uint32_t actual_crc =
      Crc32c(contents.data(), expected - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::Corruption(path + ": gids checksum mismatch");
  }
  std::vector<uint32_t> ids(count);
  std::memcpy(ids.data(), contents.data() + header,
              count * sizeof(uint32_t));
  return ids;
}

}  // namespace tpiin

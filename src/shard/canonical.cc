#include "shard/canonical.h"

#include <algorithm>

#include "common/string_util.h"

namespace tpiin {

namespace {

uint32_t GlobalCompany(uint32_t local,
                       const std::vector<uint32_t>* company_gids) {
  return company_gids == nullptr ? local : (*company_gids)[local];
}

bool TradeLess(const CanonicalTrade& a, const CanonicalTrade& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.seller != b.seller) return a.seller < b.seller;
  if (a.buyer != b.buyer) return a.buyer < b.buyer;
  return a.group_count < b.group_count;
}

bool IntraLess(const CanonicalIntra& a, const CanonicalIntra& b) {
  if (a.seller != b.seller) return a.seller < b.seller;
  if (a.buyer != b.buyer) return a.buyer < b.buyer;
  if (a.syndicate != b.syndicate) return a.syndicate < b.syndicate;
  return a.chain < b.chain;
}

}  // namespace

CanonicalReport BuildCanonicalReport(
    const Tpiin& net, const DetectionResult& detection,
    const ScoringResult& scoring,
    const std::vector<uint32_t>* company_gids) {
  CanonicalReport report;
  report.summary.subtpiins = detection.num_subtpiins;
  report.summary.trails = detection.num_trails;
  report.summary.complex_groups = detection.num_complex;
  report.summary.simple_groups = detection.num_simple;
  report.summary.circle_groups = detection.num_cycle_groups;
  report.summary.intra = detection.intra_syndicate.size();
  report.summary.suspicious_trades = detection.suspicious_trades.size();
  report.summary.total_trading_arcs = detection.total_trading_arcs;
  report.summary.skipped_subs = detection.num_skipped_subs;
  report.summary.degraded = detection.degraded;
  report.summary.truncated = detection.truncated;

  report.trades.reserve(scoring.ranked_trades.size());
  for (const ScoredTrade& trade : scoring.ranked_trades) {
    // seller == buyer marks the scorer's intra-SCC pseudo-entry; its
    // content is carried by the intra section below.
    if (trade.seller == trade.buyer) continue;
    CanonicalTrade out;
    out.score = trade.score;
    out.group_count = trade.group_count;
    out.seller = std::string(net.Label(trade.seller));
    out.buyer = std::string(net.Label(trade.buyer));
    report.trades.push_back(std::move(out));
  }

  report.intra.reserve(detection.intra_syndicate.size());
  for (const IntraSyndicateFinding& finding : detection.intra_syndicate) {
    CanonicalIntra out;
    out.seller = GlobalCompany(finding.seller, company_gids);
    out.buyer = GlobalCompany(finding.buyer, company_gids);
    out.syndicate = std::string(net.Label(finding.syndicate_node));
    out.chain.reserve(finding.chain.size());
    for (CompanyId c : finding.chain) {
      out.chain.push_back(GlobalCompany(c, company_gids));
    }
    report.intra.push_back(std::move(out));
  }
  return report;
}

std::string RenderCanonicalReport(const CanonicalReport& report) {
  const CanonicalSummary& s = report.summary;
  const size_t sus = s.suspicious_trades + s.intra;
  const size_t total = s.total_trading_arcs + s.intra;
  const double percent =
      total == 0 ? 0 : 100.0 * sus / static_cast<double>(total);
  std::string out = StringPrintf(
      "subTPIINs=%zu trails=%zu groups: complex=%zu simple=%zu circle=%zu "
      "intra-SCC=%zu; suspicious trades=%zu of %zu (%.4f%%)%s",
      static_cast<size_t>(s.subtpiins), static_cast<size_t>(s.trails),
      static_cast<size_t>(s.complex_groups),
      static_cast<size_t>(s.simple_groups),
      static_cast<size_t>(s.circle_groups), static_cast<size_t>(s.intra),
      sus, total, percent,
      s.degraded ? " [DEGRADED]" : (s.truncated ? " [TRUNCATED]" : ""));
  out += '\n';

  std::vector<const CanonicalTrade*> trades;
  trades.reserve(report.trades.size());
  for (const CanonicalTrade& t : report.trades) trades.push_back(&t);
  std::stable_sort(trades.begin(), trades.end(),
                   [](const CanonicalTrade* a, const CanonicalTrade* b) {
                     return TradeLess(*a, *b);
                   });
  out += StringPrintf("\nranked suspicious trading relationships (%zu):\n",
                      trades.size());
  for (const CanonicalTrade* t : trades) {
    out += StringPrintf("  %.6f  %s -> %s  (%llu proof chains)\n",
                        t->score, t->seller.c_str(), t->buyer.c_str(),
                        static_cast<unsigned long long>(t->group_count));
  }

  std::vector<const CanonicalIntra*> intra;
  intra.reserve(report.intra.size());
  for (const CanonicalIntra& i : report.intra) intra.push_back(&i);
  std::stable_sort(intra.begin(), intra.end(),
                   [](const CanonicalIntra* a, const CanonicalIntra* b) {
                     return IntraLess(*a, *b);
                   });
  out += StringPrintf("\nintra-SCC suspicious trades (%zu):\n",
                      intra.size());
  for (const CanonicalIntra* i : intra) {
    out += StringPrintf("  company %u -> company %u in %s  chain:",
                        i->seller, i->buyer, i->syndicate.c_str());
    for (size_t k = 0; k < i->chain.size(); ++k) {
      out += StringPrintf("%s%u", k == 0 ? " " : " -> ", i->chain[k]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace tpiin

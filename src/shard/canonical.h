#ifndef TPIIN_SHARD_CANONICAL_H_
#define TPIIN_SHARD_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/scoring.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// The canonical ranked report: a network-id-free representation of one
/// detection run whose rendering is byte-identical whether it was
/// produced by a single unsharded run or merged from any number of
/// shards at any thread count. Identity holds because
///  - every field is either a plain count (counts over disjoint shards
///    sum to the global count), a label string (labels come verbatim
///    from entity names, identical in every partition), a global dense
///    company id (restored from the .gids sidecar), or a score double
///    (noisy-or products accumulate per subTPIIN in emission order, and
///    each subTPIIN lives whole inside one shard — same factors, same
///    order, bit-equal result);
///  - rendering sorts by content, never by internal node ids.
struct CanonicalSummary {
  uint64_t subtpiins = 0;
  uint64_t trails = 0;
  uint64_t complex_groups = 0;
  uint64_t simple_groups = 0;
  uint64_t circle_groups = 0;
  uint64_t intra = 0;
  /// Distinct suspicious trading relationships (excluding intra-SCC).
  uint64_t suspicious_trades = 0;
  /// Trading arcs in the (conceptual, global) TPIIN. A sharded merge
  /// reconstructs this as sum(per-shard arcs) + cross-shard pairs.
  uint64_t total_trading_arcs = 0;
  uint64_t skipped_subs = 0;
  bool degraded = false;
  bool truncated = false;
};

struct CanonicalTrade {
  /// Noisy-or score, transported exactly (%.17g round-trips a double).
  double score = 0;
  uint64_t group_count = 0;
  std::string seller;
  std::string buyer;
};

struct CanonicalIntra {
  /// Global dense company ids of the trade inside the SCC syndicate.
  uint32_t seller = 0;
  uint32_t buyer = 0;
  /// Syndicate node label ("{a+b+...}" over entity names).
  std::string syndicate;
  /// Proof chain seller..buyer along internal investment arcs, as
  /// global dense company ids.
  std::vector<uint32_t> chain;
};

struct CanonicalReport {
  CanonicalSummary summary;
  std::vector<CanonicalTrade> trades;
  std::vector<CanonicalIntra> intra;
};

/// Extracts the canonical report from one in-process detection+scoring
/// run over `net`. `company_gids`, when non-null, maps the net's dense
/// company ids to global ids (shard use); null means the net's ids are
/// already global (unsharded use). Ranked entries whose seller and buyer
/// node coincide are the scorer's intra-SCC pseudo-trades and are
/// carried by `intra`, not `trades`.
CanonicalReport BuildCanonicalReport(const Tpiin& net,
                                     const DetectionResult& detection,
                                     const ScoringResult& scoring,
                                     const std::vector<uint32_t>*
                                         company_gids = nullptr);

/// Renders the report: the DetectionResult::Summary() line (rebuilt from
/// the summary integers), the ranked section sorted by (score desc,
/// seller, buyer, group count), and the intra-SCC section sorted by
/// (seller, buyer, syndicate, chain).
std::string RenderCanonicalReport(const CanonicalReport& report);

}  // namespace tpiin

#endif  // TPIIN_SHARD_CANONICAL_H_

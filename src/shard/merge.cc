#include "shard/merge.h"

#include <fstream>
#include <iterator>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/report.h"
#include "shard/detect.h"
#include "shard/manifest.h"

namespace tpiin {

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound(path + ": cannot open shard result");
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError(path + ": read failed");
  return contents;
}

}  // namespace

Result<ShardMergeStats> MergeShards(const std::string& dir,
                                    const std::string& out_path,
                                    RunReport* report) {
  TPIIN_FAILPOINT("shard.merge");
  WallTimer timer;
  TPIIN_ASSIGN_OR_RETURN(ShardManifest manifest,
                         ReadShardManifest(dir + "/" + kShardManifestName));

  CanonicalReport merged;
  // The cross-shard pairs are trading arcs of the conceptual global
  // TPIIN that no shard ever saw (their endpoints share no antecedent,
  // so they are unsuspicious by the divide rule); the manifest carries
  // their deduplicated count so the merged denominator matches the
  // unsharded run's.
  merged.summary.total_trading_arcs = manifest.cross_trade_pairs;
  uint64_t shards_merged = 0;

  for (const ShardEntry& entry : manifest.shards) {
    if (entry.empty) continue;
    const std::string path = ShardResultPath(dir, manifest, entry.shard);
    TPIIN_ASSIGN_OR_RETURN(std::string contents, ReadWholeFile(path));
    TPIIN_ASSIGN_OR_RETURN(CanonicalReport part,
                           ParseShardResult(contents, path, entry.shard));
    // Cross-check the result against the build's census: a result file
    // recycled from a different build must not merge silently.
    if (part.summary.total_trading_arcs != entry.trading_arcs ||
        part.summary.intra != entry.intra_trades) {
      return Status::Corruption(StringPrintf(
          "%s: result counts disagree with the manifest entry for shard "
          "%u (stale result file?)",
          path.c_str(), entry.shard));
    }
    merged.summary.subtpiins += part.summary.subtpiins;
    merged.summary.trails += part.summary.trails;
    merged.summary.complex_groups += part.summary.complex_groups;
    merged.summary.simple_groups += part.summary.simple_groups;
    merged.summary.circle_groups += part.summary.circle_groups;
    merged.summary.intra += part.summary.intra;
    merged.summary.suspicious_trades += part.summary.suspicious_trades;
    merged.summary.total_trading_arcs += part.summary.total_trading_arcs;
    merged.summary.skipped_subs += part.summary.skipped_subs;
    merged.summary.degraded |= part.summary.degraded;
    merged.summary.truncated |= part.summary.truncated;
    std::move(part.trades.begin(), part.trades.end(),
              std::back_inserter(merged.trades));
    std::move(part.intra.begin(), part.intra.end(),
              std::back_inserter(merged.intra));
    ++shards_merged;
  }

  TPIIN_RETURN_IF_ERROR(
      WriteFileAtomic(out_path, RenderCanonicalReport(merged)));

  ShardMergeStats stats;
  stats.shards_merged = shards_merged;
  stats.summary = merged.summary;
  if (report != nullptr) {
    report->AddStage("shard_merge", timer.ElapsedSeconds());
    ReportSection& section = report->Section("shard_merge");
    section.Set("shards", static_cast<int64_t>(shards_merged));
    section.Set("trades", static_cast<int64_t>(merged.trades.size()));
    section.Set("intra", static_cast<int64_t>(merged.intra.size()));
    section.Set("degraded", merged.summary.degraded);
  }
  return stats;
}

}  // namespace tpiin

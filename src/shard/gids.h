#ifndef TPIIN_SHARD_GIDS_H_
#define TPIIN_SHARD_GIDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace tpiin {

/// A shard snapshot stores companies under shard-local dense ids (its
/// fusion never saw the rest of the population). The .gids sidecar maps
/// local CompanyId -> global dense company id, so per-shard findings
/// (intra-SCC trades, proof chains, cross-shard dedup keys) can be
/// reported in the same id space as the unsharded run. Binary format:
/// 8-byte magic, u32 version, u64 count, count * u32 payload, trailing
/// CRC-32C over everything before it.
Status WriteShardGids(const std::string& path,
                      const std::vector<uint32_t>& global_ids);

/// Strict reader; truncation, magic/version/CRC mismatch and trailing
/// bytes are Corruption.
Result<std::vector<uint32_t>> ReadShardGids(const std::string& path);

}  // namespace tpiin

#endif  // TPIIN_SHARD_GIDS_H_

#ifndef TPIIN_SHARD_PLAN_H_
#define TPIIN_SHARD_PLAN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace tpiin {

/// File-id -> dense-row-index map for one entity table, sized for
/// streaming over national-ledger inputs: when ids arrive as the dense
/// sequence 0,1,2,... (every generated dataset, and any re-export of
/// one) it stores nothing at all; the hash map materializes only on the
/// first gap or permutation. Dense indices here match LoadDatasetCsv's
/// remapping (id column order = row order), which is what makes a
/// per-shard load agree with the global one.
class ShardIdIndex {
 public:
  /// Registers `file_id` as the next dense row. Duplicate ids fail.
  Status Add(int64_t file_id);

  /// Dense index of `file_id`, or -1 when no such row was registered.
  int64_t Lookup(int64_t file_id) const {
    if (dense_) {
      return file_id >= 0 && static_cast<uint64_t>(file_id) < next_
                 ? file_id
                 : -1;
    }
    auto it = map_.find(file_id);
    return it == map_.end() ? -1 : static_cast<int64_t>(it->second);
  }

  uint64_t size() const { return next_; }

 private:
  bool dense_ = true;
  uint64_t next_ = 0;
  std::unordered_map<int64_t, uint32_t> map_;
};

struct ShardPlanOptions {
  uint32_t num_shards = 1;
};

/// The out-of-core partition decision: every antecedent weakly connected
/// component (computed by a streaming union-find over the relation CSVs,
/// never materializing the dataset) is assigned whole to one shard.
/// Components are the paper's Algorithm 1 segmentation unit — no
/// suspicious group, proof chain or SCC ever spans two of them — so any
/// component-preserving partition mines to identical results.
struct ShardPlan {
  uint32_t num_shards = 0;
  uint64_t num_persons = 0;
  uint64_t num_companies = 0;
  uint64_t num_components = 0;

  /// Dense entity index -> antecedent component (component ids are
  /// first-appearance dense, so the plan is deterministic).
  std::vector<uint32_t> person_component;
  std::vector<uint32_t> company_component;
  /// Component -> shard, balanced greedily by row weight.
  std::vector<uint32_t> component_shard;
  /// Planned row weight per shard (entities + relation + intra trades).
  std::vector<uint64_t> shard_weight;

  /// Id lookup for the routing pass (second streaming pass).
  ShardIdIndex person_index;
  ShardIdIndex company_index;

  /// Trading-layer census from the planning pass. Rows whose endpoints
  /// lie in different components are counted cross (they cannot be
  /// suspicious — no common antecedent — and are not routed to shards).
  uint64_t trade_rows = 0;
  uint64_t cross_trade_rows = 0;

  uint32_t ShardOfPersonRow(uint64_t dense_index) const {
    return component_shard[person_component[dense_index]];
  }
  uint32_t ShardOfCompanyRow(uint64_t dense_index) const {
    return component_shard[company_component[dense_index]];
  }
};

/// First streaming pass: scans the six CSV tables of `data_dir` once
/// (strict parsing — shard building wants clean input; run the hardened
/// single-process loader to triage a damaged extract), unions persons
/// and companies over interdependence/influence/investment rows, and
/// balances the resulting components across `options.num_shards` shards
/// by descending row weight. Peak memory is O(entities), independent of
/// the relation and trading row counts.
Result<ShardPlan> PlanShards(const std::string& data_dir,
                             const ShardPlanOptions& options);

}  // namespace tpiin

#endif  // TPIIN_SHARD_PLAN_H_

#include "shard/build.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <vector>

#include "common/csv.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "fusion/pipeline.h"
#include "io/dataset_csv.h"
#include "obs/report.h"
#include "obs/rss.h"
#include "shard/gids.h"
#include "shard/plan.h"
#include "snapshot/snapshot.h"

namespace tpiin {

namespace {

constexpr size_t kNumTables = 6;
constexpr const char* kTableFiles[kNumTables] = {
    "persons.csv",   "companies.csv",  "interdependence.csv",
    "influence.csv", "investment.csv", "trades.csv"};
constexpr const char* kTableHeaders[kNumTables] = {
    "id,name,roles", "id,name", "person_a,person_b,kind",
    "person,company,kind,legal_person", "investor,investee,share",
    "seller,buyer"};

std::string SpillDirOf(const std::string& out_dir, uint32_t shard) {
  return out_dir + StringPrintf("/spill/shard-%05u", shard);
}

/// Routes verbatim raw rows into per-(shard, table) spill files. Buffers
/// are flushed with open-append-close so the router never holds more
/// than one file descriptor per flush regardless of shard count.
class SpillRouter {
 public:
  SpillRouter(const std::string& out_dir, uint32_t num_shards,
              size_t buffer_bytes)
      : out_dir_(out_dir),
        num_shards_(num_shards),
        buffer_bytes_(std::max<size_t>(buffer_bytes, 4096)),
        buffers_(static_cast<size_t>(num_shards) * kNumTables) {}

  /// Creates every spill directory with header-only CSV files, so each
  /// one is a loadable dataset even for a shard that receives no rows.
  Status Init() {
    for (uint32_t s = 0; s < num_shards_; ++s) {
      const std::string dir = SpillDirOf(out_dir_, s);
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        return Status::IOError(dir + ": cannot create spill directory");
      }
      for (size_t t = 0; t < kNumTables; ++t) {
        std::ofstream file(dir + "/" + kTableFiles[t],
                           std::ios::binary | std::ios::trunc);
        file << kTableHeaders[t] << '\n';
        if (!file.good()) {
          return Status::IOError(dir + ": cannot write spill header");
        }
      }
    }
    return Status::OK();
  }

  Status Append(uint32_t shard, size_t table, const std::string& raw) {
    std::string& buffer = buffers_[shard * kNumTables + table];
    buffer += raw;
    buffer += '\n';
    if (buffer.size() >= buffer_bytes_) return Flush(shard, table);
    return Status::OK();
  }

  Status FlushAll() {
    for (uint32_t s = 0; s < num_shards_; ++s) {
      for (size_t t = 0; t < kNumTables; ++t) {
        TPIIN_RETURN_IF_ERROR(Flush(s, t));
      }
    }
    return Status::OK();
  }

 private:
  Status Flush(uint32_t shard, size_t table) {
    std::string& buffer = buffers_[shard * kNumTables + table];
    if (buffer.empty()) return Status::OK();
    const std::string path =
        SpillDirOf(out_dir_, shard) + "/" + kTableFiles[table];
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file.write(buffer.data(),
               static_cast<std::streamsize>(buffer.size()));
    file.close();
    if (!file.good()) return Status::IOError(path + ": spill append failed");
    buffer.clear();
    return Status::OK();
  }

  std::string out_dir_;
  uint32_t num_shards_;
  size_t buffer_bytes_;
  std::vector<std::string> buffers_;
};

/// Same strict row scan as the planning pass; the two passes must agree
/// row for row.
Status ScanRows(const std::string& path, size_t num_columns,
                const std::function<Status(const CsvRow&)>& handler) {
  CsvFileReader reader(path);
  TPIIN_RETURN_IF_ERROR(reader.status());
  CsvRow header;
  if (!reader.Next(&header)) {
    return Status::Corruption(path + ": missing header");
  }
  CsvRow row;
  while (reader.Next(&row)) {
    if (!row.parse.ok()) return row.parse;
    if (row.fields.size() != num_columns) {
      return Status::Corruption(
          StringPrintf("%s:%zu: expected %zu columns", path.c_str(),
                       row.line_number, num_columns));
    }
    TPIIN_RETURN_IF_ERROR(handler(row));
  }
  return Status::OK();
}

Result<uint32_t> DenseOf(const ShardIdIndex& index, const std::string& field,
                         const std::string& path, size_t line) {
  Result<int64_t> raw = ParseInt64(field);
  int64_t dense = raw.ok() ? index.Lookup(*raw) : -1;
  if (dense < 0) {
    return Status::Corruption(StringPrintf(
        "%s:%zu: unresolvable id %s", path.c_str(), line, field.c_str()));
  }
  return static_cast<uint32_t>(dense);
}

}  // namespace

Result<ShardManifest> BuildShards(const std::string& data_dir,
                                  const std::string& out_dir,
                                  const ShardBuildOptions& options,
                                  RunReport* report) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) return Status::IOError(out_dir + ": cannot create directory");

  // --- Pass 1: plan.
  WallTimer timer;
  ShardPlanOptions plan_options;
  plan_options.num_shards = options.num_shards;
  TPIIN_ASSIGN_OR_RETURN(ShardPlan plan, PlanShards(data_dir, plan_options));
  if (report != nullptr) report->AddStage("shard_plan", timer.ElapsedSeconds());

  ShardManifest manifest;
  manifest.num_shards = options.num_shards;
  manifest.num_persons = plan.num_persons;
  manifest.num_companies = plan.num_companies;
  manifest.trade_rows = plan.trade_rows;
  manifest.cross_trade_rows = plan.cross_trade_rows;
  manifest.shards.resize(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    manifest.shards[s].shard = s;
  }

  // --- Pass 2: route raw rows (verbatim — per-shard loads then remap
  // ids in global row order, which is what keeps every shard-local
  // structure an order-preserving restriction of the global one).
  timer.Restart();
  SpillRouter router(out_dir, options.num_shards,
                     options.spill_buffer_bytes);
  TPIIN_RETURN_IF_ERROR(router.Init());
  // Global company ids routed to each shard, in row order: becomes the
  // shard's .gids sidecar and the local->global base of cross dedup.
  std::vector<std::vector<uint32_t>> shard_gids(options.num_shards);
  std::string cross_buffer;
  const std::string cross_path = out_dir + "/spill/cross_trades.bin";
  {
    std::ofstream cross(cross_path, std::ios::binary | std::ios::trunc);
    if (!cross.good()) {
      return Status::IOError(cross_path + ": cannot create spill");
    }
  }
  auto flush_cross = [&]() -> Status {
    if (cross_buffer.empty()) return Status::OK();
    std::ofstream cross(cross_path, std::ios::binary | std::ios::app);
    cross.write(cross_buffer.data(),
                static_cast<std::streamsize>(cross_buffer.size()));
    cross.close();
    if (!cross.good()) {
      return Status::IOError(cross_path + ": spill append failed");
    }
    cross_buffer.clear();
    return Status::OK();
  };

  {
    uint64_t row_index = 0;
    const std::string path = data_dir + "/persons.csv";
    TPIIN_RETURN_IF_ERROR(ScanRows(path, 3, [&](const CsvRow& row) -> Status {
      const uint32_t shard = plan.ShardOfPersonRow(row_index);
      ++manifest.shards[shard].persons;
      ++row_index;
      return router.Append(shard, 0, row.raw);
    }));
  }
  {
    uint64_t row_index = 0;
    const std::string path = data_dir + "/companies.csv";
    TPIIN_RETURN_IF_ERROR(ScanRows(path, 2, [&](const CsvRow& row) -> Status {
      const uint32_t shard = plan.ShardOfCompanyRow(row_index);
      ++manifest.shards[shard].companies;
      shard_gids[shard].push_back(static_cast<uint32_t>(row_index));
      ++row_index;
      return router.Append(shard, 1, row.raw);
    }));
  }
  {
    const std::string path = data_dir + "/interdependence.csv";
    TPIIN_RETURN_IF_ERROR(ScanRows(path, 3, [&](const CsvRow& row) -> Status {
      TPIIN_ASSIGN_OR_RETURN(
          uint32_t a,
          DenseOf(plan.person_index, row.fields[0], path, row.line_number));
      return router.Append(plan.ShardOfPersonRow(a), 2, row.raw);
    }));
  }
  {
    const std::string path = data_dir + "/influence.csv";
    TPIIN_RETURN_IF_ERROR(ScanRows(path, 4, [&](const CsvRow& row) -> Status {
      TPIIN_ASSIGN_OR_RETURN(
          uint32_t p,
          DenseOf(plan.person_index, row.fields[0], path, row.line_number));
      return router.Append(plan.ShardOfPersonRow(p), 3, row.raw);
    }));
  }
  {
    const std::string path = data_dir + "/investment.csv";
    TPIIN_RETURN_IF_ERROR(ScanRows(path, 3, [&](const CsvRow& row) -> Status {
      TPIIN_ASSIGN_OR_RETURN(
          uint32_t a,
          DenseOf(plan.company_index, row.fields[0], path, row.line_number));
      return router.Append(plan.ShardOfCompanyRow(a), 4, row.raw);
    }));
  }
  {
    const std::string path = data_dir + "/trades.csv";
    TPIIN_RETURN_IF_ERROR(ScanRows(path, 2, [&](const CsvRow& row) -> Status {
      TPIIN_ASSIGN_OR_RETURN(
          uint32_t s,
          DenseOf(plan.company_index, row.fields[0], path, row.line_number));
      TPIIN_ASSIGN_OR_RETURN(
          uint32_t b,
          DenseOf(plan.company_index, row.fields[1], path, row.line_number));
      if (plan.company_component[s] == plan.company_component[b]) {
        const uint32_t shard = plan.ShardOfCompanyRow(s);
        ++manifest.shards[shard].trade_rows;
        return router.Append(shard, 5, row.raw);
      }
      // Cross-component: cannot be suspicious (no common antecedent) and
      // is never routed; only its deduplicated arc count is owed to the
      // merged report.
      const uint32_t pair[2] = {s, b};
      cross_buffer.append(reinterpret_cast<const char*>(pair),
                          sizeof(pair));
      if (cross_buffer.size() >= options.spill_buffer_bytes) {
        return flush_cross();
      }
      return Status::OK();
    }));
  }
  TPIIN_RETURN_IF_ERROR(router.FlushAll());
  TPIIN_RETURN_IF_ERROR(flush_cross());
  if (report != nullptr) {
    report->AddStage("shard_route", timer.ElapsedSeconds());
  }

  // --- Pass 3: load, fuse, snapshot one shard at a time. Peak RSS from
  // here on is the largest single shard, which is the point.
  timer.Restart();
  // Global company id -> smallest global company id in its TPIIN node
  // (identity unless an investment SCC merged several companies): the
  // node-level key that makes cross-trade dedup agree with the
  // TpiinBuilder's per-arc dedup in the unsharded run.
  std::vector<uint32_t> company_rep(plan.num_companies);
  for (uint32_t c = 0; c < plan.num_companies; ++c) company_rep[c] = c;

  for (uint32_t s = 0; s < options.num_shards; ++s) {
    ShardEntry& entry = manifest.shards[s];
    if (entry.persons == 0 && entry.companies == 0) {
      entry.empty = true;
      continue;
    }
    entry.empty = false;
    TPIIN_FAILPOINT("shard.fuse");
    TPIIN_ASSIGN_OR_RETURN(RawDataset dataset,
                           LoadDatasetCsv(SpillDirOf(out_dir, s)));
    FusionOptions fusion;
    fusion.num_threads = options.num_threads;
    TPIIN_ASSIGN_OR_RETURN(FusionOutput fused, BuildTpiin(dataset, fusion));
    const Tpiin& net = fused.tpiin;

    const std::string snapshot_path =
        out_dir + "/" + ExpandShardPath(manifest.path_template, s);
    SnapshotWriteOptions write_options;
    write_options.include_wcc_index = options.include_wcc_index;
    TPIIN_RETURN_IF_ERROR(WriteSnapshot(net, snapshot_path, write_options));
    TPIIN_RETURN_IF_ERROR(
        WriteShardGids(snapshot_path + ".gids", shard_gids[s]));

    entry.nodes = net.NumNodes();
    entry.arcs = net.NumArcs();
    entry.influence_arcs = net.num_influence_arcs();
    entry.trading_arcs = net.num_trading_arcs();
    entry.intra_trades = net.intra_syndicate_trades().size();
    entry.snapshot_bytes = std::filesystem::file_size(snapshot_path, ec);
    if (ec) entry.snapshot_bytes = 0;

    // Node-level representative per local company; gids are increasing,
    // so the minimum local member is the minimum global member.
    const std::vector<uint32_t>& gids = shard_gids[s];
    std::vector<uint32_t> node_min(net.NumNodes(), UINT32_MAX);
    for (uint32_t lc = 0; lc < gids.size(); ++lc) {
      const NodeId node = net.NodeOfCompany(lc);
      node_min[node] = std::min(node_min[node], lc);
    }
    for (uint32_t lc = 0; lc < gids.size(); ++lc) {
      company_rep[gids[lc]] = gids[node_min[net.NodeOfCompany(lc)]];
    }
    SampleRssGauges();
  }

  // --- Cross-trade dedup at node granularity.
  {
    std::ifstream cross(cross_path, std::ios::binary);
    if (!cross.is_open()) {
      return Status::IOError(cross_path + ": cannot reopen spill");
    }
    std::vector<uint64_t> keys;
    keys.reserve(plan.cross_trade_rows);
    uint32_t pair[2];
    while (cross.read(reinterpret_cast<char*>(pair), sizeof(pair))) {
      keys.push_back(
          (static_cast<uint64_t>(company_rep[pair[0]]) << 32) |
          company_rep[pair[1]]);
    }
    if (cross.bad() || keys.size() != plan.cross_trade_rows) {
      return Status::Corruption(cross_path + ": cross spill damaged");
    }
    std::sort(keys.begin(), keys.end());
    manifest.cross_trade_pairs =
        std::unique(keys.begin(), keys.end()) - keys.begin();
  }

  // Manifest last: a crash anywhere above leaves completed shard
  // snapshots (each internally CRC'd) but no manifest, so readers see
  // "no sharded build here" rather than a torn one.
  TPIIN_RETURN_IF_ERROR(
      WriteShardManifest(out_dir + "/" + kShardManifestName, manifest));
  if (!options.keep_spill) {
    std::filesystem::remove_all(out_dir + "/spill", ec);
  }
  if (report != nullptr) {
    report->AddStage("shard_fuse", timer.ElapsedSeconds());
    ReportSection& section = report->Section("shard");
    section.Set("num_shards", static_cast<int64_t>(manifest.num_shards));
    section.Set("components", static_cast<int64_t>(plan.num_components));
    section.Set("persons", static_cast<int64_t>(manifest.num_persons));
    section.Set("companies", static_cast<int64_t>(manifest.num_companies));
    section.Set("trade_rows", static_cast<int64_t>(manifest.trade_rows));
    section.Set("cross_trade_rows",
                static_cast<int64_t>(manifest.cross_trade_rows));
    section.Set("cross_trade_pairs",
                static_cast<int64_t>(manifest.cross_trade_pairs));
    uint64_t max_weight = 0;
    for (uint64_t w : plan.shard_weight) max_weight = std::max(max_weight, w);
    section.Set("max_shard_weight", static_cast<int64_t>(max_weight));
  }
  return manifest;
}

}  // namespace tpiin

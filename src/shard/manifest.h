#ifndef TPIIN_SHARD_MANIFEST_H_
#define TPIIN_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace tpiin {

/// Per-shard section stats recorded by `shard build` and consumed by
/// `shard detect` / `shard merge` (and by humans reading the file).
struct ShardEntry {
  uint32_t shard = 0;
  /// True when no antecedent component was assigned to this shard (more
  /// shards than components); no snapshot file exists for it.
  bool empty = true;
  uint64_t nodes = 0;
  uint64_t arcs = 0;
  uint64_t influence_arcs = 0;
  uint64_t trading_arcs = 0;
  /// Intra-syndicate (SCC-internal) trades carried by the shard's net.
  uint64_t intra_trades = 0;
  uint64_t persons = 0;
  uint64_t companies = 0;
  uint64_t trade_rows = 0;
  uint64_t snapshot_bytes = 0;
};

/// The versioned, CRC'd index of a shard directory (MANIFEST.shards).
/// Written last and atomically by `shard build`, so its presence is the
/// commit point: a crash mid-build leaves completed part files (each
/// internally checksummed) but no manifest, and every consumer refuses
/// the directory.
struct ShardManifest {
  uint32_t num_shards = 0;
  /// Path template for shard files, relative to the manifest's
  /// directory; "{shard}" expands to the zero-padded shard number
  /// (PISA's expand_shard idiom).
  std::string path_template = "part-{shard}.tpiin";
  uint64_t num_persons = 0;
  uint64_t num_companies = 0;
  /// Trade rows seen in the input; rows whose endpoints live in
  /// different antecedent components are not routed to any shard
  /// (cross_rows of them), and after node-level dedup they contribute
  /// cross_pairs distinct trading relationships to the merged totals.
  uint64_t trade_rows = 0;
  uint64_t cross_trade_rows = 0;
  uint64_t cross_trade_pairs = 0;
  std::vector<ShardEntry> shards;  ///< Exactly num_shards, in order.
};

inline constexpr char kShardManifestName[] = "MANIFEST.shards";

/// Expands "{shard}" in `path_template` to the zero-padded shard number
/// ("part-{shard}.tpiin", 42 -> "part-00042.tpiin"). Templates without
/// the placeholder are returned unchanged (callers validate earlier).
std::string ExpandShardPath(const std::string& path_template,
                            uint32_t shard);

/// Serializes `manifest` (versioned header, one line per shard, trailing
/// CRC-32C over everything above it) and writes it atomically.
Status WriteShardManifest(const std::string& path,
                          const ShardManifest& manifest);

/// Strict parser: wrong magic/version, a missing or mismatched CRC
/// trailer, truncation, shard lines out of order, duplicate or trailing
/// content, and non-numeric fields are all Corruption errors — a torn
/// or tampered manifest never half-loads.
Result<ShardManifest> ReadShardManifest(const std::string& path);

}  // namespace tpiin

#endif  // TPIIN_SHARD_MANIFEST_H_

#include "store/receipt_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace tpiin {

namespace {

constexpr char kMagic[4] = {'T', 'P', 'R', 'S'};
constexpr uint32_t kVersion = 1;
// Written natively and verified on load; a mismatch means the file came
// from a platform with a different byte order.
constexpr uint32_t kEndianMarker = 0x01020304u;

uint64_t PairKey(CompanyId a, CompanyId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

template <typename T>
void WriteColumn(std::ostream& out, const std::vector<T>& column) {
  out.write(reinterpret_cast<const char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(T)));
}

template <typename T>
bool ReadColumn(std::ifstream& in, std::vector<T>& column, size_t rows) {
  column.resize(rows);
  in.read(reinterpret_cast<char*>(column.data()),
          static_cast<std::streamsize>(rows * sizeof(T)));
  return in.good() || (rows == 0 && !in.bad());
}

}  // namespace

void ReceiptStore::AppendBatch(std::span<const Receipt> batch) {
  id_.reserve(id_.size() + batch.size());
  for (const Receipt& receipt : batch) {
    id_.push_back(receipt.id);
    seller_.push_back(receipt.seller);
    buyer_.push_back(receipt.buyer);
    category_.push_back(receipt.category);
    day_.push_back(receipt.day);
    quantity_.push_back(receipt.quantity);
    unit_price_.push_back(receipt.unit_price);
  }
  if (!batch.empty()) index_stale_ = true;
}

Receipt ReceiptStore::Row(size_t index) const {
  TPIIN_CHECK_LT(index, NumRows());
  Receipt receipt;
  receipt.id = id_[index];
  receipt.seller = seller_[index];
  receipt.buyer = buyer_[index];
  receipt.category = category_[index];
  receipt.day = day_[index];
  receipt.quantity = quantity_[index];
  receipt.unit_price = unit_price_[index];
  return receipt;
}

void ReceiptStore::RebuildIndexIfStale() {
  if (!index_stale_) return;
  by_relationship_.clear();
  by_relationship_.reserve(NumRows());
  for (uint32_t row = 0; row < NumRows(); ++row) {
    by_relationship_[PairKey(seller_[row], buyer_[row])].push_back(row);
  }
  index_stale_ = false;
}

std::span<const uint32_t> ReceiptStore::RowsForRelationship(
    CompanyId seller, CompanyId buyer) {
  RebuildIndexIfStale();
  auto it = by_relationship_.find(PairKey(seller, buyer));
  if (it == by_relationship_.end()) return {};
  return it->second;
}

std::vector<TradeRecord> ReceiptStore::DistinctRelationships() const {
  std::vector<TradeRecord> out;
  std::unordered_map<uint64_t, bool> seen;
  seen.reserve(NumRows());
  for (size_t row = 0; row < NumRows(); ++row) {
    if (seen.emplace(PairKey(seller_[row], buyer_[row]), true).second) {
      out.push_back(TradeRecord{seller_[row], buyer_[row]});
    }
  }
  return out;
}

size_t ReceiptStore::NumRelationships() const {
  std::unordered_map<uint64_t, bool> seen;
  seen.reserve(NumRows());
  for (size_t row = 0; row < NumRows(); ++row) {
    seen.emplace(PairKey(seller_[row], buyer_[row]), true);
  }
  return seen.size();
}

Status ReceiptStore::Save(const std::string& path) const {
  TPIIN_FAILPOINT("store.receipt.save");
  AtomicFile file(path, std::ios::binary);
  if (!file.ok()) return Status::IOError("cannot open " + path);
  std::ostream& out = file.stream();
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersion;
  uint32_t endian = kEndianMarker;
  uint64_t rows = NumRows();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&endian), sizeof(endian));
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  WriteColumn(out, id_);
  WriteColumn(out, seller_);
  WriteColumn(out, buyer_);
  WriteColumn(out, category_);
  WriteColumn(out, day_);
  WriteColumn(out, quantity_);
  WriteColumn(out, unit_price_);
  return file.Commit();
}

Result<ReceiptStore> ReceiptStore::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::IOError("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": not a receipt store");
  }
  uint32_t version = 0;
  uint32_t endian = 0;
  uint64_t rows = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&endian), sizeof(endian));
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  if (!in.good()) return Status::Corruption(path + ": truncated header");
  if (version != kVersion) {
    return Status::Corruption(
        StringPrintf("%s: unsupported version %u", path.c_str(), version));
  }
  if (endian != kEndianMarker) {
    return Status::Corruption(path + ": byte-order mismatch");
  }

  ReceiptStore store;
  size_t n = static_cast<size_t>(rows);
  if (!ReadColumn(in, store.id_, n) || !ReadColumn(in, store.seller_, n) ||
      !ReadColumn(in, store.buyer_, n) ||
      !ReadColumn(in, store.category_, n) ||
      !ReadColumn(in, store.day_, n) ||
      !ReadColumn(in, store.quantity_, n) ||
      !ReadColumn(in, store.unit_price_, n)) {
    return Status::Corruption(path + ": truncated column data");
  }
  store.index_stale_ = true;
  return store;
}

MarketTable EstimateMarketTable(const ReceiptStore& store,
                                CategoryId num_categories) {
  std::vector<std::vector<double>> prices(num_categories);
  for (size_t row = 0; row < store.NumRows(); ++row) {
    CategoryId category = store.categories()[row];
    if (category < num_categories) {
      prices[category].push_back(store.unit_prices()[row]);
    }
  }
  MarketTable market;
  market.unit_price.resize(num_categories, 0.0);
  for (CategoryId c = 0; c < num_categories; ++c) {
    std::vector<double>& sample = prices[c];
    if (sample.empty()) continue;
    size_t mid = sample.size() / 2;
    std::nth_element(sample.begin(), sample.begin() + mid, sample.end());
    market.unit_price[c] = sample[mid];
  }
  return market;
}

Ledger StoreToLedger(const ReceiptStore& store, MarketTable market,
                     std::vector<size_t> mispriced_rows) {
  Ledger ledger;
  ledger.market = std::move(market);
  ledger.transactions.reserve(store.NumRows());
  for (size_t row = 0; row < store.NumRows(); ++row) {
    Receipt receipt = store.Row(row);
    Transaction tx;
    tx.id = receipt.id;
    tx.seller = receipt.seller;
    tx.buyer = receipt.buyer;
    tx.category = receipt.category;
    tx.quantity = receipt.quantity;
    tx.unit_price = receipt.unit_price;
    ledger.transactions.push_back(tx);
  }
  ledger.mispriced = std::move(mispriced_rows);
  ledger.num_relations = store.NumRelationships();
  return ledger;
}

}  // namespace tpiin

#ifndef TPIIN_STORE_RECEIPT_STORE_H_
#define TPIIN_STORE_RECEIPT_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "ite/ledger.h"
#include "ite/transaction.h"
#include "model/records.h"

namespace tpiin {

/// One electronic tax receipt (invoice) row — the unit the national tax
/// information collection system ingests at up to ten million rows a day
/// (paper §1). `day` is days since an arbitrary epoch.
struct Receipt {
  TransactionId id = 0;
  CompanyId seller = 0;
  CompanyId buyer = 0;
  CategoryId category = 0;
  uint32_t day = 0;
  double quantity = 0;
  double unit_price = 0;

  double Value() const { return quantity * unit_price; }
};

/// Columnar append-only store for receipts — the "electronic receipt
/// database" of the paper's Fig. 4 flow. Column (SoA) layout keeps the
/// per-field scans the ITE detectors run cache-friendly; a hash index by
/// (seller, buyer) serves the screened audit's "fetch the transactions
/// of this suspicious relationship" lookups without scanning.
///
/// The store persists to a single binary file (versioned header +
/// column blobs) and rebuilds indexes on load.
class ReceiptStore {
 public:
  ReceiptStore() = default;

  // Move-only: the columns can be large.
  ReceiptStore(ReceiptStore&&) = default;
  ReceiptStore& operator=(ReceiptStore&&) = default;
  ReceiptStore(const ReceiptStore&) = delete;
  ReceiptStore& operator=(const ReceiptStore&) = delete;

  /// Appends a batch. Receipt ids need not be unique or ordered; rows
  /// are addressed by dense row index.
  void AppendBatch(std::span<const Receipt> batch);
  void Append(const Receipt& receipt) { AppendBatch({&receipt, 1}); }

  size_t NumRows() const { return seller_.size(); }

  /// Materializes one row.
  Receipt Row(size_t index) const;

  // Column accessors (parallel arrays of length NumRows()).
  const std::vector<CompanyId>& sellers() const { return seller_; }
  const std::vector<CompanyId>& buyers() const { return buyer_; }
  const std::vector<CategoryId>& categories() const { return category_; }
  const std::vector<uint32_t>& days() const { return day_; }
  const std::vector<double>& quantities() const { return quantity_; }
  const std::vector<double>& unit_prices() const { return unit_price_; }

  /// Row indices of all receipts between `seller` and `buyer`
  /// (insertion order). O(1) lookup after the first call per mutation
  /// (the index rebuilds lazily).
  std::span<const uint32_t> RowsForRelationship(CompanyId seller,
                                                CompanyId buyer);

  /// The distinct trading relationships present, each seller -> buyer
  /// pair once, in first-appearance order — the G4 extraction step of
  /// the MSG phase.
  std::vector<TradeRecord> DistinctRelationships() const;

  /// Number of distinct (seller, buyer) pairs.
  size_t NumRelationships() const;

  /// Persists the store to `path` (binary, versioned).
  Status Save(const std::string& path) const;

  /// Loads a store saved by Save().
  static Result<ReceiptStore> Load(const std::string& path);

 private:
  void RebuildIndexIfStale();

  std::vector<TransactionId> id_;
  std::vector<CompanyId> seller_;
  std::vector<CompanyId> buyer_;
  std::vector<CategoryId> category_;
  std::vector<uint32_t> day_;
  std::vector<double> quantity_;
  std::vector<double> unit_price_;

  std::unordered_map<uint64_t, std::vector<uint32_t>> by_relationship_;
  bool index_stale_ = false;
};

/// Estimates arm's-length comparable prices from the whole population:
/// the per-category median unit price. Real CUP analysis derives its
/// comparables from uncontrolled transactions at large, and the median
/// is robust to the minority of transfer-priced rows. Categories absent
/// from the store get price 0 (CupScan skips them).
MarketTable EstimateMarketTable(const ReceiptStore& store,
                                CategoryId num_categories);

/// View of the store as an ITE ledger (copies rows; `mispriced` ground
/// truth is not part of production data and is left empty unless
/// `mispriced_rows` is supplied by a generator).
Ledger StoreToLedger(const ReceiptStore& store, MarketTable market,
                     std::vector<size_t> mispriced_rows = {});

}  // namespace tpiin

#endif  // TPIIN_STORE_RECEIPT_STORE_H_

#ifndef TPIIN_FUSION_LAYERS_H_
#define TPIIN_FUSION_LAYERS_H_

#include "graph/digraph.h"
#include "model/dataset.h"

namespace tpiin {

/// Arc colors used inside the homogeneous layer graphs (before fusion
/// collapses everything to Influence/Trading). Values are arbitrary but
/// stable — exporters key legends off them.
inline constexpr ArcColor kLayerKinship = 10;       // brown edges (Fig. 11)
inline constexpr ArcColor kLayerInterlocking = 11;  // yellow edges (Fig. 11)
inline constexpr ArcColor kLayerInfluence = 12;     // blue arcs (Fig. 12)
inline constexpr ArcColor kLayerInvestment = 13;    // green/red arcs (Fig. 13)
inline constexpr ArcColor kLayerTrading = 14;       // black arcs (Fig. 15)

/// G1, the interdependence graph (§4.1): one node per person, one
/// unidirectional edge per deduplicated person pair (when both a kinship
/// and an interlocking record exist for a pair, only the first is kept —
/// the fusion contraction is insensitive to which). Stored as a single
/// directed arc a->b with a < b.
Digraph BuildInterdependenceGraph(const RawDataset& dataset);

/// G2, the influence bipartite graph (§4.1): nodes [0, P) are persons,
/// [P, P + C) are companies; arcs run person -> company. Duplicate
/// (person, company) records collapse to one arc.
Digraph BuildInfluenceLayerGraph(const RawDataset& dataset);

/// GI (G3 in the experiment figures), the investment graph: one node per
/// company, deduplicated investor -> investee arcs.
Digraph BuildInvestmentGraph(const RawDataset& dataset);

/// G4, the trading graph: one node per company, deduplicated
/// seller -> buyer arcs.
Digraph BuildTradingGraph(const RawDataset& dataset);

}  // namespace tpiin

#endif  // TPIIN_FUSION_LAYERS_H_

#include "fusion/neighborhood.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/logging.h"

namespace tpiin {

Result<Tpiin> ExtractEgoNetwork(const Tpiin& net, NodeId center,
                                const EgoOptions& options) {
  if (center >= net.NumNodes()) {
    return Status::InvalidArgument("ego center out of range");
  }
  const Digraph& g = net.graph();

  // Undirected BFS over the selected colors. The reverse adjacency is
  // derived from a forward pass (Digraph's in-adjacency is lazy and
  // `net` is const).
  std::vector<std::vector<NodeId>> undirected(g.NumNodes());
  for (const Arc& arc : g.arcs()) {
    bool follow = IsInfluenceArc(arc) ? options.follow_influence
                                      : options.follow_trading;
    if (!follow) continue;
    undirected[arc.src].push_back(arc.dst);
    undirected[arc.dst].push_back(arc.src);
  }

  constexpr uint32_t kUnseen = UINT32_MAX;
  std::vector<uint32_t> distance(g.NumNodes(), kUnseen);
  std::deque<NodeId> frontier = {center};
  distance[center] = 0;
  std::vector<NodeId> kept = {center};
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    if (distance[u] >= options.depth) continue;
    for (NodeId v : undirected[u]) {
      if (distance[v] != kUnseen) continue;
      distance[v] = distance[u] + 1;
      kept.push_back(v);
      frontier.push_back(v);
    }
  }
  std::sort(kept.begin(), kept.end());

  std::vector<NodeId> local_of_global(g.NumNodes(), kInvalidNode);
  TpiinBuilder builder;
  for (NodeId global : kept) {
    const TpiinNode& node = net.node(global);
    NodeId local;
    if (node.color == NodeColor::kPerson) {
      local = builder.AddPersonNode(node.label, node.person_members);
    } else {
      local = builder.AddCompanyNode(node.label, node.company_members);
      if (!node.internal_investments.empty()) {
        builder.SetInternalInvestments(local, node.internal_investments);
      }
    }
    local_of_global[global] = local;
  }

  // All arcs between retained nodes, influence first (arc-id order of
  // the source network preserves that invariant).
  for (ArcId id = 0; id < g.NumArcs(); ++id) {
    const Arc& arc = g.arc(id);
    NodeId src = local_of_global[arc.src];
    NodeId dst = local_of_global[arc.dst];
    if (src == kInvalidNode || dst == kInvalidNode) continue;
    if (IsInfluenceArc(arc)) {
      builder.AddInfluenceArc(src, dst, net.ArcWeight(id));
    } else {
      builder.AddTradingArc(src, dst);
    }
  }
  return builder.Build();
}

}  // namespace tpiin

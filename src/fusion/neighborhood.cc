#include "fusion/neighborhood.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/logging.h"

namespace tpiin {

Result<Tpiin> ExtractEgoNetwork(const Tpiin& net, NodeId center,
                                const EgoOptions& options) {
  if (center >= net.NumNodes()) {
    return Status::InvalidArgument("ego center out of range");
  }
  // Undirected BFS over the selected colors, reading the per-arc-id
  // accessor so the extraction works on snapshot-backed networks too.
  std::vector<std::vector<NodeId>> undirected(net.NumNodes());
  for (ArcId id = 0; id < net.NumArcs(); ++id) {
    const Arc arc = net.arc(id);
    bool follow = IsInfluenceArc(arc) ? options.follow_influence
                                      : options.follow_trading;
    if (!follow) continue;
    undirected[arc.src].push_back(arc.dst);
    undirected[arc.dst].push_back(arc.src);
  }

  constexpr uint32_t kUnseen = UINT32_MAX;
  std::vector<uint32_t> distance(net.NumNodes(), kUnseen);
  std::deque<NodeId> frontier = {center};
  distance[center] = 0;
  std::vector<NodeId> kept = {center};
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    if (distance[u] >= options.depth) continue;
    for (NodeId v : undirected[u]) {
      if (distance[v] != kUnseen) continue;
      distance[v] = distance[u] + 1;
      kept.push_back(v);
      frontier.push_back(v);
    }
  }
  std::sort(kept.begin(), kept.end());

  std::vector<NodeId> local_of_global(net.NumNodes(), kInvalidNode);
  TpiinBuilder builder;
  for (NodeId global : kept) {
    const TpiinNode node = net.node(global);
    NodeId local;
    if (node.color == NodeColor::kPerson) {
      local = builder.AddPersonNode(
          node.label, {node.person_members.begin(), node.person_members.end()});
    } else {
      local = builder.AddCompanyNode(
          node.label,
          {node.company_members.begin(), node.company_members.end()});
      if (!node.internal_investments.empty()) {
        builder.SetInternalInvestments(local,
                                       {node.internal_investments.begin(),
                                        node.internal_investments.end()});
      }
    }
    local_of_global[global] = local;
  }

  // All arcs between retained nodes, influence first (arc-id order of
  // the source network preserves that invariant).
  for (ArcId id = 0; id < net.NumArcs(); ++id) {
    const Arc arc = net.arc(id);
    NodeId src = local_of_global[arc.src];
    NodeId dst = local_of_global[arc.dst];
    if (src == kInvalidNode || dst == kInvalidNode) continue;
    if (IsInfluenceArc(arc)) {
      builder.AddInfluenceArc(src, dst, net.ArcWeight(id));
    } else {
      builder.AddTradingArc(src, dst);
    }
  }
  return builder.Build();
}

}  // namespace tpiin

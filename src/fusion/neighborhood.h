#ifndef TPIIN_FUSION_NEIGHBORHOOD_H_
#define TPIIN_FUSION_NEIGHBORHOOD_H_

#include <cstdint>

#include "common/result.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// Options for ego-network extraction.
struct EgoOptions {
  /// Maximum hop count from the center (undirected distance over the
  /// selected arc colors).
  uint32_t depth = 2;
  /// Traverse influence (antecedent) arcs — investment trees, directors,
  /// legal persons. The production system's "investment relationships of
  /// a specified company" tree (Fig. 17) uses these.
  bool follow_influence = true;
  /// Also traverse trading arcs (brings in counterparties).
  bool follow_trading = false;
};

/// Extracts the `options.depth`-hop neighborhood of `center` as a
/// self-contained TPIIN: nodes keep their labels, colors, member lists
/// and arc weights; all arcs of the original network between retained
/// nodes are kept (influence and trading alike, regardless of which
/// colors were traversed). This is the subgraph behind the monitoring
/// system's per-company views (§6, Figs. 17-18) and a convenient unit
/// for export and focused re-mining.
Result<Tpiin> ExtractEgoNetwork(const Tpiin& net, NodeId center,
                                const EgoOptions& options = {});

}  // namespace tpiin

#endif  // TPIIN_FUSION_NEIGHBORHOOD_H_

#include "fusion/tpiin.h"

#include <algorithm>
#include <array>
#include <functional>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "graph/topo.h"

namespace tpiin {

std::string_view NodeColorName(NodeColor color) {
  switch (color) {
    case NodeColor::kPerson:
      return "Person";
    case NodeColor::kCompany:
      return "Company";
  }
  return "unknown";
}

const Digraph& Tpiin::graph() const {
  TPIIN_CHECK(has_graph_)
      << "snapshot-backed TPIIN carries no Digraph; use frozen()/arc()";
  return graph_;
}

std::vector<std::array<uint32_t, 3>> Tpiin::ToEdgeList() const {
  std::vector<std::array<uint32_t, 3>> rows;
  rows.reserve(frozen_.NumArcs());
  for (const Arc& arc : frozen_.ArcsInIdOrder(kArcTrading)) {
    rows.push_back({arc.src, arc.dst, static_cast<uint32_t>(arc.color)});
  }
  return rows;
}

TpiinBuilder::TpiinBuilder() {
  net_.label_offsets_.vec().push_back(0);
  net_.person_member_offsets_.vec().push_back(0);
  net_.company_member_offsets_.vec().push_back(0);
}

NodeId TpiinBuilder::AddNode(NodeColor color, std::string_view label) {
  NodeId id = net_.graph_.AddNode();
  net_.node_color_.vec().push_back(color);
  std::vector<char>& bytes = net_.label_bytes_.vec();
  bytes.insert(bytes.end(), label.begin(), label.end());
  net_.label_offsets_.vec().push_back(bytes.size());
  staged_investments_.emplace_back();
  return id;
}

NodeId TpiinBuilder::AddPersonNode(std::string_view label,
                                   std::vector<PersonId> members) {
  NodeId id = AddNode(NodeColor::kPerson, label);
  std::vector<PersonId>& values = net_.person_members_.vec();
  values.insert(values.end(), members.begin(), members.end());
  net_.person_member_offsets_.vec().push_back(values.size());
  net_.company_member_offsets_.vec().push_back(
      net_.company_members_.vec().size());
  return id;
}

NodeId TpiinBuilder::AddCompanyNode(std::string_view label,
                                    std::vector<CompanyId> members) {
  NodeId id = AddNode(NodeColor::kCompany, label);
  std::vector<CompanyId>& values = net_.company_members_.vec();
  values.insert(values.end(), members.begin(), members.end());
  net_.company_member_offsets_.vec().push_back(values.size());
  net_.person_member_offsets_.vec().push_back(
      net_.person_members_.vec().size());
  return id;
}

ArcId TpiinBuilder::LookupOrInsertArcKey(NodeId src, NodeId dst,
                                         ArcColor color) {
  uint64_t key = (static_cast<uint64_t>(src) << 33) |
                 (static_cast<uint64_t>(dst) << 1) |
                 static_cast<uint64_t>(color & 1);
  ArcId next_id = net_.graph_.NumArcs();
  auto [it, inserted] = seen_arc_keys_.emplace(key, next_id);
  return inserted ? kInvalidArc : it->second;
}

void TpiinBuilder::AddInfluenceArc(NodeId from, NodeId to, double weight) {
  if (saw_trading_arc_) {
    failed_ordering_ = true;
    return;
  }
  ArcId existing = LookupOrInsertArcKey(from, to, kArcInfluence);
  std::vector<double>& weights = net_.arc_weight_.vec();
  if (existing != kInvalidArc) {
    // Keep the strongest evidence for a deduplicated relationship.
    weights[existing] = std::max(weights[existing], weight);
    return;
  }
  net_.graph_.AddArc(from, to, kArcInfluence);
  weights.push_back(weight);
  ++net_.num_influence_arcs_;
}

void TpiinBuilder::AddTradingArc(NodeId seller, NodeId buyer) {
  saw_trading_arc_ = true;
  if (LookupOrInsertArcKey(seller, buyer, kArcTrading) != kInvalidArc) {
    return;
  }
  net_.graph_.AddArc(seller, buyer, kArcTrading);
  net_.arc_weight_.vec().push_back(1.0);
}

void TpiinBuilder::AddIntraSyndicateTrade(NodeId syndicate, CompanyId seller,
                                          CompanyId buyer) {
  net_.intra_syndicate_trades_.vec().push_back(
      IntraSyndicateTrade{syndicate, seller, buyer});
}

void TpiinBuilder::SetInternalInvestments(NodeId node,
                                          std::vector<InvestmentArc> arcs) {
  TPIIN_CHECK_LT(node, staged_investments_.size());
  staged_investments_[node] = std::move(arcs);
}

void TpiinBuilder::SetEntityMaps(std::vector<NodeId> person_node,
                                 std::vector<NodeId> company_node) {
  net_.person_node_.Assign(std::move(person_node));
  net_.company_node_.Assign(std::move(company_node));
}

Result<Tpiin> TpiinBuilder::Build(uint32_t num_threads) {
  if (failed_ordering_) {
    return Status::FailedPrecondition(
        "influence arcs must all precede trading arcs");
  }

  // Flatten the per-node investment stash into its CSR columns, then
  // seal every column: from here on the network is read-only and all
  // accessors (including the validation passes below) go through the
  // sealed views.
  std::vector<uint64_t>& inv_offsets =
      net_.internal_investment_offsets_.vec();
  std::vector<InvestmentArc>& inv = net_.internal_investments_.vec();
  inv_offsets.reserve(staged_investments_.size() + 1);
  inv_offsets.push_back(0);
  for (std::vector<InvestmentArc>& arcs : staged_investments_) {
    inv.insert(inv.end(), arcs.begin(), arcs.end());
    inv_offsets.push_back(inv.size());
  }
  net_.node_color_.Seal();
  net_.label_offsets_.Seal();
  net_.label_bytes_.Seal();
  net_.person_member_offsets_.Seal();
  net_.person_members_.Seal();
  net_.company_member_offsets_.Seal();
  net_.company_members_.Seal();
  net_.internal_investment_offsets_.Seal();
  net_.internal_investments_.Seal();
  net_.arc_weight_.Seal();
  net_.intra_syndicate_trades_.Seal();

  const Digraph& g = net_.graph_;

  // The three finalization passes only read the (now final) graph, so
  // they run as concurrent tasks; the freeze is speculative and simply
  // discarded if a validation task fails.
  Status arc_status = Status::OK();
  bool is_dag = true;
  const std::array<std::function<void()>, 3> passes = {
      [&] { arc_status = ValidateArcs(); },
      // Property 1 rests on the antecedent network being a DAG.
      [&] { is_dag = IsDag(g, IsInfluenceArc); },
      // Freeze the CSR view once the graph is final; every
      // traversal-heavy consumer (segmentation, WCC/SCC, incremental
      // screening) reads it.
      [&] { net_.frozen_ = FrozenGraph(g, kArcInfluence, num_threads); },
  };
  ThreadPool::Global().RunTasks(passes, num_threads);

  if (!arc_status.ok()) return arc_status;
  if (!is_dag) {
    return Status::FailedPrecondition(
        "antecedent (influence) subgraph contains a directed cycle; run "
        "SCC contraction before building a TPIIN");
  }
  return std::move(net_);
}

Status TpiinBuilder::ValidateArcs() const {
  const Digraph& g = net_.graph_;
  for (ArcId id = 0; id < g.NumArcs(); ++id) {
    const Arc& arc = g.arc(id);
    if (IsInfluenceArc(arc)) {
      if (net_.color(arc.dst) != NodeColor::kCompany) {
        return Status::FailedPrecondition(
            "influence arc must end at a Company node: " + LabelOf(arc.src) +
            " -> " + LabelOf(arc.dst));
      }
    } else {
      if (net_.color(arc.src) != NodeColor::kCompany ||
          net_.color(arc.dst) != NodeColor::kCompany) {
        return Status::FailedPrecondition(
            "trading arc must connect Company nodes: " + LabelOf(arc.src) +
            " -> " + LabelOf(arc.dst));
      }
      if (arc.src == arc.dst) {
        return Status::FailedPrecondition(
            "trading self-loop on node " + LabelOf(arc.src) +
            "; intra-syndicate trades must use AddIntraSyndicateTrade");
      }
    }
  }
  return Status::OK();
}

}  // namespace tpiin

#include "fusion/tpiin.h"

#include <algorithm>
#include <array>
#include <functional>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "graph/topo.h"

namespace tpiin {

std::string_view NodeColorName(NodeColor color) {
  switch (color) {
    case NodeColor::kPerson:
      return "Person";
    case NodeColor::kCompany:
      return "Company";
  }
  return "unknown";
}

std::vector<std::array<uint32_t, 3>> Tpiin::ToEdgeList() const {
  std::vector<std::array<uint32_t, 3>> rows;
  rows.reserve(frozen_.NumArcs());
  for (const Arc& arc : frozen_.ArcsInIdOrder(kArcTrading)) {
    rows.push_back({arc.src, arc.dst, static_cast<uint32_t>(arc.color)});
  }
  return rows;
}

NodeId TpiinBuilder::AddPersonNode(std::string label,
                                   std::vector<PersonId> members) {
  NodeId id = net_.graph_.AddNode();
  TpiinNode node;
  node.color = NodeColor::kPerson;
  node.label = std::move(label);
  node.person_members = std::move(members);
  net_.nodes_.push_back(std::move(node));
  return id;
}

NodeId TpiinBuilder::AddCompanyNode(std::string label,
                                    std::vector<CompanyId> members) {
  NodeId id = net_.graph_.AddNode();
  TpiinNode node;
  node.color = NodeColor::kCompany;
  node.label = std::move(label);
  node.company_members = std::move(members);
  net_.nodes_.push_back(std::move(node));
  return id;
}

ArcId TpiinBuilder::LookupOrInsertArcKey(NodeId src, NodeId dst,
                                         ArcColor color) {
  uint64_t key = (static_cast<uint64_t>(src) << 33) |
                 (static_cast<uint64_t>(dst) << 1) |
                 static_cast<uint64_t>(color & 1);
  ArcId next_id = net_.graph_.NumArcs();
  auto [it, inserted] = seen_arc_keys_.emplace(key, next_id);
  return inserted ? kInvalidArc : it->second;
}

void TpiinBuilder::AddInfluenceArc(NodeId from, NodeId to, double weight) {
  if (saw_trading_arc_) {
    failed_ordering_ = true;
    return;
  }
  ArcId existing = LookupOrInsertArcKey(from, to, kArcInfluence);
  if (existing != kInvalidArc) {
    // Keep the strongest evidence for a deduplicated relationship.
    net_.arc_weight_[existing] = std::max(net_.arc_weight_[existing],
                                          weight);
    return;
  }
  net_.graph_.AddArc(from, to, kArcInfluence);
  net_.arc_weight_.push_back(weight);
  ++net_.num_influence_arcs_;
}

void TpiinBuilder::AddTradingArc(NodeId seller, NodeId buyer) {
  saw_trading_arc_ = true;
  if (LookupOrInsertArcKey(seller, buyer, kArcTrading) != kInvalidArc) {
    return;
  }
  net_.graph_.AddArc(seller, buyer, kArcTrading);
  net_.arc_weight_.push_back(1.0);
}

void TpiinBuilder::AddIntraSyndicateTrade(NodeId syndicate, CompanyId seller,
                                          CompanyId buyer) {
  net_.intra_syndicate_trades_.push_back(
      IntraSyndicateTrade{syndicate, seller, buyer});
}

void TpiinBuilder::SetInternalInvestments(
    NodeId node, std::vector<std::pair<CompanyId, CompanyId>> arcs) {
  TPIIN_CHECK_LT(node, net_.nodes_.size());
  net_.nodes_[node].internal_investments = std::move(arcs);
}

void TpiinBuilder::SetEntityMaps(std::vector<NodeId> person_node,
                                 std::vector<NodeId> company_node) {
  net_.person_node_ = std::move(person_node);
  net_.company_node_ = std::move(company_node);
}

Result<Tpiin> TpiinBuilder::Build(uint32_t num_threads) {
  if (failed_ordering_) {
    return Status::FailedPrecondition(
        "influence arcs must all precede trading arcs");
  }
  const Digraph& g = net_.graph_;

  // The three finalization passes only read the (now final) graph, so
  // they run as concurrent tasks; the freeze is speculative and simply
  // discarded if a validation task fails.
  Status arc_status = Status::OK();
  bool is_dag = true;
  const std::array<std::function<void()>, 3> passes = {
      [&] { arc_status = ValidateArcs(); },
      // Property 1 rests on the antecedent network being a DAG.
      [&] { is_dag = IsDag(g, IsInfluenceArc); },
      // Freeze the CSR view once the graph is final; every
      // traversal-heavy consumer (segmentation, WCC/SCC, incremental
      // screening) reads it.
      [&] { net_.frozen_ = FrozenGraph(g, kArcInfluence, num_threads); },
  };
  ThreadPool::Global().RunTasks(passes, num_threads);

  if (!arc_status.ok()) return arc_status;
  if (!is_dag) {
    return Status::FailedPrecondition(
        "antecedent (influence) subgraph contains a directed cycle; run "
        "SCC contraction before building a TPIIN");
  }
  return std::move(net_);
}

Status TpiinBuilder::ValidateArcs() const {
  const Digraph& g = net_.graph_;
  for (ArcId id = 0; id < g.NumArcs(); ++id) {
    const Arc& arc = g.arc(id);
    if (IsInfluenceArc(arc)) {
      if (net_.nodes_[arc.dst].color != NodeColor::kCompany) {
        return Status::FailedPrecondition(
            "influence arc must end at a Company node: " +
            net_.nodes_[arc.src].label + " -> " + net_.nodes_[arc.dst].label);
      }
    } else {
      if (net_.nodes_[arc.src].color != NodeColor::kCompany ||
          net_.nodes_[arc.dst].color != NodeColor::kCompany) {
        return Status::FailedPrecondition(
            "trading arc must connect Company nodes: " +
            net_.nodes_[arc.src].label + " -> " + net_.nodes_[arc.dst].label);
      }
      if (arc.src == arc.dst) {
        return Status::FailedPrecondition(
            "trading self-loop on node " + net_.nodes_[arc.src].label +
            "; intra-syndicate trades must use AddIntraSyndicateTrade");
      }
    }
  }
  return Status::OK();
}

}  // namespace tpiin

#include "fusion/layers.h"

#include <unordered_set>

namespace tpiin {

namespace {

// Packs an ordered node pair into one key for dedup sets.
uint64_t PairKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Digraph BuildInterdependenceGraph(const RawDataset& dataset) {
  Digraph g(static_cast<NodeId>(dataset.persons().size()));
  std::unordered_set<uint64_t> seen;
  for (const InterdependenceRecord& rec : dataset.interdependence()) {
    NodeId a = rec.person_a;
    NodeId b = rec.person_b;
    if (a > b) std::swap(a, b);
    if (!seen.insert(PairKey(a, b)).second) continue;
    ArcColor color = rec.kind == InterdependenceKind::kKinship
                         ? kLayerKinship
                         : kLayerInterlocking;
    g.AddArc(a, b, color);
  }
  return g;
}

Digraph BuildInfluenceLayerGraph(const RawDataset& dataset) {
  const NodeId num_persons = static_cast<NodeId>(dataset.persons().size());
  const NodeId num_companies =
      static_cast<NodeId>(dataset.companies().size());
  Digraph g(num_persons + num_companies);
  std::unordered_set<uint64_t> seen;
  for (const InfluenceRecord& rec : dataset.influence()) {
    NodeId src = rec.person;
    NodeId dst = num_persons + rec.company;
    if (!seen.insert(PairKey(src, dst)).second) continue;
    g.AddArc(src, dst, kLayerInfluence);
  }
  return g;
}

Digraph BuildInvestmentGraph(const RawDataset& dataset) {
  Digraph g(static_cast<NodeId>(dataset.companies().size()));
  std::unordered_set<uint64_t> seen;
  for (const InvestmentRecord& rec : dataset.investments()) {
    if (!seen.insert(PairKey(rec.investor, rec.investee)).second) continue;
    g.AddArc(rec.investor, rec.investee, kLayerInvestment);
  }
  return g;
}

Digraph BuildTradingGraph(const RawDataset& dataset) {
  Digraph g(static_cast<NodeId>(dataset.companies().size()));
  std::unordered_set<uint64_t> seen;
  for (const TradeRecord& rec : dataset.trades()) {
    if (!seen.insert(PairKey(rec.seller, rec.buyer)).second) continue;
    g.AddArc(rec.seller, rec.buyer, kLayerTrading);
  }
  return g;
}

}  // namespace tpiin

#ifndef TPIIN_FUSION_PIPELINE_H_
#define TPIIN_FUSION_PIPELINE_H_

#include <string>

#include "common/result.h"
#include "fusion/tpiin.h"
#include "model/dataset.h"

namespace tpiin {

/// Options for the multi-network fusion pipeline.
struct FusionOptions {
  /// Run RawDataset::Validate() before fusing. Disable only when the
  /// caller has already validated (e.g. Table 1 re-fuses the same
  /// antecedent data twenty times with different trading layers).
  bool validate_dataset = true;

  /// Worker threads for the parallel fusion stages: the independent
  /// relationship-layer builds run as concurrent tasks, the person
  /// edge-contraction uses the chunked union-find driver, the company
  /// contraction the partition-parallel Tarjan, syndicate labels build
  /// in parallel, and the final validation + CSR freeze run as
  /// concurrent passes. 0 = auto-detect, 1 = fully serial. The TPIIN is
  /// bit-identical at any value (tests/fusion/parallel_fusion_test.cc).
  uint32_t num_threads = 1;
};

/// Per-stage counters of the fusion procedure (Fig. 5), reported by the
/// network-figure benches and useful when calibrating generators.
struct FusionStats {
  // G1 (interdependence graph).
  size_t g1_nodes = 0;
  size_t g1_edges = 0;  // After pair dedup.

  // Person contraction (G12 -> G12').
  size_t person_syndicates = 0;       // Person nodes in the TPIIN.
  size_t persons_in_syndicates = 0;   // Persons merged into size>1 nodes.

  // G2 / influence arcs.
  size_t influence_records = 0;
  size_t influence_arcs = 0;  // After contraction + dedup.

  // GI / investment arcs.
  size_t investment_records = 0;
  size_t investment_arcs = 0;           // After contraction + dedup.
  size_t investment_arcs_intra_scc = 0; // Dropped into syndicates.

  // SCC contraction.
  size_t company_syndicates = 0;        // Non-trivial SCS count.
  size_t companies_in_syndicates = 0;

  // Antecedent network (G123).
  size_t antecedent_nodes = 0;
  size_t antecedent_arcs = 0;

  // Trading overlay (G4).
  size_t trade_records = 0;
  size_t trading_arcs = 0;              // After mapping + dedup.
  size_t intra_syndicate_trades = 0;

  std::string ToString() const;
};

/// Wall/CPU seconds per fusion stage. The stages partition BuildTpiin,
/// so layers + assemble + overlay + build ~= total (the remainder is
/// validation and stats bookkeeping).
struct FusionTimings {
  double layers_seconds = 0;    ///< Stage A: parallel layer builds.
  double assemble_seconds = 0;  ///< Stage B: nodes + antecedent arcs.
  double overlay_seconds = 0;   ///< Trading overlay (G4).
  double build_seconds = 0;     ///< Final validate + CSR freeze.
  double total_seconds = 0;
  double layers_cpu_seconds = 0;
  double assemble_cpu_seconds = 0;
  double overlay_cpu_seconds = 0;
  double build_cpu_seconds = 0;
};

/// Result of fusion: the TPIIN plus its build statistics.
struct FusionOutput {
  Tpiin tpiin;
  FusionStats stats;
  FusionTimings timings;
};

/// Runs the full multi-network fusion of §4.1 (Fig. 5):
///   G1 -> person-syndicate contraction -> + G2 -> G12' -> + GI -> G_B
///   -> Tarjan SCC contraction -> G123 (antecedent DAG) -> + G4 -> TPIIN.
Result<FusionOutput> BuildTpiin(const RawDataset& dataset,
                                const FusionOptions& options = {});

class RunReport;

/// Folds a fusion run into `report`: per-stage wall/CPU rows, a
/// "fusion" section mirroring FusionStats, and network-shape gauges.
void AddFusionToReport(const FusionOutput& output, RunReport* report);

}  // namespace tpiin

#endif  // TPIIN_FUSION_PIPELINE_H_

#include "fusion/pipeline.h"

#include <array>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "fusion/layers.h"
#include "graph/frozen.h"
#include "graph/scc.h"
#include "graph/union_find.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace tpiin {

namespace {

uint64_t PairKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Builds a syndicate display label from member names: a single member
// keeps its own name; merged members render as "{a+b+c}".
std::string SyndicateLabel(const std::vector<std::string>& names) {
  if (names.size() == 1) return names[0];
  std::string out = "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += '+';
    out += names[i];
  }
  out += '}';
  return out;
}

}  // namespace

std::string FusionStats::ToString() const {
  return StringPrintf(
      "G1: %zu persons, %zu interdependence edges -> %zu person nodes "
      "(%zu persons merged)\n"
      "G2: %zu influence records -> %zu influence arcs\n"
      "GI: %zu investment records -> %zu investment arcs "
      "(%zu intra-SCC dropped); %zu company syndicates covering %zu "
      "companies\n"
      "Antecedent: %zu nodes, %zu arcs (DAG)\n"
      "Trading: %zu trade records -> %zu trading arcs "
      "(%zu intra-syndicate)",
      g1_nodes, g1_edges, person_syndicates, persons_in_syndicates,
      influence_records, influence_arcs, investment_records,
      investment_arcs, investment_arcs_intra_scc, company_syndicates,
      companies_in_syndicates, antecedent_nodes, antecedent_arcs,
      trade_records, trading_arcs, intra_syndicate_trades);
}

Result<FusionOutput> BuildTpiin(const RawDataset& dataset,
                                const FusionOptions& options) {
  TPIIN_SPAN("fuse");
  WallTimer total_timer;
  if (options.validate_dataset) {
    TPIIN_SPAN("validate_dataset");
    TPIIN_FAILPOINT("fusion.validate");
    TPIIN_RETURN_IF_ERROR(dataset.Validate());
  }
  const uint32_t threads = ResolveThreadCount(options.num_threads);

  FusionStats stats;
  FusionTimings timings;
  WallTimer stage_timer;
  double stage_cpu = ProcessCpuSeconds();
  const auto close_stage = [&](double* wall_sink, double* cpu_sink) {
    *wall_sink = stage_timer.ElapsedSeconds();
    const double cpu_now = ProcessCpuSeconds();
    *cpu_sink = cpu_now - stage_cpu;
    stage_timer.Restart();
    stage_cpu = cpu_now;
  };
  const NodeId num_persons = static_cast<NodeId>(dataset.persons().size());
  const NodeId num_companies =
      static_cast<NodeId>(dataset.companies().size());

  // --- Stage A: the relationship layers are independent views of the
  // raw dataset, so their builds — and the contractions that only
  // depend on one layer — run as concurrent tasks. Every task writes to
  // its own slots; all stats are derived serially afterwards, so the
  // output is identical at any thread count.
  Digraph g1;
  std::vector<NodeId> person_component;
  NodeId num_person_nodes = 0;
  Digraph gi;
  SccResult scc;
  std::vector<double> influence_weight(dataset.influence().size());
  std::unordered_map<NodeId, std::vector<InvestmentArc>> internal_of_component;

  const std::array<std::function<Status()>, 3> layer_tasks = {
      // G1 (kinship + interlocking) + edge contraction: connected
      // components of the interdependence graph become person
      // syndicates. Repeated pairwise edge contraction (the paper's
      // formulation) and union-find produce the same partition; see
      // bench_ablation for the comparison.
      [&]() -> Status {
        TPIIN_FAILPOINT("fusion.layer.g1");
        g1 = BuildInterdependenceGraph(dataset);
        UnionFind person_uf = UnionArcs(num_persons, g1.arcs(), threads);
        person_component = person_uf.DenseComponentIds();
        num_person_nodes = person_uf.NumSets();
        return Status::OK();
      },
      // GI + Tarjan SCC contraction: strongly connected investment
      // subgraphs become company syndicates. Tarjan runs over the CSR
      // view (one contiguous target array instead of per-node id
      // vectors), partition-parallel when threads allow.
      [&]() -> Status {
        TPIIN_FAILPOINT("fusion.layer.gi");
        gi = BuildInvestmentGraph(dataset);
        FrozenGraph frozen_gi(gi, 1, threads);
        scc = StronglyConnectedComponents(frozen_gi, FrozenArcClass::kAll,
                                          threads);

        // Internal investment arcs of each nontrivial SCC, collected in
        // one O(arcs) pass (the previous per-syndicate scan over all of
        // GI was O(syndicates x arcs)). Bucket order is arc-id order,
        // matching the original scan, so proof chains come out identical.
        for (NodeId comp : scc.nontrivial_components) {
          internal_of_component.emplace(comp, std::vector<InvestmentArc>());
        }
        for (const Arc& arc : gi.arcs()) {
          NodeId comp = scc.component_of[arc.src];
          if (comp != scc.component_of[arc.dst]) continue;
          auto it = internal_of_component.find(comp);
          if (it == internal_of_component.end()) {
            continue;  // Trivial SCC self-loop.
          }
          it->second.push_back(InvestmentArc{static_cast<CompanyId>(arc.src),
                                             static_cast<CompanyId>(arc.dst)});
        }
        return Status::OK();
      },
      // Influence layer (G2): per-record arc weights, implementing §7's
      // future-work edge weighting — a legal-person link is full
      // strength, director-type links are weaker.
      [&]() -> Status {
        TPIIN_FAILPOINT("fusion.layer.g2");
        const std::vector<InfluenceRecord>& influence = dataset.influence();
        ThreadPool::Global().ParallelForRanges(
            influence.size(), threads, [&](size_t lo, size_t hi) {
              for (size_t i = lo; i < hi; ++i) {
                const InfluenceRecord& rec = influence[i];
                double weight = 1.0;
                if (!rec.is_legal_person) {
                  switch (rec.kind) {
                    case InfluenceKind::kCeoAndDirectorOf:
                      weight = 0.9;
                      break;
                    case InfluenceKind::kCeoOf:
                    case InfluenceKind::kChairmanOf:
                      weight = 0.8;
                      break;
                    case InfluenceKind::kDirectorOf:
                      weight = 0.6;
                      break;
                  }
                }
                influence_weight[i] = weight;
              }
            });
        return Status::OK();
      },
  };
  {
    TPIIN_SPAN("fuse_layers");
    // Checked run: a failing layer task (or a thrown exception inside
    // one) surfaces as this function's Status instead of crashing the
    // pool; the cancel token lets the sibling layer builds that have not
    // started yet exit early.
    CancelToken cancel;
    TPIIN_RETURN_IF_ERROR(
        ThreadPool::Global().RunTasksChecked(layer_tasks, threads, &cancel));
  }
  close_stage(&timings.layers_seconds, &timings.layers_cpu_seconds);

  stats.g1_nodes = num_persons;
  stats.g1_edges = g1.NumArcs();
  stats.person_syndicates = num_person_nodes;
  stats.investment_records = dataset.investments().size();
  const NodeId num_company_nodes = scc.num_components;
  stats.company_syndicates = scc.nontrivial_components.size();
  for (NodeId comp : scc.nontrivial_components) {
    stats.companies_in_syndicates += scc.members[comp].size();
  }

  // --- Stage B: assemble TPIIN nodes, person syndicates first, then
  // company (syndicate) nodes, so arc ids and node ids stay grouped by
  // color. Syndicate member lists and display labels are precomputed in
  // parallel (index-addressed, so deterministic); the builder inserts
  // serially to keep node ids sequential.
  TpiinBuilder builder;
  std::vector<NodeId> person_node(num_persons, kInvalidNode);
  std::vector<NodeId> company_node(num_companies, kInvalidNode);

  {
    TPIIN_SPAN("fuse_assemble_persons");
    std::vector<std::vector<PersonId>> members(num_person_nodes);
    for (PersonId p = 0; p < num_persons; ++p) {
      members[person_component[p]].push_back(p);
    }
    std::vector<std::string> labels(num_person_nodes);
    ThreadPool::Global().ParallelForRanges(
        num_person_nodes, threads, [&](size_t lo, size_t hi) {
          std::vector<std::string> names;
          for (size_t c = lo; c < hi; ++c) {
            names.clear();
            names.reserve(members[c].size());
            for (PersonId p : members[c]) {
              names.push_back(dataset.persons()[p].name);
            }
            labels[c] = SyndicateLabel(names);
          }
        });
    for (NodeId c = 0; c < num_person_nodes; ++c) {
      if (members[c].size() > 1) {
        stats.persons_in_syndicates += members[c].size();
      }
      NodeId id = builder.AddPersonNode(std::move(labels[c]), members[c]);
      for (PersonId p : members[c]) person_node[p] = id;
    }
  }
  {
    TPIIN_SPAN("fuse_assemble_companies");
    std::vector<std::string> labels(num_company_nodes);
    std::vector<std::vector<CompanyId>> ids(num_company_nodes);
    ThreadPool::Global().ParallelForRanges(
        num_company_nodes, threads, [&](size_t lo, size_t hi) {
          std::vector<std::string> names;
          for (size_t comp = lo; comp < hi; ++comp) {
            const std::vector<NodeId>& comp_members = scc.members[comp];
            names.clear();
            names.reserve(comp_members.size());
            ids[comp].reserve(comp_members.size());
            for (NodeId c : comp_members) {
              names.push_back(dataset.companies()[c].name);
              ids[comp].push_back(static_cast<CompanyId>(c));
            }
            labels[comp] = SyndicateLabel(names);
          }
        });
    for (NodeId comp = 0; comp < num_company_nodes; ++comp) {
      NodeId id = builder.AddCompanyNode(std::move(labels[comp]), ids[comp]);
      for (CompanyId c : ids[comp]) company_node[c] = id;
      if (ids[comp].size() > 1) {
        // Keep the SCS-internal investment arcs: they carry the proof
        // chains for intra-syndicate suspicious trades.
        builder.SetInternalInvestments(
            id, std::move(internal_of_component[comp]));
      }
    }
  }

  // --- Influence arcs (G12'): person syndicate -> company node, with
  // the weights computed in stage A. The builder deduplicates, keeping
  // the maximum weight.
  stats.influence_records = dataset.influence().size();
  for (size_t i = 0; i < dataset.influence().size(); ++i) {
    const InfluenceRecord& rec = dataset.influence()[i];
    builder.AddInfluenceArc(person_node[rec.person],
                            company_node[rec.company], influence_weight[i]);
  }
  stats.influence_arcs = builder.NumArcsSoFar();

  // --- Investment arcs mapped through the SCC contraction; arcs inside
  // one syndicate disappear (they became internal_investments above).
  // The held share fraction becomes the arc weight.
  for (const InvestmentRecord& rec : dataset.investments()) {
    NodeId src = company_node[rec.investor];
    NodeId dst = company_node[rec.investee];
    if (src == dst) {
      ++stats.investment_arcs_intra_scc;
      continue;
    }
    builder.AddInfluenceArc(src, dst, rec.share);
  }
  stats.investment_arcs = builder.NumArcsSoFar() - stats.influence_arcs;

  stats.antecedent_nodes = num_person_nodes + num_company_nodes;
  stats.antecedent_arcs = stats.influence_arcs + stats.investment_arcs;
  close_stage(&timings.assemble_seconds, &timings.assemble_cpu_seconds);

  // --- Trading overlay (G4) mapped through the contraction. Stays
  // serial: intra-syndicate trades are emitted per raw record (no
  // dedup) and trading arc ids follow first-occurrence order, both of
  // which a pre-deduplicating parallel pass would change.
  stats.trade_records = dataset.trades().size();
  std::unordered_set<uint64_t> seen_trades;
  {
    TPIIN_SPAN("fuse_overlay");
    for (const TradeRecord& rec : dataset.trades()) {
      NodeId src = company_node[rec.seller];
      NodeId dst = company_node[rec.buyer];
      if (src == dst) {
        builder.AddIntraSyndicateTrade(src, rec.seller, rec.buyer);
        ++stats.intra_syndicate_trades;
        continue;
      }
      if (!seen_trades.insert(PairKey(src, dst)).second) continue;
      builder.AddTradingArc(src, dst);
      ++stats.trading_arcs;
    }
  }
  close_stage(&timings.overlay_seconds, &timings.overlay_cpu_seconds);

  builder.SetEntityMaps(std::move(person_node), std::move(company_node));
  TPIIN_FAILPOINT("fusion.build");
  Result<Tpiin> built = [&]() {
    TPIIN_SPAN("fuse_build");
    return builder.Build(threads);
  }();
  TPIIN_RETURN_IF_ERROR(built.status());
  Tpiin net = std::move(built).value();
  close_stage(&timings.build_seconds, &timings.build_cpu_seconds);
  timings.total_seconds = total_timer.ElapsedSeconds();

  TPIIN_GAUGE_SET("fusion.nodes", static_cast<int64_t>(net.NumNodes()));
  TPIIN_GAUGE_SET("fusion.arcs",
                  static_cast<int64_t>(net.num_influence_arcs() +
                                       net.num_trading_arcs()));
  TPIIN_GAUGE_SET("fusion.person_syndicates",
                  static_cast<int64_t>(stats.person_syndicates));
  TPIIN_GAUGE_SET("fusion.company_syndicates",
                  static_cast<int64_t>(stats.company_syndicates));
  TPIIN_GAUGE_SET("fusion.trading_arcs",
                  static_cast<int64_t>(stats.trading_arcs));
  return FusionOutput{std::move(net), stats, timings};
}

void AddFusionToReport(const FusionOutput& output, RunReport* report) {
  const FusionTimings& t = output.timings;
  report->AddStage("layers", t.layers_seconds, t.layers_cpu_seconds);
  report->AddStage("assemble", t.assemble_seconds, t.assemble_cpu_seconds);
  report->AddStage("overlay", t.overlay_seconds, t.overlay_cpu_seconds);
  report->AddStage("build", t.build_seconds, t.build_cpu_seconds);
  report->set_total_seconds(t.total_seconds);

  const FusionStats& stats = output.stats;
  ReportSection& section = report->Section("fusion");
  section.Set("g1_nodes", stats.g1_nodes);
  section.Set("g1_edges", stats.g1_edges);
  section.Set("person_syndicates", stats.person_syndicates);
  section.Set("persons_in_syndicates", stats.persons_in_syndicates);
  section.Set("influence_records", stats.influence_records);
  section.Set("influence_arcs", stats.influence_arcs);
  section.Set("investment_records", stats.investment_records);
  section.Set("investment_arcs", stats.investment_arcs);
  section.Set("investment_arcs_intra_scc", stats.investment_arcs_intra_scc);
  section.Set("company_syndicates", stats.company_syndicates);
  section.Set("companies_in_syndicates", stats.companies_in_syndicates);
  section.Set("antecedent_nodes", stats.antecedent_nodes);
  section.Set("antecedent_arcs", stats.antecedent_arcs);
  section.Set("trade_records", stats.trade_records);
  section.Set("trading_arcs", stats.trading_arcs);
  section.Set("intra_syndicate_trades", stats.intra_syndicate_trades);

  ReportSection& net_section = report->Section("network");
  net_section.Set("nodes",
                  static_cast<uint64_t>(output.tpiin.NumNodes()));
  net_section.Set(
      "influence_arcs",
      static_cast<uint64_t>(output.tpiin.num_influence_arcs()));
  net_section.Set("trading_arcs",
                  static_cast<uint64_t>(output.tpiin.num_trading_arcs()));
}

}  // namespace tpiin

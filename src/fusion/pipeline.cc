#include "fusion/pipeline.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "fusion/layers.h"
#include "graph/frozen.h"
#include "graph/scc.h"
#include "graph/union_find.h"

namespace tpiin {

namespace {

uint64_t PairKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Builds a syndicate display label from member names: a single member
// keeps its own name; merged members render as "{a+b+c}".
std::string SyndicateLabel(const std::vector<std::string>& names) {
  if (names.size() == 1) return names[0];
  std::string out = "{";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += '+';
    out += names[i];
  }
  out += '}';
  return out;
}

}  // namespace

std::string FusionStats::ToString() const {
  return StringPrintf(
      "G1: %zu persons, %zu interdependence edges -> %zu person nodes "
      "(%zu persons merged)\n"
      "G2: %zu influence records -> %zu influence arcs\n"
      "GI: %zu investment records -> %zu investment arcs "
      "(%zu intra-SCC dropped); %zu company syndicates covering %zu "
      "companies\n"
      "Antecedent: %zu nodes, %zu arcs (DAG)\n"
      "Trading: %zu trade records -> %zu trading arcs "
      "(%zu intra-syndicate)",
      g1_nodes, g1_edges, person_syndicates, persons_in_syndicates,
      influence_records, influence_arcs, investment_records,
      investment_arcs, investment_arcs_intra_scc, company_syndicates,
      companies_in_syndicates, antecedent_nodes, antecedent_arcs,
      trade_records, trading_arcs, intra_syndicate_trades);
}

Result<FusionOutput> BuildTpiin(const RawDataset& dataset,
                                const FusionOptions& options) {
  if (options.validate_dataset) {
    TPIIN_RETURN_IF_ERROR(dataset.Validate());
  }

  FusionStats stats;
  const NodeId num_persons = static_cast<NodeId>(dataset.persons().size());
  const NodeId num_companies =
      static_cast<NodeId>(dataset.companies().size());

  // --- G1 + edge contraction: connected components of the
  // interdependence graph become person syndicates. Repeated pairwise
  // edge contraction (the paper's formulation) and union-find produce
  // the same partition; see bench_ablation for the comparison.
  Digraph g1 = BuildInterdependenceGraph(dataset);
  stats.g1_nodes = num_persons;
  stats.g1_edges = g1.NumArcs();
  UnionFind person_uf(num_persons);
  for (const Arc& arc : g1.arcs()) person_uf.Union(arc.src, arc.dst);
  std::vector<NodeId> person_component = person_uf.DenseComponentIds();
  const NodeId num_person_nodes = person_uf.NumSets();
  stats.person_syndicates = num_person_nodes;

  // --- GI + Tarjan SCC contraction: strongly connected investment
  // subgraphs become company syndicates. Tarjan runs over the CSR view
  // (one contiguous target array instead of per-node id vectors).
  Digraph gi = BuildInvestmentGraph(dataset);
  stats.investment_records = dataset.investments().size();
  FrozenGraph frozen_gi(gi);
  SccResult scc = StronglyConnectedComponents(frozen_gi);
  const NodeId num_company_nodes = scc.num_components;
  stats.company_syndicates = scc.nontrivial_components.size();
  for (NodeId comp : scc.nontrivial_components) {
    stats.companies_in_syndicates += scc.members[comp].size();
  }

  // Internal investment arcs of each nontrivial SCC, collected in one
  // O(arcs) pass (the previous per-syndicate scan over all of GI was
  // O(syndicates x arcs)). Bucket order is arc-id order, matching the
  // original scan, so proof chains come out identical.
  std::unordered_map<NodeId, std::vector<std::pair<CompanyId, CompanyId>>>
      internal_of_component;
  for (NodeId comp : scc.nontrivial_components) {
    internal_of_component.emplace(
        comp, std::vector<std::pair<CompanyId, CompanyId>>());
  }
  for (const Arc& arc : gi.arcs()) {
    NodeId comp = scc.component_of[arc.src];
    if (comp != scc.component_of[arc.dst]) continue;
    auto it = internal_of_component.find(comp);
    if (it == internal_of_component.end()) continue;  // Trivial SCC self-loop.
    it->second.emplace_back(static_cast<CompanyId>(arc.src),
                            static_cast<CompanyId>(arc.dst));
  }

  // --- Assemble TPIIN nodes: person syndicates first, then company
  // (syndicate) nodes, so arc ids and node ids stay grouped by color.
  TpiinBuilder builder;
  std::vector<NodeId> person_node(num_persons, kInvalidNode);
  std::vector<NodeId> company_node(num_companies, kInvalidNode);

  {
    std::vector<std::vector<PersonId>> members(num_person_nodes);
    for (PersonId p = 0; p < num_persons; ++p) {
      members[person_component[p]].push_back(p);
    }
    for (NodeId c = 0; c < num_person_nodes; ++c) {
      std::vector<std::string> names;
      names.reserve(members[c].size());
      for (PersonId p : members[c]) {
        names.push_back(dataset.persons()[p].name);
        if (members[c].size() > 1) ++stats.persons_in_syndicates;
      }
      NodeId id = builder.AddPersonNode(SyndicateLabel(names), members[c]);
      for (PersonId p : members[c]) person_node[p] = id;
    }
  }
  {
    for (NodeId comp = 0; comp < num_company_nodes; ++comp) {
      const std::vector<NodeId>& comp_members = scc.members[comp];
      std::vector<std::string> names;
      std::vector<CompanyId> ids;
      names.reserve(comp_members.size());
      for (NodeId c : comp_members) {
        names.push_back(dataset.companies()[c].name);
        ids.push_back(static_cast<CompanyId>(c));
      }
      NodeId id = builder.AddCompanyNode(SyndicateLabel(names), ids);
      for (CompanyId c : ids) company_node[c] = id;
      if (comp_members.size() > 1) {
        // Keep the SCS-internal investment arcs: they carry the proof
        // chains for intra-syndicate suspicious trades.
        builder.SetInternalInvestments(
            id, std::move(internal_of_component[comp]));
      }
    }
  }

  // --- Influence arcs (G12'): person syndicate -> company node. The
  // builder deduplicates, keeping the maximum weight; weights implement
  // §7's future-work edge weighting: a legal-person link is full
  // strength, director-type links are weaker.
  stats.influence_records = dataset.influence().size();
  for (const InfluenceRecord& rec : dataset.influence()) {
    double weight = 1.0;
    if (!rec.is_legal_person) {
      switch (rec.kind) {
        case InfluenceKind::kCeoAndDirectorOf:
          weight = 0.9;
          break;
        case InfluenceKind::kCeoOf:
        case InfluenceKind::kChairmanOf:
          weight = 0.8;
          break;
        case InfluenceKind::kDirectorOf:
          weight = 0.6;
          break;
      }
    }
    builder.AddInfluenceArc(person_node[rec.person],
                            company_node[rec.company], weight);
  }
  stats.influence_arcs = builder.NumArcsSoFar();

  // --- Investment arcs mapped through the SCC contraction; arcs inside
  // one syndicate disappear (they became internal_investments above).
  // The held share fraction becomes the arc weight.
  for (const InvestmentRecord& rec : dataset.investments()) {
    NodeId src = company_node[rec.investor];
    NodeId dst = company_node[rec.investee];
    if (src == dst) {
      ++stats.investment_arcs_intra_scc;
      continue;
    }
    builder.AddInfluenceArc(src, dst, rec.share);
  }
  stats.investment_arcs = builder.NumArcsSoFar() - stats.influence_arcs;

  stats.antecedent_nodes = num_person_nodes + num_company_nodes;
  stats.antecedent_arcs = stats.influence_arcs + stats.investment_arcs;

  // --- Trading overlay (G4) mapped through the contraction.
  stats.trade_records = dataset.trades().size();
  std::unordered_set<uint64_t> seen_trades;
  for (const TradeRecord& rec : dataset.trades()) {
    NodeId src = company_node[rec.seller];
    NodeId dst = company_node[rec.buyer];
    if (src == dst) {
      builder.AddIntraSyndicateTrade(src, rec.seller, rec.buyer);
      ++stats.intra_syndicate_trades;
      continue;
    }
    if (!seen_trades.insert(PairKey(src, dst)).second) continue;
    builder.AddTradingArc(src, dst);
    ++stats.trading_arcs;
  }

  builder.SetEntityMaps(std::move(person_node), std::move(company_node));
  TPIIN_ASSIGN_OR_RETURN(Tpiin net, builder.Build());
  return FusionOutput{std::move(net), stats};
}

}  // namespace tpiin

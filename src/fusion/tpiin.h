#ifndef TPIIN_FUSION_TPIIN_H_
#define TPIIN_FUSION_TPIIN_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/column.h"
#include "common/result.h"
#include "graph/digraph.h"
#include "graph/frozen.h"
#include "graph/types.h"
#include "model/records.h"

namespace tpiin {

/// Node colors of a TPIIN (Definition 1): Person covers natural persons
/// and person syndicates; Company covers companies and company
/// (SCC) syndicates.
enum class NodeColor : uint8_t { kPerson = 0, kCompany = 1 };

std::string_view NodeColorName(NodeColor color);

/// Arc colors of a TPIIN. Values match the paper's edge-list encoding
/// ("0 represents black [trading] while 1 represents blue [influence]").
inline constexpr ArcColor kArcTrading = 0;
inline constexpr ArcColor kArcInfluence = 1;

inline bool IsTradingArc(const Arc& arc) { return arc.color == kArcTrading; }
inline bool IsInfluenceArc(const Arc& arc) {
  return arc.color == kArcInfluence;
}

/// One investment arc internal to a contracted SCC syndicate. Plain
/// aggregate (two dense ids) so syndicate provenance serializes into the
/// snapshot as a fixed-width column.
struct InvestmentArc {
  CompanyId investor = 0;
  CompanyId investee = 0;

  friend bool operator==(const InvestmentArc&,
                         const InvestmentArc&) = default;
};

/// A read-only view of one TPIIN vertex with its provenance. A Person
/// node may be a syndicate of several natural persons (edge contraction
/// of interdependence links); a Company node may be a syndicate of
/// several companies (contraction of a strongly connected investment
/// subgraph).
///
/// The view points into the network's columnar node store (owned arrays
/// for fused networks, mmap-ed sections for snapshot-backed ones), so it
/// is cheap to take by value and must not outlive the Tpiin.
struct TpiinNode {
  NodeColor color = NodeColor::kPerson;
  /// Display label: the original entity's name, or "{a+b+...}" for
  /// syndicates.
  std::string_view label;
  /// Original persons merged into this node (Person nodes only).
  std::span<const PersonId> person_members;
  /// Original companies merged into this node (Company nodes only).
  std::span<const CompanyId> company_members;
  /// For company syndicates: the investment arcs internal to the
  /// contracted SCC, kept because any trading relationship between SCC
  /// members is suspicious (§4.3 closing remark) and its proof chain
  /// runs along these arcs.
  std::span<const InvestmentArc> internal_investments;

  bool IsSyndicate() const {
    return person_members.size() > 1 || company_members.size() > 1;
  }
};

/// A trading record whose endpoints were merged into the same company
/// syndicate. The arc would be a self-loop in the contracted graph, so it
/// is kept out of the Digraph and reported here; the detector turns each
/// into a suspicious trade with an intra-SCC proof chain.
struct IntraSyndicateTrade {
  NodeId syndicate_node = kInvalidNode;
  CompanyId seller = 0;
  CompanyId buyer = 0;
};

/// The Taxpayer Interest Interacted Network (Definition 1): the
/// antecedent network (influence arcs, a DAG) overlaid with the trading
/// network. Influence arcs occupy arc ids [0, num_influence_arcs());
/// trading arcs follow — the same convention as the paper's edge-list
/// where antecedent rows precede trading rows.
///
/// Storage is columnar: node colors, a label lexicon (offset-indexed
/// byte pool), member lists and syndicate provenance as CSR columns,
/// plus per-arc weights. A fused network owns these columns; a network
/// opened from a binary snapshot *views* them inside the mmap-ed file —
/// same API, zero per-node or per-arc work at open time.
class Tpiin {
 public:
  /// The mutable arc store. Only available on networks built in-process
  /// (fusion, TpiinBuilder, edge-list ingest); snapshot-backed networks
  /// carry the frozen CSR view and arc endpoint columns instead.
  /// CHECK-fails when !has_graph() — algorithm code should prefer
  /// frozen() and arc().
  const Digraph& graph() const;

  /// False for snapshot-backed networks, whose Digraph was dropped at
  /// build time.
  bool has_graph() const { return has_graph_; }

  /// Immutable CSR view, color-partitioned (influence arcs first per
  /// node); built once by TpiinBuilder::Build() or bound directly to the
  /// snapshot sections. The traversal hot paths read this instead of the
  /// adjacency lists.
  const FrozenGraph& frozen() const { return frozen_; }

  NodeId NumNodes() const {
    return static_cast<NodeId>(node_color_.size());
  }
  ArcId NumArcs() const { return frozen_.NumArcs(); }

  /// Endpoints and color of an arc, addressable on every network: reads
  /// the Digraph when present, the snapshot's endpoint columns when not.
  Arc arc(ArcId id) const {
    if (has_graph_) return graph_.arc(id);
    return Arc{arc_src_[id], arc_dst_[id],
               id < num_influence_arcs_ ? kArcInfluence : kArcTrading};
  }

  NodeColor color(NodeId id) const { return node_color_[id]; }

  /// Provenance view of one node (see TpiinNode).
  TpiinNode node(NodeId id) const {
    return TpiinNode{
        node_color_[id],
        Label(id),
        {person_members_.data() + person_member_offsets_[id],
         person_members_.data() + person_member_offsets_[id + 1]},
        {company_members_.data() + company_member_offsets_[id],
         company_members_.data() + company_member_offsets_[id + 1]},
        {internal_investments_.data() + internal_investment_offsets_[id],
         internal_investments_.data() +
             internal_investment_offsets_[id + 1]},
    };
  }

  ArcId num_influence_arcs() const { return num_influence_arcs_; }
  ArcId num_trading_arcs() const {
    return frozen_.NumArcs() - num_influence_arcs_;
  }

  /// TPIIN node holding a given original person/company. Valid only for
  /// ids < the sizes passed at build time.
  NodeId NodeOfPerson(PersonId p) const { return person_node_[p]; }
  NodeId NodeOfCompany(CompanyId c) const { return company_node_[c]; }

  std::span<const IntraSyndicateTrade> intra_syndicate_trades() const {
    return intra_syndicate_trades_.span();
  }

  std::string_view Label(NodeId id) const {
    return std::string_view(label_bytes_.data() + label_offsets_[id],
                            label_offsets_[id + 1] - label_offsets_[id]);
  }

  /// Influence strength of an arc in (0, 1]; trading arcs carry 1.0.
  double ArcWeight(ArcId id) const { return arc_weight_[id]; }

  /// Precomputed antecedent-layer weakly-connected-component ids, loaded
  /// from a snapshot's segmentation index: SegmentTpiin uses them to
  /// skip the WCC pass entirely. Component numbering is identical to
  /// WeaklyConnectedComponents(frozen(), kInfluence) by construction
  /// (the snapshot writer stored exactly that function's output).
  bool has_wcc_index() const { return wcc_num_components_ != kInvalidNode; }
  std::span<const NodeId> WccComponentOf() const {
    return wcc_component_of_.span();
  }
  NodeId NumWccComponents() const { return wcc_num_components_; }

  /// The paper's r x 3 edge-list encoding: {src, dst, color} with all
  /// antecedent (influence) rows before trading rows. Row i corresponds
  /// to arc id i.
  std::vector<std::array<uint32_t, 3>> ToEdgeList() const;

 private:
  friend class TpiinBuilder;
  friend class SnapshotCodec;  // src/snapshot: serializes/binds columns.

  Digraph graph_;
  bool has_graph_ = true;
  FrozenGraph frozen_;

  // Columnar node store. Offsets columns have NumNodes()+1 entries.
  Col<NodeColor> node_color_;
  Col<uint64_t> label_offsets_;
  Col<char> label_bytes_;
  Col<uint64_t> person_member_offsets_;
  Col<PersonId> person_members_;
  Col<uint64_t> company_member_offsets_;
  Col<CompanyId> company_members_;
  Col<uint64_t> internal_investment_offsets_;
  Col<InvestmentArc> internal_investments_;

  Col<double> arc_weight_;
  ArcId num_influence_arcs_ = 0;
  Col<NodeId> person_node_;
  Col<NodeId> company_node_;
  Col<IntraSyndicateTrade> intra_syndicate_trades_;

  // Snapshot-backed networks only: arc endpoints by arc id (the Digraph
  // equivalent), and the segmentation index.
  Col<NodeId> arc_src_;
  Col<NodeId> arc_dst_;
  Col<NodeId> wcc_component_of_;
  NodeId wcc_num_components_ = kInvalidNode;
};

/// Constructs a Tpiin node by node. Used by the fusion pipeline and by
/// tests/examples that specify small networks directly (e.g. the paper's
/// Fig. 8 worked example). Influence arcs must all be added before the
/// first trading arc; Build() enforces the invariants:
///  - influence arcs end at Company nodes;
///  - trading arcs connect Company nodes;
///  - the influence (antecedent) subgraph is acyclic.
class TpiinBuilder {
 public:
  TpiinBuilder();

  NodeId AddPersonNode(std::string_view label,
                       std::vector<PersonId> members = {});
  NodeId AddCompanyNode(std::string_view label,
                        std::vector<CompanyId> members = {});

  /// Adds an influence/trading arc. CNBM relationships are sets, so a
  /// duplicate (endpoints and color both equal) is silently ignored —
  /// except that a duplicate influence arc raises the stored weight to
  /// the maximum seen (the strongest relationship evidences the link).
  ///
  /// `weight` in (0, 1] quantifies influence strength (§7's future-work
  /// edge weights): 1.0 for a legal-person link or full ownership, the
  /// held share fraction for investment arcs, role-dependent strengths
  /// for director links. Scoring (core/scoring.h) consumes it.
  void AddInfluenceArc(NodeId from, NodeId to, double weight = 1.0);
  void AddTradingArc(NodeId seller, NodeId buyer);

  void AddIntraSyndicateTrade(NodeId syndicate, CompanyId seller,
                              CompanyId buyer);

  /// Attaches SCC-internal investment arcs to a company syndicate node.
  void SetInternalInvestments(NodeId node, std::vector<InvestmentArc> arcs);

  /// Installs the original-id -> node maps (pipeline use). Builders used
  /// directly in tests may skip this; NodeOfPerson/NodeOfCompany then
  /// fall back to identity-sized empty maps.
  void SetEntityMaps(std::vector<NodeId> person_node,
                     std::vector<NodeId> company_node);

  /// Arcs added so far (after deduplication); lets the fusion pipeline
  /// attribute arc counts to its stages.
  ArcId NumArcsSoFar() const { return net_.graph_.NumArcs(); }

  /// Validates and returns the network; the builder is consumed. With
  /// num_threads > 1 the three finalization passes — arc endpoint
  /// validation, the antecedent DAG check, and the CSR freeze — run as
  /// concurrent tasks on the shared ThreadPool (they only read the
  /// graph); the returned network is identical at any thread count.
  Result<Tpiin> Build(uint32_t num_threads = 1);

 private:
  /// Returns the existing arc id for this (src, dst, color) key, or
  /// kInvalidArc after registering it as new.
  ArcId LookupOrInsertArcKey(NodeId src, NodeId dst, ArcColor color);

  NodeId AddNode(NodeColor color, std::string_view label);

  /// Checks the per-arc endpoint invariants (influence ends at Company,
  /// trading connects Companies, no trading self-loops).
  Status ValidateArcs() const;

  std::string LabelOf(NodeId id) const {
    return std::string(net_.Label(id));
  }

  Tpiin net_;
  /// Internal investments arrive per syndicate node in arbitrary order;
  /// Build() flattens them into the CSR columns.
  std::vector<std::vector<InvestmentArc>> staged_investments_;
  std::unordered_map<uint64_t, ArcId> seen_arc_keys_;
  bool saw_trading_arc_ = false;
  bool failed_ordering_ = false;
};

}  // namespace tpiin

#endif  // TPIIN_FUSION_TPIIN_H_

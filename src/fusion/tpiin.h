#ifndef TPIIN_FUSION_TPIIN_H_
#define TPIIN_FUSION_TPIIN_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/digraph.h"
#include "graph/frozen.h"
#include "graph/types.h"
#include "model/records.h"

namespace tpiin {

/// Node colors of a TPIIN (Definition 1): Person covers natural persons
/// and person syndicates; Company covers companies and company
/// (SCC) syndicates.
enum class NodeColor : uint8_t { kPerson = 0, kCompany = 1 };

std::string_view NodeColorName(NodeColor color);

/// Arc colors of a TPIIN. Values match the paper's edge-list encoding
/// ("0 represents black [trading] while 1 represents blue [influence]").
inline constexpr ArcColor kArcTrading = 0;
inline constexpr ArcColor kArcInfluence = 1;

inline bool IsTradingArc(const Arc& arc) { return arc.color == kArcTrading; }
inline bool IsInfluenceArc(const Arc& arc) {
  return arc.color == kArcInfluence;
}

/// One TPIIN vertex with its provenance. A Person node may be a syndicate
/// of several natural persons (edge contraction of interdependence
/// links); a Company node may be a syndicate of several companies
/// (contraction of a strongly connected investment subgraph).
struct TpiinNode {
  NodeColor color = NodeColor::kPerson;
  /// Display label: the original entity's name, or "{a+b+...}" for
  /// syndicates.
  std::string label;
  /// Original persons merged into this node (Person nodes only).
  std::vector<PersonId> person_members;
  /// Original companies merged into this node (Company nodes only).
  std::vector<CompanyId> company_members;
  /// For company syndicates: the investment arcs internal to the
  /// contracted SCC, kept because any trading relationship between SCC
  /// members is suspicious (§4.3 closing remark) and its proof chain
  /// runs along these arcs.
  std::vector<std::pair<CompanyId, CompanyId>> internal_investments;

  bool IsSyndicate() const {
    return person_members.size() > 1 || company_members.size() > 1;
  }
};

/// A trading record whose endpoints were merged into the same company
/// syndicate. The arc would be a self-loop in the contracted graph, so it
/// is kept out of the Digraph and reported here; the detector turns each
/// into a suspicious trade with an intra-SCC proof chain.
struct IntraSyndicateTrade {
  NodeId syndicate_node = kInvalidNode;
  CompanyId seller = 0;
  CompanyId buyer = 0;
};

/// The Taxpayer Interest Interacted Network (Definition 1): the
/// antecedent network (influence arcs, a DAG) overlaid with the trading
/// network. Influence arcs occupy arc ids [0, num_influence_arcs());
/// trading arcs follow — the same convention as the paper's edge-list
/// where antecedent rows precede trading rows.
class Tpiin {
 public:
  const Digraph& graph() const { return graph_; }

  /// Immutable CSR view of graph(), color-partitioned (influence arcs
  /// first per node); built once by TpiinBuilder::Build(). The traversal
  /// hot paths read this instead of the adjacency lists.
  const FrozenGraph& frozen() const { return frozen_; }

  NodeId NumNodes() const { return graph_.NumNodes(); }

  const TpiinNode& node(NodeId id) const { return nodes_[id]; }
  const std::vector<TpiinNode>& nodes() const { return nodes_; }

  ArcId num_influence_arcs() const { return num_influence_arcs_; }
  ArcId num_trading_arcs() const {
    return graph_.NumArcs() - num_influence_arcs_;
  }

  /// TPIIN node holding a given original person/company. Valid only for
  /// ids < the sizes passed at build time.
  NodeId NodeOfPerson(PersonId p) const { return person_node_[p]; }
  NodeId NodeOfCompany(CompanyId c) const { return company_node_[c]; }

  const std::vector<IntraSyndicateTrade>& intra_syndicate_trades() const {
    return intra_syndicate_trades_;
  }

  const std::string& Label(NodeId id) const { return nodes_[id].label; }

  /// Influence strength of an arc in (0, 1]; trading arcs carry 1.0.
  double ArcWeight(ArcId id) const { return arc_weight_[id]; }

  /// The paper's r x 3 edge-list encoding: {src, dst, color} with all
  /// antecedent (influence) rows before trading rows. Row i corresponds
  /// to arc id i.
  std::vector<std::array<uint32_t, 3>> ToEdgeList() const;

 private:
  friend class TpiinBuilder;

  Digraph graph_;
  FrozenGraph frozen_;
  std::vector<TpiinNode> nodes_;
  std::vector<double> arc_weight_;
  ArcId num_influence_arcs_ = 0;
  std::vector<NodeId> person_node_;
  std::vector<NodeId> company_node_;
  std::vector<IntraSyndicateTrade> intra_syndicate_trades_;
};

/// Constructs a Tpiin node by node. Used by the fusion pipeline and by
/// tests/examples that specify small networks directly (e.g. the paper's
/// Fig. 8 worked example). Influence arcs must all be added before the
/// first trading arc; Build() enforces the invariants:
///  - influence arcs end at Company nodes;
///  - trading arcs connect Company nodes;
///  - the influence (antecedent) subgraph is acyclic.
class TpiinBuilder {
 public:
  NodeId AddPersonNode(std::string label,
                       std::vector<PersonId> members = {});
  NodeId AddCompanyNode(std::string label,
                        std::vector<CompanyId> members = {});

  /// Adds an influence/trading arc. CNBM relationships are sets, so a
  /// duplicate (endpoints and color both equal) is silently ignored —
  /// except that a duplicate influence arc raises the stored weight to
  /// the maximum seen (the strongest relationship evidences the link).
  ///
  /// `weight` in (0, 1] quantifies influence strength (§7's future-work
  /// edge weights): 1.0 for a legal-person link or full ownership, the
  /// held share fraction for investment arcs, role-dependent strengths
  /// for director links. Scoring (core/scoring.h) consumes it.
  void AddInfluenceArc(NodeId from, NodeId to, double weight = 1.0);
  void AddTradingArc(NodeId seller, NodeId buyer);

  void AddIntraSyndicateTrade(NodeId syndicate, CompanyId seller,
                              CompanyId buyer);

  /// Attaches SCC-internal investment arcs to a company syndicate node.
  void SetInternalInvestments(
      NodeId node, std::vector<std::pair<CompanyId, CompanyId>> arcs);

  /// Installs the original-id -> node maps (pipeline use). Builders used
  /// directly in tests may skip this; NodeOfPerson/NodeOfCompany then
  /// fall back to identity-sized empty maps.
  void SetEntityMaps(std::vector<NodeId> person_node,
                     std::vector<NodeId> company_node);

  /// Arcs added so far (after deduplication); lets the fusion pipeline
  /// attribute arc counts to its stages.
  ArcId NumArcsSoFar() const { return net_.graph_.NumArcs(); }

  /// Validates and returns the network; the builder is consumed. With
  /// num_threads > 1 the three finalization passes — arc endpoint
  /// validation, the antecedent DAG check, and the CSR freeze — run as
  /// concurrent tasks on the shared ThreadPool (they only read the
  /// graph); the returned network is identical at any thread count.
  Result<Tpiin> Build(uint32_t num_threads = 1);

 private:
  /// Returns the existing arc id for this (src, dst, color) key, or
  /// kInvalidArc after registering it as new.
  ArcId LookupOrInsertArcKey(NodeId src, NodeId dst, ArcColor color);

  /// Checks the per-arc endpoint invariants (influence ends at Company,
  /// trading connects Companies, no trading self-loops).
  Status ValidateArcs() const;

  Tpiin net_;
  std::unordered_map<uint64_t, ArcId> seen_arc_keys_;
  bool saw_trading_arc_ = false;
  bool failed_ordering_ = false;
};

}  // namespace tpiin

#endif  // TPIIN_FUSION_TPIIN_H_

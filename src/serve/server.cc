#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "io/json_report.h"  // JsonEscape, for the slow verb's payload.
#include "obs/prometheus.h"
#include "obs/rss.h"
#include "serve/protocol.h"

namespace tpiin {

namespace {

/// The wake pipe's write end, published for the signal handlers. One
/// server per process may be signal-wired at a time (the CLI's case);
/// tests running several servers drive Shutdown()/Reload() directly
/// instead.
std::atomic<int> g_signal_wake_fd{-1};

/// Wake-pipe byte protocol: the pipe carries intent, not just a wakeup.
/// Any byte other than kWakeReload means shutdown, so the pre-reload
/// convention (write a 1) still stops the server.
constexpr char kWakeShutdown = 'q';
constexpr char kWakeReload = 'r';

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

struct timeval TimeoutToTimeval(double seconds) {
  struct timeval tv;
  if (seconds <= 0) {
    // {0,0} = no timeout; lets a shortened deadline be reset to "none".
    tv.tv_sec = 0;
    tv.tv_usec = 0;
    return tv;
  }
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  // A sub-microsecond positive deadline must not round to "no timeout".
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  return tv;
}

void SetReadTimeout(int fd, double seconds) {
  const struct timeval tv = TimeoutToTimeval(seconds);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SetWriteTimeout(int fd, double seconds) {
  if (seconds <= 0) return;
  const struct timeval tv = TimeoutToTimeval(seconds);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Evaluates a failpoint site without the return-macro: the serve loops
/// must keep running after an injected fault, so the Status is handed
/// back for local handling instead of propagated.
Status CheckFailpoint(const char* site) {
  if (!Failpoints::AnyActive()) return Status::OK();
  return Failpoints::Check(site);
}

/// TraceSpan names must have static storage; map the (dynamic) verb to
/// its literal. Unknown verbs share one bucket — the trace is a latency
/// picture, not a request log (that is the access log's job).
const char* SpanNameForVerb(const std::string& verb) {
  if (verb == "groups") return "serve.groups";
  if (verb == "explain") return "serve.explain";
  if (verb == "rescore") return "serve.rescore";
  if (verb == "stats") return "serve.stats";
  if (verb == "metrics") return "serve.metrics";
  if (verb == "slow") return "serve.slow";
  if (verb == "healthz") return "serve.healthz";
  if (verb == "reload") return "serve.reload";
  if (verb == "malformed") return "serve.malformed";
  return "serve.other";
}

const char* CacheToken(RequestTelemetry::Cache cache) {
  switch (cache) {
    case RequestTelemetry::Cache::kNone:
      return "none";
    case RequestTelemetry::Cache::kHit:
      return "hit";
    case RequestTelemetry::Cache::kMiss:
      return "miss";
  }
  return "none";
}

}  // namespace

Server::Server(const ServeOptions& options)
    : options_(options),
      admission_(options.max_inflight, options.max_queue),
      slow_ring_(options.slow_requests) {}

Result<std::unique_ptr<Server>> Server::Start(const ServeOptions& options) {
  std::unique_ptr<Server> server(new Server(options));

  if (!options.access_log_path.empty()) {
    // An unopenable access log is a startup failure, not a degraded
    // run: an operator who asked for the log must not silently lose it.
    // Opened before the registry, which logs its reload events here.
    std::string error;
    server->access_log_ = JsonLogSink::Open(options.access_log_path, &error);
    if (server->access_log_ == nullptr) return Status::IOError(error);
  }

  SnapshotOpenOptions open_options;
  open_options.verify_checksums = options.verify_checksums;
  server->registry_ = std::make_unique<SnapshotRegistry>(
      options.service, open_options, &server->metrics_,
      server->access_log_.get());
  TPIIN_RETURN_IF_ERROR(
      server->registry_->LoadInitial(options.snapshot_path));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable host (want IPv4 dotted quad): " +
                                   options.host);
  }

  server->listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(server->listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return ErrnoStatus("bind");
  }
  if (listen(server->listen_fd_, 64) != 0) return ErrnoStatus("listen");

  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(server->listen_fd_,
                  reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) != 0) {
    return ErrnoStatus("getsockname");
  }
  server->port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  // Non-blocking write end: a signal handler must never block, and a
  // full pipe already means a wakeup is pending. Non-blocking read end:
  // the acceptor drains whatever bytes are queued without parking.
  fcntl(server->wake_write_fd_, F_SETFL, O_NONBLOCK);
  fcntl(server->wake_read_fd_, F_SETFL, O_NONBLOCK);
  g_signal_wake_fd.store(server->wake_write_fd_, std::memory_order_release);

  server->started_at_ = std::chrono::steady_clock::now();
  // Everything fallible is behind us: install the live-traffic trace
  // recorder and start the background threads last, so a failed Start
  // never leaves a recorder installed or a thread running.
  if (!options.trace_out_path.empty()) {
    server->trace_ = std::make_unique<TraceRecorder>();
    server->trace_->Install();
  }
  if (!options.metrics_out_path.empty()) {
    server->metrics_writer_ =
        std::thread([s = server.get()] { s->MetricsWriterLoop(); });
  }
  // The reload worker exists for the server's whole lifetime (it is
  // the SIGHUP target); idle, it costs one parked thread.
  server->reload_worker_ =
      std::thread([s = server.get()] { s->ReloadWorkerLoop(); });
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  TPIIN_LOG(Info) << "serving " << options.snapshot_path << " on "
                  << options.host << ":" << server->port_;
  return server;
}

Server::~Server() {
  Shutdown();
  if (acceptor_.joinable()) Wait();
  g_signal_wake_fd.store(-1, std::memory_order_release);
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
  if (listen_fd_ >= 0) close(listen_fd_);
}

void Server::RequestShutdownFromSignal() {
  // Async-signal-safe: one atomic load and one write(2).
  const int fd = g_signal_wake_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    [[maybe_unused]] ssize_t n = write(fd, &kWakeShutdown, 1);
  }
}

void Server::RequestReloadFromSignal() {
  // Async-signal-safe: the actual reload happens on the reload worker
  // once the acceptor reads the byte off the pipe. A full pipe means
  // wakeups are already pending; losing the byte would lose at most a
  // coalesced-away duplicate reload.
  const int fd = g_signal_wake_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    [[maybe_unused]] ssize_t n = write(fd, &kWakeReload, 1);
  }
}

void Server::Shutdown() {
  if (stopping_.exchange(true)) return;
  [[maybe_unused]] ssize_t n = write(wake_write_fd_, &kWakeShutdown, 1);
}

void Server::AcceptLoop() {
  while (true) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    const int ready = poll(fds, 2, /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      // Drain the wake pipe and act on what it carried: reload bytes
      // (coalesced — ten queued SIGHUPs are one reload) are handed to
      // the reload worker; anything else is a shutdown request.
      char bytes[64];
      bool reload = false;
      bool quit = false;
      ssize_t n;
      while ((n = read(wake_read_fd_, bytes, sizeof(bytes))) > 0) {
        for (ssize_t i = 0; i < n; ++i) {
          if (bytes[i] == kWakeReload) {
            reload = true;
          } else {
            quit = true;
          }
        }
      }
      if (reload && !quit) NotifyReloadWorker();
      if (quit) {
        stopping_.store(true, std::memory_order_release);
        break;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    if (!(fds[0].revents & POLLIN)) continue;

    // Reap terminated connection threads before taking a new one, so
    // the finished backlog stays bounded by the admission cap rather
    // than growing with every connection ever served.
    ReapFinishedConnections();

    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // 1-based accept serial; the "c" half of this connection's request
    // IDs ("c<conn>-r<seq>").
    const uint64_t conn_id =
        connections_accepted_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Every write on this connection (including the busy refusal below)
    // is bounded: a client that stops draining cannot stall a thread.
    SetWriteTimeout(fd, options_.write_deadline_seconds);

    if (!CheckFailpoint("serve.accept").ok()) {
      // Injected accept fault: drop this connection, keep serving.
      close(fd);
      continue;
    }

    // Admission is decided here, on the acceptor, so saturation is a
    // deterministic function of open connections — not of worker
    // scheduling. A refused connection gets one busy line and is closed.
    if (!admission_.TryEnterConnection()) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      busy_.fetch_add(1, std::memory_order_relaxed);
      Response resp;
      // r0: refused before any request line was read.
      resp.request_id =
          StringPrintf("c%llu-r0", static_cast<unsigned long long>(conn_id));
      resp.status = "busy";
      resp.error = StringPrintf(
          "server at capacity (%zu in flight + %zu queued)",
          options_.max_inflight, options_.max_queue);
      const std::string wire = SerializeResponse(resp) + "\n";
      // Log before ack, as for request records below.
      if (access_log_ != nullptr) {
        std::vector<LogField> fields;
        fields.emplace_back("conn", conn_id);
        fields.emplace_back("req", resp.request_id);
        fields.emplace_back("status", resp.status);
        fields.emplace_back("bytes", static_cast<uint64_t>(wire.size()));
        access_log_->Event(LogLevel::kWarning, "serve", "refused", fields);
      }
      WriteWire(fd, wire);
      close(fd);
      continue;
    }

    SetReadTimeout(fd, options_.idle_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_fds_.insert(fd);
      ++active_connections_;
      // A dedicated I/O thread, not a pool task: parked in recv it
      // costs one idle thread, never a pool worker. The admission cap
      // bounds how many exist at once; each hands itself back via
      // finished_threads_ when done.
      auto it = connection_threads_.emplace(connection_threads_.end());
      *it = std::thread(
          [this, fd, conn_id, it] { HandleConnection(fd, conn_id, it); });
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  accept_done_ = true;
  drained_cv_.notify_all();
}

bool Server::ReadLine(int fd, std::string* buffer, std::string* line) {
  WallTimer line_timer;
  // The line deadline runs while a partial line is pending: leftover
  // bytes in the buffer are mid-line from a previous recv, otherwise
  // the clock starts at the first byte of this line. A fully idle
  // connection stays governed by the (longer) idle timeout alone.
  bool mid_line = !buffer->empty();
  bool timeout_shortened = false;
  bool injected_eintr = false;
  while (true) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(*buffer, 0, newline);
      buffer->erase(0, newline + 1);
      if (timeout_shortened) {
        SetReadTimeout(fd, options_.idle_timeout_seconds);
      }
      return true;
    }
    if (buffer->size() > options_.max_line_bytes) {
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      Response resp;
      resp.status = "error";
      resp.error = StringPrintf("request line over %zu bytes",
                                options_.max_line_bytes);
      WriteResponse(fd, resp);
      return false;
    }
    if (mid_line && options_.line_deadline_seconds > 0) {
      const double remaining =
          options_.line_deadline_seconds - line_timer.ElapsedSeconds();
      if (remaining <= 0) {
        // Slow loris: the line never completed inside its budget. Tell
        // the client why, then drop the connection.
        read_errors_.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.status = "error";
        resp.error = StringPrintf(
            "request line not completed within %.3fs",
            options_.line_deadline_seconds);
        WriteResponse(fd, resp);
        return false;
      }
      double window = remaining;
      if (options_.idle_timeout_seconds > 0) {
        window = std::min(window, options_.idle_timeout_seconds);
      }
      SetReadTimeout(fd, window);
      timeout_shortened = true;
    }
    // serve.io.read.*: connection-level I/O hazards. A short read must
    // reassemble correctly; a signal-interrupted recv must retry. The
    // EINTR injection is once per ReadLine call, so an `error` (fire
    // every hit) policy cannot spin this loop forever.
    size_t want = 4096;
    if (!CheckFailpoint("serve.io.read.short").ok()) want = 1;
    if (!injected_eintr && !CheckFailpoint("serve.io.read.eintr").ok()) {
      injected_eintr = true;
      continue;
    }
    char chunk[4096];
    const ssize_t n = recv(fd, chunk, want, 0);
    if (n == 0) return false;  // Orderly EOF (or SHUT_RD during drain).
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The shortened SO_RCVTIMEO may fire exactly at the line
        // deadline; route that through the deadline branch above so
        // the client gets the explanatory error.
        if (mid_line && options_.line_deadline_seconds > 0 &&
            line_timer.ElapsedSeconds() >= options_.line_deadline_seconds) {
          continue;
        }
        return false;  // Idle timeout.
      }
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!CheckFailpoint("serve.read").ok()) {
      // Injected read fault: this connection is lost mid-stream; the
      // server keeps serving others.
      read_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!mid_line) {
      mid_line = true;
      line_timer.Restart();
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

void Server::WriteResponse(int fd, const Response& response) {
  WriteWire(fd, SerializeResponse(response) + "\n");
}

bool Server::WriteWire(int fd, const std::string& line) {
  bool injected_eintr = false;
  size_t written = 0;
  while (written < line.size()) {
    // serve.io.write.*: mirror of the read-side hazards — short writes
    // must resume at the right offset, EINTR must retry (once per call,
    // so an always-fire policy cannot loop forever).
    size_t want = line.size() - written;
    if (!CheckFailpoint("serve.io.write.short").ok()) want = 1;
    if (!injected_eintr && !CheckFailpoint("serve.io.write.eintr").ok()) {
      injected_eintr = true;
      continue;
    }
    // MSG_NOSIGNAL: a client that hung up must surface as EPIPE, not
    // kill the process with SIGPIPE.
    const ssize_t n = send(fd, line.data() + written, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK = the SO_SNDTIMEO write deadline: the client
      // stopped draining. Either way this connection is done.
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

void Server::HandleConnection(int fd, uint64_t conn_id,
                              std::list<std::thread>::iterator self) {
  TPIIN_LOG(Debug) << "connection c" << conn_id << " open";
  std::string buffer;
  std::string line;
  uint64_t request_seq = 0;
  while (ReadLine(fd, &buffer, &line)) {
    // Blank lines are keep-alive noise, not requests.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    // One span per request, covering queue wait, evaluation and the
    // response write; named sub-spans nest inside it.
    TPIIN_SPAN("serve.request");
    WallTimer queue_timer;
    bool admitted = false;
    {
      TPIIN_SPAN("serve.queue");
      admitted = admission_.AcquireRequestSlot();
    }
    if (!admitted) break;  // Shutdown abort.
    const uint64_t queue_us =
        static_cast<uint64_t>(queue_timer.ElapsedMicros());
    // Request IDs are "c<conn>-r<seq>", seq 1-based and monotonic per
    // connection — minted here, echoed on the wire, and naming this
    // request in the access log, the trace and the slow ring.
    ++request_seq;
    const std::string request_id = StringPrintf(
        "c%llu-r%llu", static_cast<unsigned long long>(conn_id),
        static_cast<unsigned long long>(request_seq));
    requests_.fetch_add(1, std::memory_order_relaxed);
    metrics_.GetGauge("serve.inflight")
        .Set(static_cast<int64_t>(admission_.inflight()));

    WallTimer timer;
    Response resp;
    RequestTelemetry telemetry;
    Result<Request> request = ParseRequestLine(line);
    const std::string verb = request.ok() ? request->verb : "malformed";
    {
#if TPIIN_OBS_ENABLED
      TraceSpan verb_span(SpanNameForVerb(verb));
#endif
      if (!request.ok()) {
        resp.status = "error";
        resp.error = request.status().ToString();
        read_errors_.fetch_add(1, std::memory_order_relaxed);
      } else if (!CheckFailpoint("serve.handle").ok()) {
        // Injected handler fault: this request errors, the connection
        // and the server carry on.
        resp.id = request->id;
        resp.verb = request->verb;
        resp.status = "error";
        resp.error = "injected failure at serve.handle";
      } else if (request->verb == "stats") {
        resp.id = request->id;
        resp.verb = request->verb;
        resp.status = "ok";
        resp.payload = BuildStatsReport().ToJson();
        metrics_.GetCounter("serve.requests.stats").Add(1);
      } else if (request->verb == "metrics") {
        resp.id = request->id;
        resp.verb = request->verb;
        resp.status = "ok";
        resp.payload = BuildMetricsText();
        metrics_.GetCounter("serve.requests.metrics").Add(1);
      } else if (request->verb == "slow") {
        resp.id = request->id;
        resp.verb = request->verb;
        resp.status = "ok";
        resp.payload = BuildSlowPayload();
        metrics_.GetCounter("serve.requests.slow").Add(1);
      } else if (request->verb == "reload") {
        resp = HandleReloadVerb(*request);
        metrics_.GetCounter("serve.requests.reload").Add(1);
      } else if (request->verb == "healthz") {
        resp = HandleHealthzVerb(*request);
        metrics_.GetCounter("serve.requests.healthz").Add(1);
      } else {
        // Pin this request's generation: it holds the shared_ptr for
        // the whole evaluation, so a hot-reload mid-request swaps the
        // registry but cannot unmap the snapshot being read here. The
        // next request on this connection picks up the new generation.
        const std::shared_ptr<const SnapshotGeneration> generation =
            registry_->Current();
        resp = generation->service->Handle(*request, &telemetry);
        metrics_.GetCounter("serve.requests." + request->verb).Add(1);
      }
    }
    resp.request_id = request_id;

    if (resp.status == "ok") {
      ok_.fetch_add(1, std::memory_order_relaxed);
    } else if (resp.status == "degraded") {
      degraded_.fetch_add(1, std::memory_order_relaxed);
    } else if (resp.status == "busy") {
      busy_.fetch_add(1, std::memory_order_relaxed);
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
    const uint64_t handle_us =
        static_cast<uint64_t>(timer.ElapsedMicros());
    metrics_.GetHistogram("serve.latency_us." + verb).Record(handle_us);
    metrics_.GetHistogram("serve.queue_us").Record(queue_us);

    const std::string wire = SerializeResponse(resp) + "\n";

    // Log before ack: the record must be in the file before the client
    // can act on the response. A client that reacts to this answer by
    // opening another connection (which may be refused, producing its
    // own record) would otherwise race its record ahead of this one,
    // breaking the log's happens-before ordering.
    const char* cache = CacheToken(telemetry.cache);
    if (access_log_ != nullptr) {
      std::vector<LogField> fields;
      fields.reserve(8);
      fields.emplace_back("conn", conn_id);
      fields.emplace_back("req", request_id);
      fields.emplace_back("verb", verb);
      fields.emplace_back("status", resp.status);
      fields.emplace_back("bytes", static_cast<uint64_t>(wire.size()));
      fields.emplace_back("cache", cache);
      fields.emplace_back("queue_us", queue_us);
      fields.emplace_back("handle_us", handle_us);
      access_log_->Event(resp.status == "error" ? LogLevel::kWarning
                                                : LogLevel::kInfo,
                         "serve", "request", fields);
    }

    const bool wrote = WriteWire(fd, wire);
    if (!wrote) write_errors_.fetch_add(1, std::memory_order_relaxed);
    if (slow_ring_.capacity() > 0) {
      SlowRequest slow;
      slow.request_id = request_id;
      slow.verb = verb;
      slow.status = resp.status;
      slow.cache = cache;
      slow.bytes = wire.size();
      slow.queue_us = queue_us;
      slow.handle_us = handle_us;
      slow.detect_seconds = telemetry.detect_seconds;
      slow.segment_seconds = telemetry.segment_seconds;
      slow.mine_seconds = telemetry.mine_seconds;
      slow.finalize_seconds = telemetry.finalize_seconds;
      slow_ring_.Record(std::move(slow));
    }

    admission_.ReleaseRequestSlot();
    metrics_.GetGauge("serve.inflight")
        .Set(static_cast<int64_t>(admission_.inflight()));
    // A dead write half means the client is gone; further reads would
    // only evaluate requests whose answers cannot be delivered.
    if (!wrote) break;
  }

  // Bookkeeping strictly before close(fd): once the fd is closed the
  // kernel may hand the same number to a fresh accept, and an erase
  // after that would remove the NEW connection from open_fds_ — leaving
  // it invisible to DrainConnections. Same for LeaveConnection: freeing
  // the admission slot is what lets the acceptor admit a successor.
  {
    std::lock_guard<std::mutex> lock(mu_);
    open_fds_.erase(fd);
    --active_connections_;
    // Hand our own handle to the reaper; joining it merely waits out
    // the few instructions left below.
    finished_threads_.push_back(std::move(*self));
    connection_threads_.erase(self);
    drained_cv_.notify_all();
  }
  close(fd);
  admission_.LeaveConnection();
  TPIIN_LOG(Debug) << "connection c" << conn_id << " closed after "
                   << request_seq << " request(s)";
}

Response Server::HandleReloadVerb(const Request& request) {
  Response resp;
  resp.id = request.id;
  resp.verb = request.verb;
  // Synchronous: the registry validates the candidate end-to-end before
  // answering, so an `ok` here means the swap (or no-op) is complete
  // and the next query on any connection sees the outcome. Rejections
  // surface the validation error verbatim; the old generation is
  // untouched.
  Result<ReloadOutcome> outcome = registry_->Reload(request.path);
  if (!outcome.ok()) {
    resp.status = "error";
    resp.error = outcome.status().ToString();
    return resp;
  }
  const SnapshotGeneration& generation = *outcome->generation;
  resp.status = "ok";
  resp.payload = StringPrintf(
      "generation: %llu\nsnapshot: %s\ncrc: %08x\nswapped: %s\n",
      static_cast<unsigned long long>(generation.id),
      generation.path.c_str(), generation.crc(),
      outcome->swapped ? "true" : "false");
  return resp;
}

Response Server::HandleHealthzVerb(const Request& request) {
  Response resp;
  resp.id = request.id;
  resp.verb = request.verb;
  resp.status = "ok";
  // First line stays the bare "ok" (a `head -1` liveness probe keeps
  // working); the rest is the reload metadata an operator polls to
  // confirm a swap landed.
  const std::shared_ptr<const SnapshotGeneration> generation =
      registry_->Current();
  resp.payload = StringPrintf(
      "ok\ngeneration: %llu\nsnapshot: %s\ncrc: %08x\nloaded: %s\n"
      "reloads: ok=%llu failed=%llu unchanged=%llu\n",
      static_cast<unsigned long long>(generation->id),
      generation->path.c_str(), generation->crc(),
      FormatLogTimestamp(generation->loaded_unix_micros).c_str(),
      static_cast<unsigned long long>(registry_->reload_swaps()),
      static_cast<unsigned long long>(registry_->reload_failures()),
      static_cast<unsigned long long>(registry_->reload_noops()));
  return resp;
}

void Server::NotifyReloadWorker() {
  {
    std::lock_guard<std::mutex> lock(reload_worker_mu_);
    reload_pending_ = true;
  }
  reload_worker_cv_.notify_all();
}

void Server::ReloadWorkerLoop() {
  std::unique_lock<std::mutex> lock(reload_worker_mu_);
  while (true) {
    reload_worker_cv_.wait(
        lock, [this] { return reload_worker_stop_ || reload_pending_; });
    if (reload_worker_stop_) break;
    reload_pending_ = false;
    lock.unlock();
    // Outcome and errors are fully accounted inside the registry
    // (counters, TPIIN_LOG, structured events); a failed SIGHUP reload
    // must not touch the serving state, so there is nothing to do with
    // the status here.
    (void)registry_->Reload();
    lock.lock();
  }
}

void Server::ReapFinishedConnections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished.swap(finished_threads_);
  }
  for (std::thread& thread : finished) {
    if (thread.joinable()) thread.join();
  }
}

void Server::DrainConnections() {
  // Phase 1 (graceful): sever the read half of every open connection.
  // A task parked in recv sees EOF and winds down; a task mid-request
  // still owns a live write half and gets to answer.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_connections_ > 0) {
      TPIIN_LOG(Info) << "draining " << active_connections_
                      << " connection(s), budget " << options_.drain_seconds
                      << "s";
    }
    for (int fd : open_fds_) shutdown(fd, SHUT_RD);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait_for(
        lock,
        std::chrono::duration<double>(options_.drain_seconds),
        [this] { return active_connections_ == 0; });
  }

  // Phase 2 (forced): whatever is still running lost its drain budget.
  // Abort slot waiters and sever both halves; the final wait is
  // unbounded because each remaining task holds `this` and must fully
  // unwind before the server may be destroyed.
  admission_.Abort();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_fds_.empty()) {
      TPIIN_LOG(Warning) << "drain budget expired; severing "
                         << open_fds_.size() << " connection(s)";
    }
    for (int fd : open_fds_) shutdown(fd, SHUT_RDWR);
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return active_connections_ == 0; });
}

ServeSummary Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return accept_done_; });
  }
  if (acceptor_.joinable()) acceptor_.join();
  DrainConnections();
  // Every handler has decremented active_connections_ and moved its
  // handle to finished_threads_; joining is now just reaping the final
  // few instructions of each thread. connection_threads_ is drained
  // too, defensively — it should already be empty.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(finished_threads_);
    for (std::thread& thread : connection_threads_) {
      threads.push_back(std::move(thread));
    }
    connection_threads_.clear();
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }

  // Stop the reload worker; a reload already in progress completes
  // first (harmless: draining requests grabbed their generation long
  // ago, and the registry outlives every connection).
  if (reload_worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(reload_worker_mu_);
      reload_worker_stop_ = true;
    }
    reload_worker_cv_.notify_all();
    reload_worker_.join();
  }

  // Stop the metrics writer and leave one final snapshot behind, so a
  // scrape after shutdown sees the daemon's complete lifetime.
  if (metrics_writer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(metrics_writer_mu_);
      metrics_writer_stop_ = true;
    }
    metrics_writer_cv_.notify_all();
    metrics_writer_.join();
    const Status status =
        WriteFileAtomic(options_.metrics_out_path, BuildMetricsText());
    if (!status.ok()) {
      TPIIN_LOG(Warning) << "final metrics snapshot failed: "
                         << status.ToString();
    }
  }

  // Every span-producing thread is joined, so uninstalling and merging
  // the trace here honors TraceRecorder's no-active-spans contract.
  if (trace_ != nullptr) {
    TraceRecorder::Uninstall();
    if (!trace_->WriteChromeTrace(options_.trace_out_path)) {
      TPIIN_LOG(Warning) << "trace write failed: " << options_.trace_out_path;
    }
  }

  const ServeSummary summary = Summary();
  TPIIN_LOG(Info) << "serve drained: " << summary.requests << " request(s), "
                  << summary.ok << " ok, " << summary.degraded
                  << " degraded, " << summary.busy << " busy, "
                  << summary.errors << " error(s)";
  return summary;
}

ServeSummary Server::Summary() const {
  ServeSummary summary;
  summary.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  summary.connections_refused =
      connections_refused_.load(std::memory_order_relaxed);
  summary.requests = requests_.load(std::memory_order_relaxed);
  summary.ok = ok_.load(std::memory_order_relaxed);
  summary.degraded = degraded_.load(std::memory_order_relaxed);
  summary.busy = busy_.load(std::memory_order_relaxed);
  summary.errors = errors_.load(std::memory_order_relaxed);
  summary.read_errors = read_errors_.load(std::memory_order_relaxed);
  summary.write_errors = write_errors_.load(std::memory_order_relaxed);
  return summary;
}

RunReport Server::BuildStatsReport() const {
  RunReport report("tpiin serve");
  report.set_threads(ResolveThreadCount(options_.service.threads));
  report.set_total_seconds(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - started_at_)
                               .count());

  const std::shared_ptr<const SnapshotGeneration> generation =
      registry_->Current();
  ReportSection& server = report.Section("server");
  server.Set("host", options_.host);
  server.Set("port", static_cast<uint64_t>(port_));
  server.Set("snapshot", generation->path);
  server.Set("snapshot_crc", StringPrintf("%08x", generation->crc()));
  server.Set("generation", generation->id);
  server.Set("loaded", FormatLogTimestamp(generation->loaded_unix_micros));
  server.Set("max_inflight", options_.max_inflight);
  server.Set("max_queue", options_.max_queue);

  ReportSection& reload = report.Section("reload");
  reload.Set("attempts", registry_->reload_attempts());
  reload.Set("swaps", registry_->reload_swaps());
  reload.Set("noops", registry_->reload_noops());
  reload.Set("failures", registry_->reload_failures());

  const ServeSummary summary = Summary();
  ReportSection& requests = report.Section("requests");
  requests.Set("connections_accepted", summary.connections_accepted);
  requests.Set("connections_refused", summary.connections_refused);
  requests.Set("requests", summary.requests);
  requests.Set("ok", summary.ok);
  requests.Set("degraded", summary.degraded);
  requests.Set("busy", summary.busy);
  requests.Set("errors", summary.errors);
  requests.Set("read_errors", summary.read_errors);
  requests.Set("write_errors", summary.write_errors);
  requests.Set("inflight", admission_.inflight());

  // The caches are shared across generations (keys embed each
  // generation's CRC), so these are daemon-lifetime totals.
  const ServeSharedState& shared = registry_->shared_state();
  ReportSection& cache = report.Section("cache");
  cache.Set("bundle_entries", shared.bundle_cache.size());
  cache.Set("bundle_capacity", shared.bundle_cache.capacity());
  cache.Set("bundle_hits", shared.bundle_cache.hits());
  cache.Set("bundle_misses", shared.bundle_cache.misses());
  cache.Set("bundle_evictions", shared.bundle_cache.evictions());
  cache.Set("sub_entries", shared.sub_cache.size());
  cache.Set("sub_capacity", shared.sub_cache.capacity());
  cache.Set("sub_hits", shared.sub_cache.hits());
  cache.Set("sub_misses", shared.sub_cache.misses());
  cache.Set("sub_evictions", shared.sub_cache.evictions());

  // Per-verb latency percentiles: the operator's first read, derived
  // from the same histograms attached raw below.
  MetricsSnapshot snapshot = metrics_.Snapshot();
  constexpr std::string_view kLatencyPrefix = "serve.latency_us.";
  ReportTable& latency = report.AddTable(
      "latency_us", {"verb", "count", "p50", "p90", "p99", "max"});
  for (const MetricsSnapshot::Entry& entry : snapshot.entries) {
    if (entry.kind != MetricsSnapshot::Kind::kHistogram) continue;
    if (entry.name.compare(0, kLatencyPrefix.size(), kLatencyPrefix) != 0) {
      continue;
    }
    latency.AddRow()
        .Append(entry.name.substr(kLatencyPrefix.size()))
        .Append(entry.count)
        .Append(entry.Quantile(0.50))
        .Append(entry.Quantile(0.90))
        .Append(entry.Quantile(0.99))
        .Append(entry.max);
  }

  report.AttachMetrics(std::move(snapshot));
  return report;
}

void Server::MetricsWriterLoop() {
  const auto interval =
      std::chrono::duration<double>(options_.metrics_interval_seconds);
  std::unique_lock<std::mutex> lock(metrics_writer_mu_);
  while (!metrics_writer_stop_) {
    if (metrics_writer_cv_.wait_for(
            lock, interval, [this] { return metrics_writer_stop_; })) {
      break;  // Wait() writes the final snapshot after joining us.
    }
    lock.unlock();
    const Status status =
        WriteFileAtomic(options_.metrics_out_path, BuildMetricsText());
    if (!status.ok()) {
      TPIIN_LOG(Warning) << "metrics snapshot failed: " << status.ToString();
    }
    lock.lock();
  }
}

std::string Server::BuildMetricsText() const {
  MetricsSnapshot snapshot = metrics_.Snapshot();
  // Families the registry doesn't track, synthesized at render time.
  auto add_gauge = [&snapshot](std::string name, int64_t value) {
    MetricsSnapshot::Entry entry;
    entry.name = std::move(name);
    entry.kind = MetricsSnapshot::Kind::kGauge;
    entry.gauge = value;
    snapshot.entries.push_back(std::move(entry));
  };
  auto add_counter = [&snapshot](std::string name, uint64_t value) {
    MetricsSnapshot::Entry entry;
    entry.name = std::move(name);
    entry.kind = MetricsSnapshot::Kind::kCounter;
    entry.value = value;
    snapshot.entries.push_back(std::move(entry));
  };
  add_gauge("serve.uptime_ms",
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started_at_)
                .count());
  add_gauge("process.current_rss_bytes", CurrentRssBytes());
  add_gauge("process.peak_rss_bytes", PeakRssBytes());
  {
    std::lock_guard<std::mutex> lock(mu_);
    add_gauge("serve.connections.active",
              static_cast<int64_t>(active_connections_));
  }
  const ServeSummary summary = Summary();
  add_counter("serve.connections.accepted", summary.connections_accepted);
  add_counter("serve.connections.refused", summary.connections_refused);
  add_counter("serve.requests", summary.requests);
  add_counter("serve.requests.ok", summary.ok);
  add_counter("serve.requests.degraded", summary.degraded);
  add_counter("serve.requests.busy", summary.busy);
  add_counter("serve.requests.errors", summary.errors);
  add_counter("serve.requests.read_errors", summary.read_errors);
  add_counter("serve.requests.write_errors", summary.write_errors);
  // Reload families are synthesized from the registry's atomics so they
  // exist — at zero — from the first scrape, not from the first reload.
  add_gauge("serve.generation",
            static_cast<int64_t>(registry_->Current()->id));
  add_counter("serve.reload.attempts", registry_->reload_attempts());
  add_counter("serve.reload.success", registry_->reload_swaps());
  add_counter("serve.reload.unchanged", registry_->reload_noops());
  add_counter("serve.reload.failures", registry_->reload_failures());
  std::sort(snapshot.entries.begin(), snapshot.entries.end(),
            [](const MetricsSnapshot::Entry& a,
               const MetricsSnapshot::Entry& b) { return a.name < b.name; });
  return RenderPrometheusText(snapshot);
}

std::string Server::BuildSlowPayload() const {
  const std::vector<SlowRequest> entries = slow_ring_.Snapshot();
  std::string out = StringPrintf("{\"capacity\": %zu, \"slow\": [",
                                 slow_ring_.capacity());
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowRequest& slow = entries[i];
    if (i > 0) out += ',';
    out += "\n  {\"req\": \"" + JsonEscape(slow.request_id) + "\"";
    out += ", \"verb\": \"" + JsonEscape(slow.verb) + "\"";
    out += ", \"status\": \"" + JsonEscape(slow.status) + "\"";
    out += ", \"cache\": \"" + JsonEscape(slow.cache) + "\"";
    out += StringPrintf(
        ", \"bytes\": %llu, \"queue_us\": %llu, \"handle_us\": %llu",
        static_cast<unsigned long long>(slow.bytes),
        static_cast<unsigned long long>(slow.queue_us),
        static_cast<unsigned long long>(slow.handle_us));
    out += StringPrintf(
        ", \"detect_seconds\": %.6f, \"segment_seconds\": %.6f, "
        "\"mine_seconds\": %.6f, \"finalize_seconds\": %.6f}",
        slow.detect_seconds, slow.segment_seconds, slow.mine_seconds,
        slow.finalize_seconds);
  }
  out += entries.empty() ? "]}" : "\n]}";
  return out;
}

}  // namespace tpiin

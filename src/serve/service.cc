#include "serve/service.h"

#include <algorithm>
#include <condition_variable>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/explain.h"
#include "core/matcher.h"
#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "io/pattern_file.h"

namespace tpiin {

namespace {

Response ErrorResponse(const Request& request, const Status& status) {
  Response resp;
  resp.id = request.id;
  resp.verb = request.verb;
  resp.status = "error";
  resp.error = status.ToString();
  return resp;
}

Response PayloadResponse(const Request& request, std::string payload,
                         bool degraded) {
  Response resp;
  resp.id = request.id;
  resp.verb = request.verb;
  resp.status = degraded ? "degraded" : "ok";
  resp.payload = std::move(payload);
  return resp;
}

void FillDetectTimings(const DetectionTimings& timings,
                       RequestTelemetry* telemetry) {
  if (telemetry == nullptr) return;
  telemetry->detect_seconds = timings.total_seconds;
  telemetry->segment_seconds = timings.segment_seconds;
  telemetry->mine_seconds = timings.mine_seconds;
  telemetry->finalize_seconds = timings.finalize_seconds;
}

}  // namespace

bool TimeDegraded(const DetectionResult& detection) {
  for (const SubTpiinProfile& profile : detection.sub_profiles) {
    if (profile.skip == SubSkip::kDeadline ||
        profile.skip == SubSkip::kSliceTruncated) {
      return true;
    }
  }
  return false;
}

ServeSharedState::ServeSharedState(const ServiceOptions& options,
                                   MetricsRegistry* metrics)
    : bundle_cache(
          options.bundle_cache_entries,
          metrics ? &metrics->GetCounter("serve.cache.bundle_hit") : nullptr,
          metrics ? &metrics->GetCounter("serve.cache.bundle_miss")
                  : nullptr),
      sub_cache(
          options.cache_entries,
          metrics ? &metrics->GetCounter("serve.cache.hit") : nullptr,
          metrics ? &metrics->GetCounter("serve.cache.miss") : nullptr) {}

QueryService::QueryService(const Tpiin& net, uint32_t snapshot_crc,
                           const ServiceOptions& options,
                           MetricsRegistry* metrics)
    : net_(net),
      snapshot_crc_(snapshot_crc),
      options_(options),
      owned_state_(std::make_unique<ServeSharedState>(options, metrics)),
      shared_(owned_state_.get()) {
  // First occurrence wins, mirroring the batch CLI's linear label scan.
  node_by_label_.reserve(net.NumNodes());
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    node_by_label_.emplace(std::string(net.Label(v)), v);
  }
}

QueryService::QueryService(const Tpiin& net, uint32_t snapshot_crc,
                           const ServiceOptions& options,
                           ServeSharedState& shared)
    : net_(net),
      snapshot_crc_(snapshot_crc),
      options_(options),
      shared_(&shared) {
  node_by_label_.reserve(net.NumNodes());
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    node_by_label_.emplace(std::string(net.Label(v)), v);
  }
}

std::string QueryService::BundleKey(const RunBudget& budget) const {
  // Only the deterministic budget fields participate: a deadline does
  // not change *which* answer is correct, just whether this run got to
  // finish it (unfinished runs are never cached).
  return StringPrintf("crc=%08x|max_nodes=%zu|max_arcs=%zu", snapshot_crc_,
                      budget.max_sub_nodes, budget.max_sub_arcs);
}

RunBudget QueryService::EffectiveBudget(const Request& request) const {
  RunBudget budget = options_.default_budget;
  if (request.deadline_ms > 0) budget.deadline_seconds = request.deadline_ms / 1e3;
  if (request.sub_slice_ms > 0) {
    budget.sub_slice_seconds = request.sub_slice_ms / 1e3;
  }
  if (request.max_sub_nodes > 0) {
    budget.max_sub_nodes = static_cast<size_t>(request.max_sub_nodes);
  }
  if (request.max_sub_arcs > 0) {
    budget.max_sub_arcs = static_cast<size_t>(request.max_sub_arcs);
  }
  // The service-level ceiling caps whatever the request asked for: the
  // effective deadline is the sooner of the two, and a caller cannot
  // opt out of it by sending a huge (or no) deadline_ms.
  if (options_.request_deadline_seconds > 0 &&
      (budget.deadline_seconds <= 0 ||
       budget.deadline_seconds > options_.request_deadline_seconds)) {
    budget.deadline_seconds = options_.request_deadline_seconds;
  }
  return budget;
}

struct QueryService::BundleFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::shared_ptr<const DetectionBundle> bundle;
};

Result<std::shared_ptr<const DetectionBundle>> QueryService::GetBundle(
    const RunBudget& budget, RequestTelemetry* telemetry) {
  const std::string key = BundleKey(budget);
  if (std::shared_ptr<const DetectionBundle> hit =
          shared_->bundle_cache.Get(key)) {
    if (telemetry != nullptr) telemetry->cache = RequestTelemetry::Cache::kHit;
    return hit;
  }
  // Hit or not, the caller is now on the cold path; a single-flight
  // follower reports a miss too, because it paid cold-path latency.
  if (telemetry != nullptr) telemetry->cache = RequestTelemetry::Cache::kMiss;

  // Single-flight: N concurrent cold requests for one key must cost one
  // detection run, not N (a cold run can take minutes on a large
  // snapshot, so a thundering herd would multiply cold-start load by
  // up to max_inflight). The first miss becomes the leader; later
  // misses wait on its flight and share the outcome, error and all.
  std::shared_ptr<BundleFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    auto [it, inserted] = bundle_flights_.try_emplace(key);
    if (inserted) it->second = std::make_shared<BundleFlight>();
    flight = it->second;
    leader = inserted;
  }
  if (!leader) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (!flight->status.ok()) return flight->status;
    FillDetectTimings(flight->bundle->detection.timings, telemetry);
    return flight->bundle;
  }

  Status status;
  std::shared_ptr<DetectionBundle> bundle;
  DetectorOptions options;
  options.num_threads = options_.threads;
  options.budget = budget;
  options.arena_pool = &shared_->arena_pool;
  Result<DetectionResult> detection = DetectSuspiciousGroups(net_, options);
  if (!detection.ok()) {
    status = detection.status();
  } else {
    bundle = std::make_shared<DetectionBundle>();
    bundle->scoring = ScoreDetection(net_, *detection);
    bundle->detection = std::move(*detection);
    bundle->groups_payload =
        RenderSuspiciousGroups(net_, bundle->detection.groups);
    // A deadline-truncated run reflects this machine's clock, not the
    // data; serving it once (marked degraded) is honest, caching it
    // would pin the degradation. A retired generation likewise answers
    // but no longer caches: the registry already evicted its keys.
    if (!TimeDegraded(bundle->detection) && !retired()) {
      shared_->bundle_cache.Put(key, bundle);
    }
    FillDetectTimings(bundle->detection.timings, telemetry);
  }

  // Publish to waiting followers, then retire the flight. Cache Put
  // happened first, so a request landing after the erase either hits
  // the cache or — for an uncached (failed/degraded) outcome — starts
  // an honest fresh leader of its own.
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->status = status;
    flight->bundle = bundle;
    flight->done = true;
  }
  flight->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(flight_mu_);
    bundle_flights_.erase(key);
  }
  if (!status.ok()) return status;
  return std::shared_ptr<const DetectionBundle>(std::move(bundle));
}

Response QueryService::Handle(const Request& request,
                              RequestTelemetry* telemetry) {
  if (request.verb == "groups") return HandleGroups(request, telemetry);
  if (request.verb == "explain") return HandleExplain(request, telemetry);
  if (request.verb == "rescore") return HandleRescore(request, telemetry);
  if (request.verb == "healthz") return HandleHealthz(request);
  return ErrorResponse(
      request,
      Status::InvalidArgument(
          "unknown verb: " + request.verb +
          " (expected groups, explain, rescore, stats, slow, metrics, "
          "healthz, reload)"));
}

Response QueryService::HandleGroups(const Request& request,
                                    RequestTelemetry* telemetry) {
  NodeId filter = kInvalidNode;
  if (!request.company.empty()) {
    auto it = node_by_label_.find(request.company);
    if (it == node_by_label_.end()) {
      return ErrorResponse(
          request, Status::NotFound("no node labeled " + request.company));
    }
    if (net_.node(it->second).color != NodeColor::kCompany) {
      return ErrorResponse(request, Status::InvalidArgument(
                                        request.company +
                                        " is a Person node"));
    }
    filter = it->second;
  }
  Result<std::shared_ptr<const DetectionBundle>> bundle =
      GetBundle(EffectiveBudget(request), telemetry);
  if (!bundle.ok()) return ErrorResponse(request, bundle.status());
  const DetectionResult& detection = (*bundle)->detection;
  std::string payload;
  if (filter == kInvalidNode) {
    // The full susGroup.txt bytes (rendered once per bundle), so the
    // batch artifact diffs clean.
    payload = (*bundle)->groups_payload;
  } else {
    // The filtered view keeps the exact susGroup.txt line rendering and
    // the exact detection order — a subsequence of the full payload.
    for (const SuspiciousGroup& group : detection.groups) {
      if (std::binary_search(group.members.begin(), group.members.end(),
                             filter)) {
        payload += group.Format(net_);
        payload += "\n";
      }
    }
  }
  return PayloadResponse(request, std::move(payload), detection.degraded);
}

Response QueryService::HandleExplain(const Request& request,
                                     RequestTelemetry* telemetry) {
  if (request.company.empty()) {
    return ErrorResponse(
        request, Status::InvalidArgument("explain requires company=LABEL"));
  }
  auto it = node_by_label_.find(request.company);
  if (it == node_by_label_.end()) {
    return ErrorResponse(
        request, Status::NotFound("no node labeled " + request.company));
  }
  if (net_.node(it->second).color != NodeColor::kCompany) {
    return ErrorResponse(
        request,
        Status::InvalidArgument(request.company + " is a Person node"));
  }
  Result<std::shared_ptr<const DetectionBundle>> bundle =
      GetBundle(EffectiveBudget(request), telemetry);
  if (!bundle.ok()) return ErrorResponse(request, bundle.status());
  CompanyDossier dossier = BuildCompanyDossier(
      net_, (*bundle)->detection, (*bundle)->scoring, it->second);
  return PayloadResponse(request, FormatCompanyDossier(net_, dossier),
                         (*bundle)->detection.degraded);
}

Response QueryService::HandleRescore(const Request& request,
                                     RequestTelemetry* telemetry) {
  if (request.sub < 0) {
    return ErrorResponse(
        request, Status::InvalidArgument("rescore requires sub=INDEX"));
  }
  const RunBudget budget = EffectiveBudget(request);
  const std::string key =
      BundleKey(budget) +
      StringPrintf("|sub=%lld", static_cast<long long>(request.sub));
  if (std::shared_ptr<const std::string> hit = shared_->sub_cache.Get(key)) {
    if (telemetry != nullptr) telemetry->cache = RequestTelemetry::Cache::kHit;
    return PayloadResponse(request, *hit, /*degraded=*/false);
  }
  if (telemetry != nullptr) telemetry->cache = RequestTelemetry::Cache::kMiss;

  // Cold path: re-segment from the (mmap'd, WCC-indexed) network and
  // re-mine just the requested subTPIIN.
  std::vector<SubTpiin> subs = SegmentTpiin(net_);
  if (static_cast<size_t>(request.sub) >= subs.size()) {
    return ErrorResponse(
        request,
        Status::NotFound(StringPrintf(
            "no subTPIIN %lld (segmentation emitted %zu)",
            static_cast<long long>(request.sub), subs.size())));
  }
  const SubTpiin& sub = subs[static_cast<size_t>(request.sub)];

  bool degraded = false;
  if ((budget.max_sub_nodes != 0 &&
       sub.graph.NumNodes() > budget.max_sub_nodes) ||
      (budget.max_sub_arcs != 0 &&
       sub.graph.NumArcs() > budget.max_sub_arcs)) {
    // The detector would skip this subTPIIN whole; say so instead of
    // mining past the caller's own cap.
    std::string payload = StringPrintf(
        "subTPIIN %lld of %zu: %u nodes, %u arcs — skipped (over budget "
        "cap)\n",
        static_cast<long long>(request.sub), subs.size(),
        sub.graph.NumNodes(), sub.graph.NumArcs());
    return PayloadResponse(request, std::move(payload), /*degraded=*/true);
  }

  PatternGenOptions gen_options;
  gen_options.emit_trails = false;
  gen_options.use_frozen_graph = true;
  gen_options.deadline = Deadline::Sooner(
      Deadline::After(budget.deadline_seconds),
      Deadline::After(budget.sub_slice_seconds));
  PatternScratch scratch = shared_->arena_pool.Acquire();
  gen_options.scratch = &scratch;
  Result<PatternGenResult> gen = GeneratePatternBase(sub, gen_options);
  if (!gen.ok()) return ErrorResponse(request, gen.status());
  MatchResult match = MatchPatternsTree(sub, gen->tree);
  scratch.base = std::move(gen->base);
  scratch.tree = std::move(gen->tree);
  shared_->arena_pool.Release(std::move(scratch));
  degraded = gen->deadline_expired;

  std::string payload = StringPrintf(
      "subTPIIN %lld of %zu: %u nodes, %u arcs (%u influence, %u "
      "trading)\ntrails: %zu, groups: %zu simple, %zu complex, %zu "
      "cycle\n",
      static_cast<long long>(request.sub), subs.size(),
      sub.graph.NumNodes(), sub.graph.NumArcs(), sub.num_influence_arcs,
      sub.num_trading_arcs(), gen->num_trails, match.num_simple,
      match.num_complex, match.num_cycle_groups);
  payload += RenderSuspiciousGroups(net_, match.groups);

  if (!degraded && !retired()) {
    shared_->sub_cache.Put(key, std::make_shared<const std::string>(payload));
  }
  return PayloadResponse(request, std::move(payload), degraded);
}

Response QueryService::HandleHealthz(const Request& request) {
  return PayloadResponse(request, "ok\n", /*degraded=*/false);
}

}  // namespace tpiin

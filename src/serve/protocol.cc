#include "serve/protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"
#include "io/json_report.h"  // JsonEscape: shared with the batch JSON report.

namespace tpiin {

namespace {

// --- Flat JSON scanning -------------------------------------------------
//
// The protocol only ever carries one-level objects of string and integer
// values, so a ~100-line recursive-descent scanner beats dragging in a
// JSON library: no allocation beyond the output strings, strict about
// what it accepts, and the error messages name the offending key.

struct Scanner {
  std::string_view in;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < in.size() &&
           std::isspace(static_cast<unsigned char>(in[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= in.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < in.size() && in[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos < in.size() ? in[pos] : '\0';
  }
};

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed request: " + what);
}

// Appends `code` (a Unicode scalar from a \uXXXX escape) as UTF-8.
void AppendUtf8(uint32_t code, std::string* out) {
  if (code < 0x80) {
    out->push_back(static_cast<char>(code));
  } else if (code < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code >> 6)));
    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xE0 | (code >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
  }
}

Result<std::string> ParseJsonString(Scanner& s) {
  if (!s.Consume('"')) return Malformed("expected '\"'");
  std::string out;
  while (true) {
    if (s.pos >= s.in.size()) return Malformed("unterminated string");
    char c = s.in[s.pos++];
    if (c == '"') return out;
    if (c != '\\') {
      if (static_cast<unsigned char>(c) < 0x20) {
        return Malformed("unescaped control character in string");
      }
      out.push_back(c);
      continue;
    }
    if (s.pos >= s.in.size()) return Malformed("unterminated escape");
    char e = s.in[s.pos++];
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (s.pos + 4 > s.in.size()) return Malformed("truncated \\u");
        uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = s.in[s.pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<uint32_t>(h - 'A' + 10);
          } else {
            return Malformed("bad hex digit in \\u escape");
          }
        }
        // Surrogate pairs never appear in this protocol's payloads
        // (labels are ASCII); reject rather than mis-decode.
        if (code >= 0xD800 && code <= 0xDFFF) {
          return Malformed("surrogate \\u escape unsupported");
        }
        AppendUtf8(code, &out);
        break;
      }
      default:
        return Malformed("unknown escape");
    }
  }
}

Result<int64_t> ParseJsonInt(Scanner& s) {
  s.SkipSpace();
  size_t start = s.pos;
  if (s.pos < s.in.size() && s.in[s.pos] == '-') ++s.pos;
  while (s.pos < s.in.size() &&
         std::isdigit(static_cast<unsigned char>(s.in[s.pos]))) {
    ++s.pos;
  }
  if (s.pos == start || (s.in[start] == '-' && s.pos == start + 1)) {
    return Malformed("expected an integer value");
  }
  errno = 0;
  long long value =
      std::strtoll(std::string(s.in.substr(start, s.pos - start)).c_str(),
                   nullptr, 10);
  if (errno == ERANGE) return Malformed("integer out of range");
  return static_cast<int64_t>(value);
}

Status SetField(Request& req, const std::string& key, Scanner& s) {
  if (key == "verb" || key == "company" || key == "path") {
    TPIIN_ASSIGN_OR_RETURN(std::string value, ParseJsonString(s));
    (key == "verb" ? req.verb : key == "company" ? req.company : req.path) =
        std::move(value);
    return Status::OK();
  }
  int64_t* slot = nullptr;
  if (key == "sub") slot = &req.sub;
  else if (key == "id") slot = &req.id;
  else if (key == "deadline_ms") slot = &req.deadline_ms;
  else if (key == "sub_slice_ms") slot = &req.sub_slice_ms;
  else if (key == "max_sub_nodes") slot = &req.max_sub_nodes;
  else if (key == "max_sub_arcs") slot = &req.max_sub_arcs;
  if (slot == nullptr) return Malformed("unknown key \"" + key + "\"");
  TPIIN_ASSIGN_OR_RETURN(*slot, ParseJsonInt(s));
  return Status::OK();
}

Result<Request> ParseJsonRequest(std::string_view line) {
  Scanner s{line};
  if (!s.Consume('{')) return Malformed("expected '{'");
  Request req;
  if (!s.Consume('}')) {
    while (true) {
      TPIIN_ASSIGN_OR_RETURN(std::string key, ParseJsonString(s));
      if (!s.Consume(':')) return Malformed("expected ':'");
      TPIIN_RETURN_IF_ERROR(SetField(req, key, s));
      if (s.Consume(',')) continue;
      if (s.Consume('}')) break;
      return Malformed("expected ',' or '}'");
    }
  }
  if (!s.AtEnd()) return Malformed("trailing bytes after object");
  return req;
}

// The `verb?key=value&key=value` convenience form. Values are taken
// verbatim (no percent decoding), so labels containing '&' or '=' must
// use the JSON form.
Result<Request> ParseQueryRequest(std::string_view line) {
  Request req;
  size_t qmark = line.find('?');
  std::string_view verb =
      qmark == std::string_view::npos ? line : line.substr(0, qmark);
  req.verb = std::string(verb);
  if (req.verb.empty()) return Malformed("empty verb");
  if (qmark == std::string_view::npos) return req;
  std::string_view rest = line.substr(qmark + 1);
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view term =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    if (term.empty()) continue;
    size_t eq = term.find('=');
    if (eq == std::string_view::npos) {
      return Malformed("expected key=value in query");
    }
    std::string key(term.substr(0, eq));
    std::string value(term.substr(eq + 1));
    if (key == "company") {
      req.company = std::move(value);
      continue;
    }
    if (key == "path") {
      req.path = std::move(value);
      continue;
    }
    if (key == "verb") return Malformed("verb belongs before '?'");
    // Re-use the JSON field table for the integer keys.
    Scanner s{value};
    TPIIN_RETURN_IF_ERROR(SetField(req, key, s));
    if (!s.AtEnd()) return Malformed("bad integer for \"" + key + "\"");
  }
  return req;
}

}  // namespace

Result<Request> ParseRequestLine(std::string_view line) {
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back()))) {
    line.remove_suffix(1);
  }
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.front()))) {
    line.remove_prefix(1);
  }
  if (line.empty()) return Status::InvalidArgument("empty request line");
  TPIIN_ASSIGN_OR_RETURN(
      Request req, line.front() == '{' ? ParseJsonRequest(line)
                                       : ParseQueryRequest(line));
  if (req.verb.empty()) {
    return Status::InvalidArgument("malformed request: missing verb");
  }
  return req;
}

std::string SerializeResponse(const Response& response) {
  std::string out = "{";
  if (response.id >= 0) {
    out += StringPrintf("\"id\":%lld,",
                        static_cast<long long>(response.id));
  }
  if (!response.request_id.empty()) {
    out += "\"req\":\"" + JsonEscape(response.request_id) + "\",";
  }
  if (!response.verb.empty()) {
    out += "\"verb\":\"" + JsonEscape(response.verb) + "\",";
  }
  out += "\"status\":\"" + JsonEscape(response.status) + "\"";
  if (response.status == "ok" || response.status == "degraded") {
    out += ",\"payload\":\"" + JsonEscape(response.payload) + "\"";
  }
  if (!response.error.empty()) {
    out += ",\"error\":\"" + JsonEscape(response.error) + "\"";
  }
  out += "}";
  return out;
}

Result<Response> ParseResponseLine(std::string_view line) {
  Scanner s{line};
  if (!s.Consume('{')) {
    return Status::InvalidArgument("malformed response: expected '{'");
  }
  Response resp;
  if (!s.Consume('}')) {
    while (true) {
      TPIIN_ASSIGN_OR_RETURN(std::string key, ParseJsonString(s));
      if (!s.Consume(':')) {
        return Status::InvalidArgument("malformed response: expected ':'");
      }
      if (key == "id") {
        TPIIN_ASSIGN_OR_RETURN(resp.id, ParseJsonInt(s));
      } else if (key == "req" || key == "verb" || key == "status" ||
                 key == "payload" || key == "error") {
        TPIIN_ASSIGN_OR_RETURN(std::string value, ParseJsonString(s));
        if (key == "req") resp.request_id = std::move(value);
        else if (key == "verb") resp.verb = std::move(value);
        else if (key == "status") resp.status = std::move(value);
        else if (key == "payload") resp.payload = std::move(value);
        else resp.error = std::move(value);
      } else {
        return Status::InvalidArgument("malformed response: unknown key \"" +
                                       key + "\"");
      }
      if (s.Consume(',')) continue;
      if (s.Consume('}')) break;
      return Status::InvalidArgument(
          "malformed response: expected ',' or '}'");
    }
  }
  if (!s.AtEnd()) {
    return Status::InvalidArgument(
        "malformed response: trailing bytes after object");
  }
  if (resp.status.empty()) {
    return Status::InvalidArgument("malformed response: missing status");
  }
  return resp;
}

}  // namespace tpiin

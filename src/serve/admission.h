#ifndef TPIIN_SERVE_ADMISSION_H_
#define TPIIN_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace tpiin {

/// Admission control for the serve layer: overload degrades into
/// deterministic `busy` responses instead of unbounded queueing or
/// stalls.
///
/// Two nested limits:
///
///  - Connections. At most `max_inflight + max_queue` connections may
///    be alive (accepted and not yet closed) at once. The acceptor
///    calls TryEnterConnection(); a refusal is answered with a one-line
///    `busy` response and an immediate close, on the acceptor thread —
///    so saturation feedback never depends on worker availability.
///
///  - Requests. At most `max_inflight` requests execute concurrently.
///    AcquireRequestSlot() blocks (the bounded "queue"; waiters can
///    never exceed max_queue because connections are bounded above)
///    until a slot frees or Abort() is called, in which case it returns
///    false and the caller answers `busy`.
///
/// All waits are bounded by construction: a slot holder always runs on
/// a live worker thread, so it releases; Abort() (the forced phase of
/// server drain) unblocks every waiter.
class AdmissionController {
 public:
  AdmissionController(size_t max_inflight, size_t max_queue)
      : max_inflight_(max_inflight == 0 ? 1 : max_inflight),
        max_queue_(max_queue) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Acceptor-side gate; false = answer busy and close.
  bool TryEnterConnection() {
    std::lock_guard<std::mutex> lock(mu_);
    if (connections_ >= max_inflight_ + max_queue_) return false;
    ++connections_;
    return true;
  }

  void LeaveConnection() {
    std::lock_guard<std::mutex> lock(mu_);
    --connections_;
  }

  /// Blocks until one of the max_inflight execution slots is free.
  /// False when Abort() ended the wait — the request is refused busy.
  bool AcquireRequestSlot() {
    std::unique_lock<std::mutex> lock(mu_);
    ++queued_;
    cv_.wait(lock,
             [this] { return aborted_ || inflight_ < max_inflight_; });
    --queued_;
    if (aborted_) return false;
    ++inflight_;
    return true;
  }

  void ReleaseRequestSlot() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    }
    cv_.notify_one();
  }

  /// Refuses every current and future slot wait (forced drain). Slots
  /// already held are unaffected — their requests finish normally.
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

  size_t connections() const {
    std::lock_guard<std::mutex> lock(mu_);
    return connections_;
  }
  size_t inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_;
  }
  size_t queued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queued_;
  }
  size_t max_inflight() const { return max_inflight_; }
  size_t max_queue() const { return max_queue_; }

 private:
  const size_t max_inflight_;
  const size_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t connections_ = 0;
  size_t inflight_ = 0;
  size_t queued_ = 0;
  bool aborted_ = false;
};

}  // namespace tpiin

#endif  // TPIIN_SERVE_ADMISSION_H_

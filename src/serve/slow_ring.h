#ifndef TPIIN_SERVE_SLOW_RING_H_
#define TPIIN_SERVE_SLOW_RING_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tpiin {

/// One captured slow request: the access-log record plus the per-stage
/// detection timings that explain where the time went.
struct SlowRequest {
  std::string request_id;  ///< "c<conn>-r<seq>", as echoed on the wire.
  std::string verb;        ///< "malformed" when the line did not parse.
  std::string status;
  std::string cache;  ///< "none" | "hit" | "miss".
  uint64_t bytes = 0;       ///< Serialized response line size.
  uint64_t queue_us = 0;    ///< Admission-slot wait.
  uint64_t handle_us = 0;   ///< Parse + evaluate + serialize (the rank key).
  double detect_seconds = 0;
  double segment_seconds = 0;
  double mine_seconds = 0;
  double finalize_seconds = 0;
};

/// Keeps the N worst requests by handle_us — slow-query forensics for
/// the `slow` verb. Bounded, mutex-guarded (Record is a handful of
/// compares plus at most one vector write, far off any hot path), and
/// deliberately value-ordered rather than a time ring: under steady
/// load the interesting requests are the outliers, not the most recent.
class SlowRequestRing {
 public:
  explicit SlowRequestRing(size_t capacity) : capacity_(capacity) {}

  SlowRequestRing(const SlowRequestRing&) = delete;
  SlowRequestRing& operator=(const SlowRequestRing&) = delete;

  /// Admits `request` if the ring has room or it is slower than the
  /// current fastest entry (which it then evicts).
  void Record(SlowRequest request) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() < capacity_) {
      entries_.push_back(std::move(request));
      return;
    }
    size_t fastest = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].handle_us < entries_[fastest].handle_us) fastest = i;
    }
    if (request.handle_us > entries_[fastest].handle_us) {
      entries_[fastest] = std::move(request);
    }
  }

  /// The captured requests, slowest first (ties broken by request ID so
  /// the order is deterministic for tests).
  std::vector<SlowRequest> Snapshot() const {
    std::vector<SlowRequest> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out = entries_;
    }
    std::sort(out.begin(), out.end(),
              [](const SlowRequest& a, const SlowRequest& b) {
                if (a.handle_us != b.handle_us) {
                  return a.handle_us > b.handle_us;
                }
                return a.request_id < b.request_id;
              });
    return out;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowRequest> entries_;  ///< Unordered; at most capacity_.
};

}  // namespace tpiin

#endif  // TPIIN_SERVE_SLOW_RING_H_

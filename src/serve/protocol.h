#ifndef TPIIN_SERVE_PROTOCOL_H_
#define TPIIN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace tpiin {

/// Wire protocol of the `tpiin serve` query daemon: newline-delimited
/// JSON over a TCP stream. Each request is one line, each response is
/// one line; a connection may carry any number of request/response
/// pairs in order (the one-shot `tpiin_client` sends a single pair).
///
/// A request line is either a flat JSON object
///
///   {"verb": "groups", "company": "C0017", "id": 7}
///
/// or, for hand-driven sessions (nc/telnet), the equivalent query form
///
///   groups?company=C0017&id=7
///
/// Recognized fields (everything else is rejected as malformed):
///   verb          groups | explain | rescore | stats | healthz | reload
///   company       company label (groups filter; required by explain)
///   sub           subTPIIN emission index (required by rescore)
///   id            opaque caller tag, echoed in the response
///   path          snapshot file for the reload verb (empty = revalidate
///                 and reload the serving generation's own path)
///   deadline_ms   per-request wall-clock budget (RunBudget)
///   sub_slice_ms  per-subTPIIN pattern-walk budget
///   max_sub_nodes / max_sub_arcs
///                 structural caps; subTPIINs over a cap are skipped
///                 deterministically and the response degrades
///
/// The response is always a flat JSON object with a fixed key order:
///
///   {"id": 7, "req": "c3-r2", "verb": "groups", "status": "ok",
///    "payload": "..."}
///
///   req      server-assigned request ID "c<conn>-r<seq>" (connection
///            serial, then request serial within it, both 1-based).
///            The same ID names the request in the access log, the
///            trace and the slow ring, so one grep correlates a
///            response with the server-side record of producing it.
///
///   status   ok        complete answer; payload carries the result
///            degraded  sound but partial answer (a budget bound);
///                      payload is still present
///            busy      refused by admission control; retry later
///            error     malformed request or a handler error; `error`
///                      carries the message and payload is absent
///
/// For `groups`, `explain` and `rescore` the payload is text that is
/// byte-identical to the corresponding batch CLI artifact (susGroup.txt
/// lines, the `tpiin explain` dossier, the rescore report); for `stats`
/// it is a RunReport-style JSON document; for `healthz` it is "ok\n".
struct Request {
  std::string verb;
  std::string company;
  /// Candidate snapshot file for the `reload` verb; empty = reload the
  /// path the serving generation came from.
  std::string path;
  int64_t sub = -1;  ///< -1 = absent.
  int64_t id = -1;   ///< -1 = absent; echoed verbatim when >= 0.
  int64_t deadline_ms = 0;
  int64_t sub_slice_ms = 0;
  int64_t max_sub_nodes = 0;
  int64_t max_sub_arcs = 0;
};

struct Response {
  int64_t id = -1;
  /// Server-assigned request ID ("c3-r2"); empty = omitted from the
  /// wire form (responses built outside a server, unit tests).
  std::string request_id;
  std::string verb;
  std::string status;  ///< "ok" | "degraded" | "busy" | "error".
  std::string payload;
  std::string error;

  bool ok() const { return status == "ok"; }
};

/// Parses one request line (either form, leading/trailing whitespace and
/// a trailing '\r' tolerated). Malformed input — bad JSON, an unknown
/// key, a missing verb — is an InvalidArgument; the server answers it
/// with a `status: error` response and keeps the connection.
Result<Request> ParseRequestLine(std::string_view line);

/// Renders `response` as its single-line JSON form (no trailing
/// newline; the transport appends it). Key order is fixed so responses
/// are byte-stable for tests and diffs.
std::string SerializeResponse(const Response& response);

/// Parses a response line (the client side). InvalidArgument on
/// malformed JSON or a missing status.
Result<Response> ParseResponseLine(std::string_view line);

}  // namespace tpiin

#endif  // TPIIN_SERVE_PROTOCOL_H_

#ifndef TPIIN_SERVE_SERVICE_H_
#define TPIIN_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/arena_pool.h"
#include "core/detector.h"
#include "core/scoring.h"
#include "fusion/tpiin.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/protocol.h"

namespace tpiin {

/// Options of the query engine (the socket-independent half of `tpiin
/// serve`; src/serve/server.h owns the transport half).
struct ServiceOptions {
  /// Detector threads per request (0 = auto-detect). Results are
  /// bit-identical at any count, so this is purely a latency/throughput
  /// knob.
  uint32_t threads = 0;

  /// Default per-request budget, overridable (field by field) by the
  /// request itself. Deterministic caps (max_sub_nodes/max_sub_arcs)
  /// participate in the cache key; deadlines do not — a run a deadline
  /// actually truncated is answered `degraded` and never cached.
  RunBudget default_budget;

  /// Capacity of the per-subTPIIN rescore-payload cache. 0 disables
  /// caching entirely (the byte-identity tests' cold configuration).
  size_t cache_entries = 256;

  /// Capacity of the detection-bundle cache (full detection + scoring
  /// per distinct (snapshot CRC, structural caps) key). Bundles are
  /// what `groups` and `explain` read; distinct budgets are distinct
  /// entries.
  size_t bundle_cache_entries = 4;

  /// Hard per-request wall-clock ceiling (seconds; 0 = none), applied
  /// on top of any request-supplied deadline_ms: the effective deadline
  /// is the sooner of the two. A request the ceiling truncates is
  /// answered `degraded` (and never cached) instead of monopolizing a
  /// connection slot for minutes. The CLI's --request-deadline-ms.
  double request_deadline_seconds = 0;
};

/// What evaluating one request cost, for the access log and the slow
/// ring. Filled (when the caller passes one) by QueryService::Handle;
/// all zeros/kNone for verbs that touch no cache (healthz, errors).
struct RequestTelemetry {
  enum class Cache { kNone, kHit, kMiss };

  /// Whether the verb's backing cache (bundle cache for groups/explain,
  /// sub cache for rescore) answered. A single-flight follower counts
  /// as a miss: the caller experienced cold-path latency.
  Cache cache = Cache::kNone;

  /// Per-stage detection timings (seconds) of the run that produced the
  /// answer; zeros on cache hits and non-detection verbs.
  double detect_seconds = 0;
  double segment_seconds = 0;
  double mine_seconds = 0;
  double finalize_seconds = 0;
};

/// A full detection run and its scoring — the shared substrate of the
/// `groups` and `explain` verbs, computed once per (snapshot CRC,
/// structural caps) and cached.
struct DetectionBundle {
  DetectionResult detection;
  ScoringResult scoring;
  /// The full susGroup.txt bytes, rendered once when the bundle is
  /// built: a cached `groups` query costs one string copy, not a
  /// re-render of a potentially multi-megabyte report.
  std::string groups_payload;
};

/// The cache/arena substrate shared by every generation a serving
/// daemon loads across hot-reloads. Keys embed the snapshot CRC, so
/// generations partition naturally inside one cache; sharing (rather
/// than one cache per generation) means a same-CRC no-op reload keeps
/// every warm entry, and capacity bounds total memory across
/// generations instead of per generation. The SnapshotRegistry owns
/// one and wires it into each generation's QueryService; standalone
/// services (tests, single-shot tools) let QueryService create a
/// private one.
struct ServeSharedState {
  ServeSharedState(const ServiceOptions& options, MetricsRegistry* metrics);

  ArenaPool arena_pool;
  LruCache<DetectionBundle> bundle_cache;
  LruCache<std::string> sub_cache;
};

/// The verbs of the serve protocol, evaluated against one loaded TPIIN
/// (normally a SnapshotView's net). Thread-safe: Handle may be called
/// concurrently from any number of transport threads; caches are
/// internally locked and the network itself is immutable.
///
/// Byte-identity contract: for the same snapshot and options, the
/// `groups` payload equals the batch `detect --out` susGroup.txt bytes
/// and the `explain` payload equals the batch `tpiin explain` stdout,
/// cache hot or cold, at any thread count.
class QueryService {
 public:
  /// `net` must outlive the service. `snapshot_crc` keys the caches
  /// (SnapshotView::header_crc(); any stable content fingerprint works
  /// for tests). `metrics` (nullable) receives serve.cache.* counters.
  /// This form creates a private ServeSharedState — the standalone
  /// (non-hot-reloading) configuration.
  QueryService(const Tpiin& net, uint32_t snapshot_crc,
               const ServiceOptions& options, MetricsRegistry* metrics);

  /// The hot-reload form: caches and the arena pool live in `shared`,
  /// owned by the SnapshotRegistry and outliving any one generation's
  /// service. Entries this service writes are keyed by its CRC, so
  /// distinct generations never collide inside the shared caches.
  QueryService(const Tpiin& net, uint32_t snapshot_crc,
               const ServiceOptions& options, ServeSharedState& shared);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Evaluates one request. Never throws; failures become
  /// `status: error` responses. `status: degraded` marks sound-but-
  /// partial payloads (a binding budget). `telemetry` (nullable)
  /// receives what the evaluation cost (cache outcome, stage timings).
  Response Handle(const Request& request,
                  RequestTelemetry* telemetry = nullptr);

  /// Cache introspection for the stats verb and tests.
  const LruCache<DetectionBundle>& bundle_cache() const {
    return shared_->bundle_cache;
  }
  const LruCache<std::string>& sub_cache() const { return shared_->sub_cache; }

  uint32_t snapshot_crc() const { return snapshot_crc_; }

  /// Marks this service's generation as retired: the snapshot it reads
  /// was superseded by a hot-reload. In-flight requests finish normally
  /// (the Tpiin stays mapped until the generation's last shared_ptr
  /// drops) but stop writing to the shared caches, so a request that
  /// straddles the swap cannot re-populate entries the registry just
  /// evicted for this generation's CRC.
  void Retire() { retired_.store(true, std::memory_order_release); }
  bool retired() const { return retired_.load(std::memory_order_acquire); }

 private:
  /// Cache key of the detection bundle a request needs: snapshot CRC
  /// plus the deterministic (structural) budget fields.
  std::string BundleKey(const RunBudget& budget) const;

  /// Per-request budget: the service default with any field the
  /// request set explicitly overridden.
  RunBudget EffectiveBudget(const Request& request) const;

  /// Get-or-compute the bundle for `budget`, single-flighted:
  /// concurrent misses on the same key share one computation (the
  /// first becomes the leader, the rest wait on its flight) instead of
  /// each running a full detection. Deadline-truncated runs are
  /// returned but not cached (their content is timing-dependent).
  Result<std::shared_ptr<const DetectionBundle>> GetBundle(
      const RunBudget& budget, RequestTelemetry* telemetry);

  /// One in-progress bundle computation; followers block on `cv` until
  /// the leader publishes `done`.
  struct BundleFlight;

  Response HandleGroups(const Request& request, RequestTelemetry* telemetry);
  Response HandleExplain(const Request& request, RequestTelemetry* telemetry);
  Response HandleRescore(const Request& request, RequestTelemetry* telemetry);
  Response HandleHealthz(const Request& request);

  const Tpiin& net_;
  const uint32_t snapshot_crc_;
  const ServiceOptions options_;
  /// Private substrate of the standalone constructor; null when the
  /// caller supplied a registry-owned ServeSharedState.
  std::unique_ptr<ServeSharedState> owned_state_;
  ServeSharedState* shared_;
  std::atomic<bool> retired_{false};
  /// In-progress bundle computations, keyed like the bundle cache. Guarded
  /// by flight_mu_; entries live only while a leader is computing.
  std::mutex flight_mu_;
  std::unordered_map<std::string, std::shared_ptr<BundleFlight>>
      bundle_flights_;
  /// Label -> node id of its first occurrence (the batch CLI's linear
  /// "first match wins" scan, precomputed once).
  std::unordered_map<std::string, NodeId> node_by_label_;
};

/// True when any subTPIIN was skipped or truncated by wall time (as
/// opposed to a deterministic structural cap): such results must not be
/// cached. Exposed for tests.
bool TimeDegraded(const DetectionResult& detection);

}  // namespace tpiin

#endif  // TPIIN_SERVE_SERVICE_H_

#include "serve/registry.h"

#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace tpiin {

namespace {

/// Failpoint evaluation without the return-macro: a fired reload
/// failpoint must take the rejection path (counters, structured event,
/// old generation keeps serving), not silently unwind the function.
Status CheckFailpoint(const char* site) {
  if (!Failpoints::AnyActive()) return Status::OK();
  return Failpoints::Check(site);
}

}  // namespace

SnapshotRegistry::SnapshotRegistry(const ServiceOptions& service_options,
                                   const SnapshotOpenOptions& open_options,
                                   MetricsRegistry* metrics,
                                   JsonLogSink* event_sink)
    : service_options_(service_options),
      open_options_(open_options),
      event_sink_(event_sink),
      shared_(service_options, metrics) {}

Result<std::shared_ptr<SnapshotGeneration>> SnapshotRegistry::OpenCandidate(
    const std::string& path) {
  // A torn candidate (a writer mid-replace, a partial copy) fails the
  // ladder inside Open and never reaches publish.
  auto generation = std::make_shared<SnapshotGeneration>();
  generation->path = path;
  TPIIN_ASSIGN_OR_RETURN(generation->view,
                         SnapshotView::Open(path, open_options_));
  generation->loaded_unix_micros = UnixMicrosNow();
  generation->service = std::make_unique<QueryService>(
      generation->view->net(), generation->view->header_crc(),
      service_options_, shared_);
  return generation;
}

Status SnapshotRegistry::Fail(const std::string& path, const Status& status) {
  failures_.fetch_add(1, std::memory_order_relaxed);
  TPIIN_LOG(Warning) << "snapshot reload rejected (" << path
                     << "): " << status.ToString()
                     << "; keeping current generation";
  if (event_sink_ != nullptr) {
    std::vector<LogField> fields;
    fields.emplace_back("path", path);
    fields.emplace_back("error", status.ToString());
    std::shared_ptr<const SnapshotGeneration> current = Current();
    if (current != nullptr) {
      fields.emplace_back("generation", current->id);
      fields.emplace_back("crc", StringPrintf("%08x", current->crc()));
    }
    event_sink_->Event(LogLevel::kWarning, "serve", "reload_failed", fields);
  }
  return status;
}

Status SnapshotRegistry::LoadInitial(const std::string& path) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  TPIIN_ASSIGN_OR_RETURN(std::shared_ptr<SnapshotGeneration> generation,
                         OpenCandidate(path));
  std::lock_guard<std::mutex> lock(mu_);
  generation->id = next_id_++;
  current_ = std::move(generation);
  return Status::OK();
}

Result<ReloadOutcome> SnapshotRegistry::Reload(
    const std::string& path_override) {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  attempts_.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<SnapshotGeneration> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old = current_;
  }
  if (old == nullptr) {
    return Status::FailedPrecondition(
        "reload before LoadInitial: no serving generation");
  }
  const std::string path = path_override.empty() ? old->path : path_override;

  WallTimer timer;
  Status injected = CheckFailpoint("serve.reload");
  if (!injected.ok()) return Fail(path, injected);

  // serve.reload.open models a candidate whose *open* fails (torn file,
  // ENOENT race with a deployer). Evaluated here rather than inside
  // OpenCandidate so a blanket serve.* fault spec cannot kill startup's
  // LoadInitial — a reload failure rolls back, a startup failure has
  // nothing to roll back to.
  Status open_fault = CheckFailpoint("serve.reload.open");
  if (!open_fault.ok()) return Fail(path, open_fault);

  Result<std::shared_ptr<SnapshotGeneration>> candidate = OpenCandidate(path);
  if (!candidate.ok()) return Fail(path, candidate.status());

  if ((*candidate)->crc() == old->crc()) {
    // Same content as what is serving (the common logrotate-SIGHUP
    // case): drop the freshly validated copy, keep the old generation
    // and its warm caches. Deliberately quiet — no access-log event.
    noops_.fetch_add(1, std::memory_order_relaxed);
    TPIIN_LOG(Info) << "snapshot reload: " << path << " unchanged (crc "
                    << StringPrintf("%08x", old->crc()) << "), no-op";
    ReloadOutcome outcome;
    outcome.swapped = false;
    outcome.generation = old;
    return outcome;
  }

  Status publish = CheckFailpoint("serve.reload.publish");
  if (!publish.ok()) return Fail(path, publish);

  // Publish: one pointer swap under the lock. In-flight requests hold
  // their own shared_ptr and finish on the snapshot they started with.
  std::shared_ptr<SnapshotGeneration> fresh = std::move(*candidate);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fresh->id = next_id_++;
    current_ = fresh;
  }

  // Retire the superseded generation: its in-flight requests still
  // answer, but stop writing to the shared caches, and its CRC's
  // entries are evicted so cache memory tracks live data. (The CRCs
  // differ here by construction, so this cannot touch the new
  // generation's keys.)
  old->service->Retire();
  const std::string dead_prefix = StringPrintf("crc=%08x", old->crc());
  const size_t evicted = shared_.bundle_cache.EvictKeysWithPrefix(dead_prefix) +
                         shared_.sub_cache.EvictKeysWithPrefix(dead_prefix);

  swaps_.fetch_add(1, std::memory_order_relaxed);
  TPIIN_LOG(Info) << "snapshot reload: generation " << fresh->id << " ("
                  << path << ", crc "
                  << StringPrintf("%08x", fresh->crc()) << ") replaces "
                  << old->id << " in " << timer.ElapsedMicros() << "us, "
                  << evicted << " cache entr(ies) evicted";
  if (event_sink_ != nullptr) {
    std::vector<LogField> fields;
    fields.emplace_back("generation", fresh->id);
    fields.emplace_back("path", path);
    fields.emplace_back("crc", StringPrintf("%08x", fresh->crc()));
    fields.emplace_back("old_generation", old->id);
    fields.emplace_back("old_crc", StringPrintf("%08x", old->crc()));
    fields.emplace_back("evicted", static_cast<uint64_t>(evicted));
    fields.emplace_back("load_us",
                        static_cast<uint64_t>(timer.ElapsedMicros()));
    event_sink_->Event(LogLevel::kInfo, "serve", "reload", fields);
  }

  ReloadOutcome outcome;
  outcome.swapped = true;
  outcome.generation = std::move(fresh);
  return outcome;
}

std::shared_ptr<const SnapshotGeneration> SnapshotRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

}  // namespace tpiin

#ifndef TPIIN_SERVE_REGISTRY_H_
#define TPIIN_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "snapshot/snapshot.h"

namespace tpiin {

/// One loaded snapshot: the mmap'd view, the QueryService bound to it,
/// and the metadata the healthz/stats/metrics surfaces report about it.
///
/// Generations are handed out as shared_ptr<const SnapshotGeneration>;
/// a request grabs the current generation once at dispatch and keeps it
/// for its whole evaluation, so a hot-reload can never unmap a snapshot
/// out from under an in-flight request — a superseded generation is
/// destroyed (service first, then the mmap it reads) only when its last
/// holder drops.
struct SnapshotGeneration {
  uint64_t id = 0;                 ///< 1-based load serial.
  std::string path;                ///< The file this generation mapped.
  int64_t loaded_unix_micros = 0;  ///< Wall-clock load time.
  std::unique_ptr<SnapshotView> view;
  std::unique_ptr<QueryService> service;

  uint32_t crc() const { return view->header_crc(); }
  const Tpiin& net() const { return view->net(); }
};

/// What a successful SnapshotRegistry::Reload did.
struct ReloadOutcome {
  /// False = the candidate's content CRC matched the serving
  /// generation's: a no-op reload (a logrotate SIGHUP, a redundant
  /// verb). Nothing was swapped and every warm cache entry survives.
  bool swapped = false;
  /// The generation serving after the call (the new one on a swap, the
  /// unchanged current one on a no-op).
  std::shared_ptr<const SnapshotGeneration> generation;
};

/// Owns the generations of snapshots a serving daemon loads over its
/// lifetime and publishes the current one RCU-style.
///
/// Validate-then-swap: Reload() runs the full snapshot validation
/// ladder (magic/version/endianness, header+directory CRC, shape and
/// bounds checks, per-section CRC-32C, meta checks — everything
/// SnapshotView::Open enforces) on the candidate file *before* touching
/// the serving generation. A candidate that fails any rung is rejected:
/// the error is returned, a structured `reload_failed` event is logged,
/// serve.reload.failures is bumped, and the old generation keeps
/// serving untouched — rollback is the default, not a recovery step.
///
/// Cache lifecycle: all generations share one ServeSharedState (keys
/// embed the snapshot CRC, so entries can never cross generations). On
/// a swap the superseded generation is retired — its service stops
/// writing to the shared caches — and its CRC's entries are evicted so
/// memory stays bounded by live data. A same-CRC reload is a no-op and
/// keeps every warm entry.
///
/// Thread-safe: Current() is a mutex-guarded shared_ptr copy callable
/// from any request thread; Reload() is serialized by its own mutex so
/// concurrent SIGHUP + verb reloads queue instead of racing.
class SnapshotRegistry {
 public:
  /// `metrics` (nullable) receives the shared caches' serve.cache.*
  /// counters; the reload counters themselves live in registry atomics
  /// (the daemon renders them into its Prometheus families, so they are
  /// present — at zero — from startup). `event_sink` (nullable)
  /// receives one structured event per swap ("reload") and per rejected
  /// candidate ("reload_failed") — the daemon wires its access log
  /// here. Both must outlive the registry.
  SnapshotRegistry(const ServiceOptions& service_options,
                   const SnapshotOpenOptions& open_options,
                   MetricsRegistry* metrics, JsonLogSink* event_sink);

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Loads generation 1. Call once, before Current()/Reload(); a
  /// failure here is a startup failure (there is no old generation to
  /// roll back to).
  Status LoadInitial(const std::string& path);

  /// Validates the candidate file (the current generation's path, or
  /// `path_override` when non-empty — the reload verb's `path=` form)
  /// and swaps it in if it differs from what is serving. On any
  /// validation or I/O failure the current generation is untouched and
  /// keeps serving; the status says why the candidate was rejected.
  Result<ReloadOutcome> Reload(const std::string& path_override = "");

  /// The serving generation (never null after LoadInitial succeeds).
  std::shared_ptr<const SnapshotGeneration> Current() const;

  /// Lifetime reload counters (attempts = swaps + no-ops + failures).
  uint64_t reload_attempts() const {
    return attempts_.load(std::memory_order_relaxed);
  }
  uint64_t reload_swaps() const {
    return swaps_.load(std::memory_order_relaxed);
  }
  uint64_t reload_noops() const {
    return noops_.load(std::memory_order_relaxed);
  }
  uint64_t reload_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  const ServeSharedState& shared_state() const { return shared_; }

 private:
  /// Opens + validates `path` into a fresh generation (id assigned by
  /// the caller on publish). The full validation ladder runs here,
  /// before anything is swapped.
  Result<std::shared_ptr<SnapshotGeneration>> OpenCandidate(
      const std::string& path);

  /// Failure bookkeeping shared by every rejection path: logs the
  /// structured reload_failed event, bumps counters, returns `status`.
  Status Fail(const std::string& path, const Status& status);

  const ServiceOptions service_options_;
  const SnapshotOpenOptions open_options_;
  JsonLogSink* const event_sink_;
  /// Cache/arena substrate shared across generations; outlives every
  /// generation's QueryService.
  ServeSharedState shared_;

  /// Serializes Reload() calls end-to-end (open, validate, publish):
  /// a SIGHUP racing a reload verb queues behind it.
  std::mutex reload_mu_;
  /// Guards current_ only; held for pointer copies, never for I/O.
  mutable std::mutex mu_;
  std::shared_ptr<SnapshotGeneration> current_;
  uint64_t next_id_ = 1;

  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> noops_{0};
  std::atomic<uint64_t> failures_{0};
};

}  // namespace tpiin

#endif  // TPIIN_SERVE_REGISTRY_H_

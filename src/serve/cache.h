#ifndef TPIIN_SERVE_CACHE_H_
#define TPIIN_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace tpiin {

/// A bounded, thread-safe LRU cache from string keys to shared
/// immutable values — the serve layer's result cache. Values are
/// handed out as shared_ptr<const V>, so an entry evicted while a
/// request still holds it stays alive until the request finishes.
///
/// Keys embed the snapshot CRC and the detector-option fingerprint
/// (see QueryService::BundleKey), so two snapshots or two option sets
/// can never collide: a different file or a different budget is a
/// different key, not a stale hit.
///
/// `capacity == 0` disables the cache entirely (every Get misses and
/// Put is a no-op) — the "cold every time" configuration the
/// byte-identity tests diff against.
///
/// Hit/miss/eviction counts are written to the caller-provided
/// obs Counters (nullable) and mirrored in local atomics for the
/// `stats` verb.
template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity, Counter* hit_counter = nullptr,
                    Counter* miss_counter = nullptr)
      : capacity_(capacity),
        hit_counter_(hit_counter),
        miss_counter_(miss_counter) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value and refreshes its recency, or nullptr.
  std::shared_ptr<const V> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      if (miss_counter_ != nullptr) miss_counter_->Add(1);
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    if (hit_counter_ != nullptr) hit_counter_->Add(1);
    return it->second->value;
  }

  /// Inserts (or replaces) `key`, evicting the least recently used
  /// entry when over capacity.
  void Put(const std::string& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(Entry{key, std::move(value)});
    index_.emplace(key, lru_.begin());
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

  /// True iff `key` is resident (no recency update, no counters) —
  /// test introspection.
  bool Contains(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.find(key) != index_.end();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
  }

  /// Evicts every entry whose key starts with `prefix` and returns how
  /// many were dropped. The hot-reload path uses this to discard a
  /// retired generation's entries (keys embed the snapshot CRC, so a
  /// dead generation is exactly one prefix) without disturbing the live
  /// generation's warm entries. Counted as evictions.
  size_t EvictKeysWithPrefix(const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.compare(0, prefix.size(), prefix) == 0) {
        index_.erase(it->key);
        it = lru_.erase(it);
        ++evictions_;
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  size_t capacity() const { return capacity_; }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
  };

  const size_t capacity_;
  Counter* const hit_counter_;
  Counter* const miss_counter_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, typename std::list<Entry>::iterator>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace tpiin

#endif  // TPIIN_SERVE_CACHE_H_

#ifndef TPIIN_SERVE_SERVER_H_
#define TPIIN_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/slow_ring.h"
#include "snapshot/snapshot.h"

namespace tpiin {

/// Configuration of the `tpiin serve` daemon (transport half; the query
/// engine's knobs live in ServiceOptions).
struct ServeOptions {
  std::string snapshot_path;

  /// Loopback by default: the daemon trusts its callers (auditors on
  /// the same host or behind a local proxy); exposing it wider is an
  /// explicit decision.
  std::string host = "127.0.0.1";

  /// 0 = pick an ephemeral port (read it back from Server::port()).
  uint16_t port = 0;

  /// Requests executing concurrently; connections beyond
  /// max_inflight + max_queue are answered `busy` at accept.
  size_t max_inflight = 4;
  size_t max_queue = 16;

  /// Per-connection blocking-read timeout: an idle connection is closed
  /// after this long, so parked clients cannot hold admission slots
  /// (and their I/O threads) forever.
  double idle_timeout_seconds = 30;

  /// Slow-loris guard: once the first byte of a request line arrives,
  /// the full line must follow within this budget or the request is
  /// answered `error` and the connection closed. Without it, a client
  /// trickling one byte per idle_timeout could pin a connection thread
  /// indefinitely while never completing a request. 0 disables.
  double line_deadline_seconds = 10;

  /// Per-connection blocking-send timeout (SO_SNDTIMEO): a client that
  /// stops draining its socket stalls the response write for at most
  /// this long before the connection is declared dead. 0 disables.
  double write_deadline_seconds = 30;

  /// Graceful-drain budget after shutdown is requested: in-flight
  /// requests get this long to finish and answer before the forced
  /// phase severs their sockets.
  double drain_seconds = 10;

  /// Longest accepted request line; longer input is answered `error`
  /// and the connection is closed (it is mid-line, unrecoverable).
  size_t max_line_bytes = 1 << 20;

  bool verify_checksums = true;

  /// NDJSON access log: one event per answered request (plus one per
  /// busy-at-accept refusal). Empty = off, "-" = stderr.
  std::string access_log_path;

  /// Chrome trace of live traffic: the server installs a TraceRecorder
  /// for its lifetime and writes the merged trace here on Wait().
  /// Empty = tracing off.
  std::string trace_out_path;

  /// Periodic Prometheus text snapshot, written atomically every
  /// metrics_interval_seconds (and once more at shutdown). Empty = off.
  std::string metrics_out_path;
  double metrics_interval_seconds = 5;

  /// Slow-request ring capacity (the `slow` verb's window); 0 disables
  /// capture.
  size_t slow_requests = 8;

  ServiceOptions service;
};

/// Lifetime totals, returned by Wait() and rendered by the stats verb.
struct ServeSummary {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  ///< Busy at accept.
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t busy = 0;   ///< Busy responses (accept-refusals + slot waits).
  uint64_t errors = 0;
  uint64_t read_errors = 0;   ///< Malformed lines, injected read faults.
  uint64_t write_errors = 0;  ///< Response writes lost to a dead client.

  /// The serve exit-code contract, aligned with PR 4's: 0 = clean
  /// shutdown and every answered request was complete; 2 = clean
  /// shutdown but some responses were degraded (partial results were
  /// served). Startup failures never get here — Server::Start returns
  /// the error and the CLI exits 1.
  int ExitCode() const { return degraded > 0 ? 2 : 0; }
};

/// The `tpiin serve` daemon: opens a snapshot (generation 1 of its
/// SnapshotRegistry), then answers newline-delimited JSON queries
/// (serve/protocol.h) over TCP until shut down. SIGHUP or the `reload`
/// verb hot-swaps to a re-validated snapshot with zero downtime:
/// in-flight requests finish on the generation they started with, new
/// requests see the new one, and a candidate that fails validation is
/// rejected with the old generation still serving.
///
/// Threading: Start() binds, listens and spawns one acceptor thread.
/// Each accepted connection gets a dedicated I/O thread (bounded by the
/// admission cap, so at most max_inflight + max_queue exist) that reads
/// request lines, acquires an admission slot per request, evaluates it
/// against the QueryService and writes the response line. Connections
/// deliberately do NOT run on the global ThreadPool: a connection
/// parked in recv would pin a pool worker, and on small machines a few
/// idle clients could starve every other connection. The pool stays
/// reserved for CPU work (detection's ParallelFor fans out onto it
/// from inside a request). SIGINT/SIGTERM (wired by the CLI through
/// RequestShutdownFromSignal) or Shutdown() stop the acceptor, sever
/// idle reads, let in-flight requests finish (drain_seconds), then
/// force-close stragglers; Wait() blocks until that completes.
class Server {
 public:
  /// Opens the snapshot, binds and starts accepting. Any failure —
  /// bad snapshot, unparsable host, bind/listen error — is returned
  /// here (the CLI's "startup failure, exit 1" class).
  static Result<std::unique_ptr<Server>> Start(const ServeOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves option port 0 to the kernel's pick).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// The serving generation right now. A caller that needs the network
  /// or CRC must hold the returned shared_ptr across its use — a
  /// hot-reload may retire this generation at any moment, and the
  /// shared_ptr is what keeps the mmap alive.
  std::shared_ptr<const SnapshotGeneration> CurrentGeneration() const {
    return registry_->Current();
  }
  uint32_t snapshot_crc() const { return registry_->Current()->crc(); }

  /// Reload surface for tests and embedders; the daemon reaches it via
  /// SIGHUP or the `reload` verb. Same contract as
  /// SnapshotRegistry::Reload: validate-then-swap, old generation keeps
  /// serving on failure.
  Result<ReloadOutcome> Reload(const std::string& path_override = "") {
    return registry_->Reload(path_override);
  }
  const SnapshotRegistry& registry() const { return *registry_; }

  /// Initiates shutdown (idempotent, callable from any thread) and
  /// returns immediately; Wait() observes the drain.
  void Shutdown();

  /// Blocks until the server has fully drained, then returns the
  /// lifetime summary. Call at most once.
  ServeSummary Wait();

  /// Point-in-time summary (the stats verb; also readable after Wait).
  ServeSummary Summary() const;

  /// The stats verb's payload: a RunReport-style JSON document with
  /// server/request/cache sections, a per-verb latency percentile table
  /// and the raw metric histograms.
  RunReport BuildStatsReport() const;

  /// The metrics verb's payload and the --metrics-out snapshot body:
  /// the per-server registry plus synthesized uptime / RSS / connection
  /// families, rendered in the Prometheus text format.
  std::string BuildMetricsText() const;

  /// The slow verb's payload: the slow-request ring as a JSON document,
  /// slowest first.
  std::string BuildSlowPayload() const;

  /// The access-log sink, for tests (null when --access-log is unset).
  const JsonLogSink* access_log() const { return access_log_.get(); }

  /// Async-signal-safe shutdown kick: writes one byte to the running
  /// server's wake pipe. The CLI's SIGINT/SIGTERM handlers call this;
  /// a no-op when no server is running.
  static void RequestShutdownFromSignal();

  /// Async-signal-safe reload kick: writes the reload byte to the wake
  /// pipe; the acceptor hands it to the reload worker, which runs
  /// SnapshotRegistry::Reload off the signal path. The CLI's SIGHUP
  /// handler calls this; a no-op when no server is running.
  static void RequestReloadFromSignal();

 private:
  explicit Server(const ServeOptions& options);

  void AcceptLoop();
  /// `self` is this connection's handle in connection_threads_; the
  /// handler moves it to finished_threads_ on the way out so the
  /// acceptor can reap it. `conn_id` is the connection's 1-based accept
  /// serial — the "c" half of every request ID it will mint.
  void HandleConnection(int fd, uint64_t conn_id,
                        std::list<std::thread>::iterator self);
  /// Joins every thread parked in finished_threads_. Called by the
  /// acceptor on each accept and by Wait() after the drain, so a
  /// long-lived server never accumulates terminated joinable threads.
  void ReapFinishedConnections();
  /// Reads one '\n'-terminated line into `line`. Returns false on EOF,
  /// timeout, an expired line deadline, overlong input or error (the
  /// connection ends either way).
  bool ReadLine(int fd, std::string* buffer, std::string* line);
  void WriteResponse(int fd, const Response& response);
  /// Writes one already-serialized wire line (terminator included).
  /// False = the connection is dead (client hung up or stalled past the
  /// write deadline); the caller should wind the connection down.
  bool WriteWire(int fd, const std::string& line);
  /// The `reload` and `healthz` verbs, answered by the server (not the
  /// QueryService) because they speak about generations.
  Response HandleReloadVerb(const Request& request);
  Response HandleHealthzVerb(const Request& request);
  void DrainConnections();
  /// Runs SnapshotRegistry::Reload whenever the acceptor forwards a
  /// SIGHUP reload byte; a dedicated thread, so a multi-second snapshot
  /// load never stalls accepts. Stopped by Wait().
  void ReloadWorkerLoop();
  void NotifyReloadWorker();
  /// The --metrics-out writer: wakes every metrics_interval_seconds,
  /// snapshots BuildMetricsText() and writes it atomically. Stopped by
  /// Wait() (which then writes one final snapshot).
  void MetricsWriterLoop();

  ServeOptions options_;
  AdmissionController admission_;
  /// Per-server registry: serve.* counters, gauges and latency
  /// histograms, snapshotted into the stats verb. Kept separate from
  /// MetricsRegistry::Global() so two servers in one process (tests)
  /// don't blend.
  MetricsRegistry metrics_;
  /// Access-log sink (--access-log); null when disabled. Request and
  /// reload events only — lifecycle messages go through TPIIN_LOG.
  std::unique_ptr<JsonLogSink> access_log_;
  /// Snapshot generations (declared after access_log_ — the registry
  /// holds the sink as its reload-event target, so it must be destroyed
  /// first).
  std::unique_ptr<SnapshotRegistry> registry_;
  /// Live-traffic trace recorder (--trace-out); installed process-wide
  /// for the server's lifetime, so per-request spans nest around the
  /// detection stages' own spans. Null when disabled.
  std::unique_ptr<TraceRecorder> trace_;
  SlowRequestRing slow_ring_;

  std::thread metrics_writer_;
  std::mutex metrics_writer_mu_;
  std::condition_variable metrics_writer_cv_;
  bool metrics_writer_stop_ = false;

  std::thread reload_worker_;
  std::mutex reload_worker_mu_;
  std::condition_variable reload_worker_cv_;
  bool reload_worker_stop_ = false;
  bool reload_pending_ = false;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::unordered_set<int> open_fds_;
  /// Live connection threads, one per accepted connection (bounded by
  /// the admission cap). A finished handler moves its own handle to
  /// finished_threads_, which the acceptor joins on the next accept —
  /// so unjoined-but-terminated threads are bounded too, instead of
  /// accumulating a stack per connection for the daemon's lifetime.
  std::list<std::thread> connection_threads_;
  std::vector<std::thread> finished_threads_;
  size_t active_connections_ = 0;
  bool accept_done_ = false;

  std::chrono::steady_clock::time_point started_at_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> busy_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> read_errors_{0};
  std::atomic<uint64_t> write_errors_{0};
};

}  // namespace tpiin

#endif  // TPIIN_SERVE_SERVER_H_

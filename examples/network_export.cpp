// Exports the provincial network layers as Graphviz DOT and Gephi GEXF
// files — the renderable counterparts of the paper's Figs. 11-16 (the
// authors rendered theirs with Gephi). Run, then e.g.:
//
//   dot -Tsvg /tmp/tpiin_figs/g1_interdependence.dot > g1.svg
//   gephi /tmp/tpiin_figs/tpiin.gexf
//
// Flags: --companies=N (default 120), --p=X (default 0.01), --seed=S,
//        --out=DIR (default /tmp/tpiin_figs)

#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "common/logging.h"
#include "datagen/province.h"
#include "fusion/layers.h"
#include "fusion/pipeline.h"
#include "io/dot_export.h"
#include "io/gexf_export.h"

namespace tpiin {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt64("companies", 120, "number of companies to simulate");
  flags.DefineDouble("p", 0.01, "trading probability");
  flags.DefineInt64("seed", 7, "RNG seed");
  flags.DefineString("out", "/tmp/tpiin_figs", "output directory");
  Status parse = flags.Parse(argc, argv);
  if (!parse.ok()) {
    std::fprintf(stderr, "%s\n%s", parse.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  const std::string out = flags.GetString("out");
  std::filesystem::create_directories(out);

  ProvinceConfig config = SmallProvinceConfig(
      static_cast<uint32_t>(flags.GetInt64("companies")),
      static_cast<uint64_t>(flags.GetInt64("seed")));
  config.trading_probability = flags.GetDouble("p");
  Result<Province> province = GenerateProvince(config);
  TPIIN_CHECK(province.ok()) << province.status().ToString();
  const RawDataset& data = province->dataset;

  std::vector<std::string> person_labels;
  for (const Person& p : data.persons()) person_labels.push_back(p.name);
  std::vector<std::string> company_labels;
  for (const Company& c : data.companies()) {
    company_labels.push_back(c.name);
  }
  std::vector<std::string> mixed_labels = person_labels;
  mixed_labels.insert(mixed_labels.end(), company_labels.begin(),
                      company_labels.end());

  auto save = [&](const std::string& name, const std::string& contents) {
    Status status = WriteStringToFile(out + "/" + name, contents);
    TPIIN_CHECK(status.ok()) << status.ToString();
    std::printf("  wrote %s/%s\n", out.c_str(), name.c_str());
  };

  std::printf("Exporting the network layers (Figs. 11-16):\n");
  save("g1_interdependence.dot",
       LayerToDot(BuildInterdependenceGraph(data), person_labels, "G1"));
  save("g2_influence.dot",
       LayerToDot(BuildInfluenceLayerGraph(data), mixed_labels, "G2"));
  save("g3_investment.dot",
       LayerToDot(BuildInvestmentGraph(data), company_labels, "G3"));
  save("g4_trading.dot",
       LayerToDot(BuildTradingGraph(data), company_labels, "G4"));

  Result<FusionOutput> fused = BuildTpiin(data);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  save("tpiin.dot", TpiinToDot(fused->tpiin, "TPIIN"));
  save("tpiin.gexf", TpiinToGexf(fused->tpiin));

  std::printf("\nFusion summary:\n%s\n", fused->stats.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) { return tpiin::Run(argc, argv); }

// Reproduces the paper's three investigated tax evasion cases (§3.1,
// Figs. 1-3) end to end: build each case's relationship dataset, fuse it
// into a TPIIN, let the MSG phase surface the interest-affiliated
// transaction with its proof chain, then apply the ITE-phase arm's
// length method the tax administration office used and compare the
// computed adjustment with the published figure.

#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/detector.h"
#include "datagen/case_studies.h"
#include "fusion/pipeline.h"
#include "ite/alp.h"

namespace tpiin {
namespace {

double ComputeAdjustment(const CaseStudy& cs) {
  if (cs.adjustment_method == "TNMM") {
    // Case 1: the producer declared no profit; rebuild taxable income
    // from the comparable net margin.
    return TnmmAdjustment(cs.revenue, /*declared_profit=*/0.0,
                          cs.normal_margin);
  }
  if (cs.adjustment_method == "CUP") {
    // Case 2: comparable uncontrolled price on the under-invoiced deal.
    CupOptions options;
    return (cs.market_price - cs.transfer_price) * cs.quantity *
           options.tax_rate;
  }
  // Case 3: cost plus.
  return CostPlusAdjustment(cs.cost, cs.expense, cs.revenue,
                            cs.normal_margin);
}

void RunCase(const CaseStudy& cs) {
  std::printf("=== %s ===\n%s\n\n", cs.title.c_str(),
              cs.narrative.c_str());

  Result<FusionOutput> fused = BuildTpiin(cs.dataset);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  const Tpiin& net = fused->tpiin;

  Result<DetectionResult> result = DetectSuspiciousGroups(net);
  TPIIN_CHECK(result.ok()) << result.status().ToString();

  std::printf("MSG phase: %zu suspicious trading relationship(s)\n",
              result->suspicious_trades.size());
  for (const auto& [seller, buyer] : result->suspicious_trades) {
    std::printf("  IAT candidate: %s -> %s\n", std::string(net.Label(seller)).c_str(),
                std::string(net.Label(buyer)).c_str());
  }
  std::printf("Proof chains (suspicious groups):\n");
  for (const SuspiciousGroup& group : result->groups) {
    std::printf("  %s\n", group.Format(net).c_str());
  }

  bool headline_found = false;
  NodeId seller = net.NodeOfCompany(cs.expected_seller);
  NodeId buyer = net.NodeOfCompany(cs.expected_buyer);
  for (const auto& trade : result->suspicious_trades) {
    if (trade.first == seller && trade.second == buyer) {
      headline_found = true;
    }
  }
  TPIIN_CHECK(headline_found) << "headline IAT missed";

  double adjustment = ComputeAdjustment(cs);
  std::printf(
      "\nITE phase (%s): computed adjustment %s vs paper's %s "
      "(%.1f%% apart)\n\n",
      cs.adjustment_method.c_str(),
      FormatWithCommas(static_cast<int64_t>(adjustment)).c_str(),
      FormatWithCommas(static_cast<int64_t>(cs.expected_adjustment))
          .c_str(),
      100.0 * (adjustment - cs.expected_adjustment) /
          cs.expected_adjustment);
}

}  // namespace
}  // namespace tpiin

int main() {
  for (const tpiin::CaseStudy& cs : tpiin::BuildAllCaseStudies()) {
    tpiin::RunCase(cs);
  }
  return 0;
}

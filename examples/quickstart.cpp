// Quickstart: build a small TPIIN from raw relationship records, run the
// suspicious-group detector, and print the findings.
//
// This walks the exact example of the paper's §4.3 (Figs. 7-10): nine
// persons, eight companies, two interdependence links that contract into
// syndicates, and five trading relationships of which three hide an
// interest-affiliated transaction.

#include <cstdio>

#include "common/logging.h"
#include "core/detector.h"
#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"

int main() {
  using namespace tpiin;

  // 1. Assemble the raw relationship dataset (in production this comes
  //    from CSRC filings, household registration and tax office records;
  //    see io/dataset_csv.h for the CSV ingestion path).
  RawDataset dataset = BuildWorkedExampleDataset();
  std::printf("Raw dataset: %s\n\n", dataset.Stats().ToString().c_str());

  // 2. Multi-network fusion: contract interdependence links into person
  //    syndicates, investment cycles into company syndicates, and
  //    overlay the trading network (Fig. 5 procedure).
  Result<FusionOutput> fused = BuildTpiin(dataset);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  const Tpiin& net = fused->tpiin;
  std::printf("Fusion:\n%s\n\n", fused->stats.ToString().c_str());

  // 3. Inspect the component pattern base of the (single) subTPIIN —
  //    this reproduces Fig. 10.
  std::vector<SubTpiin> subs = SegmentTpiin(net);
  for (const SubTpiin& sub : subs) {
    Result<PatternGenResult> gen = GeneratePatternBase(sub);
    TPIIN_CHECK(gen.ok()) << gen.status().ToString();
    std::printf("Potential component patterns base (%zu trails):\n%s\n",
                gen->base.size(),
                FormatPatternBase(sub, gen->base).c_str());
  }

  // 4. Run Algorithm 1 end to end.
  Result<DetectionResult> result = DetectSuspiciousGroups(net);
  TPIIN_CHECK(result.ok()) << result.status().ToString();
  std::printf("Detection: %s\n\nSuspicious groups:\n",
              result->Summary().c_str());
  for (const SuspiciousGroup& group : result->groups) {
    std::printf("  %s\n", group.Format(net).c_str());
  }
  std::printf("\nSuspicious trading relationships (the IAT candidates "
              "handed to the ITE phase):\n");
  for (const auto& [seller, buyer] : result->suspicious_trades) {
    std::printf("  %s -> %s\n", std::string(net.Label(seller)).c_str(),
                std::string(net.Label(buyer)).c_str());
  }
  return 0;
}

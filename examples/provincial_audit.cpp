// A provincial tax office's full workflow (the Fig. 4 flow): generate a
// province-scale taxpayer network, plant interest-affiliated trades,
// fuse the relationship sources into a TPIIN, mine suspicious groups
// (MSG phase), then audit only the flagged relationships' transactions
// under the arm's length principle (ITE phase) and write the artifacts
// (edge list, susGroup/susTrade files, audit report) to a directory.
//
// Flags:
//   --companies=N     population size (default 400)
//   --p=X             trading probability (default 0.01)
//   --planted=K       planted IAT relationships (default 40)
//   --seed=S          RNG seed
//   --out=DIR         output directory (default /tmp/tpiin_audit)

#include <cstdio>
#include <filesystem>

#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/detector.h"
#include "datagen/plant.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "io/edge_list.h"
#include "io/ledger_csv.h"
#include "io/pattern_file.h"
#include "ite/audit.h"
#include "ite/ledger.h"

namespace tpiin {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.DefineInt64("companies", 400, "number of companies to simulate");
  flags.DefineDouble("p", 0.01, "trading probability");
  flags.DefineInt64("planted", 40, "planted IAT relationships");
  flags.DefineInt64("seed", 20170402, "RNG seed");
  flags.DefineString("out", "/tmp/tpiin_audit", "output directory");
  Status parse = flags.Parse(argc, argv);
  if (!parse.ok()) {
    std::fprintf(stderr, "%s\n%s", parse.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  const std::string out_dir = flags.GetString("out");
  std::filesystem::create_directories(out_dir);

  // --- Generate the province and plant evasion schemes.
  ProvinceConfig config = SmallProvinceConfig(
      static_cast<uint32_t>(flags.GetInt64("companies")),
      static_cast<uint64_t>(flags.GetInt64("seed")));
  config.trading_probability = flags.GetDouble("p");
  Result<Province> province = GenerateProvince(config);
  TPIIN_CHECK(province.ok()) << province.status().ToString();
  Rng rng(config.seed + 17);
  std::vector<PlantedScheme> planted = PlantSuspiciousTrades(
      province->dataset, rng,
      static_cast<size_t>(flags.GetInt64("planted")));
  std::printf("Province: %s\nPlanted %zu IAT relationships\n\n",
              province->dataset.Stats().ToString().c_str(),
              planted.size());

  // --- MSG phase.
  Result<FusionOutput> fused = BuildTpiin(province->dataset);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  const Tpiin& net = fused->tpiin;
  std::printf("Fusion:\n%s\n\n", fused->stats.ToString().c_str());

  Result<DetectionResult> detection = DetectSuspiciousGroups(net);
  TPIIN_CHECK(detection.ok()) << detection.status().ToString();
  std::printf("MSG phase: %s\n", detection->Summary().c_str());
  std::printf("  stage timing: segment %.3fs, patterns %.3fs, match "
              "%.3fs\n\n",
              detection->timings.segment_seconds,
              detection->timings.pattern_seconds,
              detection->timings.match_seconds);

  // --- Persist artifacts.
  TPIIN_CHECK(WriteTpiinEdgeList(out_dir + "/tpiin.edges", net).ok());
  TPIIN_CHECK(WriteSuspiciousGroupsFile(out_dir + "/susGroup.txt", net,
                                        detection->groups)
                  .ok());
  TPIIN_CHECK(WriteSuspiciousTradesFile(out_dir + "/susTrade.txt", net,
                                        detection->suspicious_trades)
                  .ok());
  TPIIN_CHECK(
      WriteDetectionReport(out_dir + "/report.txt", net, *detection).ok());

  // --- ITE phase over the flagged relationships only.
  std::vector<std::pair<CompanyId, CompanyId>> iat_pairs;
  for (const PlantedScheme& scheme : planted) {
    iat_pairs.emplace_back(scheme.seller, scheme.buyer);
  }
  Ledger ledger = GenerateLedger(province->dataset.trades(), iat_pairs);

  std::vector<std::pair<CompanyId, CompanyId>> suspicious_pairs;
  for (const auto& [seller_node, buyer_node] :
       detection->suspicious_trades) {
    for (CompanyId s : net.node(seller_node).company_members) {
      for (CompanyId b : net.node(buyer_node).company_members) {
        suspicious_pairs.emplace_back(s, b);
      }
    }
  }
  for (const IntraSyndicateFinding& finding : detection->intra_syndicate) {
    suspicious_pairs.emplace_back(finding.seller, finding.buyer);
  }

  AuditReport screened = RunAudit(ledger, suspicious_pairs);
  AuditOptions full_options;
  full_options.examine_all = true;
  AuditReport full = RunAudit(ledger, {}, full_options);

  std::printf("ITE phase (screened): %s\n", screened.Summary().c_str());
  std::printf("ITE phase (one-by-one): %s\n\n", full.Summary().c_str());

  TPIIN_CHECK(SaveLedgerCsv(out_dir, ledger).ok());
  TPIIN_CHECK(WriteAuditReport(out_dir + "/audit.txt", ledger, screened)
                  .ok());
  std::printf("Artifacts written to %s\n", out_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) { return tpiin::Run(argc, argv); }

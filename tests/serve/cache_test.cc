// LruCache unit tests: recency order under a tiny capacity, counter
// wiring, the capacity-0 "always cold" mode, and key isolation (the
// property the serve layer's snapshot-CRC + option-fingerprint keys
// rely on: distinct keys can never bleed into each other).

#include "serve/cache.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tpiin {
namespace {

std::shared_ptr<const std::string> Val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruCacheTest, HitAndMissCounters) {
  MetricsRegistry metrics;
  Counter& hit = metrics.GetCounter("hit");
  Counter& miss = metrics.GetCounter("miss");
  LruCache<std::string> cache(4, &hit, &miss);

  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", Val("A"));
  std::shared_ptr<const std::string> got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "A");

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(hit.Value(), 1u);
  EXPECT_EQ(miss.Value(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedUnderTinyCapacity) {
  LruCache<std::string> cache(2);
  cache.Put("a", Val("A"));
  cache.Put("b", Val("B"));
  ASSERT_NE(cache.Get("a"), nullptr);  // "b" is now the LRU entry.
  cache.Put("c", Val("C"));            // Evicts "b".

  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, PutRefreshesRecency) {
  LruCache<std::string> cache(2);
  cache.Put("a", Val("A"));
  cache.Put("b", Val("B"));
  cache.Put("a", Val("A2"));  // Replace refreshes: "b" becomes LRU.
  cache.Put("c", Val("C"));

  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  std::shared_ptr<const std::string> got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "A2");
}

TEST(LruCacheTest, CapacityZeroDisablesCaching) {
  LruCache<std::string> cache(0);
  cache.Put("a", Val("A"));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EvictedValueSurvivesWhileHeld) {
  // A request holding a result must keep it alive even if the entry is
  // evicted mid-request — the serve layer hands out shared_ptr and
  // never copies payloads defensively.
  LruCache<std::string> cache(1);
  cache.Put("a", Val("A"));
  std::shared_ptr<const std::string> held = cache.Get("a");
  cache.Put("b", Val("B"));  // Evicts "a".
  EXPECT_FALSE(cache.Contains("a"));
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "A");
}

TEST(LruCacheTest, DistinctKeysNeverBleed) {
  // Two snapshots (different CRC prefix) and two option sets (different
  // budget suffix) — the four keys are four independent entries.
  LruCache<std::string> cache(8);
  cache.Put("crc=aaaa|max_nodes=0|max_arcs=0", Val("snapA-default"));
  cache.Put("crc=bbbb|max_nodes=0|max_arcs=0", Val("snapB-default"));
  cache.Put("crc=aaaa|max_nodes=50|max_arcs=0", Val("snapA-capped"));
  cache.Put("crc=bbbb|max_nodes=50|max_arcs=0", Val("snapB-capped"));

  EXPECT_EQ(*cache.Get("crc=aaaa|max_nodes=0|max_arcs=0"),
            "snapA-default");
  EXPECT_EQ(*cache.Get("crc=bbbb|max_nodes=0|max_arcs=0"),
            "snapB-default");
  EXPECT_EQ(*cache.Get("crc=aaaa|max_nodes=50|max_arcs=0"),
            "snapA-capped");
  EXPECT_EQ(*cache.Get("crc=bbbb|max_nodes=50|max_arcs=0"),
            "snapB-capped");
  EXPECT_EQ(cache.size(), 4u);
}

}  // namespace
}  // namespace tpiin

// Serve observability end to end: request IDs echoed on the wire and
// monotonic per connection, exactly one NDJSON access-log record per
// answered request (malformed and degraded included) plus one per busy
// refusal, the metrics/slow verbs, --metrics-out and --trace-out
// artifacts, and SIGHUP-driven access-log rotation through the CLI.

#include <csignal>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "datagen/worked_example.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"
#include "tests/serve/test_client.h"

namespace tpiin {
namespace {

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    out.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

/// The value of a `"key":"..."` string field in a flat NDJSON record
/// ("" when absent). Enough for access-log assertions; the records are
/// produced by FormatLogEvent, which never nests.
std::string JsonStringField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return "";
  const size_t begin = start + needle.size();
  const size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_obs_srv_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    snapshot_path_ = dir_ + "/net.snap";
    Status written = WriteSnapshot(BuildWorkedExampleTpiin(), snapshot_path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Server> StartServer(ServeOptions options = {}) {
    options.snapshot_path = snapshot_path_;
    options.port = 0;
    Result<std::unique_ptr<Server>> server = Server::Start(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(*server) : nullptr;
  }

  TestClient Connect(const Server& server) {
    Result<TestClient> client = TestClient::Connect(server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::string dir_;
  std::string snapshot_path_;
};

TEST_F(ObservabilityTest, RequestIdsEchoedAndMonotonicPerConnection) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);

  {
    TestClient first = Connect(*server);
    for (int i = 1; i <= 3; ++i) {
      Result<Response> resp = first.RoundTrip("healthz");
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      EXPECT_EQ(resp->request_id, "c1-r" + std::to_string(i));
    }
  }
  // The next accepted connection gets the next serial; its sequence
  // restarts at r1.
  TestClient second = Connect(*server);
  Result<Response> resp = second.RoundTrip("groups");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, "c2-r1");
}

TEST_F(ObservabilityTest, AccessLogHasOneRecordPerRequest) {
  ServeOptions options;
  options.access_log_path = dir_ + "/access.ndjson";
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);
  ASSERT_NE(server->access_log(), nullptr);

  TestClient client = Connect(*server);
  ASSERT_TRUE(client.RoundTrip("groups").ok());                // ok, miss
  ASSERT_TRUE(client.RoundTrip("groups").ok());                // ok, hit
  ASSERT_TRUE(client.RoundTrip("{not json").ok());             // malformed
  ASSERT_TRUE(client.RoundTrip("groups?max_sub_nodes=2").ok());  // degraded
  ASSERT_TRUE(client.SendLine("").ok());  // Blank keep-alive: no record.
  ASSERT_TRUE(client.RoundTrip("healthz").ok());
  client.Close();
  server->Shutdown();
  server->Wait();

  const std::vector<std::string> lines =
      Lines(ReadFileToString(options.access_log_path));
  ASSERT_EQ(lines.size(), 5u) << ReadFileToString(options.access_log_path);

  // NDJSON: every record is one flat object with the fixed envelope.
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_EQ(JsonStringField(line, "component"), "serve") << line;
    EXPECT_EQ(JsonStringField(line, "event"), "request") << line;
    EXPECT_NE(line.find("\"queue_us\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"handle_us\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"bytes\":"), std::string::npos) << line;
  }

  // Request IDs are monotonic on the one connection, and each record
  // carries the request's verb / status / cache outcome.
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(JsonStringField(lines[i], "req"),
              "c1-r" + std::to_string(i + 1));
  }
  EXPECT_EQ(JsonStringField(lines[0], "verb"), "groups");
  EXPECT_EQ(JsonStringField(lines[0], "status"), "ok");
  EXPECT_EQ(JsonStringField(lines[0], "cache"), "miss");
  EXPECT_EQ(JsonStringField(lines[1], "cache"), "hit");
  EXPECT_EQ(JsonStringField(lines[2], "verb"), "malformed");
  EXPECT_EQ(JsonStringField(lines[2], "status"), "error");
  EXPECT_EQ(JsonStringField(lines[2], "level"), "warn");
  EXPECT_EQ(JsonStringField(lines[3], "status"), "degraded");
  EXPECT_EQ(JsonStringField(lines[4], "verb"), "healthz");
  EXPECT_EQ(JsonStringField(lines[4], "cache"), "none");
}

TEST_F(ObservabilityTest, BusyRefusalGetsRefusedRecord) {
  ServeOptions options;
  options.max_inflight = 1;
  options.max_queue = 1;
  options.access_log_path = dir_ + "/access.ndjson";
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  TestClient held1 = Connect(*server);
  TestClient held2 = Connect(*server);
  ASSERT_TRUE(held1.RoundTrip("healthz").ok());
  ASSERT_TRUE(held2.RoundTrip("healthz").ok());

  Result<TestClient> refused = TestClient::Connect(server->port());
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  Result<std::string> line = refused->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  Result<Response> busy = ParseResponseLine(*line);
  ASSERT_TRUE(busy.ok()) << busy.status().ToString();
  EXPECT_EQ(busy->status, "busy");
  // r0: refused before any request line existed.
  EXPECT_EQ(busy->request_id, "c3-r0");

  held1.Close();
  held2.Close();
  server->Shutdown();
  server->Wait();

  const std::vector<std::string> lines =
      Lines(ReadFileToString(options.access_log_path));
  ASSERT_EQ(lines.size(), 3u);  // Two requests + one refusal.
  const std::string& refusal = lines[2];
  EXPECT_EQ(JsonStringField(refusal, "event"), "refused");
  EXPECT_EQ(JsonStringField(refusal, "req"), "c3-r0");
  EXPECT_EQ(JsonStringField(refusal, "status"), "busy");
  EXPECT_EQ(JsonStringField(refusal, "level"), "warn");
}

TEST_F(ObservabilityTest, MetricsVerbRendersPrometheusFamilies) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);
  ASSERT_TRUE(client.RoundTrip("groups").ok());
  ASSERT_TRUE(client.RoundTrip("groups").ok());

  Result<Response> resp = client.RoundTrip("metrics");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, "ok") << resp->error;
  const std::string& text = resp->payload;

  // Request counters, per-verb latency percentiles, cache counters and
  // the synthesized uptime / RSS / connection families.
  EXPECT_NE(text.find("# TYPE tpiin_serve_requests_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_requests_total 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_requests_groups_total 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE tpiin_serve_latency_us_groups histogram\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_latency_us_groups_p50 "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_latency_us_groups_p90 "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_latency_us_groups_p99 "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_cache_bundle_hit_total 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_uptime_ms "), std::string::npos) << text;
  EXPECT_NE(text.find("tpiin_serve_connections_accepted_total 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_connections_active 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_process_current_rss_bytes "), std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_queue_us"), std::string::npos) << text;
}

TEST_F(ObservabilityTest, StatsVerbReportsPercentileTable) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);
  ASSERT_TRUE(client.RoundTrip("groups").ok());

  Result<Response> stats = client.RoundTrip("stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->status, "ok");
  // The latency table rows are (verb, count, p50, p90, p99, max).
  EXPECT_NE(stats->payload.find("\"latency_us\""), std::string::npos)
      << stats->payload;
  EXPECT_NE(stats->payload.find("\"p50\""), std::string::npos)
      << stats->payload;
  EXPECT_NE(stats->payload.find("\"p99\""), std::string::npos)
      << stats->payload;
}

TEST_F(ObservabilityTest, SlowVerbRanksByHandleTime) {
  ServeOptions options;
  options.slow_requests = 4;
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);
  ASSERT_TRUE(client.RoundTrip("groups").ok());
  ASSERT_TRUE(client.RoundTrip("healthz").ok());

  Result<Response> slow = client.RoundTrip("slow");
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  ASSERT_EQ(slow->status, "ok") << slow->error;
  const std::string& payload = slow->payload;
  EXPECT_NE(payload.find("\"capacity\": 4"), std::string::npos) << payload;
  EXPECT_NE(payload.find("\"c1-r1\""), std::string::npos) << payload;
  EXPECT_NE(payload.find("\"c1-r2\""), std::string::npos) << payload;
  // The cold groups request dominates healthz: it must rank first and
  // carry its detection-stage breakdown.
  const size_t groups_pos = payload.find("\"verb\": \"groups\"");
  const size_t healthz_pos = payload.find("\"verb\": \"healthz\"");
  ASSERT_NE(groups_pos, std::string::npos) << payload;
  ASSERT_NE(healthz_pos, std::string::npos) << payload;
  EXPECT_LT(groups_pos, healthz_pos);
  EXPECT_NE(payload.find("\"detect_seconds\""), std::string::npos)
      << payload;
}

TEST_F(ObservabilityTest, SlowRingDisabledAtZeroCapacity) {
  ServeOptions options;
  options.slow_requests = 0;
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);
  ASSERT_TRUE(client.RoundTrip("groups").ok());

  Result<Response> slow = client.RoundTrip("slow");
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  ASSERT_EQ(slow->status, "ok");
  EXPECT_NE(slow->payload.find("\"capacity\": 0"), std::string::npos)
      << slow->payload;
  EXPECT_EQ(slow->payload.find("\"c1-r1\""), std::string::npos)
      << slow->payload;
}

TEST_F(ObservabilityTest, MetricsOutSnapshotWrittenAtShutdown) {
  ServeOptions options;
  options.metrics_out_path = dir_ + "/metrics.prom";
  options.metrics_interval_seconds = 3600;  // Only the final snapshot.
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);
  {
    TestClient client = Connect(*server);
    ASSERT_TRUE(client.RoundTrip("groups").ok());
  }
  server->Shutdown();
  server->Wait();

  const std::string text = ReadFileToString(options.metrics_out_path);
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("tpiin_serve_requests_total 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_latency_us_groups_p99 "),
            std::string::npos)
      << text;
}

TEST_F(ObservabilityTest, TraceOutCapturesPerRequestSpans) {
  ServeOptions options;
  options.trace_out_path = dir_ + "/trace.json";
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);
  {
    TestClient client = Connect(*server);
    ASSERT_TRUE(client.RoundTrip("groups").ok());
    ASSERT_TRUE(client.RoundTrip("healthz").ok());
  }
  server->Shutdown();
  server->Wait();

  const std::string trace = ReadFileToString(options.trace_out_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
#if TPIIN_OBS_ENABLED
  EXPECT_NE(trace.find("serve.request"), std::string::npos) << trace;
  EXPECT_NE(trace.find("serve.groups"), std::string::npos) << trace;
  EXPECT_NE(trace.find("serve.healthz"), std::string::npos) << trace;
#endif
}

TEST_F(ObservabilityTest, AccessLogOpenFailureFailsStartup) {
  ServeOptions options;
  options.snapshot_path = snapshot_path_;
  options.access_log_path = dir_ + "/no/such/dir/access.ndjson";
  Result<std::unique_ptr<Server>> server = Server::Start(options);
  ASSERT_FALSE(server.ok());
  EXPECT_TRUE(server.status().IsIOError()) << server.status().ToString();
}

TEST_F(ObservabilityTest, SighupRotatesAccessLogThroughCli) {
  // The CLI contract end to end: serve with --access-log, rotate the
  // file externally, raise(SIGHUP) — the sink reopens and the next
  // request lands in a fresh file. No event is lost on either side.
  const std::string port_file = dir_ + "/port.txt";
  const std::string access_log = dir_ + "/access.ndjson";
  std::ostringstream cli_out;
  int exit_code = -1;
  Status cli_status;
  std::thread serve_thread([&] {
    cli_status = RunCli({"serve", "--snapshot=" + snapshot_path_,
                         "--port=0", "--port-file=" + port_file,
                         "--access-log=" + access_log},
                        cli_out, &exit_code);
  });

  uint16_t port = 0;
  for (int i = 0; i < 500 && port == 0; ++i) {
    std::ifstream in(port_file);
    int value = 0;
    if (in >> value && value > 0) {
      port = static_cast<uint16_t>(value);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(port, 0) << "server never became ready";

  {
    Result<TestClient> client = TestClient::Connect(port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->RoundTrip("healthz").ok());
  }
  // The response is written before the access-log event: wait for the
  // event to land before rotating, or the rename races the write.
  bool logged = false;
  for (int i = 0; i < 500 && !logged; ++i) {
    logged = ReadFileToString(access_log).find("healthz") !=
             std::string::npos;
    if (!logged) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(logged) << "healthz event never reached the access log";

  std::filesystem::rename(access_log, access_log + ".1");
  raise(SIGHUP);

  {
    Result<TestClient> client = TestClient::Connect(port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client->RoundTrip("groups").ok());
  }

  raise(SIGTERM);
  serve_thread.join();
  EXPECT_TRUE(cli_status.ok()) << cli_status.ToString();
  EXPECT_EQ(exit_code, 0);

  const std::string rotated = ReadFileToString(access_log + ".1");
  const std::string fresh = ReadFileToString(access_log);
  EXPECT_NE(rotated.find("\"verb\":\"healthz\""), std::string::npos)
      << rotated;
  EXPECT_NE(fresh.find("\"verb\":\"groups\""), std::string::npos) << fresh;
  EXPECT_EQ(fresh.find("\"verb\":\"healthz\""), std::string::npos) << fresh;
}

}  // namespace
}  // namespace tpiin

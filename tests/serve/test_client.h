#ifndef TPIIN_TESTS_SERVE_TEST_CLIENT_H_
#define TPIIN_TESTS_SERVE_TEST_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/result.h"
#include "serve/protocol.h"

namespace tpiin {

/// A minimal blocking test client for the serve protocol: one TCP
/// connection that can send request lines and read response lines.
/// Move-only; closes on destruction.
class TestClient {
 public:
  static Result<TestClient> Connect(uint16_t port,
                                    const std::string& host = "127.0.0.1") {
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad host: " + host);
    }
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
    if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      const std::string error = strerror(errno);
      close(fd);
      return Status::IOError("connect: " + error);
    }
    return TestClient(fd);
  }

  TestClient(TestClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
    buffer_ = std::move(other.buffer_);
  }
  TestClient& operator=(TestClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;
  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  Status SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("send: " + std::string(strerror(errno)));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  /// Sends raw bytes without newline framing (for malformed-input and
  /// mid-line-disconnect tests).
  Status SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("send: " + std::string(strerror(errno)));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  /// Reads the next '\n'-terminated line (without the newline).
  Result<std::string> ReadLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return Status::IOError("connection closed");
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv: " + std::string(strerror(errno)));
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// One request/response round trip, parsed.
  Result<Response> RoundTrip(const std::string& request) {
    TPIIN_RETURN_IF_ERROR(SendLine(request));
    TPIIN_ASSIGN_OR_RETURN(std::string line, ReadLine());
    return ParseResponseLine(line);
  }

 private:
  explicit TestClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace tpiin

#endif  // TPIIN_TESTS_SERVE_TEST_CLIENT_H_

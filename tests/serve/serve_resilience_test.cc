// Resilience of the serve daemon: injected faults at the serve.*
// failpoints leave the server serving, malformed and truncated input
// costs only the offending request/connection, and SIGTERM during
// in-flight traffic drains and exits 0 (the CLI contract).

#include <csignal>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "common/failpoint.h"
#include "datagen/worked_example.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"
#include "tests/serve/test_client.h"

namespace tpiin {
namespace {

class ServeResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Clear();
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_srvres_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    snapshot_path_ = dir_ + "/net.snap";
    Status written = WriteSnapshot(BuildWorkedExampleTpiin(), snapshot_path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
  }
  void TearDown() override {
    Failpoints::Clear();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<Server> StartServer() {
    ServeOptions options;
    options.snapshot_path = snapshot_path_;
    options.port = 0;
    Result<std::unique_ptr<Server>> server = Server::Start(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(*server) : nullptr;
  }

  TestClient Connect(const Server& server) {
    Result<TestClient> client = TestClient::Connect(server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::string dir_;
  std::string snapshot_path_;
};

TEST_F(ServeResilienceTest, HandleFaultErrorsOneRequestServerSurvives) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(Failpoints::Configure("serve.handle:error@1").ok());

  TestClient client = Connect(*server);
  Result<Response> faulted = client.RoundTrip("groups");
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted->status, "error");
  EXPECT_NE(faulted->error.find("serve.handle"), std::string::npos);

  // Same connection, next request: served normally.
  Result<Response> next = client.RoundTrip("groups");
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->status, "ok") << next->error;
  EXPECT_FALSE(next->payload.empty());

  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_EQ(summary.ok, 1u);
}

TEST_F(ServeResilienceTest, ReadFaultKillsOneConnectionServerSurvives) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(Failpoints::Configure("serve.read:ioerror@1").ok());

  TestClient victim = Connect(*server);
  ASSERT_TRUE(victim.SendLine("healthz").ok());
  // The injected read fault severs this connection without a response.
  EXPECT_FALSE(victim.ReadLine().ok());

  // A fresh connection is served normally.
  TestClient survivor = Connect(*server);
  Result<Response> resp = survivor.RoundTrip("healthz");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, "ok");

  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_GE(summary.read_errors, 1u);
}

TEST_F(ServeResilienceTest, AcceptFaultDropsOneConnectionServerSurvives) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(Failpoints::Configure("serve.accept:error@1").ok());

  // The first accepted connection is closed immediately.
  TestClient dropped = Connect(*server);
  EXPECT_FALSE(dropped.RoundTrip("healthz").ok());

  // The acceptor is still alive: the next connection is served.
  TestClient next = Connect(*server);
  Result<Response> resp = next.RoundTrip("healthz");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, "ok");
}

TEST_F(ServeResilienceTest, MalformedRequestKeepsConnection) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);

  Result<Response> bad = client.RoundTrip(R"({"verb": "groups", oops})");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  EXPECT_EQ(bad->status, "error");
  EXPECT_NE(bad->error.find("malformed"), std::string::npos) << bad->error;

  Result<Response> good = client.RoundTrip("healthz");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->status, "ok");
}

TEST_F(ServeResilienceTest, MidLineDisconnectLeavesServerServing) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);

  {
    TestClient rude = Connect(*server);
    ASSERT_TRUE(rude.SendRaw(R"({"verb": "gro)").ok());
    // Destructor closes mid-line; the server sees EOF with a partial
    // buffer and just drops it.
  }

  TestClient polite = Connect(*server);
  Result<Response> resp = polite.RoundTrip("groups");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, "ok") << resp->error;
}

TEST_F(ServeResilienceTest, OverlongRequestLineIsRejected) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);

  // Default cap is 1 MiB; a longer line without a newline must be
  // refused (error response, connection closed), not buffered forever.
  // Exactly cap + 1 bytes: the server consumes every byte before it
  // errors out, so the close is a clean FIN and the error response is
  // never torn down by an RST.
  std::string huge((1 << 20) + 1, 'x');
  ASSERT_TRUE(client.SendRaw(huge).ok());
  Result<std::string> line = client.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  Result<Response> resp = ParseResponseLine(*line);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, "error");
  EXPECT_NE(resp->error.find("bytes"), std::string::npos);

  TestClient next = Connect(*server);
  EXPECT_TRUE(next.RoundTrip("healthz").ok());
}

TEST_F(ServeResilienceTest, SigtermDuringInFlightDrainsAndExitsZero) {
  // The full CLI contract, in process: RunCli("serve", ...) on a
  // thread, traffic in flight, raise(SIGTERM) → graceful drain, exit
  // code 0, the shutdown summary on stdout.
  const std::string port_file = dir_ + "/port.txt";
  std::ostringstream cli_out;
  int exit_code = -1;
  Status cli_status;
  std::thread serve_thread([&] {
    cli_status = RunCli({"serve", "--snapshot=" + snapshot_path_,
                         "--port=0", "--port-file=" + port_file},
                        cli_out, &exit_code);
  });

  // Wait for readiness (the port file is written before the ready
  // line).
  uint16_t port = 0;
  for (int i = 0; i < 500 && port == 0; ++i) {
    std::ifstream in(port_file);
    int value = 0;
    if (in >> value && value > 0) {
      port = static_cast<uint16_t>(value);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(port, 0) << "server never became ready";

  Result<TestClient> connected = TestClient::Connect(port);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  TestClient client = std::move(*connected);
  Result<Response> resp = client.RoundTrip("groups");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, "ok") << resp->error;

  raise(SIGTERM);
  serve_thread.join();

  EXPECT_TRUE(cli_status.ok()) << cli_status.ToString();
  EXPECT_EQ(exit_code, 0);
  const std::string output = cli_out.str();
  EXPECT_NE(output.find("serving on 127.0.0.1:"), std::string::npos)
      << output;
  EXPECT_NE(output.find("shutdown: "), std::string::npos) << output;
  EXPECT_NE(output.find("1 ok"), std::string::npos) << output;

  // The held connection was drained, not leaked.
  EXPECT_FALSE(client.RoundTrip("healthz").ok());
}

TEST_F(ServeResilienceTest, ShortIoFailpointsPreserveByteIdentity) {
  // serve.io.read.short / serve.io.write.short with an always-fire
  // policy force every recv to 1 byte granularity and every send to
  // 1-byte chunks. Reassembly must be exact: the groups payload stays
  // byte-identical to the clean-path payload.
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);

  std::string clean;
  {
    TestClient client = Connect(*server);
    Result<Response> resp = client.RoundTrip("groups");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->status, "ok") << resp->error;
    clean = resp->payload;
    ASSERT_FALSE(clean.empty());
  }

  ASSERT_TRUE(Failpoints::Configure("serve.io.read.short:error,"
                                    "serve.io.write.short:error")
                  .ok());
  TestClient shorted = Connect(*server);
  Result<Response> resp = shorted.RoundTrip("groups");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, "ok") << resp->error;
  EXPECT_EQ(resp->payload, clean);
  EXPECT_GE(Failpoints::HitCount("serve.io.write.short"), clean.size());
}

TEST_F(ServeResilienceTest, EintrFailpointsRetryTransparently) {
  // One injected EINTR per ReadLine/WriteWire call even under an
  // always-fire policy: the retry must be invisible to the client.
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(Failpoints::Configure("serve.io.read.eintr:error,"
                                    "serve.io.write.eintr:error")
                  .ok());

  TestClient client = Connect(*server);
  for (int i = 0; i < 3; ++i) {
    Result<Response> resp = client.RoundTrip("healthz");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, "ok");
  }
}

TEST_F(ServeResilienceTest, ReloadFaultKeepsOldGenerationServing) {
  // An injected reload failure (the serve.reload family the ASan smoke
  // drives) is a rejected candidate like any other: error answer on
  // the verb, old generation untouched, daemon keeps serving.
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(Failpoints::Configure("serve.reload:error@1").ok());

  TestClient client = Connect(*server);
  Result<Response> faulted = client.RoundTrip("reload");
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted->status, "error");
  EXPECT_NE(faulted->error.find("serve.reload"), std::string::npos)
      << faulted->error;
  EXPECT_EQ(server->registry().reload_failures(), 1u);
  EXPECT_EQ(server->CurrentGeneration()->id, 1u);

  // The failpoint budget is spent: the next reload verb succeeds (a
  // no-op, same bytes) and normal traffic never blinked.
  Result<Response> retried = client.RoundTrip("reload");
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried->status, "ok") << retried->error;
  Result<Response> groups = client.RoundTrip("groups");
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->status, "ok") << groups->error;
}

TEST_F(ServeResilienceTest, ServeFailpointSitesAreRegistered) {
  // The CI failpoint smoke drives serve.*:p0.05 — every site must
  // actually be evaluated on its hot path.
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(Failpoints::Configure("serve.accept:off").ok());

  TestClient client = Connect(*server);
  ASSERT_TRUE(client.RoundTrip("healthz").ok());
  ASSERT_TRUE(client.RoundTrip("reload").ok());

  EXPECT_GE(Failpoints::HitCount("serve.accept"), 1u);
  EXPECT_GE(Failpoints::HitCount("serve.read"), 1u);
  EXPECT_GE(Failpoints::HitCount("serve.handle"), 1u);
  EXPECT_GE(Failpoints::HitCount("serve.io.read.short"), 1u);
  EXPECT_GE(Failpoints::HitCount("serve.io.read.eintr"), 1u);
  EXPECT_GE(Failpoints::HitCount("serve.io.write.short"), 1u);
  EXPECT_GE(Failpoints::HitCount("serve.io.write.eintr"), 1u);
  EXPECT_GE(Failpoints::HitCount("serve.reload"), 1u);
  EXPECT_GE(Failpoints::HitCount("serve.reload.open"), 1u);
}

}  // namespace
}  // namespace tpiin

// Wire-protocol unit tests: both request forms, strictness on malformed
// input, and byte-exact response round trips (the transport's half of
// the serve byte-identity contract).

#include "serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(ProtocolTest, ParsesJsonRequest) {
  Result<Request> req = ParseRequestLine(
      R"({"verb": "groups", "company": "C0017", "id": 7})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->verb, "groups");
  EXPECT_EQ(req->company, "C0017");
  EXPECT_EQ(req->id, 7);
  EXPECT_EQ(req->sub, -1);
}

TEST(ProtocolTest, ParsesQueryRequest) {
  Result<Request> req =
      ParseRequestLine("rescore?sub=3&deadline_ms=500&id=12");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->verb, "rescore");
  EXPECT_EQ(req->sub, 3);
  EXPECT_EQ(req->deadline_ms, 500);
  EXPECT_EQ(req->id, 12);
}

TEST(ProtocolTest, BareVerbAndWhitespaceTolerance) {
  Result<Request> req = ParseRequestLine("  healthz \r");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->verb, "healthz");

  req = ParseRequestLine("  {\"verb\": \"stats\"}  ");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->verb, "stats");
}

TEST(ProtocolTest, BudgetFieldsInBothForms) {
  Result<Request> json = ParseRequestLine(
      R"({"verb": "groups", "max_sub_nodes": 100, "max_sub_arcs": 200,)"
      R"( "sub_slice_ms": 50})");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  Result<Request> query = ParseRequestLine(
      "groups?max_sub_nodes=100&max_sub_arcs=200&sub_slice_ms=50");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(json->max_sub_nodes, query->max_sub_nodes);
  EXPECT_EQ(json->max_sub_arcs, query->max_sub_arcs);
  EXPECT_EQ(json->sub_slice_ms, query->sub_slice_ms);
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  // Every rejection is InvalidArgument: the server answers it with a
  // status:error line and keeps the connection.
  const char* bad[] = {
      "",                                  // empty
      "   ",                               // whitespace only
      R"({"verb": "groups")",              // unterminated object
      R"({"verb": })",                     // missing value
      R"({"company": "X"})",               // missing verb
      R"({"verb": "groups", "frob": 1})",  // unknown key
      R"({"verb": 7})",                    // verb must be a string
      R"({"verb": "groups"} trailing)",    // trailing bytes
      R"({"verb": "g\x"})",                // unknown escape
      R"({"sub": "three", "verb": "rescore"})",  // int field as string
      "groups?company",                    // query term without '='
      "groups?sub=abc",                    // bad integer
      "?company=X",                        // empty verb
      "groups?verb=explain",               // verb belongs before '?'
      R"({"id": 99999999999999999999, "verb": "x"})",  // overflow
  };
  for (const char* line : bad) {
    Result<Request> req = ParseRequestLine(line);
    EXPECT_FALSE(req.ok()) << "accepted: " << line;
    if (!req.ok()) {
      EXPECT_TRUE(req.status().IsInvalidArgument()) << line;
    }
  }
}

TEST(ProtocolTest, JsonStringEscapes) {
  Result<Request> req = ParseRequestLine(
      R"({"verb": "groups", "company": "a\"b\\c\ndA"})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->company, "a\"b\\c\ndA");

  EXPECT_FALSE(
      ParseRequestLine(R"({"verb": "x", "company": "\ud800"})").ok())
      << "surrogates must be rejected, not mis-decoded";
}

TEST(ProtocolTest, SerializeFixedKeyOrder) {
  Response resp;
  resp.id = 7;
  // std::string temporaries (move-assigned) rather than const char*
  // assignment: GCC 12's -Wmaybe-uninitialized misfires on the
  // char-pointer assign path when everything inlines into this body.
  resp.verb = std::string("groups");
  resp.status = std::string("ok");
  resp.payload = std::string("line1\nline2\n");
  EXPECT_EQ(SerializeResponse(resp),
            R"({"id":7,"verb":"groups","status":"ok",)"
            R"("payload":"line1\nline2\n"})");

  Response error;
  error.verb = "explain";
  error.status = "error";
  error.error = "no node labeled \"X\"";
  // No payload key for errors; id absent when negative.
  EXPECT_EQ(SerializeResponse(error),
            R"({"verb":"explain","status":"error",)"
            R"("error":"no node labeled \"X\""})");
}

TEST(ProtocolTest, SerializeIncludesRequestIdOnlyWhenSet) {
  // The request ID rides between id and verb; an empty ID is omitted
  // entirely, so responses minted without one keep their old bytes.
  Response resp;
  resp.id = 7;
  resp.request_id = "c3-r12";
  resp.verb = "groups";
  resp.status = "ok";
  resp.payload = "x\n";
  EXPECT_EQ(SerializeResponse(resp),
            R"({"id":7,"req":"c3-r12","verb":"groups","status":"ok",)"
            R"("payload":"x\n"})");

  resp.request_id.clear();
  EXPECT_EQ(SerializeResponse(resp),
            R"({"id":7,"verb":"groups","status":"ok","payload":"x\n"})");
}

TEST(ProtocolTest, ParseResponseReadsRequestId) {
  Result<Response> with = ParseResponseLine(
      R"({"id":1,"req":"c2-r9","verb":"healthz","status":"ok",)"
      R"("payload":"ok\n"})");
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_EQ(with->request_id, "c2-r9");

  Result<Response> without =
      ParseResponseLine(R"({"verb":"healthz","status":"ok"})");
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  EXPECT_TRUE(without->request_id.empty());
}

TEST(ProtocolTest, ResponseRoundTripIsByteExact) {
  // The payload IS the batch artifact; any byte lost or changed in the
  // serialize/parse round trip would break the identity contract.
  Response resp;
  resp.id = 3;
  resp.verb = "groups";
  resp.status = "degraded";
  std::string payload;
  for (int c = 1; c < 128; ++c) payload.push_back(static_cast<char>(c));
  payload += "  trailing spaces and a tab\t\nand \"quotes\"\\backslash";
  resp.payload = payload;

  Result<Response> parsed = ParseResponseLine(SerializeResponse(resp));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, 3);
  EXPECT_EQ(parsed->verb, "groups");
  EXPECT_EQ(parsed->status, "degraded");
  EXPECT_EQ(parsed->payload, payload);
}

TEST(ProtocolTest, ParseResponseRequiresStatus) {
  EXPECT_FALSE(ParseResponseLine(R"({"verb":"groups"})").ok());
  EXPECT_FALSE(ParseResponseLine("not json").ok());
  EXPECT_FALSE(ParseResponseLine(R"({"status":"ok","zzz":"?"})").ok());
  Result<Response> ok = ParseResponseLine(R"({"status":"busy"})");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, "busy");
  EXPECT_EQ(ok->id, -1);
}

}  // namespace
}  // namespace tpiin

// End-to-end hot-reload tests over real TCP connections: the `reload`
// verb and the SIGHUP path swap generations with zero dropped or
// mis-answered requests under concurrent load; payloads after a swap
// are byte-identical to a daemon started fresh on the new snapshot;
// corrupt replacements are rejected while the old generation serves.

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/province.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"
#include "tests/serve/test_client.h"

namespace tpiin {
namespace {

class ReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_rld_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    path_a_ = dir_ + "/a.snap";
    path_b_ = dir_ + "/b.snap";
    ASSERT_TRUE(WriteSnapshot(BuildWorkedExampleTpiin(), path_a_).ok());

    ProvinceConfig config = SmallProvinceConfig(150, 20170402);
    config.trading_probability = 0.02;
    Result<Province> province = GenerateProvince(config);
    ASSERT_TRUE(province.ok()) << province.status().ToString();
    Result<FusionOutput> fused = BuildTpiin(province->dataset);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    ASSERT_TRUE(WriteSnapshot(fused->tpiin, path_b_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Server> StartOn(const std::string& snapshot) {
    ServeOptions options;
    options.snapshot_path = snapshot;
    options.port = 0;
    Result<std::unique_ptr<Server>> server = Server::Start(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(*server) : nullptr;
  }

  /// The groups payload a daemon answers over the wire.
  std::string ServedGroups(const Server& server) {
    Result<TestClient> client = TestClient::Connect(server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    Result<Response> resp = client->RoundTrip("groups");
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, "ok") << resp->error;
    return resp->payload;
  }

  std::string dir_;
  std::string path_a_;
  std::string path_b_;
};

TEST_F(ReloadTest, ReloadVerbSwapsAndMatchesFreshDaemonBytes) {
  // Reference: what a daemon started directly on snapshot B serves.
  std::string fresh_b;
  {
    std::unique_ptr<Server> reference = StartOn(path_b_);
    ASSERT_NE(reference, nullptr);
    fresh_b = ServedGroups(*reference);
    ASSERT_FALSE(fresh_b.empty());
  }

  std::unique_ptr<Server> server = StartOn(path_a_);
  ASSERT_NE(server, nullptr);
  const std::string groups_a = ServedGroups(*server);
  ASSERT_NE(groups_a, fresh_b);

  Result<TestClient> admin = TestClient::Connect(server->port());
  ASSERT_TRUE(admin.ok());
  Result<Response> reload =
      admin->RoundTrip("reload?path=" + path_b_);
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  ASSERT_EQ(reload->status, "ok") << reload->error;
  EXPECT_NE(reload->payload.find("generation: 2\n"), std::string::npos)
      << reload->payload;
  EXPECT_NE(reload->payload.find("swapped: true"), std::string::npos)
      << reload->payload;

  // The swap is visible on the *same* connection (no reconnect needed)
  // and the payload is byte-identical to the fresh-daemon reference.
  Result<Response> after = admin->RoundTrip("groups");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->status, "ok") << after->error;
  EXPECT_EQ(after->payload, fresh_b);
  EXPECT_EQ(ServedGroups(*server), fresh_b);

  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_EQ(summary.ExitCode(), 0);
}

TEST_F(ReloadTest, ReloadVerbWithoutPathRevalidatesServingFile) {
  std::unique_ptr<Server> server = StartOn(path_a_);
  ASSERT_NE(server, nullptr);
  const std::string groups_a = ServedGroups(*server);

  Result<TestClient> admin = TestClient::Connect(server->port());
  ASSERT_TRUE(admin.ok());

  // Unchanged file: a no-op reload, generation stays 1.
  Result<Response> noop = admin->RoundTrip("reload");
  ASSERT_TRUE(noop.ok());
  ASSERT_EQ(noop->status, "ok") << noop->error;
  EXPECT_NE(noop->payload.find("generation: 1\n"), std::string::npos)
      << noop->payload;
  EXPECT_NE(noop->payload.find("swapped: false"), std::string::npos)
      << noop->payload;

  // Replace the file in place (the deploy shape: new bytes, same
  // path), reload again: a real swap.
  std::filesystem::copy_file(
      path_b_, path_a_, std::filesystem::copy_options::overwrite_existing);
  Result<Response> swap = admin->RoundTrip("reload");
  ASSERT_TRUE(swap.ok());
  ASSERT_EQ(swap->status, "ok") << swap->error;
  EXPECT_NE(swap->payload.find("generation: 2\n"), std::string::npos)
      << swap->payload;
  EXPECT_NE(ServedGroups(*server), groups_a);
}

TEST_F(ReloadTest, SignalReloadSwapsAfterFileReplacedInPlace) {
  std::unique_ptr<Server> server = StartOn(path_a_);
  ASSERT_NE(server, nullptr);
  ASSERT_EQ(server->CurrentGeneration()->id, 1u);

  std::filesystem::copy_file(
      path_b_, path_a_, std::filesystem::copy_options::overwrite_existing);
  // What `kill -HUP` does: the async-signal-safe kick; the reload runs
  // on the daemon's reload worker. Poll healthz until the generation
  // bump is visible over the wire.
  Server::RequestReloadFromSignal();

  bool swapped = false;
  for (int attempt = 0; attempt < 500 && !swapped; ++attempt) {
    Result<TestClient> client = TestClient::Connect(server->port());
    ASSERT_TRUE(client.ok());
    Result<Response> resp = client->RoundTrip("healthz");
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->status, "ok");
    swapped =
        resp->payload.find("generation: 2\n") != std::string::npos;
    if (!swapped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(swapped) << "SIGHUP reload never landed";
  EXPECT_EQ(server->registry().reload_swaps(), 1u);
}

TEST_F(ReloadTest, CorruptReplacementIsRejectedAndOldGenerationServes) {
  std::unique_ptr<Server> server = StartOn(path_a_);
  ASSERT_NE(server, nullptr);
  const std::string groups_a = ServedGroups(*server);

  // Truncate a copy to half: fails the validation ladder.
  std::ifstream in(path_a_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string bad_path = dir_ + "/bad.snap";
  std::ofstream out(bad_path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();

  Result<TestClient> admin = TestClient::Connect(server->port());
  ASSERT_TRUE(admin.ok());
  Result<Response> reload = admin->RoundTrip("reload?path=" + bad_path);
  ASSERT_TRUE(reload.ok()) << reload.status().ToString();
  EXPECT_EQ(reload->status, "error");
  EXPECT_FALSE(reload->error.empty());

  // Rollback is the default: the old generation answers, the failure
  // is counted, and healthz says so.
  EXPECT_EQ(ServedGroups(*server), groups_a);
  EXPECT_EQ(server->CurrentGeneration()->id, 1u);
  EXPECT_EQ(server->registry().reload_failures(), 1u);
  Result<Response> healthz = admin->RoundTrip("healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_NE(healthz->payload.find("reloads: ok=0 failed=1 unchanged=0"),
            std::string::npos)
      << healthz->payload;
}

TEST_F(ReloadTest, ReloadUnderConcurrentLoadDropsNothing) {
  std::unique_ptr<Server> server = StartOn(path_a_);
  ASSERT_NE(server, nullptr);
  const std::string groups_a = ServedGroups(*server);

  std::string groups_b;
  {
    std::unique_ptr<Server> reference = StartOn(path_b_);
    ASSERT_NE(reference, nullptr);
    groups_b = ServedGroups(*reference);
  }
  ASSERT_NE(groups_a, groups_b);

  // Hammer `groups` from several threads while the swap happens
  // mid-flight. Every response must be ok and byte-identical to one of
  // the two snapshots' artifacts — never an error, never a blend. Each
  // thread keeps going until it has observed the post-swap payload, so
  // the swap is provably bracketed by live traffic on every connection.
  constexpr int kThreads = 4;
  std::atomic<int> ok_a{0};
  std::atomic<int> ok_b{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      Result<TestClient> client = TestClient::Connect(server->port());
      if (!client.ok()) {
        wrong.fetch_add(1);
        return;
      }
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      bool saw_b = false;
      while (!saw_b && std::chrono::steady_clock::now() < deadline) {
        Result<Response> resp = client->RoundTrip("groups");
        if (!resp.ok() || resp->status != "ok") {
          wrong.fetch_add(1);
          return;
        }
        if (resp->payload == groups_a) {
          ok_a.fetch_add(1);
        } else if (resp->payload == groups_b) {
          ok_b.fetch_add(1);
          saw_b = true;
        } else {
          wrong.fetch_add(1);
          return;
        }
      }
      if (!saw_b) wrong.fetch_add(1);
    });
  }

  // Let the load build, then swap while requests are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Result<ReloadOutcome> outcome = server->Reload(path_b_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->swapped);

  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
  // Traffic on both sides of the swap: old-generation requests
  // completed on the old snapshot, and every thread ended on the new
  // one.
  EXPECT_GT(ok_a.load(), 0);
  EXPECT_EQ(ok_b.load(), kThreads);

  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_EQ(summary.errors, 0u);
  EXPECT_EQ(summary.ExitCode(), 0);
}

TEST_F(ReloadTest, StatsAndMetricsReportReloadCounters) {
  std::unique_ptr<Server> server = StartOn(path_a_);
  ASSERT_NE(server, nullptr);

  Result<TestClient> client = TestClient::Connect(server->port());
  ASSERT_TRUE(client.ok());
  ASSERT_EQ(client->RoundTrip("reload")->status, "ok");  // no-op
  std::filesystem::copy_file(
      path_b_, path_a_, std::filesystem::copy_options::overwrite_existing);
  ASSERT_EQ(client->RoundTrip("reload")->status, "ok");  // swap

  Result<Response> stats = client->RoundTrip("stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->status, "ok");
  EXPECT_NE(stats->payload.find("\"attempts\": 2"), std::string::npos)
      << stats->payload;
  EXPECT_NE(stats->payload.find("\"swaps\": 1"), std::string::npos);
  EXPECT_NE(stats->payload.find("\"noops\": 1"), std::string::npos);

  Result<Response> metrics = client->RoundTrip("metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->status, "ok");
  EXPECT_NE(metrics->payload.find("tpiin_serve_generation 2"),
            std::string::npos)
      << metrics->payload;
  EXPECT_NE(metrics->payload.find("tpiin_serve_reload_attempts_total 2"),
            std::string::npos);
  EXPECT_NE(metrics->payload.find("tpiin_serve_reload_success_total 1"),
            std::string::npos);
  EXPECT_NE(metrics->payload.find("tpiin_serve_reload_unchanged_total 1"),
            std::string::npos);
  EXPECT_NE(metrics->payload.find("tpiin_serve_reload_failures_total 0"),
            std::string::npos);
}

}  // namespace
}  // namespace tpiin

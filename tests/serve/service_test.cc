// QueryService semantics and the serve byte-identity contract: for the
// same snapshot, the `groups` payload equals the batch `detect --out`
// susGroup.txt bytes and the `explain` payload equals the batch
// `tpiin explain` stdout — cache hot or cold, at 1 and at 8 threads.

#include "serve/service.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "common/failpoint.h"
#include "datagen/province.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"
#include "snapshot/snapshot.h"

namespace tpiin {
namespace {

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Request MakeRequest(const std::string& verb,
                    const std::string& company = "") {
  Request req;
  req.verb = verb;
  req.company = company;
  return req;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_serve_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  /// Fuses a small province, snapshots it, and opens the view the
  /// service will answer from.
  void OpenProvinceSnapshot() {
    ProvinceConfig config = SmallProvinceConfig(150, 20170402);
    config.trading_probability = 0.02;
    Result<Province> province = GenerateProvince(config);
    ASSERT_TRUE(province.ok()) << province.status().ToString();
    Result<FusionOutput> fused = BuildTpiin(province->dataset);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    OpenSnapshotOf(fused->tpiin);
  }

  void OpenSnapshotOf(const Tpiin& net) {
    snapshot_path_ = Path("net.snap");
    Status written = WriteSnapshot(net, snapshot_path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
    Result<std::unique_ptr<SnapshotView>> view =
        SnapshotView::Open(snapshot_path_);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    view_ = std::move(*view);
  }

  /// The batch artifact bytes the serve payloads must match.
  std::string BatchSusGroups() {
    std::ostringstream out;
    int code = 0;
    Status status = RunCli({"detect", "--snapshot=" + snapshot_path_,
                            "--out=" + Path("batch")},
                           out, &code);
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(code, 0);
    return ReadFileToString(Path("batch") + "/susGroup.txt");
  }

  std::string BatchExplain(const std::string& company) {
    std::ostringstream out;
    Status status = RunCli({"explain", "--snapshot=" + snapshot_path_,
                            "--company=" + company},
                           out);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out.str();
  }

  /// First company label in the network (always a valid explain
  /// target).
  std::string AnyCompanyLabel() {
    for (NodeId v = 0; v < view_->net().NumNodes(); ++v) {
      if (view_->net().node(v).color == NodeColor::kCompany) {
        return std::string(view_->net().Label(v));
      }
    }
    ADD_FAILURE() << "no company node";
    return "";
  }

  std::string AnyPersonLabel() {
    for (NodeId v = 0; v < view_->net().NumNodes(); ++v) {
      if (view_->net().node(v).color == NodeColor::kPerson) {
        return std::string(view_->net().Label(v));
      }
    }
    ADD_FAILURE() << "no person node";
    return "";
  }

  std::unique_ptr<QueryService> MakeService(uint32_t threads,
                                            bool cached) {
    ServiceOptions options;
    options.threads = threads;
    options.cache_entries = cached ? 256 : 0;
    options.bundle_cache_entries = cached ? 4 : 0;
    return std::make_unique<QueryService>(
        view_->net(), view_->header_crc(), options, nullptr);
  }

  std::string dir_;
  std::string snapshot_path_;
  std::unique_ptr<SnapshotView> view_;
};

TEST_F(ServiceTest, GroupsByteIdenticalToBatchAtAnyThreadsCacheHotOrCold) {
  OpenProvinceSnapshot();
  const std::string batch = BatchSusGroups();
  ASSERT_FALSE(batch.empty()) << "province produced no suspicious groups";

  for (uint32_t threads : {1u, 8u}) {
    for (bool cached : {false, true}) {
      std::unique_ptr<QueryService> service = MakeService(threads, cached);
      // First call is always cold; the second exercises the hit path
      // when caching is on and the recompute path when it is off.
      Response first = service->Handle(MakeRequest("groups"));
      Response second = service->Handle(MakeRequest("groups"));
      ASSERT_EQ(first.status, "ok")
          << "threads=" << threads << " cached=" << cached << ": "
          << first.error;
      EXPECT_EQ(first.payload, batch)
          << "threads=" << threads << " cached=" << cached;
      EXPECT_EQ(second.payload, batch)
          << "threads=" << threads << " cached=" << cached << " (2nd)";
      EXPECT_EQ(service->bundle_cache().hits(), cached ? 1u : 0u);
    }
  }
}

TEST_F(ServiceTest, ConcurrentColdMissesAreSingleFlighted) {
  OpenProvinceSnapshot();
  const std::string batch = BatchSusGroups();
  ASSERT_FALSE(batch.empty());

  // Activate failpoint hit counting without any firing rule: the
  // core.sub_mine site is evaluated once per subTPIIN per detection
  // run, so its hit count measures how many detections actually ran.
  ASSERT_TRUE(Failpoints::Configure("test.unused:off").ok());

  // Calibrate: one cold request = one detection run's worth of hits.
  uint64_t per_run = 0;
  {
    std::unique_ptr<QueryService> calibration = MakeService(0, true);
    const uint64_t before = Failpoints::HitCount("core.sub_mine");
    Response resp = calibration->Handle(MakeRequest("groups"));
    ASSERT_EQ(resp.status, "ok") << resp.error;
    per_run = Failpoints::HitCount("core.sub_mine") - before;
  }
  if (per_run == 0) {
    Failpoints::Clear();
    GTEST_SKIP() << "failpoint sites compiled out (-DTPIIN_FAILPOINTS=OFF)";
  }

  // Eight simultaneous cold requests for the same key: single-flight
  // makes the first the leader and parks the rest on its flight, so
  // exactly one detection runs (without coalescing this would be up to
  // eight full runs before one result wins the cache Put).
  constexpr int kThreads = 8;
  std::unique_ptr<QueryService> service = MakeService(0, true);
  const uint64_t before = Failpoints::HitCount("core.sub_mine");
  std::atomic<bool> go{false};
  std::vector<Response> responses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      responses[i] = service->Handle(MakeRequest("groups"));
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const uint64_t mined = Failpoints::HitCount("core.sub_mine") - before;
  Failpoints::Clear();

  EXPECT_EQ(mined, per_run) << "concurrent cold misses were not coalesced";
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(responses[i].status, "ok") << responses[i].error;
    EXPECT_EQ(responses[i].payload, batch) << "thread " << i;
  }
  EXPECT_EQ(service->bundle_cache().size(), 1u);
}

TEST_F(ServiceTest, ExplainByteIdenticalToBatch) {
  OpenProvinceSnapshot();
  const std::string company = AnyCompanyLabel();
  const std::string batch = BatchExplain(company);
  ASSERT_FALSE(batch.empty());

  for (uint32_t threads : {1u, 8u}) {
    for (bool cached : {false, true}) {
      std::unique_ptr<QueryService> service = MakeService(threads, cached);
      Response cold = service->Handle(MakeRequest("explain", company));
      Response warm = service->Handle(MakeRequest("explain", company));
      ASSERT_EQ(cold.status, "ok") << cold.error;
      EXPECT_EQ(cold.payload, batch)
          << "threads=" << threads << " cached=" << cached;
      EXPECT_EQ(warm.payload, batch)
          << "threads=" << threads << " cached=" << cached << " (2nd)";
    }
  }
}

TEST_F(ServiceTest, GroupsCompanyFilterIsSubsequenceOfFullPayload) {
  OpenSnapshotOf(BuildWorkedExampleTpiin());
  std::unique_ptr<QueryService> service = MakeService(1, true);

  Response all = service->Handle(MakeRequest("groups"));
  ASSERT_EQ(all.status, "ok") << all.error;
  // The worked example yields the paper's three groups; C5 belongs to
  // two of them, C4 to none.
  Response c5 = service->Handle(MakeRequest("groups", "C5"));
  ASSERT_EQ(c5.status, "ok") << c5.error;
  EXPECT_NE(all.payload, c5.payload);
  EXPECT_FALSE(c5.payload.empty());
  // Every filtered line appears verbatim in the full payload.
  std::istringstream lines(c5.payload);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_NE(all.payload.find(line), std::string::npos) << line;
  }

  Response c4 = service->Handle(MakeRequest("groups", "C4"));
  ASSERT_EQ(c4.status, "ok") << c4.error;
  EXPECT_TRUE(c4.payload.empty());
}

TEST_F(ServiceTest, ErrorTextsMatchBatchCli) {
  OpenProvinceSnapshot();
  std::unique_ptr<QueryService> service = MakeService(1, true);

  Response missing = service->Handle(MakeRequest("explain", "NOPE"));
  EXPECT_EQ(missing.status, "error");
  EXPECT_NE(missing.error.find("no node labeled NOPE"), std::string::npos)
      << missing.error;

  Response person =
      service->Handle(MakeRequest("explain", AnyPersonLabel()));
  EXPECT_EQ(person.status, "error");
  EXPECT_NE(person.error.find("is a Person node"), std::string::npos)
      << person.error;

  Response no_company = service->Handle(MakeRequest("explain"));
  EXPECT_EQ(no_company.status, "error");

  Response unknown = service->Handle(MakeRequest("frobnicate"));
  EXPECT_EQ(unknown.status, "error");
  EXPECT_NE(unknown.error.find("unknown verb"), std::string::npos);
}

TEST_F(ServiceTest, RescoreCachedAndUncachedAreByteIdentical) {
  OpenSnapshotOf(BuildWorkedExampleTpiin());

  Request rescore = MakeRequest("rescore");
  rescore.sub = 0;

  std::unique_ptr<QueryService> cold_service = MakeService(1, false);
  Response cold1 = cold_service->Handle(rescore);
  Response cold2 = cold_service->Handle(rescore);
  ASSERT_EQ(cold1.status, "ok") << cold1.error;
  EXPECT_EQ(cold1.payload, cold2.payload);
  EXPECT_EQ(cold_service->sub_cache().hits(), 0u);

  std::unique_ptr<QueryService> hot_service = MakeService(1, true);
  Response miss = hot_service->Handle(rescore);
  Response hit = hot_service->Handle(rescore);
  ASSERT_EQ(miss.status, "ok") << miss.error;
  EXPECT_EQ(hot_service->sub_cache().hits(), 1u);
  EXPECT_EQ(hot_service->sub_cache().misses(), 1u);

  EXPECT_EQ(miss.payload, cold1.payload);
  EXPECT_EQ(hit.payload, cold1.payload);
  // The worked example's single subTPIIN mines to the paper's three
  // groups.
  EXPECT_NE(miss.payload.find("subTPIIN 0 of 1"), std::string::npos)
      << miss.payload;
  EXPECT_NE(miss.payload.find("trails: 15"), std::string::npos)
      << miss.payload;
}

TEST_F(ServiceTest, RescoreRangeAndArgumentErrors) {
  OpenSnapshotOf(BuildWorkedExampleTpiin());
  std::unique_ptr<QueryService> service = MakeService(1, true);

  Request out_of_range = MakeRequest("rescore");
  out_of_range.sub = 99;
  Response resp = service->Handle(out_of_range);
  EXPECT_EQ(resp.status, "error");
  EXPECT_NE(resp.error.find("no subTPIIN 99"), std::string::npos)
      << resp.error;

  Response no_sub = service->Handle(MakeRequest("rescore"));
  EXPECT_EQ(no_sub.status, "error");
  EXPECT_NE(no_sub.error.find("requires sub"), std::string::npos);
}

TEST_F(ServiceTest, StructuralCapDegradesDeterministically) {
  OpenSnapshotOf(BuildWorkedExampleTpiin());
  std::unique_ptr<QueryService> service = MakeService(1, true);

  // Cap below the single subTPIIN's size: every verb that needs the
  // detection degrades, and (being deterministic) the degraded bundle
  // IS cached — unlike deadline truncation.
  Request capped = MakeRequest("groups");
  capped.max_sub_nodes = 2;
  Response first = service->Handle(capped);
  Response second = service->Handle(capped);
  EXPECT_EQ(first.status, "degraded");
  EXPECT_TRUE(first.payload.empty());
  EXPECT_EQ(second.status, "degraded");
  EXPECT_EQ(service->bundle_cache().hits(), 1u);

  Request capped_rescore = MakeRequest("rescore");
  capped_rescore.sub = 0;
  capped_rescore.max_sub_nodes = 2;
  Response rescore = service->Handle(capped_rescore);
  EXPECT_EQ(rescore.status, "degraded");
  EXPECT_NE(rescore.payload.find("skipped (over budget cap)"),
            std::string::npos)
      << rescore.payload;
}

TEST_F(ServiceTest, DistinctBudgetsAreDistinctBundleCacheEntries) {
  OpenSnapshotOf(BuildWorkedExampleTpiin());
  std::unique_ptr<QueryService> service = MakeService(1, true);

  Response plain = service->Handle(MakeRequest("groups"));
  ASSERT_EQ(plain.status, "ok") << plain.error;

  Request roomy = MakeRequest("groups");
  roomy.max_sub_nodes = 1000;  // Non-binding, but a different key.
  Response roomy_resp = service->Handle(roomy);
  ASSERT_EQ(roomy_resp.status, "ok") << roomy_resp.error;

  EXPECT_EQ(service->bundle_cache().size(), 2u);
  EXPECT_EQ(service->bundle_cache().misses(), 2u);
  // Same answer either way — the cap did not bind.
  EXPECT_EQ(plain.payload, roomy_resp.payload);
}

TEST_F(ServiceTest, HealthzAlwaysOk) {
  OpenSnapshotOf(BuildWorkedExampleTpiin());
  std::unique_ptr<QueryService> service = MakeService(1, true);
  Response resp = service->Handle(MakeRequest("healthz"));
  EXPECT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.payload, "ok\n");
}

}  // namespace
}  // namespace tpiin

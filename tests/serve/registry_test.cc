// SnapshotRegistry unit tests: validate-then-swap, rollback on every
// corruption mode, same-CRC no-op reloads, RCU generation lifetime
// (held generations outlive the swap), and cache retire/evict.

#include "serve/registry.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "datagen/province.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"
#include "serve/protocol.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"

namespace tpiin {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_reg_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    path_a_ = dir_ + "/a.snap";
    Status written = WriteSnapshot(BuildWorkedExampleTpiin(), path_a_);
    ASSERT_TRUE(written.ok()) << written.ToString();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A second snapshot with different content (so a different CRC).
  std::string WriteSecondSnapshot() {
    const std::string path = dir_ + "/b.snap";
    ProvinceConfig config = SmallProvinceConfig(150, 20170402);
    config.trading_probability = 0.02;
    Result<Province> province = GenerateProvince(config);
    EXPECT_TRUE(province.ok()) << province.status().ToString();
    Result<FusionOutput> fused = BuildTpiin(province->dataset);
    EXPECT_TRUE(fused.ok()) << fused.status().ToString();
    EXPECT_TRUE(WriteSnapshot(fused->tpiin, path).ok());
    return path;
  }

  std::unique_ptr<SnapshotRegistry> MakeRegistry() {
    ServiceOptions options;
    options.threads = 1;
    options.cache_entries = 64;
    options.bundle_cache_entries = 4;
    return std::make_unique<SnapshotRegistry>(options, SnapshotOpenOptions{},
                                              /*metrics=*/nullptr,
                                              /*event_sink=*/nullptr);
  }

  /// The groups payload a generation's service answers with.
  std::string Groups(const SnapshotGeneration& generation) {
    Request req;
    req.verb = "groups";
    Response resp = generation.service->Handle(req);
    EXPECT_EQ(resp.status, "ok") << resp.error;
    return resp.payload;
  }

  std::string dir_;
  std::string path_a_;
};

TEST_F(RegistryTest, LoadInitialPublishesGenerationOne) {
  std::unique_ptr<SnapshotRegistry> registry = MakeRegistry();
  ASSERT_TRUE(registry->LoadInitial(path_a_).ok());

  std::shared_ptr<const SnapshotGeneration> gen = registry->Current();
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->id, 1u);
  EXPECT_EQ(gen->path, path_a_);
  EXPECT_GT(gen->loaded_unix_micros, 0);
  EXPECT_GT(gen->net().NumNodes(), 0u);
  EXPECT_FALSE(Groups(*gen).empty());
  EXPECT_EQ(registry->reload_attempts(), 0u);
}

TEST_F(RegistryTest, ReloadBeforeLoadInitialFails) {
  std::unique_ptr<SnapshotRegistry> registry = MakeRegistry();
  Result<ReloadOutcome> outcome = registry->Reload();
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsFailedPrecondition());
}

TEST_F(RegistryTest, SameCrcReloadIsNoop) {
  std::unique_ptr<SnapshotRegistry> registry = MakeRegistry();
  ASSERT_TRUE(registry->LoadInitial(path_a_).ok());
  std::shared_ptr<const SnapshotGeneration> before = registry->Current();

  // Same path (the SIGHUP-from-logrotate shape) *and* a byte-identical
  // copy at a different path both no-op: identity is content CRC.
  Result<ReloadOutcome> same = registry->Reload();
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_FALSE(same->swapped);
  EXPECT_EQ(same->generation.get(), before.get());

  const std::string copy = dir_ + "/copy.snap";
  std::filesystem::copy_file(path_a_, copy);
  Result<ReloadOutcome> copied = registry->Reload(copy);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  EXPECT_FALSE(copied->swapped);

  EXPECT_EQ(registry->Current()->id, 1u);
  EXPECT_EQ(registry->reload_attempts(), 2u);
  EXPECT_EQ(registry->reload_noops(), 2u);
  EXPECT_EQ(registry->reload_swaps(), 0u);
  EXPECT_EQ(registry->reload_failures(), 0u);
}

TEST_F(RegistryTest, DifferentSnapshotSwapsGenerations) {
  std::unique_ptr<SnapshotRegistry> registry = MakeRegistry();
  ASSERT_TRUE(registry->LoadInitial(path_a_).ok());
  const std::string groups_a = Groups(*registry->Current());
  const uint32_t crc_a = registry->Current()->crc();

  const std::string path_b = WriteSecondSnapshot();
  Result<ReloadOutcome> outcome = registry->Reload(path_b);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->swapped);
  EXPECT_EQ(outcome->generation->id, 2u);
  EXPECT_EQ(outcome->generation->path, path_b);
  EXPECT_NE(outcome->generation->crc(), crc_a);

  std::shared_ptr<const SnapshotGeneration> current = registry->Current();
  EXPECT_EQ(current.get(), outcome->generation.get());
  EXPECT_NE(Groups(*current), groups_a);
  EXPECT_EQ(registry->reload_swaps(), 1u);

  // Reloading the *original* file again is a real swap back (CRC
  // differs from the now-serving generation), minting generation 3.
  Result<ReloadOutcome> back = registry->Reload(path_a_);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->swapped);
  EXPECT_EQ(back->generation->id, 3u);
  EXPECT_EQ(Groups(*registry->Current()), groups_a);
}

TEST_F(RegistryTest, HeldGenerationOutlivesSwap) {
  std::unique_ptr<SnapshotRegistry> registry = MakeRegistry();
  ASSERT_TRUE(registry->LoadInitial(path_a_).ok());

  // An "in-flight request": pins generation 1 across the swap.
  std::shared_ptr<const SnapshotGeneration> held = registry->Current();
  const std::string groups_before = Groups(*held);

  ASSERT_TRUE(registry->Reload(WriteSecondSnapshot()).ok());
  EXPECT_EQ(registry->Current()->id, 2u);

  // The held generation still answers, byte-identically, from its own
  // (superseded but still mapped) snapshot.
  EXPECT_EQ(Groups(*held), groups_before);
  EXPECT_EQ(held->id, 1u);
}

TEST_F(RegistryTest, CorruptCandidatesAreRejectedAndOldGenerationServes) {
  std::unique_ptr<SnapshotRegistry> registry = MakeRegistry();
  ASSERT_TRUE(registry->LoadInitial(path_a_).ok());
  const std::string groups_a = Groups(*registry->Current());

  std::ifstream in(path_a_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  struct Mutation {
    const char* name;
    std::string content;
  };
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  // Flip a byte inside a real section payload (the gap between
  // sections is alignment padding no checksum covers), so the per-
  // section CRC rung of the ladder is what rejects it.
  SnapshotHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  std::string flipped_payload = bytes;
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry;
    std::memcpy(&entry,
                bytes.data() + sizeof(SnapshotHeader) +
                    i * sizeof(SectionEntry),
                sizeof(entry));
    if (entry.size == 0) continue;
    flipped_payload[entry.offset + entry.size / 2] ^= 0x20;
    break;
  }
  ASSERT_NE(flipped_payload, bytes);
  const Mutation mutations[] = {
      {"truncated", bytes.substr(0, bytes.size() / 2)},
      {"bad magic", bad_magic},
      {"flipped payload byte", flipped_payload},
      {"garbage", std::string(256, 'x')},
      {"empty", std::string()},
  };

  uint64_t failures = 0;
  for (const Mutation& mutation : mutations) {
    const std::string bad_path = dir_ + "/bad.snap";
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(mutation.content.data(),
              static_cast<std::streamsize>(mutation.content.size()));
    out.close();

    Result<ReloadOutcome> outcome = registry->Reload(bad_path);
    EXPECT_FALSE(outcome.ok()) << mutation.name << " was accepted";
    ++failures;
    EXPECT_EQ(registry->reload_failures(), failures) << mutation.name;
    // Rollback is the default: generation 1 is untouched and serving.
    EXPECT_EQ(registry->Current()->id, 1u) << mutation.name;
    EXPECT_EQ(Groups(*registry->Current()), groups_a) << mutation.name;
  }

  // A missing candidate file is a failure too, not a crash.
  Result<ReloadOutcome> missing = registry->Reload(dir_ + "/missing.snap");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(registry->reload_failures(), failures + 1);

  // ... and a valid candidate still swaps after all those rejections.
  Result<ReloadOutcome> good = registry->Reload(WriteSecondSnapshot());
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_TRUE(good->swapped);
  EXPECT_EQ(good->generation->id, 2u);
}

TEST_F(RegistryTest, SwapEvictsSupersededGenerationsCacheEntries) {
  std::unique_ptr<SnapshotRegistry> registry = MakeRegistry();
  ASSERT_TRUE(registry->LoadInitial(path_a_).ok());

  // Populate generation 1's bundle cache entry.
  (void)Groups(*registry->Current());
  EXPECT_EQ(registry->shared_state().bundle_cache.size(), 1u);

  std::shared_ptr<const SnapshotGeneration> old = registry->Current();
  ASSERT_TRUE(registry->Reload(WriteSecondSnapshot()).ok());

  // The swap evicted the dead generation's entries...
  EXPECT_EQ(registry->shared_state().bundle_cache.size(), 0u);
  // ... and the retired service no longer writes to the shared caches,
  // even though a pinned request can still read through it.
  (void)Groups(*old);
  EXPECT_EQ(registry->shared_state().bundle_cache.size(), 0u);

  // The new generation caches normally.
  (void)Groups(*registry->Current());
  EXPECT_EQ(registry->shared_state().bundle_cache.size(), 1u);
}

}  // namespace
}  // namespace tpiin

// End-to-end socket tests of the serve daemon: request/response over
// real TCP connections, deterministic busy refusals at saturation,
// recovery afterwards, stats/healthz, and graceful drain accounting.

#include "serve/server.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "datagen/worked_example.h"
#include "snapshot/snapshot.h"
#include "tests/serve/test_client.h"

namespace tpiin {
namespace {

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_srv_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    snapshot_path_ = dir_ + "/net.snap";
    Status written = WriteSnapshot(BuildWorkedExampleTpiin(), snapshot_path_);
    ASSERT_TRUE(written.ok()) << written.ToString();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<Server> StartServer(ServeOptions options = {}) {
    options.snapshot_path = snapshot_path_;
    options.port = 0;
    Result<std::unique_ptr<Server>> server = Server::Start(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(*server) : nullptr;
  }

  TestClient Connect(const Server& server) {
    Result<TestClient> client = TestClient::Connect(server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::string dir_;
  std::string snapshot_path_;
};

TEST_F(ServerTest, StartupFailsOnMissingSnapshot) {
  ServeOptions options;
  options.snapshot_path = dir_ + "/missing.snap";
  Result<std::unique_ptr<Server>> server = Server::Start(options);
  EXPECT_FALSE(server.ok());
}

TEST_F(ServerTest, StartupFailsOnBadHost) {
  ServeOptions options;
  options.snapshot_path = snapshot_path_;
  options.host = "not-an-address";
  Result<std::unique_ptr<Server>> server = Server::Start(options);
  ASSERT_FALSE(server.ok());
  EXPECT_TRUE(server.status().IsInvalidArgument());
}

TEST_F(ServerTest, HealthzAndIdEcho) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);

  Result<Response> resp = client.RoundTrip(R"({"verb":"healthz","id":42})");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, "ok");
  EXPECT_EQ(resp->id, 42);
  // First line is the bare liveness token; the rest is reload metadata
  // (generation id, CRC, load time, reload counters).
  EXPECT_EQ(resp->payload.rfind("ok\n", 0), 0u) << resp->payload;
  EXPECT_NE(resp->payload.find("generation: 1\n"), std::string::npos)
      << resp->payload;
  EXPECT_NE(resp->payload.find("reloads: ok=0 failed=0 unchanged=0"),
            std::string::npos)
      << resp->payload;
}

TEST_F(ServerTest, ManyRequestsOnOneConnection) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);

  std::string first_groups;
  for (int i = 0; i < 5; ++i) {
    Result<Response> resp = client.RoundTrip("groups");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->status, "ok") << resp->error;
    if (i == 0) {
      first_groups = resp->payload;
      EXPECT_FALSE(first_groups.empty());
    } else {
      EXPECT_EQ(resp->payload, first_groups) << "request " << i;
    }
  }

  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_EQ(summary.connections_accepted, 1u);
  EXPECT_EQ(summary.requests, 5u);
  EXPECT_EQ(summary.ok, 5u);
  EXPECT_EQ(summary.ExitCode(), 0);
}

TEST_F(ServerTest, GroupsMatchesBatchDetectBytes) {
  std::ostringstream cli_out;
  int code = 0;
  Status status = RunCli({"detect", "--snapshot=" + snapshot_path_,
                          "--out=" + dir_ + "/batch"},
                         cli_out, &code);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::string batch = ReadFileToString(dir_ + "/batch/susGroup.txt");
  ASSERT_FALSE(batch.empty());

  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);
  Result<Response> resp = client.RoundTrip("groups");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, "ok") << resp->error;
  EXPECT_EQ(resp->payload, batch);
}

TEST_F(ServerTest, StatsReportsCountersAndCaches) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);

  ASSERT_TRUE(client.RoundTrip("groups").ok());
  ASSERT_TRUE(client.RoundTrip("groups").ok());
  Result<Response> stats = client.RoundTrip("stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->status, "ok");

  // The payload is a RunReport JSON document with server/requests/cache
  // sections and the per-verb latency histograms.
  const std::string& payload = stats->payload;
  EXPECT_NE(payload.find("\"tool\": \"tpiin serve\""), std::string::npos);
  EXPECT_NE(payload.find("\"requests\""), std::string::npos);
  EXPECT_NE(payload.find("\"bundle_hits\": 1"), std::string::npos)
      << payload;
  EXPECT_NE(payload.find("\"bundle_misses\": 1"), std::string::npos)
      << payload;
  EXPECT_NE(payload.find("serve.latency_us.groups"), std::string::npos);
  EXPECT_NE(payload.find("serve.requests.groups"), std::string::npos);
}

TEST_F(ServerTest, SaturationIsDeterministicBusyAndRecovers) {
  ServeOptions options;
  options.max_inflight = 1;
  options.max_queue = 1;
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  // Fill both connection slots with held-open connections. Each does
  // one round trip first, so it is provably accepted (admission is
  // connection-scoped and decided on the acceptor thread — no timing).
  TestClient held1 = Connect(*server);
  TestClient held2 = Connect(*server);
  ASSERT_TRUE(held1.RoundTrip("healthz").ok());
  ASSERT_TRUE(held2.RoundTrip("healthz").ok());

  // The (max_inflight + max_queue + 1)-th connection is refused busy —
  // deterministically, no matter how many workers are free.
  Result<TestClient> refused = TestClient::Connect(server->port());
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  Result<std::string> line = refused->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  Result<Response> busy = ParseResponseLine(*line);
  ASSERT_TRUE(busy.ok()) << busy.status().ToString();
  EXPECT_EQ(busy->status, "busy");
  EXPECT_NE(busy->error.find("capacity"), std::string::npos);
  // ... and the server closes it.
  EXPECT_FALSE(refused->ReadLine().ok());

  // Releasing one held connection frees a slot; the server recovers
  // and serves again. The release needs the server to notice the EOF,
  // so poll briefly.
  held1.Close();
  bool recovered = false;
  for (int attempt = 0; attempt < 200 && !recovered; ++attempt) {
    Result<TestClient> retry = TestClient::Connect(server->port());
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    Result<Response> resp = retry->RoundTrip("healthz");
    if (resp.ok() && resp->status == "ok") {
      recovered = true;
    } else {
      struct timespec ts = {0, 10 * 1000 * 1000};
      nanosleep(&ts, nullptr);
    }
  }
  EXPECT_TRUE(recovered);

  held2.Close();
  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_GE(summary.connections_refused, 1u);
  EXPECT_GE(summary.busy, 1u);
  // Busy refusals are clean refusals, not partial results: exit stays 0.
  EXPECT_EQ(summary.ExitCode(), 0);
}

TEST_F(ServerTest, ShutdownDrainsIdleConnections) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);

  // Three connections parked mid-stream (accepted, no request pending).
  TestClient idle1 = Connect(*server);
  TestClient idle2 = Connect(*server);
  TestClient idle3 = Connect(*server);
  ASSERT_TRUE(idle1.RoundTrip("healthz").ok());

  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_EQ(summary.requests, 1u);
  EXPECT_EQ(summary.ExitCode(), 0);

  // The drained connections see EOF, not a hang.
  EXPECT_FALSE(idle1.ReadLine().ok());
}

TEST_F(ServerTest, DegradedResponsesMapToExitCode2) {
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);

  // A structural cap below the worked example's single subTPIIN: the
  // response degrades deterministically, and the summary maps it to
  // exit code 2 (the PR 4 partial-results contract, served).
  Result<Response> resp = client.RoundTrip("groups?max_sub_nodes=2");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, "degraded");

  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_EQ(summary.degraded, 1u);
  EXPECT_EQ(summary.ExitCode(), 2);
}

#ifdef __linux__
// Threads of this process, from /proc (0 when unreadable).
size_t CountProcessThreads() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}
#endif

TEST_F(ServerTest, SequentialConnectionsDoNotAccumulateThreads) {
#ifndef __linux__
  GTEST_SKIP() << "/proc-based thread counting is Linux-only";
#else
  std::unique_ptr<Server> server = StartServer();
  ASSERT_NE(server, nullptr);
  const size_t baseline = CountProcessThreads();
  if (baseline == 0) GTEST_SKIP() << "/proc/self/status unreadable";

  // A long-lived daemon serves connections forever; each one's handler
  // thread must be reaped after it finishes, not parked joinable-but-
  // terminated (stack and all) until shutdown.
  for (int i = 0; i < 64; ++i) {
    TestClient client = Connect(*server);
    ASSERT_TRUE(client.RoundTrip("healthz").ok());
  }

  // Finished threads are joined by the acceptor on the next accept, so
  // probe until the count settles back near the baseline (the probe
  // itself and the most recently closed connection may still be live).
  bool settled = false;
  size_t now = 0;
  for (int attempt = 0; attempt < 200 && !settled; ++attempt) {
    {
      TestClient probe = Connect(*server);
      ASSERT_TRUE(probe.RoundTrip("healthz").ok());
    }
    struct timespec ts = {0, 10 * 1000 * 1000};
    nanosleep(&ts, nullptr);
    now = CountProcessThreads();
    settled = now <= baseline + 3;
  }
  EXPECT_TRUE(settled) << "threads grew from " << baseline << " to " << now
                       << " after 64 sequential connections";

  server->Shutdown();
  EXPECT_EQ(server->Wait().ExitCode(), 0);
#endif
}

TEST_F(ServerTest, LineDeadlineDropsSlowLorisAndKeepsServingOthers) {
  ServeOptions options;
  options.line_deadline_seconds = 0.2;
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);

  // A slow loris: first bytes of a request line arrive, then nothing.
  // The line deadline (not the much longer idle timeout) must fire,
  // answer with an explanatory error, and drop the connection.
  TestClient loris = Connect(*server);
  ASSERT_TRUE(loris.SendRaw("gro").ok());
  Result<std::string> line = loris.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  Result<Response> resp = ParseResponseLine(*line);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, "error");
  EXPECT_NE(resp->error.find("not completed"), std::string::npos)
      << resp->error;
  EXPECT_FALSE(loris.ReadLine().ok()) << "connection must be closed";

  // The deadline is per-connection: a well-behaved client on the same
  // server is unaffected, including lines that arrive in two pieces
  // (a partial line that *completes* in budget is fine).
  TestClient good = Connect(*server);
  ASSERT_TRUE(good.SendRaw("heal").ok());
  ASSERT_TRUE(good.SendRaw("thz\n").ok());
  Result<std::string> ok_line = good.ReadLine();
  ASSERT_TRUE(ok_line.ok()) << ok_line.status().ToString();
  Result<Response> ok_resp = ParseResponseLine(*ok_line);
  ASSERT_TRUE(ok_resp.ok());
  EXPECT_EQ(ok_resp->status, "ok");

  server->Shutdown();
  ServeSummary summary = server->Wait();
  EXPECT_EQ(summary.read_errors, 1u);
}

TEST_F(ServerTest, RequestDeadlineCapsEvaluationAsDegraded) {
  // A server-side per-request ceiling the client cannot opt out of: an
  // effectively-zero deadline degrades every groups evaluation, even
  // one that asks for a generous budget of its own.
  ServeOptions options;
  options.service.request_deadline_seconds = 1e-9;
  std::unique_ptr<Server> server = StartServer(options);
  ASSERT_NE(server, nullptr);
  TestClient client = Connect(*server);

  Result<Response> resp = client.RoundTrip("groups");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, "degraded") << resp->error;

  Result<Response> generous = client.RoundTrip("groups?deadline_ms=60000");
  ASSERT_TRUE(generous.ok()) << generous.status().ToString();
  EXPECT_EQ(generous->status, "degraded")
      << "client budget must not widen the server ceiling";
}

TEST_F(ServerTest, TwoServersOnOneProcessStayIsolated) {
  // Per-server metrics registries and caches: two servers over the same
  // snapshot never blend their stats (the in-process test topology).
  std::unique_ptr<Server> a = StartServer();
  std::unique_ptr<Server> b = StartServer();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(a->port(), b->port());

  TestClient client_a = Connect(*a);
  ASSERT_TRUE(client_a.RoundTrip("groups").ok());

  ServeSummary sa = a->Summary();
  ServeSummary sb = b->Summary();
  EXPECT_EQ(sa.requests, 1u);
  EXPECT_EQ(sb.requests, 0u);

  b->Shutdown();
  EXPECT_EQ(b->Wait().requests, 0u);
  a->Shutdown();
  EXPECT_EQ(a->Wait().requests, 1u);
}

}  // namespace
}  // namespace tpiin
